#!/usr/bin/env python3
"""Smoke test for `transtore_cli serve`: replay the six-assay batch twice
through one long-lived server process and assert

  * every first-pass request misses the cache and solves,
  * every second-pass request is a cache hit,
  * second-pass result documents are byte-identical to the first pass,
  * a `recover` request (auto fault at 50% execution) reuses the cached
    base result and answers ok or degraded with a spliced schedule,
  * the stats op reports exactly six stores and seven memory hits (the
    six replays plus the recovery's base lookup).

Usage: serve_smoke.py [path/to/transtore_cli]

Exit codes: 0 ok, 1 assertion failed, 2 could not run the server.
"""

import json
import subprocess
import sys


def result_doc(line):
    """Raw bytes of the "result" member (always the last member the server
    writes), for byte-level comparison between passes. None when the
    response carries no result."""
    marker = '"result":'
    i = line.find(marker)
    if i < 0:
        return None
    return line[i + len(marker):-1]


def main():
    cli = sys.argv[1] if len(sys.argv) > 1 else "./transtore_cli"

    names = subprocess.run([cli, "bench-names"], capture_output=True,
                           text=True, check=True).stdout.split()
    if len(names) != 6:
        print(f"serve_smoke: expected 6 built-in assays, got {names}",
              file=sys.stderr)
        return 1

    # Heuristic engine keeps the smoke fast; the cache does not care which
    # engine produced the result.
    options = {"schedule_engine": "heuristic"}
    requests = []
    rid = 0
    for _ in range(2):
        for name in names:
            rid += 1
            requests.append({"id": rid, "op": "synth", "assay": name,
                             "options": options})
    # One mid-assay fault recovery on a multi-device design: the base
    # synthesis is already cached, so only the recovery ladder runs.
    recover_assay = "RA30" if "RA30" in names else names[0]
    requests.append({"id": "recover", "op": "recover", "assay": recover_assay,
                     "at": 0.5, "fault": "auto", "options": options})
    requests.append({"id": "stats", "op": "stats"})
    requests.append({"op": "shutdown"})
    stdin = "".join(json.dumps(r) + "\n" for r in requests)

    try:
        proc = subprocess.run([cli, "serve", "--workers", "2"], input=stdin,
                              capture_output=True, text=True, timeout=600)
    except (OSError, subprocess.TimeoutExpired) as e:
        print(f"serve_smoke: cannot run {cli} serve: {e}", file=sys.stderr)
        return 2
    if proc.returncode != 0:
        print(f"serve_smoke: serve exited {proc.returncode}\n{proc.stderr}",
              file=sys.stderr)
        return 2

    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    responses = {}
    stats = None
    for line in lines:
        r = json.loads(line)
        if r.get("op") == "stats":
            stats = r
        elif r.get("op") != "shutdown" and r.get("id") is not None:
            responses[r["id"]] = line

    failures = []
    n = len(names)
    for k, name in enumerate(names):
        first_id, second_id = k + 1, n + k + 1
        first = responses.get(first_id)
        second = responses.get(second_id)
        if first is None or second is None:
            failures.append(f"{name}: missing response")
            continue
        f, s = json.loads(first), json.loads(second)
        bad_status = [(which, r) for which, r in (("first", f), ("second", s))
                      if r.get("status") != "ok"]
        if bad_status:
            for which, r in bad_status:
                failures.append(
                    f"{name}: {which} pass status {r.get('status')} "
                    f"({r.get('message', 'no message')})")
            continue
        if f.get("cache_hit"):
            failures.append(f"{name}: first pass unexpectedly hit the cache")
        if not s.get("cache_hit"):
            failures.append(f"{name}: second pass missed the cache")
        d1, d2 = result_doc(first), result_doc(second)
        if d1 is None or d2 is None:
            failures.append(f"{name}: response is missing its result")
        elif d1 != d2:
            failures.append(f"{name}: second-pass result is not "
                            f"byte-identical to the first pass")

    recovery = responses.get("recover")
    if recovery is None:
        failures.append("recover: missing response")
    else:
        r = json.loads(recovery)
        if r.get("status") not in ("ok", "degraded"):
            failures.append(f"recover: status {r.get('status')} "
                            f"({r.get('message', 'no message')})")
        else:
            if not r.get("cache_hit"):
                failures.append("recover: base synthesis missed the cache")
            if r.get("rung") not in ("reroute", "reschedule", "resynthesize"):
                failures.append(f"recover: unexpected rung {r.get('rung')}")
            if r.get("completed", 0) <= 0:
                failures.append("recover: no completed operations kept")
            rec = r.get("recovery", {})
            if rec.get("recovered_makespan", 0) <= 0:
                failures.append("recover: no recovered schedule in response")
            if sorted(rec.get("completed_ops", []) +
                      rec.get("rescheduled_ops", [])) != \
                    sorted(set(rec.get("completed_ops", []) +
                               rec.get("rescheduled_ops", []))):
                failures.append("recover: op partition has duplicates")

    if stats is None:
        failures.append("stats response missing")
    else:
        cache = stats["cache"]
        if cache["stores"] != n:
            failures.append(f"expected {n} stores, got {cache['stores']}")
        # n replay hits plus the recovery's base-synthesis lookup.
        if cache["memory_hits"] != n + 1:
            failures.append(
                f"expected {n + 1} memory hits, got {cache['memory_hits']}")
        if cache["misses"] != n:
            failures.append(f"expected {n} misses, got {cache['misses']}")
        if cache["negative_stores"] != 0:
            failures.append(f"expected 0 negative stores, "
                            f"got {cache['negative_stores']}")

    if failures:
        print(f"serve_smoke: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"serve_smoke: ok -- {n} assays replayed twice, "
          f"{n} cache hits, byte-identical results, 1 fault recovery")
    return 0


if __name__ == "__main__":
    sys.exit(main())
