#!/usr/bin/env python3
"""Smoke and soak tests for `transtore_cli serve`.

Default (stdio) mode -- replay the six-assay batch twice through one
long-lived server process on stdin/stdout and assert

  * every first-pass request misses the cache and solves,
  * every second-pass request is a cache hit,
  * second-pass result documents are byte-identical to the first pass,
  * a `recover` request (auto fault at 50% execution) reuses the cached
    base result and answers ok or degraded with a spliced schedule,
  * the stats op reports exactly six stores and seven memory hits (the
    six replays plus the recovery's base lookup).

Socket mode (--socket) -- the same server behind its unix-socket listener,
under many concurrent connections:

  * warm pass: one connection solves the six assays (all misses),
  * soak pass: --connections concurrent connections each replay all six;
    every response must be an ok cache hit, byte-identical to the warm
    pass, and the measured requests/sec is recorded,
  * the stats op's atomic snapshot must account for exactly the traffic
    sent (6 stores/misses, connections*6 memory hits, zero sheds),
  * overload pass: a second server with --workers 1 --queue 2 takes a
    32-request burst of distinct keys; every request must be answered
    (status ok or a structured queue_full -- nothing dropped silently),
    at least one must be shed, and the server must stay alive through a
    final ping and exit 0.

With --out FILE the soak measurements are written in the BENCH json shape
so scripts/diff_bench.py can gate requests_per_sec against a committed
baseline.

Usage: serve_smoke.py [path/to/transtore_cli] [--socket]
                      [--connections N] [--out FILE]

Exit codes: 0 ok, 1 assertion failed, 2 could not run the server.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time


def result_doc(line):
    """Raw bytes of the "result" member (always the last member the server
    writes), for byte-level comparison between passes. None when the
    response carries no result."""
    marker = '"result":'
    i = line.find(marker)
    if i < 0:
        return None
    return line[i + len(marker):-1]


# ----------------------------------------------------------------- stdio


def stdio_smoke(cli):
    names = subprocess.run([cli, "bench-names"], capture_output=True,
                           text=True, check=True).stdout.split()
    if len(names) != 6:
        print(f"serve_smoke: expected 6 built-in assays, got {names}",
              file=sys.stderr)
        return 1

    # Heuristic engine keeps the smoke fast; the cache does not care which
    # engine produced the result.
    options = {"schedule_engine": "heuristic"}
    requests = []
    rid = 0
    for _ in range(2):
        for name in names:
            rid += 1
            requests.append({"id": rid, "op": "synth", "assay": name,
                             "options": options})
    # One mid-assay fault recovery on a multi-device design: the base
    # synthesis is already cached, so only the recovery ladder runs.
    recover_assay = "RA30" if "RA30" in names else names[0]
    requests.append({"id": "recover", "op": "recover", "assay": recover_assay,
                     "at": 0.5, "fault": "auto", "options": options})
    requests.append({"id": "stats", "op": "stats"})
    requests.append({"op": "shutdown"})
    stdin = "".join(json.dumps(r) + "\n" for r in requests)

    try:
        proc = subprocess.run([cli, "serve", "--workers", "2"], input=stdin,
                              capture_output=True, text=True, timeout=600)
    except (OSError, subprocess.TimeoutExpired) as e:
        print(f"serve_smoke: cannot run {cli} serve: {e}", file=sys.stderr)
        return 2
    if proc.returncode != 0:
        print(f"serve_smoke: serve exited {proc.returncode}\n{proc.stderr}",
              file=sys.stderr)
        return 2

    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    responses = {}
    stats = None
    for line in lines:
        r = json.loads(line)
        if r.get("op") == "stats":
            stats = r
        elif r.get("op") != "shutdown" and r.get("id") is not None:
            responses[r["id"]] = line

    failures = []
    n = len(names)
    for k, name in enumerate(names):
        first_id, second_id = k + 1, n + k + 1
        first = responses.get(first_id)
        second = responses.get(second_id)
        if first is None or second is None:
            failures.append(f"{name}: missing response")
            continue
        f, s = json.loads(first), json.loads(second)
        bad_status = [(which, r) for which, r in (("first", f), ("second", s))
                      if r.get("status") != "ok"]
        if bad_status:
            for which, r in bad_status:
                failures.append(
                    f"{name}: {which} pass status {r.get('status')} "
                    f"({r.get('message', 'no message')})")
            continue
        if f.get("cache_hit"):
            failures.append(f"{name}: first pass unexpectedly hit the cache")
        if not s.get("cache_hit"):
            failures.append(f"{name}: second pass missed the cache")
        d1, d2 = result_doc(first), result_doc(second)
        if d1 is None or d2 is None:
            failures.append(f"{name}: response is missing its result")
        elif d1 != d2:
            failures.append(f"{name}: second-pass result is not "
                            f"byte-identical to the first pass")

    recovery = responses.get("recover")
    if recovery is None:
        failures.append("recover: missing response")
    else:
        r = json.loads(recovery)
        if r.get("status") not in ("ok", "degraded"):
            failures.append(f"recover: status {r.get('status')} "
                            f"({r.get('message', 'no message')})")
        else:
            if not r.get("cache_hit"):
                failures.append("recover: base synthesis missed the cache")
            if r.get("rung") not in ("reroute", "reschedule", "resynthesize"):
                failures.append(f"recover: unexpected rung {r.get('rung')}")
            if r.get("completed", 0) <= 0:
                failures.append("recover: no completed operations kept")
            rec = r.get("recovery", {})
            if rec.get("recovered_makespan", 0) <= 0:
                failures.append("recover: no recovered schedule in response")
            if sorted(rec.get("completed_ops", []) +
                      rec.get("rescheduled_ops", [])) != \
                    sorted(set(rec.get("completed_ops", []) +
                               rec.get("rescheduled_ops", []))):
                failures.append("recover: op partition has duplicates")

    if stats is None:
        failures.append("stats response missing")
    else:
        cache = stats["cache"]
        if cache["stores"] != n:
            failures.append(f"expected {n} stores, got {cache['stores']}")
        # n replay hits plus the recovery's base-synthesis lookup.
        if cache["memory_hits"] != n + 1:
            failures.append(
                f"expected {n + 1} memory hits, got {cache['memory_hits']}")
        if cache["misses"] != n:
            failures.append(f"expected {n} misses, got {cache['misses']}")
        if cache["negative_stores"] != 0:
            failures.append(f"expected 0 negative stores, "
                            f"got {cache['negative_stores']}")

    if failures:
        print(f"serve_smoke: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"serve_smoke: ok -- {n} assays replayed twice, "
          f"{n} cache hits, byte-identical results, 1 fault recovery")
    return 0


# ---------------------------------------------------------------- socket


class Conn:
    """One line-delimited JSON client connection on a unix socket."""

    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.file = self.sock.makefile("rw")

    def send(self, request):
        self.file.write(json.dumps(request) + "\n")

    def flush(self):
        self.file.flush()

    def recv_line(self):
        return self.file.readline().rstrip("\n")

    def recv(self):
        return json.loads(self.recv_line())

    def close(self):
        self.file.close()
        self.sock.close()


def start_server(cli, sock_path, extra_flags, log):
    proc = subprocess.Popen([cli, "serve", "--socket", sock_path] +
                            extra_flags, stdout=subprocess.DEVNULL,
                            stderr=log)
    deadline = time.monotonic() + 30.0
    while not os.path.exists(sock_path):
        if proc.poll() is not None or time.monotonic() > deadline:
            raise RuntimeError(f"server did not come up on {sock_path}")
        time.sleep(0.02)
    return proc


def socket_smoke(cli, connections, out_path):
    names = subprocess.run([cli, "bench-names"], capture_output=True,
                           text=True, check=True).stdout.split()
    options = {"schedule_engine": "heuristic"}
    failures = []
    bench_records = []
    tmp = tempfile.mkdtemp(prefix="transtore_serve_smoke_")
    log = open(os.path.join(tmp, "serve.log"), "w")

    # ---- server 1: warm + soak ------------------------------------------
    sock1 = os.path.join(tmp, "soak.sock")
    server = start_server(cli, sock1, ["--workers", "2"], log)

    warm = Conn(sock1)
    warm_start = time.monotonic()
    for i, name in enumerate(names):
        warm.send({"id": i, "op": "synth", "assay": name,
                   "options": options})
    warm.flush()
    warm_docs = {}
    for _ in names:
        line = warm.recv_line()
        r = json.loads(line)
        name = r.get("assay")
        if r.get("status") != "ok":
            failures.append(f"warm {name}: status {r.get('status')}")
        elif r.get("cache_hit"):
            failures.append(f"warm {name}: unexpectedly hit the cache")
        else:
            warm_docs[name] = result_doc(line)
    warm_seconds = time.monotonic() - warm_start

    def replay(tag, errors):
        try:
            c = Conn(sock1)
            for i, name in enumerate(names):
                c.send({"id": f"{tag}-{i}", "op": "synth", "assay": name,
                        "options": options})
            c.flush()
            for _ in names:
                line = c.recv_line()
                r = json.loads(line)
                name = r.get("assay")
                if r.get("status") != "ok":
                    errors.append(f"{tag} {name}: status {r.get('status')}")
                elif not r.get("cache_hit"):
                    errors.append(f"{tag} {name}: missed the cache")
                elif result_doc(line) != warm_docs.get(name):
                    errors.append(f"{tag} {name}: result not byte-identical "
                                  f"to the warm pass")
            c.close()
        except OSError as e:
            errors.append(f"{tag}: connection error: {e}")

    soak_errors = []
    threads = [threading.Thread(target=replay, args=(f"c{k}", soak_errors))
               for k in range(connections)]
    soak_start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    soak_seconds = time.monotonic() - soak_start
    failures.extend(soak_errors)
    soak_requests = connections * len(names)
    soak_rps = soak_requests / soak_seconds if soak_seconds > 0 else 0.0

    # Atomic stats snapshot must account exactly for the traffic sent. The
    # writer threads record response metrics just after the bytes hit the
    # socket, so a client can observe its last response a hair before the
    # counters move -- poll until the synth latency count settles.
    n = len(names)
    deadline = time.monotonic() + 5.0
    while True:
        warm.send({"id": "stats", "op": "stats"})
        warm.flush()
        stats = warm.recv()
        synth_count = stats.get("serve", {}).get("latency", {}) \
            .get("synth", {}).get("count", 0)
        if synth_count >= n + connections * n or \
                time.monotonic() > deadline:
            break
        time.sleep(0.01)
    cache = stats.get("cache", {})
    serve = stats.get("serve", {})
    pool = stats.get("executor", {})
    checks = [
        (cache.get("stores"), n, "cache.stores"),
        (cache.get("misses"), n, "cache.misses"),
        (cache.get("memory_hits"), soak_requests, "cache.memory_hits"),
        (cache.get("entries"), n, "cache.entries"),
        (serve.get("shed"), 0, "serve.shed"),
        (serve.get("framing_errors"), 0, "serve.framing_errors"),
        (serve.get("connections_accepted"), connections + 1,
         "serve.connections_accepted"),
        (pool.get("rejected_queue_full"), 0,
         "executor.rejected_queue_full"),
        (pool.get("submitted"), n + soak_requests, "executor.submitted"),
    ]
    for got, want, label in checks:
        if got != want:
            failures.append(f"stats: {label} = {got}, expected {want}")
    if cache.get("lookups") != (cache.get("memory_hits", 0) +
                                cache.get("disk_hits", 0) +
                                cache.get("misses", 0)):
        failures.append(f"stats: lookup identity violated: {cache}")
    synth_latency = serve.get("latency", {}).get("synth", {})
    if synth_latency.get("count") != n + soak_requests:
        failures.append(f"stats: latency.synth.count = "
                        f"{synth_latency.get('count')}, expected "
                        f"{n + soak_requests}")
    if cache.get("bytes", 0) <= 0:
        failures.append("stats: cache.bytes not accounted")

    warm.send({"op": "shutdown"})
    warm.flush()
    if warm.recv().get("op") != "shutdown":
        failures.append("soak server: no shutdown ack")
    warm.close()
    if server.wait(timeout=60) != 0:
        failures.append(f"soak server exited {server.returncode}")

    # ---- server 2: overload ---------------------------------------------
    # One worker and a two-slot queue against a 32-request burst of
    # distinct cache keys: most submissions must be shed with a structured
    # queue_full, every request must be answered, the server must survive.
    sock2 = os.path.join(tmp, "overload.sock")
    server = start_server(
        cli, sock2, ["--workers", "1", "--queue", "2"], log)
    burst_conns, burst_reqs = 16, 2
    statuses = {}
    overload_errors = []

    def burst(k):
        try:
            c = Conn(sock2)
            for j in range(burst_reqs):
                rid = f"b{k}-{j}"
                c.send({"id": rid, "op": "synth", "assay": "PCR",
                        "options": dict(options,
                                        seed=1 + k * burst_reqs + j)})
            c.flush()
            for _ in range(burst_reqs):
                r = c.recv()
                statuses[r.get("id")] = r.get("status")
            c.close()
        except OSError as e:
            overload_errors.append(f"burst {k}: connection error: {e}")

    overload_start = time.monotonic()
    threads = [threading.Thread(target=burst, args=(k,))
               for k in range(burst_conns)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    overload_seconds = time.monotonic() - overload_start
    failures.extend(overload_errors)

    expected_ids = {f"b{k}-{j}" for k in range(burst_conns)
                    for j in range(burst_reqs)}
    missing = expected_ids - statuses.keys()
    if missing:
        failures.append(f"overload: {len(missing)} request(s) never "
                        f"answered: {sorted(missing)[:4]}...")
    bad = {i: s for i, s in statuses.items()
           if s not in ("ok", "queue_full")}
    if bad:
        failures.append(f"overload: unexpected statuses {bad}")
    shed = sum(1 for s in statuses.values() if s == "queue_full")
    if shed == 0:
        failures.append("overload: bounded queue never shed a request")

    # The server must still be fully alive after the burst.
    c = Conn(sock2)
    c.send({"id": "alive", "op": "ping"})
    c.flush()
    if c.recv().get("status") != "ok":
        failures.append("overload: ping after the burst failed")
    c.send({"id": "stats", "op": "stats"})
    c.flush()
    stats = c.recv()
    if stats.get("executor", {}).get("rejected_queue_full") != shed:
        failures.append(
            f"overload: executor.rejected_queue_full = "
            f"{stats.get('executor', {}).get('rejected_queue_full')}, "
            f"expected {shed}")
    c.send({"op": "shutdown"})
    c.flush()
    c.recv()
    c.close()
    if server.wait(timeout=60) != 0:
        failures.append(f"overload server exited {server.returncode}")
    log.close()

    bench_records = [
        {"assay": "six_assays", "config": "warm_cold_solve",
         "status": "throughput", "requests": n, "seconds": warm_seconds,
         "requests_per_sec": n / warm_seconds, "connections": 1},
        {"assay": "six_assays", "config": f"soak_hits_c{connections}",
         "status": "throughput", "requests": soak_requests,
         "seconds": soak_seconds, "requests_per_sec": soak_rps,
         "connections": connections},
        {"assay": "PCR", "config": "overload_w1_q2",
         "status": "throughput",
         "requests": burst_conns * burst_reqs,
         "seconds": overload_seconds, "queue_full": shed,
         "connections": burst_conns},
    ]
    if out_path:
        with open(out_path, "w") as f:
            json.dump({"tool": "serve_smoke", "results": bench_records}, f,
                      indent=1)
        print(f"serve_smoke: wrote {out_path}")

    if failures:
        print(f"serve_smoke: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"serve_smoke: ok -- socket soak: {connections} connections x "
          f"{n} assays all byte-identical hits at {soak_rps:.0f} req/s; "
          f"overload: {shed}/{burst_conns * burst_reqs} shed with "
          f"queue_full, none dropped")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("cli", nargs="?", default="./transtore_cli")
    ap.add_argument("--socket", action="store_true",
                    help="run the unix-socket soak instead of stdio mode")
    ap.add_argument("--connections", type=int, default=16,
                    help="concurrent soak connections (default 16)")
    ap.add_argument("--out", default="",
                    help="write soak measurements as BENCH json")
    args = ap.parse_args()
    try:
        if args.socket:
            return socket_smoke(args.cli, args.connections, args.out)
        return stdio_smoke(args.cli)
    except (OSError, RuntimeError, subprocess.SubprocessError) as e:
        print(f"serve_smoke: cannot run {args.cli}: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
