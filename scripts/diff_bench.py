#!/usr/bin/env python3
"""Diff a fresh BENCH_*.json run against a committed baseline and fail on
regressions, so CI gates on the performance trajectory instead of only
uploading artifacts.

    diff_bench.py NEW BASELINE [--max-iter-ratio R] [--max-time-ratio R]

Records are matched by (assay, config). Only baseline records with status
"optimal" are compared quantitatively: solver iterations and node counts
are deterministic for a given binary, so they may not exceed the baseline
by more than --max-iter-ratio; wall time gets the much looser
--max-time-ratio (CI machines are noisy) with an absolute floor so
sub-100ms solves never trip it. Time-limited baseline records only require
that the (assay, config) pair still runs and still produces an incumbent.
Throughput records (any baseline record carrying "requests_per_sec", as
written by serve_smoke.py --out) must not fall below the baseline rate by
more than the --max-time-ratio factor. Objective-quality records (any
baseline record carrying "objective_gate", as written by bench_sched's
scheduling-frontier harness) gate on solution quality instead of solver
work: the new objective may not exceed the baseline objective by more than
--max-objective-ratio (the engines are deterministic in their seed, so the
small tolerance only absorbs intentional engine retunes pending a baseline
refresh), while wall time stays collapse-only like every other noisy-CI
quantity. Node-throughput records (baseline
records carrying "nodes_per_sec", as written by bench_milp's
threads1/threads4/threads8 and portfolio configs) are gated the same
collapse-only way: CI machines have arbitrary core counts, so the scaling
RATIO between thread configs is not gated here, only that per-config
throughput does not collapse.

Exit codes: 0 ok, 1 regression(s), 2 usage/IO error, 3 baseline file
missing (a distinct code so CI can tell "needs a baseline refresh" apart
from a real regression -- run the refresh-baselines workflow dispatch).
"""

import argparse
import json
import sys


def load(path, role="new"):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        if role == "baseline":
            print(f"diff_bench: baseline missing: {path} -- run the "
                  f"refresh-baselines workflow dispatch (or the harness "
                  f"with --smoke --out {path}) and commit the result",
                  file=sys.stderr)
            sys.exit(3)
        print(f"diff_bench: {role} run file missing: {path}",
              file=sys.stderr)
        sys.exit(2)
    except (OSError, ValueError) as e:
        print(f"diff_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {(r["assay"], r["config"]): r for r in doc.get("results", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("new_path")
    ap.add_argument("baseline_path")
    ap.add_argument("--max-iter-ratio", type=float, default=1.25,
                    help="allowed growth of iterations/nodes on "
                         "proven-optimal records (default 1.25)")
    ap.add_argument("--max-time-ratio", type=float, default=4.0,
                    help="allowed wall-time growth on proven-optimal "
                         "records (default 4.0)")
    ap.add_argument("--min-time-floor", type=float, default=0.5,
                    help="seconds below which time is never compared "
                         "(default 0.5)")
    ap.add_argument("--max-objective-ratio", type=float, default=1.05,
                    help="allowed objective growth on objective_gate "
                         "records (default 1.05)")
    args = ap.parse_args()

    new = load(args.new_path, "new")
    base = load(args.baseline_path, "baseline")
    failures = []

    for key, b in sorted(base.items()):
        assay, config = key
        n = new.get(key)
        if n is None:
            failures.append(f"{assay}/{config}: record missing from new run")
            continue
        if b.get("objective_gate", 0.0) > 0.0:
            # Scheduling-frontier record: solution quality must not regress
            # (deterministic engines -- the ratio only absorbs intentional
            # retunes), wall time is collapse-only.
            bo, no = b.get("objective", 0.0), n.get("objective", 0.0)
            if bo > 0.0 and no > args.max_objective_ratio * bo:
                failures.append(
                    f"{assay}/{config}: objective regressed "
                    f"{bo:.3f} -> {no:.3f} "
                    f"(> {args.max_objective_ratio:.2f}x)")
            bt, nt = b.get("seconds", 0.0), n.get("seconds", 0.0)
            if bt >= args.min_time_floor and nt > args.max_time_ratio * bt:
                failures.append(
                    f"{assay}/{config}: time regressed "
                    f"{bt:.3f}s -> {nt:.3f}s "
                    f"(> {args.max_time_ratio:.1f}x)")
            continue
        if b.get("requests_per_sec", 0.0) > 0.0:
            # Serving-throughput baseline: the rate may wobble with CI
            # noise, but must not collapse.
            br, nr = b["requests_per_sec"], n.get("requests_per_sec", 0.0)
            if nr < br / args.max_time_ratio:
                failures.append(
                    f"{assay}/{config}: throughput regressed "
                    f"{br:.1f} -> {nr:.1f} req/s "
                    f"(> {args.max_time_ratio:.1f}x slower)")
            continue
        if b.get("nodes_per_sec", 0.0) > 0.0:
            # Node-throughput gate for the parallel-search configs: the same
            # collapse-only rule as requests_per_sec (CI core counts vary,
            # so inter-config scaling ratios are not gated), plus the
            # status/objective agreement checks. Node/iteration counts are
            # NOT gated here -- the portfolio's split of work between racers
            # is timing-dependent.
            br, nr = b["nodes_per_sec"], n.get("nodes_per_sec", 0.0)
            if nr < br / args.max_time_ratio:
                failures.append(
                    f"{assay}/{config}: node throughput regressed "
                    f"{br:.1f} -> {nr:.1f} nodes/s "
                    f"(> {args.max_time_ratio:.1f}x slower)")
            if b.get("status") == "optimal":
                if n.get("status") != "optimal":
                    failures.append(
                        f"{assay}/{config}: no longer proven optimal "
                        f"(status {n.get('status')})")
                elif abs(n["objective"] - b["objective"]) > 1e-6 * max(
                        1.0, abs(b["objective"])):
                    failures.append(
                        f"{assay}/{config}: optimal objective changed "
                        f"{b['objective']} -> {n['objective']}")
            elif n.get("status") in ("infeasible", "unbounded",
                                     "no_solution"):
                failures.append(
                    f"{assay}/{config}: status degraded to "
                    f"{n.get('status')} (baseline {b.get('status')})")
            continue
        if b.get("status") != "optimal":
            # Time-limited baseline: just require an incumbent-bearing run.
            if n.get("status") in ("infeasible", "unbounded", "no_solution"):
                failures.append(
                    f"{assay}/{config}: status degraded to {n.get('status')}"
                    f" (baseline {b.get('status')})")
            continue
        if n.get("status") != "optimal":
            failures.append(
                f"{assay}/{config}: no longer proven optimal "
                f"(status {n.get('status')})")
            continue
        if abs(n["objective"] - b["objective"]) > 1e-6 * max(
                1.0, abs(b["objective"])):
            failures.append(
                f"{assay}/{config}: optimal objective changed "
                f"{b['objective']} -> {n['objective']}")
        for field in ("simplex_iterations", "nodes"):
            if b.get(field, 0) > 0 and n.get(field, 0) > args.max_iter_ratio * b[field]:
                failures.append(
                    f"{assay}/{config}: {field} regressed "
                    f"{b[field]} -> {n[field]} "
                    f"(> {args.max_iter_ratio:.2f}x)")
        bt, nt = b.get("seconds", 0.0), n.get("seconds", 0.0)
        if bt >= args.min_time_floor and nt > args.max_time_ratio * bt:
            failures.append(
                f"{assay}/{config}: time regressed {bt:.3f}s -> {nt:.3f}s "
                f"(> {args.max_time_ratio:.1f}x)")

    for key in sorted(new.keys() - base.keys()):
        print(f"diff_bench: note: new record {key[0]}/{key[1]} "
              f"not in baseline (ok)")

    if failures:
        print(f"diff_bench: {len(failures)} regression(s) vs "
              f"{args.baseline_path}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"diff_bench: {len(base)} baseline records ok "
          f"({args.new_path} vs {args.baseline_path})")


if __name__ == "__main__":
    main()
