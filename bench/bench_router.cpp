// Micro-benchmarks of the architecture engines (google-benchmark): router
// scaling with grid size, placement annealing, and the end-to-end flow on
// the paper's assays.
#include <benchmark/benchmark.h>

#include "arch/placement.h"
#include "arch/router.h"
#include "arch/synthesis.h"
#include "assay/benchmarks.h"
#include "core/flow.h"
#include "sched/list_scheduler.h"

namespace {

using namespace transtore;

sched::schedule make_schedule(const char* name, int devices) {
  sched::list_scheduler_options o;
  o.device_count = devices;
  o.restarts = 4;
  return sched::schedule_with_list(assay::make_benchmark(name), o);
}

void bm_route_grid(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  const sched::schedule s = make_schedule("RA30", 2);
  const arch::routing_workload w = arch::derive_workload(s);
  const arch::connection_grid g(grid, grid);
  const auto nodes = arch::place_devices(g, w, arch::placement_options{});
  for (auto _ : state) {
    const arch::chip c = arch::route_workload(g, w, nodes, arch::router_options{});
    benchmark::DoNotOptimize(c.used_edge_count());
  }
  state.counters["grid"] = grid;
}
BENCHMARK(bm_route_grid)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_placement(benchmark::State& state) {
  const sched::schedule s = make_schedule("RA30", 3);
  const arch::routing_workload w = arch::derive_workload(s);
  const arch::connection_grid g(5, 5);
  for (auto _ : state) {
    const auto nodes = arch::place_devices(g, w, arch::placement_options{});
    benchmark::DoNotOptimize(nodes.size());
  }
}
BENCHMARK(bm_placement)->Unit(benchmark::kMillisecond);

void bm_full_flow(benchmark::State& state) {
  const char* names[] = {"PCR", "IVD", "RA30"};
  const int devices[] = {1, 2, 2};
  const int idx = static_cast<int>(state.range(0));
  const auto graph = assay::make_benchmark(names[idx]);
  core::flow_options o;
  o.device_count = devices[idx];
  o.schedule_engine = sched::schedule_engine::heuristic;
  for (auto _ : state) {
    const core::flow_result r = core::run_flow(graph, o);
    benchmark::DoNotOptimize(r.scheduling.best.makespan());
  }
  state.SetLabel(names[idx]);
}
BENCHMARK(bm_full_flow)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void bm_list_scheduler(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto graph = assay::make_random_assay(n, 42);
  sched::list_scheduler_options o;
  o.device_count = 3;
  o.restarts = 1;
  for (auto _ : state) {
    const sched::schedule s = sched::schedule_with_list(graph, o);
    benchmark::DoNotOptimize(s.makespan());
  }
  state.counters["ops"] = n;
}
BENCHMARK(bm_list_scheduler)->Arg(30)->Arg(70)->Arg(100)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
