// Micro-benchmarks of the architecture engines: router scaling with grid
// size, placement annealing, the end-to-end staged pipeline on the paper's
// assays, and list-scheduler scaling. Self-timed (no external benchmark
// library) so it always builds, and emits BENCH_router.json through the
// shared bench_common JSON trail so perf trajectories are tracked across
// PRs alongside BENCH_milp.json / BENCH_table2.json.
//
//   ./bench_router [--smoke]    (--smoke: single repetition per case)
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "arch/placement.h"
#include "arch/router.h"
#include "arch/synthesis.h"
#include "assay/benchmarks.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "sched/list_scheduler.h"

namespace {

using namespace transtore;

sched::schedule make_schedule(const char* name, int devices) {
  sched::list_scheduler_options o;
  o.device_count = devices;
  o.restarts = 4;
  return sched::schedule_with_list(assay::make_benchmark(name), o);
}

/// Run `body` repeatedly until ~0.2s elapsed (or once under --smoke);
/// returns mean seconds per repetition.
double time_case(bool smoke, const std::function<void()>& body) {
  body(); // warm-up, untimed
  const int max_reps = smoke ? 1 : 200;
  stopwatch watch;
  int reps = 0;
  do {
    body();
    ++reps;
  } while (reps < max_reps && watch.elapsed_seconds() < 0.2);
  return watch.elapsed_seconds() / reps;
}

} // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::vector<bench::bench_record> records;

  auto add = [&](const std::string& assay, const std::string& config,
                 double seconds, double objective) {
    bench::bench_record r;
    r.assay = assay;
    r.config = config;
    r.seconds = seconds;
    r.objective = objective;
    r.status = "ok";
    records.push_back(r);
    std::printf("%-8s %-16s %10.3f ms  (objective %.0f)\n", assay.c_str(),
                config.c_str(), seconds * 1e3, objective);
  };

  // --- router scaling with grid size (RA30 workload, fixed placement).
  {
    const sched::schedule s = make_schedule("RA30", 2);
    const arch::routing_workload w = arch::derive_workload(s);
    for (const int grid : {4, 6, 8}) {
      const arch::connection_grid g(grid, grid);
      const auto nodes = arch::place_devices(g, w, arch::placement_options{});
      long edges = 0;
      const double seconds = time_case(smoke, [&] {
        const arch::chip c =
            arch::route_workload(g, w, nodes, arch::router_options{});
        edges = c.used_edge_count();
      });
      add("RA30", "route_grid" + std::to_string(grid), seconds,
          static_cast<double>(edges));
    }
  }

  // --- placement annealing (RA30, 3 devices, 5x5).
  {
    const sched::schedule s = make_schedule("RA30", 3);
    const arch::routing_workload w = arch::derive_workload(s);
    const arch::connection_grid g(5, 5);
    std::size_t placed = 0;
    const double seconds = time_case(smoke, [&] {
      placed = arch::place_devices(g, w, arch::placement_options{}).size();
    });
    add("RA30", "placement_5x5", seconds, static_cast<double>(placed));
  }

  // --- end-to-end staged pipeline (heuristic engines).
  {
    const char* names[] = {"PCR", "IVD", "RA30"};
    const int devices[] = {1, 2, 2};
    for (int i = 0; i < 3; ++i) {
      const auto graph = assay::make_benchmark(names[i]);
      api::pipeline_options o;
      o.device_count = devices[i];
      o.schedule_engine = sched::schedule_engine::heuristic;
      o.grid_growth = 2;
      const api::pipeline p(graph, o);
      int makespan = 0;
      const double seconds = time_case(smoke, [&] {
        auto r = p.run();
        if (r.has_value()) makespan = r->scheduling.best.makespan();
      });
      add(names[i], "full_flow", seconds, static_cast<double>(makespan));
    }
  }

  // --- list-scheduler scaling with operation count.
  for (const int n : {30, 70, 100}) {
    const auto graph = assay::make_random_assay(n, 42);
    sched::list_scheduler_options o;
    o.device_count = 3;
    o.restarts = 1;
    int makespan = 0;
    const double seconds = time_case(smoke, [&] {
      makespan = sched::schedule_with_list(graph, o).makespan();
    });
    add("RAND" + std::to_string(n), "list_scheduler", seconds,
        static_cast<double>(makespan));
  }

  if (!bench::write_bench_json("BENCH_router.json", "bench_router", records))
    return 1;
  return 0;
}
