// Reproduces Table 2: scheduling, architectural synthesis, and physical
// design results for the six benchmark assays.
//
// Columns mirror the paper: |O|, tE (assay execution time), ts (scheduling
// runtime), G (grid), ne (channel segments), nv (valves), tr (architecture
// runtime), dr/de/dp (layout dimensions after synthesis / device insertion
// / compression), tp (physical design runtime). Absolute runtimes differ
// from the paper's 30-minute Gurobi budget by design; the shape to compare
// is the resource and dimension columns (see EXPERIMENTS.md).
#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "sched/scheduler.h"

namespace {

const char* engine_label(transtore::sched::schedule_engine e) {
  using transtore::sched::schedule_engine;
  switch (e) {
    case schedule_engine::sa: return "sched_sa";
    case schedule_engine::grasp: return "sched_grasp";
    case schedule_engine::decomp: return "sched_decomp";
    default: return "sched_other";
  }
}

} // namespace

int main(int argc, char** argv) {
  using namespace transtore;
  const bench::harness_args args =
      bench::parse_harness_args(argc, argv, "BENCH_table2.json");
  std::printf("== Table 2: Results of Scheduling and Synthesis ==\n\n");

  text_table table;
  table.add_row({"Assay", "|O|", "tE", "ts(s)", "G", "ne", "nv", "tr(s)",
                 "dr", "de", "dp", "tp(s)"});

  std::vector<bench::bench_record> records;
  for (const auto& config : bench::harness_configs(args.smoke)) {
    const auto graph = assay::make_benchmark(config.name);
    int grid_used = config.grid;
    const core::flow_result r = bench::run_config(
        config, bench::make_options(config, true, args.ilp_seconds),
        grid_used);
    records.push_back(bench::flow_record(config, grid_used, r));

    // Scheduling-engine frontier rows: each metaheuristic engine's pure
    // scheduling result on the same assay/device budget (the full
    // quality/time frontier with baselines lives in bench_sched).
    for (const sched::schedule_engine engine :
         {sched::schedule_engine::sa, sched::schedule_engine::grasp,
          sched::schedule_engine::decomp}) {
      sched::scheduler_options so;
      so.device_count = config.devices;
      so.engine = engine;
      const sched::scheduling_result sr = sched::make_schedule(graph, so);
      bench::bench_record rec;
      rec.assay = config.name;
      rec.config = engine_label(engine);
      rec.seconds = sr.seconds;
      rec.objective = sr.best.objective(so.alpha, so.beta);
      rec.status = "ok";
      rec.extras = {
          {"makespan", static_cast<double>(sr.best.makespan())},
          {"stores", static_cast<double>(sr.best.store_count())},
          {"cache_time", static_cast<double>(sr.best.total_cache_time())}};
      records.push_back(std::move(rec));
    }

    const auto& layout = r.layout;
    table.add_row({
        config.name,
        std::to_string(graph.operation_count()),
        std::to_string(r.scheduling.best.makespan()),
        format_double(r.scheduling.seconds, 2),
        format_dims(grid_used, grid_used),
        std::to_string(r.architecture.result.used_edge_count()),
        std::to_string(r.architecture.result.valve_count()),
        format_double(r.architecture.seconds, 2),
        format_dims(layout.after_synthesis.width,
                    layout.after_synthesis.height),
        format_dims(layout.after_devices.width, layout.after_devices.height),
        format_dims(layout.after_compression.width,
                    layout.after_compression.height),
        format_double(layout.seconds, 2),
    });
  }
  std::printf("%s\n", table.render().c_str());
  if (!bench::write_bench_json(args.out, "bench_table2", records))
    return 1;
  std::printf("Paper (3.2 GHz CPU, Gurobi, 30 min solver budget):\n"
              "  RA100 tE=1820 G=5x5 ne=32 nv=58 dr=20x20 de=26x26 dp=16x16\n"
              "  RA70  tE=1180 G=4x4 ne=20 nv=38 dr=15x15 de=21x21 dp=11x12\n"
              "  CPA   tE=1070 G=4x4 ne=20 nv=40 dr=15x15 de=21x21 dp=11x13\n"
              "  RA30  tE=670  G=4x4 ne=8  nv=16 dr=15x10 de=21x16 dp=13x9\n"
              "  IVD   tE=280  G=4x4 ne=5  nv=10 dr=10x5  de=16x9  dp=12x5\n"
              "  PCR   tE=290  G=4x4 ne=5  nv=8  dr=5x10  de=7x14  dp=4x8\n");
  return 0;
}
