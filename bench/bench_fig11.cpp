// Reproduces Fig. 11: execution snapshots of the synthesized RA30 chip --
// one moment while a sample is being stored into a channel segment, one
// while a transport runs past a held sample.
#include <cstdio>

#include "bench_common.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace transtore;
  const bench::harness_args args =
      bench::parse_harness_args(argc, argv, "BENCH_fig11.json");
  std::printf("== Fig. 11: Execution snapshots of RA30 ==\n\n");

  const bench::assay_config config{"RA30", 2, 4};
  const auto graph = assay::make_benchmark(config.name);
  int grid_used = config.grid;
  const core::flow_result r = bench::run_config(
      config, bench::make_options(config, true, args.ilp_seconds), grid_used);
  const sched::schedule& s = r.scheduling.best;

  // Snapshot 1: during a store leg (a path is writing into a segment).
  int store_time = -1;
  for (const auto& tr : s.transfers)
    if (tr.kind == sched::transfer_kind::cached) {
      store_time = s.legs[static_cast<std::size_t>(tr.store_leg)].window.begin;
      break;
    }
  // Snapshot 2: while a sample is held and other transports are active --
  // pick the hold interval with the most concurrent activity.
  int hold_time = -1;
  int best_activity = -1;
  for (const auto& tr : s.transfers) {
    if (tr.kind != sched::transfer_kind::cached || tr.cache_hold.empty())
      continue;
    for (int t = tr.cache_hold.begin; t < tr.cache_hold.end;
         t += s.transport_time) {
      int activity = 0;
      for (const auto& leg : s.legs)
        if (leg.window.contains(t)) ++activity;
      if (activity > best_activity) {
        best_activity = activity;
        hold_time = t;
      }
    }
  }

  for (const int t : {store_time, hold_time}) {
    if (t < 0) continue;
    std::printf("%s\n",
                sim::snapshot(graph, s, r.architecture.workload,
                              r.architecture.result, t)
                    .c_str());
  }
  std::printf("Paper's Fig. 11 shows the same two situations at t=35s and\n"
              "t=45s: a path storing a sample into segment C-D, then a\n"
              "transport d1->D->A->d2 while C-D is caching (blue = active).\n");

  bench::bench_record rec = bench::flow_record(config, grid_used, r);
  rec.extras = {{"store_snapshot_t", static_cast<double>(store_time)},
                {"hold_snapshot_t", static_cast<double>(hold_time)}};
  if (!bench::write_bench_json(args.out, "bench_fig11", {rec}))
    return 1;
  std::printf("wrote %s\n", args.out.c_str());
  return 0;
}
