// Reproduces Fig. 9: execution time, number of edges, and number of valves
// with and without storage optimization in scheduling, for RA30, IVD and
// PCR. The paper's claim: storage optimization yields comparable execution
// time while cutting the resources (edges/valves) of the architecture --
// most visibly on RA30.
#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "common/text_table.h"

int main(int argc, char** argv) {
  using namespace transtore;
  const bench::harness_args args =
      bench::parse_harness_args(argc, argv, "BENCH_fig9.json");
  std::printf(
      "== Fig. 9: Optimize execution time only vs time and storage ==\n\n");

  text_table table;
  table.add_row({"Assay", "mode", "tE", "stores", "peak", "ne", "nv"});

  std::vector<bench::bench_record> records;
  for (const auto& config : bench::table2_configs()) {
    if (config.name != "RA30" && config.name != "IVD" && config.name != "PCR")
      continue;
    for (const bool storage_aware : {false, true}) {
      int grid_used = config.grid;
      const core::flow_result r = bench::run_config(
          config,
          bench::make_options(config, storage_aware, args.ilp_seconds),
          grid_used);
      table.add_row({
          config.name,
          storage_aware ? "time+storage" : "time only",
          std::to_string(r.scheduling.best.makespan()),
          std::to_string(r.scheduling.best.store_count()),
          std::to_string(r.scheduling.best.peak_concurrent_caches()),
          std::to_string(r.architecture.result.used_edge_count()),
          std::to_string(r.architecture.result.valve_count()),
      });
      bench::bench_record rec = bench::flow_record(config, grid_used, r);
      rec.config = storage_aware ? "time_storage" : "time_only";
      rec.extras = {
          {"stores", static_cast<double>(r.scheduling.best.store_count())},
          {"peak_caches",
           static_cast<double>(r.scheduling.best.peak_concurrent_caches())},
          {"edges_used",
           static_cast<double>(r.architecture.result.used_edge_count())},
          {"valves", static_cast<double>(r.architecture.result.valve_count())}};
      records.push_back(std::move(rec));
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper's claim: with storage optimization, execution time stays\n"
      "comparable (RA30 may be slightly larger) while edges/valves drop.\n");
  if (!bench::write_bench_json(args.out, "bench_fig9", records))
    return 1;
  std::printf("wrote %s\n", args.out.c_str());
  return 0;
}
