// Reproduces the paper's motivating examples:
//  * Fig. 2 -- two schedules of PCR on one mixer: the order of operations
//    changes the number of store operations (4 vs 3), the storage capacity
//    requirement (3 vs 2), and the execution time (290s vs 270s).
//  * Fig. 4 -- a five-operation assay on two devices where reordering cuts
//    the storage requirements from two to one at equal makespan.
#include <cstdio>

#include "assay/benchmarks.h"
#include "common/text_table.h"
#include "sched/timing.h"

int main() {
  using namespace transtore;
  using namespace transtore::sched;

  std::printf("== Fig. 2: PCR on one mixer, two schedules ==\n\n");
  const auto pcr = assay::make_pcr();
  auto run_order = [&](const std::vector<int>& order) {
    binding b;
    b.device_of.assign(7, 0);
    b.device_order = {order};
    return refine_timing(pcr, b, 1, timing_options{});
  };
  const schedule fig2b = run_order({0, 1, 2, 3, 5, 4, 6});
  const schedule fig2c = run_order({0, 1, 4, 2, 3, 5, 6});

  text_table t2;
  t2.add_row({"schedule", "order", "tE", "stores", "fetches", "capacity"});
  t2.add_row({"Fig. 2(b)", "o1 o2 o3 o4 o6 o5 o7",
              std::to_string(fig2b.makespan()),
              std::to_string(fig2b.store_count()),
              std::to_string(fig2b.store_count()),
              std::to_string(fig2b.peak_concurrent_caches())});
  t2.add_row({"Fig. 2(c)", "o1 o2 o5 o3 o4 o6 o7",
              std::to_string(fig2c.makespan()),
              std::to_string(fig2c.store_count()),
              std::to_string(fig2c.store_count()),
              std::to_string(fig2c.peak_concurrent_caches())});
  std::printf("%s\n", t2.render().c_str());
  std::printf("Paper: (b) 4 stores, capacity 3; (c) 3 stores, capacity 2,\n"
              "with shorter execution. Reproduced exactly: %s\n\n",
              (fig2b.store_count() == 4 && fig2b.peak_concurrent_caches() == 3 &&
               fig2c.store_count() == 3 && fig2c.peak_concurrent_caches() == 2 &&
               fig2c.makespan() < fig2b.makespan())
                  ? "YES"
                  : "NO");

  std::printf("== Fig. 4: storage reduction by reordering ==\n\n");
  const auto fig4 = assay::make_fig4_example();
  auto run_fig4 = [&](const std::vector<int>& d1_order,
                      const std::vector<int>& d2_order) {
    binding b;
    b.device_of.assign(5, 0);
    for (int op : d2_order) b.device_of[static_cast<std::size_t>(op)] = 1;
    b.device_order = {d1_order, d2_order};
    return refine_timing(fig4, b, 2, timing_options{});
  };
  // Fig. 4(b): d1 runs o1,o4,o5; d2 runs o2,o3 (o2 before o3).
  const schedule fig4b = run_fig4({0, 3, 4}, {1, 2});
  // Fig. 4(c): o3 before o2 -- o2's result feeds o4/o5 sooner.
  const schedule fig4c = run_fig4({0, 3, 4}, {2, 1});

  text_table t4;
  t4.add_row({"schedule", "d2 order", "tE", "stores", "capacity",
              "cache time"});
  t4.add_row({"order A", "o2 then o3", std::to_string(fig4b.makespan()),
              std::to_string(fig4b.store_count()),
              std::to_string(fig4b.peak_concurrent_caches()),
              std::to_string(fig4b.total_cache_time())});
  t4.add_row({"order B", "o3 then o2", std::to_string(fig4c.makespan()),
              std::to_string(fig4c.store_count()),
              std::to_string(fig4c.peak_concurrent_caches()),
              std::to_string(fig4c.total_cache_time())});
  std::printf("%s\n", t4.render().c_str());
  const int lo = std::min(fig4b.peak_concurrent_caches(),
                          fig4c.peak_concurrent_caches());
  const int hi = std::max(fig4b.peak_concurrent_caches(),
                          fig4c.peak_concurrent_caches());
  std::printf(
      "Paper's claim: the d2 order alone changes the storage requirement\n"
      "(2 vs 1 in Fig. 4). Here: %d vs %d -- %s. (Our timing model lets the\n"
      "consumer take o2's result as a direct transfer in order A, so the\n"
      "winning order is flipped relative to the paper's illustration; the\n"
      "claim itself -- ordering determines storage -- holds.)\n",
      hi, lo, hi != lo ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
