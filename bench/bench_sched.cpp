// Scheduling-engine frontier benchmark: every constructive/metaheuristic
// engine on every Table 2 assay, reporting objective (6) quality against
// wall time so the quality/time frontier between "one greedy list pass"
// and "the full MILP" is a committed, CI-gated artifact.
//
//   bench_sched [--seconds S] [--out FILE] [--smoke]
//
// Configurations per assay:
//   list      perturbed-restart list scheduler alone (the floor)
//   list_sa   list + annealing post-pass -- the pre-metaheuristic baseline
//             every new engine must beat to justify its existence
//   sa        restart/reheating simulated annealing, storage-aware moves
//   grasp     randomized-greedy (RCL) construction + SA improvement
//   decomp    series-parallel decomposition + annealing post-pass
//
// Every annealing config spends the same SA iteration budget (6000), so
// smoke-mode results are deterministic in the seed and comparable as equal
// search effort; --seconds additionally applies one equal wall-clock budget
// per engine in full mode (0 = iteration-bound only, the smoke setting).
// The vs_list_sa extra is each metaheuristic's objective relative to the
// list_sa baseline (under 1.0 = the engine beats the baseline); the
// objective_gate extra marks every record for diff_bench.py's
// objective-regression rule.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "sched/list_scheduler.h"
#include "sched/local_search.h"
#include "sched/metaheuristics.h"

namespace {

using namespace transtore;

constexpr double kAlpha = 1.0;
constexpr double kBeta = 0.15;
constexpr int kAnnealIterations = 6000;

struct engine_run {
  std::string config;
  sched::schedule result;
  double seconds = 0.0;
};

} // namespace

int main(int argc, char** argv) {
  bench::harness_args args =
      bench::parse_harness_args(argc, argv, "BENCH_sched.json");
  // Smoke mode is iteration-bound only (deterministic in the seed, the
  // property the CI gate relies on); full mode adds an equal wall budget.
  const double budget = args.smoke ? 0.0 : args.ilp_seconds;

  std::vector<bench::bench_record> records;
  std::printf("%-7s %-8s %10s %10s %8s %12s %10s %s\n", "assay", "config",
              "makespan", "cache", "stores", "objective", "vs_list_sa",
              "time");

  for (const bench::assay_config& c : bench::harness_configs(args.smoke)) {
    const assay::sequencing_graph graph = assay::make_benchmark(c.name);
    std::vector<engine_run> runs;

    { // list: perturbed greedy restarts, no annealing.
      sched::list_scheduler_options lo;
      lo.device_count = c.devices;
      lo.alpha = kAlpha;
      lo.beta = kBeta;
      lo.seed = 1;
      lo.time_budget_seconds = budget;
      stopwatch watch;
      sched::schedule s = sched::schedule_with_list(graph, lo);
      runs.push_back({"list", std::move(s), watch.elapsed_seconds()});
    }
    { // list_sa: the pre-metaheuristic pipeline (list + annealing pass).
      sched::local_search_options lso;
      lso.alpha = kAlpha;
      lso.beta = kBeta;
      lso.iterations = kAnnealIterations;
      lso.seed = 1;
      lso.time_budget_seconds = budget;
      stopwatch watch;
      sched::schedule s =
          sched::improve_schedule(graph, runs[0].result, {}, lso);
      runs.push_back({"list_sa", std::move(s),
                      runs[0].seconds + watch.elapsed_seconds()});
    }
    const double baseline_objective =
        runs[1].result.objective(kAlpha, kBeta);

    { // sa: reheated restarts + storage-aware moves, same total budget.
      sched::sa_scheduler_options so;
      so.device_count = c.devices;
      so.alpha = kAlpha;
      so.beta = kBeta;
      so.iterations = kAnnealIterations;
      so.seed = 1;
      so.time_budget_seconds = budget;
      stopwatch watch;
      sched::schedule s = sched::schedule_with_sa(graph, so);
      runs.push_back({"sa", std::move(s), watch.elapsed_seconds()});
    }
    { // grasp: 4 RCL constructions x 1500 SA iterations = equal budget.
      sched::grasp_scheduler_options go;
      go.device_count = c.devices;
      go.alpha = kAlpha;
      go.beta = kBeta;
      go.rounds = 4;
      go.improvement_iterations = kAnnealIterations / 4;
      go.seed = 1;
      go.time_budget_seconds = budget;
      stopwatch watch;
      sched::schedule s = sched::schedule_with_grasp(graph, go);
      runs.push_back({"grasp", std::move(s), watch.elapsed_seconds()});
    }
    { // decomp: SP decomposition + the same annealing post-pass budget.
      sched::decomposition_scheduler_options dopts;
      dopts.device_count = c.devices;
      dopts.alpha = kAlpha;
      dopts.beta = kBeta;
      dopts.seed = 1;
      dopts.time_budget_seconds = budget;
      stopwatch watch;
      sched::schedule s = sched::schedule_with_decomposition(graph, dopts);
      sched::local_search_options lso;
      lso.alpha = kAlpha;
      lso.beta = kBeta;
      lso.iterations = kAnnealIterations;
      lso.seed = sched::derive_seed(1, 0x504F5354ULL);
      lso.time_budget_seconds = budget;
      s = sched::improve_schedule(graph, s, {}, lso);
      runs.push_back({"decomp", std::move(s), watch.elapsed_seconds()});
    }

    for (const engine_run& run : runs) {
      run.result.validate(graph);
      const double objective = run.result.objective(kAlpha, kBeta);
      const double vs_baseline =
          baseline_objective > 0.0 ? objective / baseline_objective : 1.0;
      bench::bench_record r;
      r.assay = c.name;
      r.config = run.config;
      r.seconds = run.seconds;
      r.objective = objective;
      r.status = "ok";
      r.extras = {
          {"makespan", static_cast<double>(run.result.makespan())},
          {"cache_time", static_cast<double>(run.result.total_cache_time())},
          {"stores", static_cast<double>(run.result.store_count())},
          {"objective_gate", 1.0},
          {"vs_list_sa", vs_baseline}};
      records.push_back(r);
      std::printf("%-7s %-8s %10d %10ld %8d %12.2f %10.4f %.3fs\n",
                  c.name.c_str(), run.config.c_str(), run.result.makespan(),
                  run.result.total_cache_time(), run.result.store_count(),
                  objective, vs_baseline, run.seconds);
    }
  }

  if (!bench::write_bench_json(args.out, "bench_sched", records)) return 1;
  std::printf("wrote %s\n", args.out.c_str());
  return 0;
}
