// Ablation studies of the design choices called out in DESIGN.md:
//
//  A. Storage weight beta in objective (6): execution time vs storage
//     traffic trade-off on RA30.
//  B. Local-search iterations: how much the annealer recovers over pure
//     greedy construction.
//  C. Router reuse cost: how strongly preferring already-used segments
//     (time multiplexing) shrinks the architecture.
//  D. Storage-unit ports (extension beyond the paper): the dedicated-unit
//     baseline with 1 port vs the distributed limit -- quantifies how much
//     of the win comes from removing the port bottleneck.
//  E. Scheduling engine: the metaheuristic portfolio (sa / grasp / decomp)
//     vs the list+annealing baseline at the default iteration budget.
#include <cstdio>

#include "arch/synthesis.h"
#include "assay/benchmarks.h"
#include "baseline/dedicated_storage.h"
#include "bench_common.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "sched/local_search.h"
#include "sched/scheduler.h"

int main(int argc, char** argv) {
  using namespace transtore;
  // Heuristic-only studies: --smoke is accepted for CI uniformity but runs
  // the same (already fast) sweep.
  const bench::harness_args args =
      bench::parse_harness_args(argc, argv, "BENCH_ablation.json");
  const auto ra30 = assay::make_benchmark("RA30");
  std::vector<bench::bench_record> records;
  auto record = [&](const std::string& config, double objective,
                    std::vector<std::pair<std::string, double>> extras) {
    bench::bench_record rec;
    rec.assay = "RA30";
    rec.config = config;
    rec.objective = objective;
    rec.status = "ok";
    rec.extras = std::move(extras);
    records.push_back(std::move(rec));
  };

  // ---- A: beta sweep.
  std::printf("== Ablation A: storage weight beta (RA30, 2 devices) ==\n\n");
  {
    text_table t;
    t.add_row({"beta", "tE", "stores", "peak", "cache time"});
    for (const double beta : {0.0, 0.05, 0.15, 0.5, 2.0}) {
      sched::scheduler_options o;
      o.device_count = 2;
      o.engine = sched::schedule_engine::heuristic;
      o.beta = beta;
      const auto r = sched::make_schedule(ra30, o);
      t.add_row({format_double(beta, 2), std::to_string(r.best.makespan()),
                 std::to_string(r.best.store_count()),
                 std::to_string(r.best.peak_concurrent_caches()),
                 std::to_string(r.best.total_cache_time())});
      record("beta_" + format_double(beta, 2),
             static_cast<double>(r.best.makespan()),
             {{"stores", static_cast<double>(r.best.store_count())},
              {"peak_caches", static_cast<double>(r.best.peak_concurrent_caches())},
              {"cache_time", static_cast<double>(r.best.total_cache_time())}});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // ---- B: local search budget.
  std::printf("== Ablation B: local-search iterations (RA30) ==\n\n");
  {
    text_table t;
    t.add_row({"iterations", "tE", "stores", "objective"});
    for (const int iters : {0, 2000, 6000, 20000}) {
      sched::scheduler_options o;
      o.device_count = 2;
      o.engine = sched::schedule_engine::heuristic;
      o.local_search_iterations = iters;
      const auto r = sched::make_schedule(ra30, o);
      t.add_row({std::to_string(iters), std::to_string(r.best.makespan()),
                 std::to_string(r.best.store_count()),
                 format_double(r.best.objective(o.alpha, o.beta), 1)});
      record("ls_iters_" + std::to_string(iters),
             r.best.objective(o.alpha, o.beta),
             {{"makespan", static_cast<double>(r.best.makespan())},
              {"stores", static_cast<double>(r.best.store_count())}});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // ---- C: router reuse cost.
  std::printf("== Ablation C: router segment-reuse preference (RA30) ==\n\n");
  {
    sched::scheduler_options so;
    so.device_count = 2;
    so.engine = sched::schedule_engine::heuristic;
    const auto schedule = sched::make_schedule(ra30, so).best;
    text_table t;
    t.add_row({"reuse cost", "edges", "valves"});
    for (const double reuse : {1.0, 0.7, 0.4, 0.1}) {
      arch::arch_options ao;
      // A 6x6 grid leaves slack so the preference is visible (the paper's
      // 4x4 is nearly saturated by this workload).
      ao.grid_width = ao.grid_height = 6;
      ao.router.reuse_cost = reuse;
      const auto r = arch::synthesize_architecture(schedule, ao);
      t.add_row({format_double(reuse, 1),
                 std::to_string(r.result.used_edge_count()),
                 std::to_string(r.result.valve_count())});
      record("reuse_" + format_double(reuse, 1),
             static_cast<double>(r.result.used_edge_count()),
             {{"valves", static_cast<double>(r.result.valve_count())}});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("reuse cost 1.0 = no preference; lower = stronger time\n"
                "multiplexing, fewer segments (objective (12) heuristic).\n\n");
  }

  // ---- D: storage-unit port count (extension).
  std::printf(
      "== Ablation D: dedicated-unit ports vs distributed storage ==\n\n");
  {
    sched::scheduler_options so;
    so.device_count = 2;
    so.engine = sched::schedule_engine::heuristic;
    const auto ours = sched::make_schedule(ra30, so).best;
    text_table t;
    t.add_row({"storage", "tE", "slowdown"});
    t.add_row({"distributed (paper)", std::to_string(ours.makespan()),
               "1.00"});
    // Re-time through a k-port dedicated unit (k=1 is the classic design).
    const sched::binding b = sched::extract_binding(ours, ours.device_count);
    sched::timing_options timing;
    timing.storage_ports = 1;
    const auto dedicated =
        sched::refine_timing(ra30, b, ours.device_count, timing);
    t.add_row({"dedicated, 1 port", std::to_string(dedicated.makespan()),
               format_double(static_cast<double>(dedicated.makespan()) /
                                 ours.makespan(),
                             2)});
    std::printf("%s\n", t.render().c_str());
    std::printf("The distributed architecture removes the unit-port queueing\n"
                "entirely AND turns just-in-time transfers into single-leg\n"
                "direct moves -- both effects shorten the assay.\n");
    record("storage_distributed", static_cast<double>(ours.makespan()), {});
    record("storage_dedicated_1port", static_cast<double>(dedicated.makespan()),
           {{"slowdown", static_cast<double>(dedicated.makespan()) /
                             ours.makespan()}});
  }

  // ---- E: scheduling engine portfolio.
  std::printf(
      "\n== Ablation E: metaheuristic scheduling engines (RA30) ==\n\n");
  {
    struct engine_spec {
      const char* label;
      sched::schedule_engine engine;
    };
    text_table t;
    t.add_row({"engine", "tE", "stores", "cache time", "objective"});
    for (const engine_spec& spec :
         {engine_spec{"heuristic", sched::schedule_engine::heuristic},
          engine_spec{"sa", sched::schedule_engine::sa},
          engine_spec{"grasp", sched::schedule_engine::grasp},
          engine_spec{"decomp", sched::schedule_engine::decomp}}) {
      sched::scheduler_options o;
      o.device_count = 2;
      o.engine = spec.engine;
      const auto r = sched::make_schedule(ra30, o);
      const double objective = r.best.objective(o.alpha, o.beta);
      t.add_row({spec.label, std::to_string(r.best.makespan()),
                 std::to_string(r.best.store_count()),
                 std::to_string(r.best.total_cache_time()),
                 format_double(objective, 1)});
      record(std::string("engine_") + spec.label, objective,
             {{"makespan", static_cast<double>(r.best.makespan())},
              {"stores", static_cast<double>(r.best.store_count())},
              {"cache_time", static_cast<double>(r.best.total_cache_time())}});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("All engines share one 6000-iteration annealing budget; the\n"
                "heuristic row is the list+annealing pipeline they must beat.\n");
  }
  if (!bench::write_bench_json(args.out, "bench_ablation", records))
    return 1;
  std::printf("wrote %s\n", args.out.c_str());
  return 0;
}
