// Reproduces Fig. 8: ratios of used channel segments (edges) and valves in
// the synthesized architecture against the full connection grid. The
// paper's claim: all ratios are below 1 and half of them close to 0 --
// architectural synthesis confines resource usage to a fraction of the
// grid.
#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "common/text_table.h"

int main(int argc, char** argv) {
  using namespace transtore;
  const bench::harness_args args =
      bench::parse_harness_args(argc, argv, "BENCH_fig8.json");
  std::printf("== Fig. 8: Edge and valve ratios vs the connection grid ==\n\n");

  text_table table;
  table.add_row({"Assay", "edges used", "grid edges", "edge ratio",
                 "valves", "grid valves", "valve ratio"});
  bool all_below_one = true;
  std::vector<bench::bench_record> records;
  for (const auto& config : bench::harness_configs(args.smoke)) {
    int grid_used = config.grid;
    const core::flow_result r = bench::run_config(
        config, bench::make_options(config, true, args.ilp_seconds),
        grid_used);
    const arch::chip& chip = r.architecture.result;
    table.add_row({
        config.name,
        std::to_string(chip.used_edge_count()),
        std::to_string(chip.grid().edge_count()),
        format_double(chip.edge_ratio(), 2),
        std::to_string(chip.valve_count()),
        std::to_string(chip.grid().total_valve_capacity()),
        format_double(chip.valve_ratio(), 2),
    });
    all_below_one = all_below_one && chip.edge_ratio() < 1.0 &&
                    chip.valve_ratio() < 1.0;
    bench::bench_record rec = bench::flow_record(config, grid_used, r);
    rec.extras = {{"edge_ratio", chip.edge_ratio()},
                  {"valve_ratio", chip.valve_ratio()},
                  {"edges_used", static_cast<double>(chip.used_edge_count())},
                  {"valves", static_cast<double>(chip.valve_count())}};
    records.push_back(std::move(rec));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper's claim -- every ratio < 1: %s\n",
              all_below_one ? "REPRODUCED" : "NOT reproduced");
  if (!bench::write_bench_json(args.out, "bench_fig8", records))
    return 1;
  std::printf("wrote %s\n", args.out.c_str());
  return 0;
}
