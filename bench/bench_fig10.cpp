// Reproduces Fig. 10: execution-time and valve ratios of the proposed
// distributed channel storage against a dedicated storage unit, for all six
// assays. The paper's claim: both ratios are well below 1 (up to ~28%
// execution-time reduction on RA100).
#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "common/text_table.h"

int main(int argc, char** argv) {
  using namespace transtore;
  const bench::harness_args args =
      bench::parse_harness_args(argc, argv, "BENCH_fig10.json");
  std::printf(
      "== Fig. 10: Channel caching vs dedicated storage unit ==\n\n");

  // Comparator semantics (paper Section 4): the dedicated-storage design
  // keeps the transport network and adds the storage unit -- cells,
  // multiplexer, and port valves -- so its valve count is the chip's
  // switch valves plus the unit-internal valves, and its execution time is
  // the same binding re-timed through the unit's single access port.
  text_table table;
  table.add_row({"Assay", "tE ours", "tE dedic.", "exec ratio", "valves ours",
                 "valves dedic.", "valve ratio", "unit cells"});
  double worst_exec_ratio = 1.0;
  bool all_at_most_one = true;
  std::vector<bench::bench_record> records;

  for (const auto& config : bench::harness_configs(args.smoke)) {
    core::flow_options o = bench::make_options(config, true, args.ilp_seconds);
    o.run_baseline = true;
    int grid_used = config.grid;
    const core::flow_result r = bench::run_config(config, o, grid_used);
    const int ours_te = r.scheduling.best.makespan();
    const int ours_valves = r.architecture.result.valve_count();
    const auto& b = *r.baseline;
    const int dedicated_valves = ours_valves + b.unit_valves;
    const double exec_ratio = static_cast<double>(ours_te) / b.makespan;
    const double valve_ratio =
        static_cast<double>(ours_valves) / dedicated_valves;
    worst_exec_ratio = std::min(worst_exec_ratio, exec_ratio);
    all_at_most_one =
        all_at_most_one && exec_ratio <= 1.0 && valve_ratio <= 1.0;
    table.add_row({
        config.name,
        std::to_string(ours_te),
        std::to_string(b.makespan),
        format_double(exec_ratio, 2),
        std::to_string(ours_valves),
        std::to_string(dedicated_valves),
        format_double(valve_ratio, 2),
        std::to_string(b.storage_cells),
    });
    bench::bench_record rec = bench::flow_record(config, grid_used, r);
    rec.extras = {{"exec_ratio", exec_ratio},
                  {"valve_ratio", valve_ratio},
                  {"te_dedicated", static_cast<double>(b.makespan)},
                  {"valves_dedicated", static_cast<double>(dedicated_valves)}};
    records.push_back(std::move(rec));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Best execution-time reduction: %.0f%% (paper: ~28%% on RA100)\n",
              100.0 * (1.0 - worst_exec_ratio));
  std::printf("All ratios at most 1 (paper's claim): %s\n",
              all_at_most_one ? "REPRODUCED" : "NOT reproduced");
  if (!bench::write_bench_json(args.out, "bench_fig10", records))
    return 1;
  std::printf("wrote %s\n", args.out.c_str());
  return 0;
}
