// Micro-benchmarks of the MILP substrate (google-benchmark): LP solve
// scaling, knapsack branch-and-bound, and the branching-rule ablation
// called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include "common/prng.h"
#include "milp/model.h"
#include "milp/solver.h"

namespace {

using namespace transtore;
using namespace transtore::milp;

/// Random dense-ish LP with `vars` columns and `rows` constraints.
model random_lp(int vars, int rows, std::uint64_t seed) {
  prng r(seed);
  model m;
  std::vector<variable> xs;
  for (int j = 0; j < vars; ++j) xs.push_back(m.add_continuous(0, 50));
  for (int i = 0; i < rows; ++i) {
    linear_expr e;
    for (int j = 0; j < vars; ++j)
      if (r.bernoulli(0.4))
        e += static_cast<double>(r.uniform_int(1, 9)) * xs[static_cast<std::size_t>(j)];
    if (!e.empty())
      m.add_constraint(e, cmp::less_equal,
                       static_cast<double>(r.uniform_int(50, 400)));
  }
  linear_expr obj;
  for (int j = 0; j < vars; ++j)
    obj += static_cast<double>(r.uniform_int(1, 20)) * xs[static_cast<std::size_t>(j)];
  m.set_objective(obj, objective_sense::maximize);
  return m;
}

model random_knapsack(int items, std::uint64_t seed) {
  prng r(seed);
  model m;
  linear_expr weight, value;
  for (int i = 0; i < items; ++i) {
    const variable x = m.add_binary();
    weight += static_cast<double>(r.uniform_int(5, 40)) * x;
    value += static_cast<double>(r.uniform_int(5, 60)) * x;
  }
  m.add_constraint(weight, cmp::less_equal, items * 8.0);
  m.set_objective(value, objective_sense::maximize);
  return m;
}

void bm_lp_solve(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const model m = random_lp(vars, vars, 7);
  solver_options o;
  o.time_limit_seconds = 60;
  for (auto _ : state) {
    const solution s = solve(m, o);
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["vars"] = vars;
}
BENCHMARK(bm_lp_solve)->Arg(10)->Arg(40)->Arg(120)->Unit(benchmark::kMillisecond);

void bm_knapsack(benchmark::State& state) {
  const int items = static_cast<int>(state.range(0));
  const model m = random_knapsack(items, 11);
  solver_options o;
  o.time_limit_seconds = 60;
  for (auto _ : state) {
    const solution s = solve(m, o);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(bm_knapsack)->Arg(12)->Arg(20)->Unit(benchmark::kMillisecond);

void bm_branch_rule(benchmark::State& state) {
  const model m = random_knapsack(18, 23);
  solver_options o;
  o.time_limit_seconds = 60;
  o.branching = state.range(0) == 0 ? branch_rule::most_fractional
                                    : branch_rule::pseudocost;
  long nodes = 0;
  for (auto _ : state) {
    const solution s = solve(m, o);
    nodes = s.nodes_explored;
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.SetLabel(state.range(0) == 0 ? "most_fractional" : "pseudocost");
}
BENCHMARK(bm_branch_rule)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void bm_root_propagation(benchmark::State& state) {
  // Big-M disjunction chain: propagation shrinks the boxes dramatically.
  const bool enabled = state.range(0) != 0;
  model m;
  prng r(5);
  std::vector<variable> ts;
  const double big_m = 10000.0;
  for (int i = 0; i < 12; ++i) ts.push_back(m.add_continuous(0, big_m));
  linear_expr makespan_expr;
  const variable makespan = m.add_continuous(0, big_m);
  for (int i = 0; i + 1 < 12; ++i) {
    const variable o = m.add_binary();
    m.add_constraint(linear_expr(ts[static_cast<std::size_t>(i + 1)]) -
                         ts[static_cast<std::size_t>(i)] +
                         big_m * (1.0 - linear_expr(o)),
                     cmp::greater_equal, 30.0);
    m.add_constraint(linear_expr(ts[static_cast<std::size_t>(i)]) -
                         ts[static_cast<std::size_t>(i + 1)] +
                         big_m * linear_expr(o),
                     cmp::greater_equal, 30.0);
    m.add_constraint(linear_expr(makespan) - ts[static_cast<std::size_t>(i)],
                     cmp::greater_equal, 30.0);
  }
  m.set_objective(linear_expr(makespan), objective_sense::minimize);
  solver_options o;
  o.time_limit_seconds = 20;
  o.root_propagation = enabled;
  for (auto _ : state) {
    const solution s = solve(m, o);
    benchmark::DoNotOptimize(s.status);
  }
  state.SetLabel(enabled ? "propagation on" : "propagation off");
}
BENCHMARK(bm_root_propagation)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
