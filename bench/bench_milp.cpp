// MILP substrate benchmark: solves the paper's Table 2 scheduling
// formulations (Table 1 model, objective (6)) with the sparse-LU dual
// simplex defaults, the dense-inverse engine ablation, the seed-equivalent
// primal-only ablation, the deterministic parallel engine at 1/4/8 workers
// (threads1/threads4/threads8, bit-identical search, nodes_per_sec extra),
// and the racing portfolio; reports iterations, nodes and wall time per
// assay, and dumps BENCH_milp.json for cross-PR tracking.
//
//   bench_milp [--seconds S] [--assays PCR,IVD,...] [--row-limit R]
//              [--dense-row-limit R] [--out FILE] [--smoke]
//
// The dense configurations only run formulations up to --dense-row-limit
// rows (default 2500, the historical dense-basis viability bound); the
// sparse-LU configuration runs everything up to --row-limit, which is what
// finally admits CPA (~8.2k rows), RA70 (~9.3k) and RA100 (~18k).
//
// --smoke is the CI configuration: small assays plus CPA, 1 s per solve.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "milp/solver.h"
#include "sched/ilp_scheduler.h"
#include "sched/list_scheduler.h"
#include "sched/metaheuristics.h"

namespace {

using namespace transtore;

std::string status_name(milp::solve_status s) {
  switch (s) {
    case milp::solve_status::optimal: return "optimal";
    case milp::solve_status::feasible: return "feasible";
    case milp::solve_status::infeasible: return "infeasible";
    case milp::solve_status::unbounded: return "unbounded";
    case milp::solve_status::no_solution: return "no_solution";
  }
  return "unknown";
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : csv) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

bool objectives_differ(double a, double b) {
  return std::abs(a - b) > 1e-6 * std::max(1.0, std::abs(b));
}

} // namespace

int main(int argc, char** argv) {
  double seconds = 5.0;
  int row_limit = 40000;      // sparse-LU viability (RA100 is ~18k rows)
  int dense_row_limit = 2500; // the historical dense-basis viability bound
  std::string out_path = "BENCH_milp.json";
  // Table 2 assays plus three mid-size seeded random assays (same generator
  // as RA30). PCR..RA30 are the apples-to-apples subset every configuration
  // solves; CPA/RA70/RA100 are the formulations only the sparse engine can
  // touch.
  std::vector<std::string> assays = {"PCR", "RA12", "RA16", "IVD",
                                     "RA30", "CPA",  "RA70", "RA100"};

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++a];
    };
    if (arg == "--seconds") {
      seconds = std::atof(next());
    } else if (arg == "--assays") {
      assays = split_csv(next());
    } else if (arg == "--row-limit") {
      row_limit = std::atoi(next());
    } else if (arg == "--dense-row-limit") {
      dense_row_limit = std::atoi(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--smoke") {
      seconds = 1.0;
      assays = {"PCR", "RA12", "CPA"};
    } else {
      std::fprintf(stderr,
                   "usage: bench_milp [--seconds S] [--assays CSV] "
                   "[--row-limit R] [--dense-row-limit R] [--out FILE] "
                   "[--smoke]\n");
      return 2;
    }
  }

  std::vector<bench::bench_record> records;
  long total_iters_new = 0;
  long total_iters_old = 0;
  long total_nodes_new = 0;
  long total_nodes_old = 0;
  double total_secs_new = 0.0;
  double total_secs_old = 0.0;
  // Equal-work subset: assays the LU defaults and the primal-only seed both
  // solve to proven optimality (under a time limit, total iterations are
  // budget-bound and meaningless to compare).
  long optimal_iters_new = 0;
  long optimal_iters_old = 0;
  double optimal_secs_new = 0.0;
  double optimal_secs_old = 0.0;
  int optimal_assays = 0;
  bool objectives_match = true;
  int above_dense_ceiling = 0; // formulations only the sparse engine ran

  std::printf("%-7s %-12s %10s %8s %10s %10s %8s %12s %s\n", "assay",
              "config", "rows", "nodes", "iters", "dual", "probes",
              "objective", "time");

  for (const std::string& name : assays) {
    const auto configs = bench::table2_configs();
    int devices = 0;
    for (const auto& c : configs)
      if (c.name == name) devices = c.devices;

    assay::sequencing_graph graph;
    if (devices > 0) {
      graph = assay::make_benchmark(name);
    } else if (name.size() > 2 && name.compare(0, 2, "RA") == 0) {
      // Extra seeded random assays outside Table 2 (e.g. RA12): same
      // layered-DAG generator, two devices.
      const int ops = std::atoi(name.c_str() + 2);
      graph = assay::make_random_assay(ops, static_cast<std::uint64_t>(ops));
      devices = 2;
    } else {
      std::fprintf(stderr, "unknown assay %s\n", name.c_str());
      return 2;
    }

    // Mirror the synthesis pipeline: a heuristic warm start bounds the
    // horizon and seeds the incumbent.
    sched::list_scheduler_options lo;
    lo.device_count = devices;
    const sched::schedule warm = sched::schedule_with_list(graph, lo);

    sched::ilp_scheduler_options so;
    so.device_count = devices;
    so.warm_start = warm;
    const sched::scheduling_ilp ilp = sched::build_scheduling_ilp(graph, so);
    const int rows = ilp.model.constraint_count();
    if (rows > row_limit) {
      std::printf("%-7s skipped: %d rows exceed --row-limit %d\n",
                  name.c_str(), rows, row_limit);
      continue;
    }
    const bool dense_viable = rows <= dense_row_limit;
    if (!dense_viable) ++above_dense_ceiling;

    struct config_spec {
      const char* label;
      milp::solver_options options;
    };
    milp::solver_options lu_defaults; // presolve + cuts + node propagation
    milp::solver_options best_estimate = lu_defaults;
    best_estimate.node_selection = milp::node_rule::best_estimate;
    milp::solver_options no_presolve; // pre-presolve solver (PR 3 behaviour)
    no_presolve.presolve = false;
    no_presolve.cuts = false;
    no_presolve.node_propagation = false;
    no_presolve.node_selection = milp::node_rule::dfs;
    milp::solver_options dense_devex;
    dense_devex.lp.engine = milp::basis_engine::dense;
    // Parallel-search ablation: the deterministic round engine at 1/4/8
    // workers. Deterministic mode makes nodes/iterations/objective
    // bit-identical across the three, so the only thing that moves is the
    // nodes_per_sec extra -- the scaling headline diff_bench gates.
    milp::solver_options threads1 = lu_defaults;
    threads1.deterministic = true;
    threads1.threads = 1;
    milp::solver_options threads4 = threads1;
    threads4.threads = 4;
    milp::solver_options threads8 = threads1;
    threads8.threads = 8;
    std::vector<config_spec> specs = {{"lu_dual_devex", lu_defaults},
                                      {"best_estimate", best_estimate},
                                      {"no_presolve", no_presolve},
                                      {"threads1", threads1},
                                      {"threads4", threads4},
                                      {"threads8", threads8}};
    if (dense_viable) {
      specs.push_back({"dense_dual_devex", dense_devex});
      specs.push_back({"primal_only", milp::classic_primal_only_options()});
    }

    std::vector<milp::solution> sols(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      milp::solver_options& o = specs[s].options;
      o.time_limit_seconds = seconds;
      o.warm_start = ilp.warm_assignment;
      stopwatch watch;
      const milp::solution sol = milp::solve(ilp.model, o);
      const double elapsed = watch.elapsed_seconds();
      sols[s] = sol;

      bench::bench_record r;
      r.assay = name;
      r.config = specs[s].label;
      r.seconds = elapsed;
      r.nodes = sol.nodes_explored;
      r.simplex_iterations = sol.simplex_iterations;
      r.dual_iterations = sol.dual_simplex_iterations;
      r.strong_branch_probes = sol.strong_branch_probes;
      r.objective = sol.objective;
      r.status = status_name(sol.status);
      r.variables = ilp.model.variable_count();
      r.constraints = rows;
      if (sol.presolve_rows_removed > 0 || sol.cuts_added > 0)
        r.extras = {{"presolve_rows_removed",
                     static_cast<double>(sol.presolve_rows_removed)},
                    {"cuts_added", static_cast<double>(sol.cuts_added)},
                    {"root_bound", sol.root_bound}};
      if (std::strncmp(specs[s].label, "threads", 7) == 0) {
        r.extras.emplace_back("nodes_per_sec",
                              elapsed > 0.0
                                  ? static_cast<double>(sol.nodes_explored) /
                                        elapsed
                                  : 0.0);
        r.extras.emplace_back("threads",
                              static_cast<double>(sol.threads_used));
        long steals = 0;
        for (const auto& ws : sol.workers) steals += ws.steals;
        r.extras.emplace_back("steals", static_cast<double>(steals));
      }
      records.push_back(r);

      if (s == 0 && dense_viable) {
        // Aggregate only over the subset both configurations run, so the
        // iterations/node headline compares equal workloads.
        total_iters_new += sol.simplex_iterations;
        total_nodes_new += sol.nodes_explored;
        total_secs_new += elapsed;
      } else if (specs[s].label == std::string("primal_only")) {
        total_iters_old += sol.simplex_iterations;
        total_nodes_old += sol.nodes_explored;
        total_secs_old += elapsed;
      }
      std::printf("%-7s %-12s %10d %8ld %10ld %10ld %8ld %12.3f %.3fs (%s)\n",
                  name.c_str(), specs[s].label, rows, sol.nodes_explored,
                  sol.simplex_iterations, sol.dual_simplex_iterations,
                  sol.strong_branch_probes, sol.objective, elapsed,
                  status_name(sol.status).c_str());
    }

    // Metaheuristic warm start: the identical lu_dual_devex solve, but the
    // incumbent handed to branch and bound is the SA-annealed schedule,
    // LP-polished within its binding (sched::polish_assignment), instead of
    // the plain list pass. The nodes_vs_list_warm extra is the headline:
    // under 1.0 means the tighter primal bound pruned the tree (the
    // warm_start_objective extras show the incumbent-quality gap that
    // bought it).
    {
      sched::sa_scheduler_options sa;
      sa.device_count = devices;
      sa.iterations = 6000;
      sa.seed = 1;
      sa.start = warm;
      const sched::schedule annealed = sched::schedule_with_sa(graph, sa);
      milp::solver_options o = specs[0].options; // lu defaults + time limit
      std::vector<double> incumbent = sched::schedule_assignment(ilp, annealed);
      if (auto polished = sched::polish_assignment(ilp, incumbent, seconds))
        incumbent = std::move(*polished);
      o.warm_start = std::move(incumbent);
      stopwatch watch;
      const milp::solution sol = milp::solve(ilp.model, o);
      const double elapsed = watch.elapsed_seconds();

      bench::bench_record r;
      r.assay = name;
      r.config = "warm_meta";
      r.seconds = elapsed;
      r.nodes = sol.nodes_explored;
      r.simplex_iterations = sol.simplex_iterations;
      r.dual_iterations = sol.dual_simplex_iterations;
      r.strong_branch_probes = sol.strong_branch_probes;
      r.objective = sol.objective;
      r.status = status_name(sol.status);
      r.variables = ilp.model.variable_count();
      r.constraints = rows;
      r.extras = {
          {"warm_start_objective", sol.warm_start_objective},
          {"warm_start_accepted", sol.warm_start_accepted ? 1.0 : 0.0},
          {"list_warm_objective", sols[0].warm_start_objective},
          {"nodes_vs_list_warm",
           sols[0].nodes_explored > 0
               ? static_cast<double>(sol.nodes_explored) /
                     static_cast<double>(sols[0].nodes_explored)
               : 1.0}};
      records.push_back(r);
      std::printf("%-7s %-12s %10d %8ld %10ld %10ld %8ld %12.3f %.3fs (%s, "
                  "nodes vs list warm %.2fx)\n",
                  name.c_str(), "warm_meta", rows, sol.nodes_explored,
                  sol.simplex_iterations, sol.dual_simplex_iterations,
                  sol.strong_branch_probes, sol.objective, elapsed,
                  status_name(sol.status).c_str(),
                  sols[0].nodes_explored > 0
                      ? static_cast<double>(sol.nodes_explored) /
                            static_cast<double>(sols[0].nodes_explored)
                      : 1.0);
      if (sol.status == milp::solve_status::optimal &&
          sols[0].status == milp::solve_status::optimal &&
          objectives_differ(sol.objective, sols[0].objective)) {
        objectives_match = false;
        std::printf("%-7s ERROR: warm_meta optimum %.6f differs from "
                    "lu_dual_devex %.6f\n",
                    name.c_str(), sol.objective, sols[0].objective);
      }
    }

    // Racing portfolio (sched::schedule_with_ilp): best_estimate + dfs +
    // annealing on one shared incumbent board. Nodes/iterations are summed
    // across both tree racers, so nodes_per_sec reads as aggregate
    // portfolio throughput.
    {
      sched::ilp_scheduler_options po = so;
      po.time_limit_seconds = seconds;
      po.portfolio = true;
      po.milp.threads = 2;
      stopwatch watch;
      const sched::ilp_schedule_result pr = sched::schedule_with_ilp(graph, po);
      const double elapsed = watch.elapsed_seconds();

      bench::bench_record r;
      r.assay = name;
      r.config = "portfolio";
      r.seconds = elapsed;
      r.nodes = pr.nodes;
      r.simplex_iterations = pr.simplex_iterations;
      r.objective = pr.ilp_objective;
      r.status = status_name(pr.status);
      r.variables = ilp.model.variable_count();
      r.constraints = rows;
      r.extras = {{"nodes_per_sec",
                   elapsed > 0.0 ? static_cast<double>(pr.nodes) / elapsed
                                 : 0.0},
                  {"racers", static_cast<double>(pr.portfolio_racers)}};
      records.push_back(r);
      std::printf("%-7s %-12s %10d %8ld %10ld %10s %8s %12.3f %.3fs (%s, "
                  "winner %s)\n",
                  name.c_str(), "portfolio", rows, pr.nodes,
                  pr.simplex_iterations, "-", "-", pr.ilp_objective, elapsed,
                  status_name(pr.status).c_str(),
                  pr.portfolio_winner.c_str());
      // The portfolio must land on the same optimum as any proven-optimal
      // single-config run.
      for (std::size_t s = 0; s < specs.size(); ++s) {
        if (pr.status != milp::solve_status::optimal ||
            sols[s].status != milp::solve_status::optimal)
          continue;
        if (objectives_differ(pr.ilp_objective, sols[s].objective)) {
          objectives_match = false;
          std::printf("%-7s ERROR: portfolio optimum %.6f differs from "
                      "%s %.6f\n",
                      name.c_str(), pr.ilp_objective, specs[s].label,
                      sols[s].objective);
        }
      }
    }

    // Cross-engine agreement: every pair of configurations that both proved
    // optimality must report the same objective.
    for (std::size_t a_idx = 0; a_idx < specs.size(); ++a_idx)
      for (std::size_t b_idx = a_idx + 1; b_idx < specs.size(); ++b_idx) {
        if (sols[a_idx].status != milp::solve_status::optimal ||
            sols[b_idx].status != milp::solve_status::optimal)
          continue;
        if (objectives_differ(sols[a_idx].objective, sols[b_idx].objective)) {
          objectives_match = false;
          std::printf("%-7s ERROR: optimal objectives differ "
                      "(%s %.6f vs %s %.6f)\n",
                      name.c_str(), specs[a_idx].label, sols[a_idx].objective,
                      specs[b_idx].label, sols[b_idx].objective);
        }
      }
    if (dense_viable) {
      const milp::solution& lu = sols[0];
      const milp::solution& seed = sols.back();
      if (lu.status == milp::solve_status::optimal &&
          seed.status == milp::solve_status::optimal) {
        ++optimal_assays;
        optimal_iters_new += lu.simplex_iterations;
        optimal_iters_old += seed.simplex_iterations;
        optimal_secs_new += lu.seconds;
        optimal_secs_old += seed.seconds;
      } else if (objectives_differ(lu.objective, seed.objective)) {
        std::printf("%-7s note: incumbents differ under the time limit "
                    "(%.3f vs %.3f)\n",
                    name.c_str(), lu.objective, seed.objective);
      }
    }
  }

  if (total_iters_old > 0 && total_nodes_new > 0 && total_nodes_old > 0) {
    std::printf("\niterations/node:   lu_dual_devex=%.1f primal_only=%.1f "
                "(%.2fx fewer LP iterations per node)\n",
                static_cast<double>(total_iters_new) /
                    static_cast<double>(total_nodes_new),
                static_cast<double>(total_iters_old) /
                    static_cast<double>(total_nodes_old),
                static_cast<double>(total_iters_old) * total_nodes_new /
                    (static_cast<double>(total_iters_new) * total_nodes_old));
    std::printf("totals:            lu_dual_devex=%ld iters %.3fs | "
                "primal_only=%ld iters %.3fs\n",
                total_iters_new, total_secs_new, total_iters_old,
                total_secs_old);
  }
  if (optimal_assays > 0 && optimal_iters_new > 0) {
    std::printf("proven-optimal subset (%d assays, equal work): "
                "lu_dual_devex=%ld iters %.3fs | primal_only=%ld iters %.3fs "
                "(%.2fx iteration reduction), objectives %s\n",
                optimal_assays, optimal_iters_new, optimal_secs_new,
                optimal_iters_old, optimal_secs_old,
                static_cast<double>(optimal_iters_old) /
                    static_cast<double>(optimal_iters_new),
                objectives_match ? "identical" : "DIFFER");
  }
  if (above_dense_ceiling > 0)
    std::printf("formulations above the %d-row dense ceiling run by the "
                "sparse engine: %d\n",
                dense_row_limit, above_dense_ceiling);

  if (!bench::write_bench_json(out_path, "bench_milp", records)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return objectives_match ? 0 : 1;
}
