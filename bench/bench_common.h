// Shared configuration for the paper-reproduction bench harnesses.
//
// Device counts are not given in the paper; we use small values consistent
// with its figures (Fig. 2 schedules PCR on one mixer; Fig. 11 shows RA30
// with five nodes on the grid). Grid sizes follow Table 2 column G
// (4x4 everywhere, 5x5 for RA100); when a storage-heavy workload cannot be
// routed on the paper's grid we retry one size up and say so.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "assay/benchmarks.h"
#include "core/flow.h"

namespace transtore::bench {

// ------------------------------------------------------------ bench JSON
//
// Machine-readable result dumps (BENCH_<tool>.json) so the performance
// trajectory can be tracked across PRs without scraping stdout.

/// One (assay, configuration) measurement.
struct bench_record {
  std::string assay;
  std::string config;   // e.g. "dual_devex" / "primal_only"
  double seconds = 0.0; // wall time of the solve
  long nodes = 0;
  long simplex_iterations = 0;
  long dual_iterations = 0;
  long strong_branch_probes = 0;
  double objective = 0.0;
  std::string status;
  int variables = 0;
  int constraints = 0;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Writes `records` as {"tool": ..., "results": [...]} to `path`.
/// Returns false (with a message on stderr) when the file cannot be opened.
inline bool write_bench_json(const std::string& path, const std::string& tool,
                             const std::vector<bench_record>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"tool\": \"%s\",\n  \"results\": [\n",
               json_escape(tool).c_str());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const bench_record& r = records[i];
    std::fprintf(f,
                 "    {\"assay\": \"%s\", \"config\": \"%s\", "
                 "\"seconds\": %.6f, \"nodes\": %ld, "
                 "\"simplex_iterations\": %ld, \"dual_iterations\": %ld, "
                 "\"strong_branch_probes\": %ld, \"objective\": %.9g, "
                 "\"status\": \"%s\", \"variables\": %d, "
                 "\"constraints\": %d}%s\n",
                 json_escape(r.assay).c_str(), json_escape(r.config).c_str(),
                 r.seconds, r.nodes, r.simplex_iterations, r.dual_iterations,
                 r.strong_branch_probes, r.objective,
                 json_escape(r.status).c_str(), r.variables, r.constraints,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

struct assay_config {
  std::string name;
  int devices;
  int grid; // grid is grid x grid
};

/// Table 2 rows, largest first (matches the paper's ordering).
inline std::vector<assay_config> table2_configs() {
  return {
      {"RA100", 4, 5}, {"RA70", 3, 4}, {"CPA", 3, 4},
      {"RA30", 2, 4},  {"IVD", 2, 4},  {"PCR", 1, 4},
  };
}

/// Default flow options for a config; `storage_aware` toggles the paper's
/// storage optimization (Fig. 9 compares both settings).
inline core::flow_options make_options(const assay_config& c,
                                       bool storage_aware = true,
                                       double ilp_seconds = 5.0) {
  core::flow_options o;
  o.device_count = c.devices;
  o.grid_width = c.grid;
  o.grid_height = c.grid;
  o.storage_aware = storage_aware;
  o.schedule_engine = sched::schedule_engine::combined;
  o.sched_ilp_time_limit = ilp_seconds;
  o.seed = 1;
  return o;
}

/// Run the flow, retrying with a one-step-larger grid when the paper's
/// grid cannot hold the workload. Returns the result and notes the grid
/// actually used in `grid_used`.
inline core::flow_result run_config(const assay_config& c,
                                    core::flow_options o, int& grid_used) {
  grid_used = c.grid;
  for (;;) {
    try {
      o.grid_width = grid_used;
      o.grid_height = grid_used;
      return core::run_flow(assay::make_benchmark(c.name), o);
    } catch (const capacity_error&) {
      ++grid_used;
      if (grid_used > c.grid + 2) throw;
      std::fprintf(stderr, "[bench] %s: grid %dx%d too small, retrying %dx%d\n",
                   c.name.c_str(), grid_used - 1, grid_used - 1, grid_used,
                   grid_used);
    }
  }
}

} // namespace transtore::bench
