// Shared configuration for the paper-reproduction bench harnesses.
//
// Device counts are not given in the paper; we use small values consistent
// with its figures (Fig. 2 schedules PCR on one mixer; Fig. 11 shows RA30
// with five nodes on the grid). Grid sizes follow Table 2 column G
// (4x4 everywhere, 5x5 for RA100); when a storage-heavy workload cannot be
// routed on the paper's grid we retry one size up and say so.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "assay/benchmarks.h"
#include "common/json.h"
#include "core/flow.h"

namespace transtore::bench {

// ------------------------------------------------------------ bench JSON
//
// Machine-readable result dumps (BENCH_<tool>.json) so the performance
// trajectory can be tracked across PRs without scraping stdout.

/// One (assay, configuration) measurement.
struct bench_record {
  std::string assay;
  std::string config;   // e.g. "lu_dual_devex" / "primal_only"
  double seconds = 0.0; // wall time of the solve
  long nodes = 0;
  long simplex_iterations = 0;
  long dual_iterations = 0;
  long strong_branch_probes = 0;
  double objective = 0.0;
  std::string status;
  int variables = 0;
  int constraints = 0;
  /// Harness-specific numeric metrics (e.g. fig8's edge/valve ratios),
  /// emitted as additional JSON fields of the record.
  std::vector<std::pair<std::string, double>> extras;
};

/// Writes `records` as {"tool": ..., "results": [...]} to `path`, using
/// the shared json_writer (common/json.h) for correct escaping.
/// Returns false (with a message on stderr) when the file cannot be opened.
inline bool write_bench_json(const std::string& path, const std::string& tool,
                             const std::vector<bench_record>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return false;
  }
  json_writer w;
  w.begin_object();
  w.field("tool", tool);
  w.begin_array("results");
  for (const bench_record& r : records) {
    w.begin_object();
    w.field("assay", r.assay);
    w.field("config", r.config);
    w.field("seconds", r.seconds);
    w.field("nodes", r.nodes);
    w.field("simplex_iterations", r.simplex_iterations);
    w.field("dual_iterations", r.dual_iterations);
    w.field("strong_branch_probes", r.strong_branch_probes);
    w.field("objective", r.objective);
    w.field("status", r.status);
    w.field("variables", r.variables);
    w.field("constraints", r.constraints);
    for (const auto& [key, value] : r.extras) w.field(key, value);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string doc = w.str();
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

struct assay_config {
  std::string name;
  int devices;
  int grid; // grid is grid x grid
};

/// Shared argv handling for the full-pipeline harnesses:
///   --smoke      small assays (PCR, IVD, RA30) with a 1 s ILP budget -- the
///                configuration CI runs and diffs against bench/baselines/
///   --out FILE   JSON output path override
///   --seconds S  per-solve budget override (ILP limit, or the equal
///                per-engine wall budget in bench_sched's full mode)
struct harness_args {
  bool smoke = false;
  std::string out;
  double ilp_seconds = 5.0;
};

inline harness_args parse_harness_args(int argc, char** argv,
                                       std::string default_out) {
  harness_args a;
  a.out = std::move(default_out);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      a.smoke = true;
      a.ilp_seconds = 1.0;
    } else if (arg == "--out" && i + 1 < argc) {
      a.out = argv[++i];
    } else if (arg == "--seconds" && i + 1 < argc) {
      a.ilp_seconds = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--seconds S] [--out FILE]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return a;
}

/// Assays for one harness run: all of Table 2, or the --smoke subset whose
/// pipeline runs are fast enough to gate CI on.
inline std::vector<assay_config> harness_configs(bool smoke);

/// Table 2 rows, largest first (matches the paper's ordering). Sourced
/// from the shared assay::benchmark_resource_table so the benches and the
/// CLI's batch mode cannot drift apart.
inline std::vector<assay_config> table2_configs() {
  std::vector<assay_config> configs;
  for (const assay::benchmark_resources& r : assay::benchmark_resource_table())
    configs.push_back({r.name, r.devices, r.grid});
  return configs;
}

inline std::vector<assay_config> harness_configs(bool smoke) {
  std::vector<assay_config> configs = table2_configs();
  if (!smoke) return configs;
  std::vector<assay_config> small;
  for (const assay_config& c : configs)
    if (c.name == "PCR" || c.name == "IVD" || c.name == "RA30")
      small.push_back(c);
  return small;
}

/// Default flow options for a config; `storage_aware` toggles the paper's
/// storage optimization (Fig. 9 compares both settings).
inline core::flow_options make_options(const assay_config& c,
                                       bool storage_aware = true,
                                       double ilp_seconds = 5.0) {
  core::flow_options o;
  o.device_count = c.devices;
  o.grid_width = c.grid;
  o.grid_height = c.grid;
  o.storage_aware = storage_aware;
  o.schedule_engine = sched::schedule_engine::combined;
  o.sched_ilp_time_limit = ilp_seconds;
  o.seed = 1;
  return o;
}

/// Run the flow through the staged api::pipeline, letting the synthesize
/// stage retry with a one-step-larger grid (up to +2) when the paper's grid
/// cannot hold the workload. Returns the result and notes the grid actually
/// used in `grid_used`. Throws capacity_error when even the largest retry
/// fails (the historical bench contract).
inline core::flow_result run_config(const assay_config& c,
                                    core::flow_options o, int& grid_used) {
  o.grid_width = c.grid;
  o.grid_height = c.grid;
  o.grid_growth = 2;
  auto outcome = api::pipeline(assay::make_benchmark(c.name), o).run();
  if (!outcome.has_value()) {
    // Re-raise under the exception type the old blocking flow would have
    // thrown, so failures keep their meaning for callers and readers.
    switch (outcome.code()) {
      case api::status::capacity: throw capacity_error(outcome.message());
      case api::status::invalid_input:
        throw invalid_input_error(outcome.message());
      case api::status::infeasible: throw infeasible_error(outcome.message());
      default: throw internal_error(outcome.message());
    }
  }
  core::flow_result r = std::move(outcome).take();
  grid_used = r.architecture.result.grid().width();
  if (grid_used != c.grid)
    std::fprintf(stderr, "[bench] %s: paper grid %dx%d too small, used %dx%d\n",
                 c.name.c_str(), c.grid, c.grid, grid_used, grid_used);
  return r;
}

/// Flatten a flow run into the shared bench-JSON record shape so every
/// harness lands in the same BENCH_<tool>.json trail.
inline bench_record flow_record(const assay_config& c, int grid_used,
                                const core::flow_result& r) {
  bench_record rec;
  rec.assay = c.name;
  rec.config = "d" + std::to_string(c.devices) + "_g" +
               std::to_string(grid_used) + "x" + std::to_string(grid_used);
  rec.seconds = r.total_seconds;
  rec.objective = r.scheduling.best.makespan();
  rec.status = r.scheduling.used_ilp
                   ? (r.scheduling.ilp_status == milp::solve_status::optimal
                          ? "ilp_optimal"
                          : "ilp_feasible")
                   : "heuristic";
  rec.variables = r.scheduling.ilp_variables;
  rec.constraints = r.scheduling.ilp_constraints;
  return rec;
}

} // namespace transtore::bench
