#include "arch/fault.h"

#include <algorithm>

#include "common/error.h"

namespace transtore::arch {
namespace {

void sort_unique(std::vector<int>& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

void require_in_range(const std::vector<int>& values, int limit,
                      const std::string& what) {
  for (int v : values)
    require(v >= 0 && v < limit,
            "fault_set: " + what + " id " + std::to_string(v) +
                " out of range [0, " + std::to_string(limit) + ")");
}

void write_int_array(json_writer& w, const std::string& key,
                     const std::vector<int>& values) {
  w.begin_array(key);
  for (int v : values) w.value(v);
  w.end_array();
}

[[nodiscard]] std::vector<int> int_array_from(const json_value& v) {
  std::vector<int> out;
  out.reserve(v.size());
  for (const json_value& e : v.elements()) out.push_back(e.as_int());
  return out;
}

} // namespace

void fault_set::normalize() {
  sort_unique(devices);
  sort_unique(valves);
  sort_unique(edges);
  sort_unique(storage);
}

void fault_set::validate(const connection_grid& grid,
                         int device_count) const {
  require_in_range(devices, device_count, "device");
  require_in_range(valves, grid.node_count(), "valve");
  require_in_range(edges, grid.edge_count(), "edge");
  require_in_range(storage, grid.edge_count(), "storage segment");
}

std::vector<bool> banned_node_map(const fault_set& faults,
                                  const connection_grid& grid) {
  std::vector<bool> banned(static_cast<std::size_t>(grid.node_count()), false);
  for (int n : faults.valves) banned[static_cast<std::size_t>(n)] = true;
  return banned;
}

std::vector<bool> banned_edge_map(const fault_set& faults,
                                  const connection_grid& grid) {
  std::vector<bool> banned(static_cast<std::size_t>(grid.edge_count()), false);
  for (int e : faults.edges) banned[static_cast<std::size_t>(e)] = true;
  for (int n : faults.valves)
    for (const auto& [edge, neighbor] : grid.incidences(n))
      banned[static_cast<std::size_t>(edge)] = true;
  return banned;
}

std::vector<bool> banned_storage_map(const fault_set& faults,
                                     const connection_grid& grid) {
  std::vector<bool> banned = banned_edge_map(faults, grid);
  for (int e : faults.storage) banned[static_cast<std::size_t>(e)] = true;
  return banned;
}

void write_fault_set(json_writer& w, const fault_set& f) {
  w.begin_object();
  write_int_array(w, "devices", f.devices);
  write_int_array(w, "valves", f.valves);
  write_int_array(w, "edges", f.edges);
  write_int_array(w, "storage", f.storage);
  w.end_object();
}

std::string serialize(const fault_set& f) {
  json_writer w;
  w.begin_object();
  w.field("format", fault_format_version);
  w.field("kind", "faults");
  w.key("faults");
  write_fault_set(w, f);
  w.end_object();
  return w.str();
}

fault_set fault_set_from_value(const json_value& v) {
  fault_set f;
  f.devices = int_array_from(v.at("devices"));
  f.valves = int_array_from(v.at("valves"));
  f.edges = int_array_from(v.at("edges"));
  f.storage = int_array_from(v.at("storage"));
  for (const int id : f.devices)
    require(id >= 0, "fault_set: negative device id");
  for (const int id : f.valves)
    require(id >= 0, "fault_set: negative valve id");
  for (const int id : f.edges) require(id >= 0, "fault_set: negative edge id");
  for (const int id : f.storage)
    require(id >= 0, "fault_set: negative storage id");
  f.normalize();
  return f;
}

fault_set fault_set_from_json(const std::string& text) {
  const json_value doc = json_value::parse(text);
  require(doc.at("format").as_int() == fault_format_version,
          "fault_set: unsupported format version " +
              doc.at("format").number_text());
  require(doc.at("kind").as_string() == "faults",
          "fault_set: document kind is not \"faults\"");
  return fault_set_from_value(doc.at("faults"));
}

} // namespace transtore::arch
