#include "arch/router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>

#include "common/prng.h"

namespace transtore::arch {
namespace {

/// Interval reservations on grid elements. Each element's busy set is kept
/// sorted by start time with overlapping/adjacent intervals coalesced, so
/// the free probes inside A* are a single binary search (O(log k)) instead
/// of a linear scan over every reservation.
class occupancy {
public:
  occupancy(int nodes, int edges)
      : node_busy_(static_cast<std::size_t>(nodes)),
        edge_busy_(static_cast<std::size_t>(edges)) {}

  [[nodiscard]] bool node_free(int node, const time_interval& w) const {
    return free_in(node_busy_[static_cast<std::size_t>(node)], w);
  }
  [[nodiscard]] bool edge_free(int edge, const time_interval& w) const {
    return free_in(edge_busy_[static_cast<std::size_t>(edge)], w);
  }
  void reserve_node(int node, const time_interval& w) {
    if (!w.empty()) insert(node_busy_[static_cast<std::size_t>(node)], w);
  }
  void reserve_edge(int edge, const time_interval& w) {
    if (!w.empty()) insert(edge_busy_[static_cast<std::size_t>(edge)], w);
  }

private:
  [[nodiscard]] static bool free_in(const std::vector<time_interval>& busy,
                                    const time_interval& w) {
    // An empty window occupies no time and can never conflict (a cache
    // whose fetch departs the instant its store arrives has such a hold).
    if (w.empty()) return true;
    // Intervals are disjoint and sorted by begin; only the last interval
    // starting before w.end can overlap w.
    auto it = std::lower_bound(
        busy.begin(), busy.end(), w,
        [](const time_interval& iv, const time_interval& probe) {
          return iv.begin < probe.end;
        });
    if (it == busy.begin()) return true;
    return (it - 1)->end <= w.begin;
  }

  static void insert(std::vector<time_interval>& busy, time_interval w) {
    // Coalescing keeps the disjoint-sorted invariant (reservations only
    // ever block, so merging cannot change any free_in answer) and keeps
    // the sets small under heavy reuse of the same element.
    auto first = std::lower_bound(
        busy.begin(), busy.end(), w,
        [](const time_interval& iv, const time_interval& probe) {
          return iv.end < probe.begin;
        });
    auto last = first;
    while (last != busy.end() && last->begin <= w.end) {
      w.begin = std::min(w.begin, last->begin);
      w.end = std::max(w.end, last->end);
      ++last;
    }
    if (first == last) {
      busy.insert(first, w);
    } else {
      *first = w;
      busy.erase(first + 1, last);
    }
  }

  std::vector<std::vector<time_interval>> node_busy_;
  std::vector<std::vector<time_interval>> edge_busy_;
};

struct found_path {
  std::vector<int> nodes;
  std::vector<int> edges;
};

/// Deterministic A* between grid nodes under occupancy constraints.
class path_finder {
public:
  path_finder(const connection_grid& grid, const occupancy& occ,
              const std::vector<int>& device_at_node,
              const std::vector<bool>& used_edges, const router_options& opt)
      : grid_(grid),
        occ_(occ),
        device_at_node_(device_at_node),
        used_edges_(used_edges),
        options_(opt) {}

  /// Path from `source` to `target` free during `w`. Nodes in
  /// `allowed_devices` may be used as terminals; other device nodes block.
  /// `banned_edge` (if >= 0) is never used. Returns nullopt on failure.
  [[nodiscard]] std::optional<found_path> find(int source, int target,
                                               const time_interval& w,
                                               int banned_edge) const {
    if (!occ_.node_free(source, w) || !occ_.node_free(target, w))
      return std::nullopt;
    if (source == target) return found_path{{source}, {}};

    const int n = grid_.node_count();
    std::vector<double> g(static_cast<std::size_t>(n),
                          std::numeric_limits<double>::infinity());
    std::vector<int> from_node(static_cast<std::size_t>(n), -1);
    std::vector<int> from_edge(static_cast<std::size_t>(n), -1);

    using entry = std::pair<double, int>; // (f-cost, node)
    std::priority_queue<entry, std::vector<entry>, std::greater<>> open;
    auto heuristic = [&](int node) {
      return options_.reuse_cost * grid_.distance(node, target);
    };
    g[static_cast<std::size_t>(source)] = 0.0;
    open.emplace(heuristic(source), source);

    while (!open.empty()) {
      const auto [f, node] = open.top();
      open.pop();
      if (f > g[static_cast<std::size_t>(node)] + heuristic(node) + 1e-12)
        continue;
      if (node == target) break;
      for (const auto& [edge, next] : grid_.incidences(node)) {
        if (edge == banned_edge) continue;
        if (next != target && device_at_node_[static_cast<std::size_t>(next)] >= 0)
          continue; // no transit through devices
        if (!occ_.edge_free(edge, w) || !occ_.node_free(next, w)) continue;
        double step = used_edges_[static_cast<std::size_t>(edge)]
                          ? options_.reuse_cost
                          : options_.new_edge_cost;
        // Keep paths off foreign devices' doorsteps: their few port edges
        // must stay available for their own traffic.
        if (next != target &&
            foreign_device_adjacent(next, source, target))
          step += options_.new_edge_cost;
        const double cost = g[static_cast<std::size_t>(node)] + step;
        if (cost < g[static_cast<std::size_t>(next)] - 1e-12) {
          g[static_cast<std::size_t>(next)] = cost;
          from_node[static_cast<std::size_t>(next)] = node;
          from_edge[static_cast<std::size_t>(next)] = edge;
          open.emplace(cost + heuristic(next), next);
        }
      }
    }
    if (g[static_cast<std::size_t>(target)] ==
        std::numeric_limits<double>::infinity())
      return std::nullopt;

    found_path path;
    for (int at = target; at != source;
         at = from_node[static_cast<std::size_t>(at)]) {
      path.nodes.push_back(at);
      path.edges.push_back(from_edge[static_cast<std::size_t>(at)]);
    }
    path.nodes.push_back(source);
    std::reverse(path.nodes.begin(), path.nodes.end());
    std::reverse(path.edges.begin(), path.edges.end());
    return path;
  }

private:
  /// True when `node` touches a device that is neither endpoint's device.
  [[nodiscard]] bool foreign_device_adjacent(int node, int source,
                                             int target) const {
    for (const auto& [edge, neighbor] : grid_.incidences(node)) {
      (void)edge;
      if (neighbor == source || neighbor == target) continue;
      if (device_at_node_[static_cast<std::size_t>(neighbor)] >= 0)
        return true;
    }
    return false;
  }

  const connection_grid& grid_;
  const occupancy& occ_;
  const std::vector<int>& device_at_node_;
  const std::vector<bool>& used_edges_;
  const router_options& options_;
};

} // namespace

chip route_workload(const connection_grid& grid,
                    const routing_workload& workload,
                    const std::vector<int>& device_nodes,
                    const router_options& options) {
  require(static_cast<int>(device_nodes.size()) == workload.device_count,
          "route_workload: placement size mismatch");
  chip result(grid, device_nodes);
  occupancy occ(grid.node_count(), grid.edge_count());
  std::vector<bool> used(static_cast<std::size_t>(grid.edge_count()), false);
  std::vector<int> device_at_node(static_cast<std::size_t>(grid.node_count()),
                                  -1);
  for (std::size_t d = 0; d < device_nodes.size(); ++d)
    device_at_node[static_cast<std::size_t>(device_nodes[d])] =
        static_cast<int>(d);

  // Faulted resources are modelled as permanent reservations, so the path
  // finder avoids them without any special casing. Storage-only bans are
  // checked at segment selection below (a ban must also veto empty holds,
  // which never conflict with reservations).
  const time_interval forever{0, 1 << 30};
  if (!options.banned_nodes.empty()) {
    require(static_cast<int>(options.banned_nodes.size()) ==
                grid.node_count(),
            "route_workload: banned_nodes size mismatch");
    for (int n = 0; n < grid.node_count(); ++n)
      if (options.banned_nodes[static_cast<std::size_t>(n)])
        occ.reserve_node(n, forever);
  }
  if (!options.banned_edges.empty()) {
    require(static_cast<int>(options.banned_edges.size()) ==
                grid.edge_count(),
            "route_workload: banned_edges size mismatch");
    for (int e = 0; e < grid.edge_count(); ++e)
      if (options.banned_edges[static_cast<std::size_t>(e)])
        occ.reserve_edge(e, forever);
  }
  require(options.banned_storage.empty() ||
              static_cast<int>(options.banned_storage.size()) ==
                  grid.edge_count(),
          "route_workload: banned_storage size mismatch");
  auto storage_banned = [&](int e) {
    return !options.banned_storage.empty() &&
           options.banned_storage[static_cast<std::size_t>(e)];
  };

  path_finder finder(grid, occ, device_at_node, used, options);

  result.paths.resize(workload.tasks.size());
  result.caches.resize(workload.caches.size());

  auto commit_path = [&](const found_path& p, int task_id,
                         const time_interval& w) {
    routed_path rp;
    rp.task_id = task_id;
    rp.nodes = p.nodes;
    rp.edges = p.edges;
    rp.window = w;
    for (int node : p.nodes) occ.reserve_node(node, w);
    for (int edge : p.edges) {
      occ.reserve_edge(edge, w);
      used[static_cast<std::size_t>(edge)] = true;
    }
    result.paths[static_cast<std::size_t>(task_id)] = std::move(rp);
  };

  for (int task_id : workload.tasks_in_time_order()) {
    const transport_task& task =
        workload.tasks[static_cast<std::size_t>(task_id)];

    if (task.kind == task_kind::direct) {
      const int source = device_nodes[static_cast<std::size_t>(task.from_device)];
      const int target = device_nodes[static_cast<std::size_t>(task.to_device)];
      const auto path = finder.find(source, target, task.window, -1);
      if (!path)
        throw capacity_error(
            "route_workload: cannot route direct transport task " +
            std::to_string(task_id) + " (grid too small or congested)");
      commit_path(*path, task_id, task.window);
      continue;
    }

    if (task.kind == task_kind::fetch) continue; // routed with its store

    // Store task: choose the storage segment and route store+fetch jointly.
    const cache_request& cache =
        workload.caches[static_cast<std::size_t>(task.cache_id)];
    const transport_task& fetch_task =
        workload.tasks[static_cast<std::size_t>(cache.fetch_task)];
    const int source =
        device_nodes[static_cast<std::size_t>(task.from_device)];
    const int target =
        device_nodes[static_cast<std::size_t>(fetch_task.to_device)];

    // Candidate segments, nearest to the consumer first (the paper's
    // "on-the-spot caching ... closer to the target device").
    std::vector<int> candidates;
    for (int e = 0; e < grid.edge_count(); ++e) {
      if (storage_banned(e)) continue;
      if (!occ.edge_free(e, task.window) || !occ.edge_free(e, cache.hold) ||
          !occ.edge_free(e, fetch_task.window))
        continue;
      candidates.push_back(e);
    }
    // Prefer segments near the consumer but not glued to a device: a held
    // device-incident segment blocks that device's scarce port edges for
    // the whole hold.
    auto segment_score = [&](int e) {
      int score = 2 * grid.distance_to_edge(target, e) +
                  grid.distance_to_edge(source, e);
      const auto [u, v] = grid.endpoints(e);
      if (device_at_node[static_cast<std::size_t>(u)] >= 0 ||
          device_at_node[static_cast<std::size_t>(v)] >= 0)
        score += 6;
      return score;
    };
    std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
      const int score_a = segment_score(a);
      const int score_b = segment_score(b);
      if (score_a != score_b) return score_a < score_b;
      return a < b;
    });
    if (static_cast<int>(candidates.size()) > options.candidate_segments)
      candidates.resize(static_cast<std::size_t>(options.candidate_segments));

    bool routed = false;
    for (int segment : candidates) {
      const auto [u, v] = grid.endpoints(segment);
      // A segment with a foreign-device endpoint can still hold a sample,
      // but the path may only touch that endpoint if it is a terminal.
      for (const auto& [entry_node, exit_of_entry] :
           {std::pair{u, v}, std::pair{v, u}}) {
        // Store path: source -> entry, then traverse the segment. The
        // entry node ends up mid-path, so it may only be a device node
        // when it is the source itself. The far endpoint is the path's
        // LAST node: the fluid stops inside the segment, so a device there
        // is fine (the paper's "on-the-spot" caching at a consumer port,
        // Fig. 3(b)) as long as the node is free for the window.
        if (device_at_node[static_cast<std::size_t>(entry_node)] >= 0 &&
            entry_node != source)
          continue;
        const auto store_head =
            finder.find(source, entry_node, task.window, segment);
        if (!store_head) continue;
        if (!occ.node_free(exit_of_entry, task.window)) continue;
        if (std::find(store_head->nodes.begin(), store_head->nodes.end(),
                      exit_of_entry) != store_head->nodes.end())
          continue; // appending the segment would revisit a node

        // Fetch path: traverse the segment, then exit -> target. Try both
        // exit directions.
        for (const auto& [fetch_first, fetch_second] :
             {std::pair{u, v}, std::pair{v, u}}) {
          // fetch_first is the path's first node (the fluid starts inside
          // the segment); a device there is acceptable. fetch_second sits
          // mid-path unless it is the target itself.
          if (device_at_node[static_cast<std::size_t>(fetch_second)] >= 0 &&
              fetch_second != target)
            continue;
          const auto fetch_tail = finder.find(fetch_second, target,
                                              fetch_task.window, segment);
          if (!fetch_tail) continue;
          if (!occ.node_free(fetch_first, fetch_task.window)) continue;
          if (std::find(fetch_tail->nodes.begin(), fetch_tail->nodes.end(),
                        fetch_first) != fetch_tail->nodes.end())
            continue; // prepending the segment would revisit a node

          // Commit: store path = head + segment traversal.
          found_path store_path = *store_head;
          store_path.nodes.push_back(exit_of_entry);
          store_path.edges.push_back(segment);
          commit_path(store_path, task_id, task.window);

          found_path fetch_path;
          fetch_path.nodes.push_back(fetch_first);
          fetch_path.edges.push_back(segment);
          fetch_path.nodes.insert(fetch_path.nodes.end(),
                                  fetch_tail->nodes.begin(),
                                  fetch_tail->nodes.end());
          fetch_path.edges.insert(fetch_path.edges.end(),
                                  fetch_tail->edges.begin(),
                                  fetch_tail->edges.end());
          commit_path(fetch_path, cache.fetch_task, fetch_task.window);

          occ.reserve_edge(segment, cache.hold);
          used[static_cast<std::size_t>(segment)] = true;
          cache_placement placement;
          placement.cache_id = cache.id;
          placement.edge = segment;
          placement.hold = cache.hold;
          result.caches[static_cast<std::size_t>(cache.id)] = placement;
          routed = true;
          break;
        }
        if (routed) break;
      }
      if (routed) break;
    }
    if (!routed)
      throw capacity_error(
          "route_workload: cannot place cache for store task " +
          std::to_string(task_id) + " (no free storage segment)");
  }

  return result;
}

} // namespace transtore::arch
