// Routing workload derivation: the transport tasks and cache requests a
// schedule imposes on the chip architecture.
//
// Each schedule transfer becomes:
//   * handoff -> nothing (the fluid never leaves the mixer);
//   * direct  -> one device-to-device transport task;
//   * cached  -> a store task (device -> channel storage), a cache request
//                (a segment held for the hold interval), and a fetch task
//                (channel storage -> device).
// Reagent-load legs are not routed: inlets are assumed at each device (see
// DESIGN.md); the paper's architectural model likewise routes only
// inter-device and storage traffic.
#pragma once

#include <vector>

#include "sched/schedule.h"

namespace transtore::arch {

enum class task_kind { direct, store, fetch };

/// One fluid movement to be realized as a transportation path.
struct transport_task {
  int id = -1;
  task_kind kind = task_kind::direct;
  int transfer_index = -1; // into schedule::transfers
  int from_device = -1;    // -1 when departing channel storage (fetch)
  int to_device = -1;      // -1 when entering channel storage (store)
  time_interval window{};
  int cache_id = -1;       // store/fetch tasks: owning cache request
};

/// One sample that must sit in a channel segment for `hold`.
struct cache_request {
  int id = -1;
  int transfer_index = -1;
  int store_task = -1;
  int fetch_task = -1;
  time_interval hold{};
  int source_device = -1; // where the store departs
  int target_device = -1; // where the fetch arrives
};

struct routing_workload {
  std::vector<transport_task> tasks;
  std::vector<cache_request> caches;
  int device_count = 0;

  /// Tasks sorted by (window begin, id) -- the routing order.
  [[nodiscard]] std::vector<int> tasks_in_time_order() const;
};

/// Derive the workload from a validated schedule.
[[nodiscard]] routing_workload derive_workload(const sched::schedule& s);

} // namespace transtore::arch
