// Architectural synthesis facade: placement + routing (heuristic engine),
// optionally followed by the paper's ILP to shrink segment usage.
#pragma once

#include <cstdint>
#include <optional>

#include "arch/fault.h"
#include "arch/ilp_synthesis.h"
#include "arch/placement.h"
#include "arch/router.h"
#include "common/interrupt.h"
#include "sched/schedule.h"

namespace transtore::arch {

enum class synthesis_engine {
  heuristic, // SA placement + time-multiplexed A* routing
  ilp,       // heuristic first, then ILP (8)-(12) warm-started with it
};

struct arch_options {
  int grid_width = 4;
  int grid_height = 4;
  synthesis_engine engine = synthesis_engine::heuristic;
  placement_options placement{};
  router_options router{};
  /// Placement/routing restart attempts before giving up.
  int attempts = 16;
  ilp_synthesis_options ilp{};
  /// Whole-stage wall-clock budget in seconds (0 = unlimited) and
  /// cooperative cancellation. An expired budget skips only the ILP
  /// refinement (the cheap constructive attempts are the best-effort
  /// fallback and always run); a fired cancel token also stops the
  /// attempts loop -- before anything routed that throws cancelled_error,
  /// afterwards the routed chip is returned as-is.
  double time_budget_seconds = 0.0;
  cancel_token cancel;
  /// Faulted resources on this grid (valves/segments/storage; device
  /// exclusions are a scheduling concern and ignored here). The derived
  /// ban maps are copied into the placement, router, and ILP options.
  fault_set faults;
  /// Pin every device to the given grid node (skips placement); used by
  /// fault recovery to keep the executed prefix's geometry valid.
  std::optional<std::vector<int>> fixed_placement;
};

struct arch_result {
  chip result;
  routing_workload workload;
  double seconds = 0.0;
  int attempts_used = 1;
  /// The stage was cut short (budget/cancel) after a routable chip existed;
  /// the ILP refinement may be partial or skipped.
  bool interrupted = false;
  bool used_ilp = false;
  milp::solve_status ilp_status = milp::solve_status::no_solution;
  double ilp_objective = 0.0;
  double ilp_bound = 0.0;
  int ilp_variables = 0;
  int ilp_constraints = 0;
};

/// Synthesize the chip architecture for a schedule. Throws capacity_error
/// when no attempt can route the workload on the requested grid.
[[nodiscard]] arch_result synthesize_architecture(const sched::schedule& s,
                                                  const arch_options& options);

} // namespace transtore::arch
