#include "arch/chip.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace transtore::arch {

chip::chip(connection_grid grid, std::vector<int> device_nodes)
    : grid_(std::move(grid)), device_nodes_(std::move(device_nodes)) {
  device_at_node_.assign(static_cast<std::size_t>(grid_.node_count()), -1);
  for (std::size_t d = 0; d < device_nodes_.size(); ++d) {
    const int node = device_nodes_[d];
    require(node >= 0 && node < grid_.node_count(),
            "chip: device node out of range");
    require(device_at_node_[static_cast<std::size_t>(node)] < 0,
            "chip: two devices on one node");
    device_at_node_[static_cast<std::size_t>(node)] = static_cast<int>(d);
  }
}

int chip::device_at(int node) const {
  require(node >= 0 && node < grid_.node_count(), "chip: bad node");
  return device_at_node_[static_cast<std::size_t>(node)];
}

std::vector<bool> chip::used_edges() const {
  std::vector<bool> used(static_cast<std::size_t>(grid_.edge_count()), false);
  for (const auto& p : paths)
    for (int e : p.edges) used[static_cast<std::size_t>(e)] = true;
  for (const auto& c : caches) used[static_cast<std::size_t>(c.edge)] = true;
  return used;
}

int chip::used_edge_count() const {
  const auto used = used_edges();
  return static_cast<int>(std::count(used.begin(), used.end(), true));
}

int chip::valve_count() const {
  const auto used = used_edges();
  int valves = 0;
  for (int e = 0; e < grid_.edge_count(); ++e) {
    if (!used[static_cast<std::size_t>(e)]) continue;
    const auto [u, v] = grid_.endpoints(e);
    if (device_at(u) < 0) ++valves;
    if (device_at(v) < 0) ++valves;
  }
  return valves;
}

double chip::edge_ratio() const {
  return static_cast<double>(used_edge_count()) / grid_.edge_count();
}

double chip::valve_ratio() const {
  return static_cast<double>(valve_count()) / grid_.total_valve_capacity();
}

rect chip::used_bounding_box() const {
  std::set<int> nodes;
  for (int node : device_nodes_) nodes.insert(node);
  for (const auto& p : paths)
    for (int n : p.nodes) nodes.insert(n);
  for (const auto& c : caches) {
    const auto [u, v] = grid_.endpoints(c.edge);
    nodes.insert(u);
    nodes.insert(v);
  }
  check(!nodes.empty(), "chip: no used nodes");
  rect box{grid_.coordinate(*nodes.begin()), grid_.coordinate(*nodes.begin())};
  for (int n : nodes) box = box.expanded_to(grid_.coordinate(n));
  return box;
}

void chip::validate(const routing_workload& workload) const {
  check(paths.size() == workload.tasks.size(),
        "chip: one path required per transport task");
  check(caches.size() == workload.caches.size(),
        "chip: one placement required per cache request");

  // Per-cache segment lookup.
  std::vector<int> cache_edge(workload.caches.size(), -1);
  for (const auto& c : caches) {
    check(c.cache_id >= 0 &&
              c.cache_id < static_cast<int>(workload.caches.size()),
          "chip: cache id out of range");
    check(c.edge >= 0 && c.edge < grid_.edge_count(), "chip: cache edge");
    check(c.hold == workload.caches[static_cast<std::size_t>(c.cache_id)].hold,
          "chip: cache hold mismatch");
    cache_edge[static_cast<std::size_t>(c.cache_id)] = c.edge;
  }

  for (const auto& p : paths) {
    const auto& task = workload.tasks[static_cast<std::size_t>(p.task_id)];
    check(p.window == task.window, "chip: path window mismatch");
    check(!p.nodes.empty(), "chip: empty path");
    check(p.edges.size() + 1 == p.nodes.size(), "chip: path shape");
    for (std::size_t i = 0; i < p.edges.size(); ++i) {
      const auto [u, v] = grid_.endpoints(p.edges[i]);
      const int a = p.nodes[i];
      const int b = p.nodes[i + 1];
      check((a == u && b == v) || (a == v && b == u),
            "chip: path edge does not join consecutive nodes");
    }
    // No repeated node (simple path) and no foreign device in the middle.
    std::set<int> seen(p.nodes.begin(), p.nodes.end());
    check(seen.size() == p.nodes.size(), "chip: path revisits a node");
    for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i)
      check(device_at(p.nodes[i]) < 0,
            "chip: path passes through a device node");

    // Terminals.
    switch (task.kind) {
      case task_kind::direct:
        check(p.nodes.front() ==
                  device_nodes_[static_cast<std::size_t>(task.from_device)],
              "chip: direct path source terminal");
        check(p.nodes.back() ==
                  device_nodes_[static_cast<std::size_t>(task.to_device)],
              "chip: direct path target terminal");
        break;
      case task_kind::store: {
        check(p.nodes.front() ==
                  device_nodes_[static_cast<std::size_t>(task.from_device)],
              "chip: store path source terminal");
        check(!p.edges.empty(), "chip: store path has no segment");
        check(p.edges.back() ==
                  cache_edge[static_cast<std::size_t>(task.cache_id)],
              "chip: store path must end inside the cache segment");
        break;
      }
      case task_kind::fetch: {
        check(p.nodes.back() ==
                  device_nodes_[static_cast<std::size_t>(task.to_device)],
              "chip: fetch path target terminal");
        check(!p.edges.empty(), "chip: fetch path has no segment");
        check(p.edges.front() ==
                  cache_edge[static_cast<std::size_t>(task.cache_id)],
              "chip: fetch path must start inside the cache segment");
        break;
      }
    }
  }

  // Pairwise path conflicts (constraint (10)): overlapping windows must be
  // node- and edge-disjoint.
  for (std::size_t a = 0; a < paths.size(); ++a) {
    for (std::size_t b = a + 1; b < paths.size(); ++b) {
      const auto& pa = paths[a];
      const auto& pb = paths[b];
      if (!pa.window.overlaps(pb.window)) continue;
      std::set<int> nodes_a(pa.nodes.begin(), pa.nodes.end());
      for (int n : pb.nodes)
        check(nodes_a.count(n) == 0,
              "chip: concurrent paths intersect at a node");
      std::set<int> edges_a(pa.edges.begin(), pa.edges.end());
      for (int e : pb.edges)
        check(edges_a.count(e) == 0,
              "chip: concurrent paths share a channel segment");
    }
  }

  // Cache holds block their segment (edge only -- end nodes stay usable,
  // the p'_r exception) against overlapping paths and other holds.
  for (const auto& c : caches) {
    const auto& request = workload.caches[static_cast<std::size_t>(c.cache_id)];
    for (const auto& p : paths) {
      if (!p.window.overlaps(c.hold)) continue;
      if (p.task_id == request.store_task || p.task_id == request.fetch_task)
        continue; // the cache's own legs border the hold, never overlap it
      for (int e : p.edges)
        check(e != c.edge, "chip: path crosses a held storage segment");
    }
    for (const auto& other : caches) {
      if (other.cache_id == c.cache_id) continue;
      if (other.edge == c.edge)
        check(!other.hold.overlaps(c.hold),
              "chip: two samples held in one segment simultaneously");
    }
  }
}

std::string chip::render_ascii(int time) const {
  // Active elements at `time`.
  std::set<int> active_edges;
  std::set<int> active_nodes;
  for (const auto& p : paths) {
    if (!p.window.contains(time)) continue;
    for (int e : p.edges) active_edges.insert(e);
    for (int n : p.nodes) active_nodes.insert(n);
  }
  std::set<int> held_edges;
  for (const auto& c : caches)
    if (c.hold.contains(time)) held_edges.insert(c.edge);

  const auto used = used_edges();
  std::ostringstream out;
  out << "t=" << time << "s  (#: path, =: held sample, -|: idle channel)\n";
  for (int y = grid_.height() - 1; y >= 0; --y) {
    // Node row.
    for (int x = 0; x < grid_.width(); ++x) {
      const int n = grid_.node_at(x, y);
      const int d = device_at(n);
      if (d >= 0)
        out << "D" << d;
      else
        out << (active_nodes.count(n) ? "*" : "+") << " ";
      if (x + 1 < grid_.width()) {
        const int e = grid_.edge_between(n, grid_.node_at(x + 1, y));
        char c = ' ';
        if (held_edges.count(e))
          c = '=';
        else if (active_edges.count(e))
          c = '#';
        else if (used[static_cast<std::size_t>(e)])
          c = '-';
        out << c << c << c;
      }
    }
    out << "\n";
    // Vertical edge row.
    if (y > 0) {
      for (int x = 0; x < grid_.width(); ++x) {
        const int e =
            grid_.edge_between(grid_.node_at(x, y), grid_.node_at(x, y - 1));
        char c = ' ';
        if (held_edges.count(e))
          c = '=';
        else if (active_edges.count(e))
          c = '#';
        else if (used[static_cast<std::size_t>(e)])
          c = '|';
        out << c << "    ";
      }
      out << "\n";
    }
  }
  return out.str();
}

} // namespace transtore::arch
