// Synthesized chip architecture: device placement, routed transportation
// paths, and channel-storage assignments on a connection grid -- the planar
// connection graph of paper Fig. 5(b)-(e).
#pragma once

#include <string>
#include <vector>

#include "arch/connection_grid.h"
#include "arch/workload.h"

namespace transtore::arch {

/// One realized transportation path (a sequence of channel segments joined
/// by switches, paper Section 3.2).
struct routed_path {
  int task_id = -1;
  std::vector<int> nodes; // node sequence; front/back are the terminals
  std::vector<int> edges; // edges[i] joins nodes[i], nodes[i+1]
  time_interval window{};
};

/// One cached sample: which segment holds it and for how long.
struct cache_placement {
  int cache_id = -1;
  int edge = -1;
  time_interval hold{};
};

/// Complete architectural synthesis result.
class chip {
public:
  /// Empty placeholder chip (minimal grid, no devices); useful for
  /// default-constructed result aggregates.
  chip() : chip(connection_grid(2, 2), {}) {}

  chip(connection_grid grid, std::vector<int> device_nodes);

  [[nodiscard]] const connection_grid& grid() const { return grid_; }
  [[nodiscard]] const std::vector<int>& device_nodes() const {
    return device_nodes_;
  }
  [[nodiscard]] int device_count() const {
    return static_cast<int>(device_nodes_.size());
  }
  /// Device occupying a node, or -1.
  [[nodiscard]] int device_at(int node) const;

  std::vector<routed_path> paths;
  std::vector<cache_placement> caches;

  /// Channel segments used by at least one path or cache (the s_j of
  /// objective (12)).
  [[nodiscard]] std::vector<bool> used_edges() const;
  [[nodiscard]] int used_edge_count() const;

  /// Valves: one per (used edge, endpoint) incidence whose endpoint is a
  /// switch node. Device-internal valves are excluded, matching the
  /// paper's counting ("valves counted ... did not include those built in
  /// mixers").
  [[nodiscard]] int valve_count() const;

  /// Fig. 8 ratios against the full connection grid.
  [[nodiscard]] double edge_ratio() const;
  [[nodiscard]] double valve_ratio() const;

  /// Bounding box (in grid units) of all used nodes -- feeds physical
  /// design. Returns a rect spanning at least one node.
  [[nodiscard]] rect used_bounding_box() const;

  /// Full conflict re-verification against the workload semantics:
  ///  * every path connects its task's terminals and is connected;
  ///  * paths whose windows overlap share no node and no edge;
  ///  * a held segment is used by no overlapping path or other hold, while
  ///    its end nodes remain free for others (the p'_r exception);
  ///  * no path passes through a foreign device node;
  ///  * store paths end by entering their cache's segment, fetch paths
  ///    leave from it.
  /// Throws internal_error on any violation.
  void validate(const routing_workload& workload) const;

  /// ASCII rendering of the architecture at time t (Fig. 11 style):
  /// devices as 'D<i>', switches as '+', active segments highlighted.
  [[nodiscard]] std::string render_ascii(int time) const;

private:
  connection_grid grid_;
  std::vector<int> device_nodes_;
  std::vector<int> device_at_node_;
};

} // namespace transtore::arch
