// Time-multiplexed routing of transport tasks on the connection grid.
//
// Tasks are routed in chronological order. Each cached transfer is routed
// jointly: the storage segment, the store path into it, and the fetch path
// out of it are chosen together (all windows are known offline), so a
// committed store can never strand its fetch. Conflict semantics follow
// constraint (10) and the p'_r exception:
//
//   * two paths with overlapping windows share no node and no edge;
//   * a held segment's edge is blocked for the hold, its end nodes are not;
//   * paths never pass through a device node except at their terminals.
//
// The A* cost prefers channel segments already used by earlier paths
// (time multiplexing), which is the heuristic counterpart of the paper's
// minimize-sum-s_j objective (12).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/chip.h"

namespace transtore::arch {

struct router_options {
  std::uint64_t seed = 1;
  double new_edge_cost = 1.0;  // cost of claiming an untouched segment
  double reuse_cost = 0.4;     // cost of reusing an already-claimed segment
  int candidate_segments = 32; // storage segments tried per cache
  /// Faulted resources (see arch/fault.h): banned nodes/edges carry no
  /// path, banned storage segments cache no sample. Empty = no bans;
  /// otherwise sized node_count / edge_count / edge_count.
  std::vector<bool> banned_nodes;
  std::vector<bool> banned_edges;
  std::vector<bool> banned_storage;
};

/// Route every task of the workload on `grid` with devices at
/// `device_nodes`. Throws capacity_error when some task cannot be routed
/// (grid too small / too congested).
[[nodiscard]] chip route_workload(const connection_grid& grid,
                                  const routing_workload& workload,
                                  const std::vector<int>& device_nodes,
                                  const router_options& options);

} // namespace transtore::arch
