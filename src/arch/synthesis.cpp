#include "arch/synthesis.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace transtore::arch {

arch_result synthesize_architecture(const sched::schedule& s,
                                    const arch_options& options) {
  stopwatch watch;
  const deadline budget(options.time_budget_seconds, options.cancel);
  require(options.attempts >= 1, "synthesize_architecture: attempts >= 1");
  const connection_grid grid(options.grid_width, options.grid_height);
  routing_workload workload = derive_workload(s);

  fault_set faults = options.faults;
  faults.normalize();
  faults.validate(grid, workload.device_count);
  const std::vector<bool> banned_nodes =
      faults.empty() ? std::vector<bool>{} : banned_node_map(faults, grid);
  const std::vector<bool> banned_edges =
      faults.empty() ? std::vector<bool>{} : banned_edge_map(faults, grid);
  const std::vector<bool> banned_storage =
      faults.empty() ? std::vector<bool>{} : banned_storage_map(faults, grid);
  if (options.fixed_placement) {
    require(static_cast<int>(options.fixed_placement->size()) ==
                workload.device_count,
            "synthesize_architecture: fixed placement size mismatch");
    for (int node : *options.fixed_placement)
      require(node >= 0 && node < grid.node_count(),
              "synthesize_architecture: fixed placement node out of range");
  }

  std::optional<chip> routed;
  int attempts_used = 0;
  bool interrupted = false;
  std::string last_error;
  for (int attempt = 0; attempt < options.attempts && !routed; ++attempt) {
    // The constructive attempts ARE the best-effort fallback and each one
    // is cheap, so an expired deadline does not stop them -- it only skips
    // the ILP refinement below. Explicit cancellation stops everything.
    if (attempt > 0 && budget.cancelled()) {
      interrupted = true;
      break;
    }
    ++attempts_used;
    placement_options p = options.placement;
    p.seed = options.placement.seed + static_cast<std::uint64_t>(attempt);
    p.banned_nodes = banned_nodes;
    router_options r = options.router;
    r.seed = options.router.seed + static_cast<std::uint64_t>(attempt);
    r.banned_nodes = banned_nodes;
    r.banned_edges = banned_edges;
    r.banned_storage = banned_storage;
    try {
      const std::vector<int> nodes = options.fixed_placement
                                         ? *options.fixed_placement
                                         : place_devices(grid, workload, p);
      routed = route_workload(grid, workload, nodes, r);
    } catch (const capacity_error& e) {
      last_error = e.what();
      log_at(log_level::info, "arch: attempt ", attempt + 1, " failed: ",
             e.what());
    }
    // With a pinned placement every attempt is identical; retrying cannot
    // succeed where the first attempt failed.
    if (options.fixed_placement && !routed) break;
  }
  if (!routed) {
    if (interrupted)
      throw cancelled_error(
          "synthesize_architecture: interrupted before any attempt routed "
          "the workload");
    throw capacity_error("synthesize_architecture: all " +
                         std::to_string(options.attempts) +
                         " attempts failed; last error: " + last_error);
  }
  routed->validate(workload);

  arch_result result{*routed, std::move(workload)};
  result.attempts_used = attempts_used;
  result.interrupted = interrupted;

  if (options.engine == synthesis_engine::ilp && !budget.expired()) {
    ilp_synthesis_options io = options.ilp;
    io.warm_start = *routed;
    io.cancel = options.cancel;
    io.banned_nodes = banned_nodes;
    io.banned_edges = banned_edges;
    io.banned_storage = banned_storage;
    // Clamp to the remaining stage budget (1ms floor); a configured limit
    // of 0 ("uncapped") becomes exactly the remaining budget.
    if (options.time_budget_seconds > 0.0) {
      const double remaining = std::max(budget.remaining_seconds(), 1e-3);
      io.time_limit_seconds = io.time_limit_seconds > 0.0
                                  ? std::min(io.time_limit_seconds, remaining)
                                  : remaining;
    }
    const ilp_synthesis_result ilp = synthesize_with_ilp(
        grid, result.workload, routed->device_nodes(), io);
    result.used_ilp = true;
    result.ilp_status = ilp.status;
    result.ilp_objective = ilp.objective;
    result.ilp_bound = ilp.best_bound;
    result.ilp_variables = ilp.variables;
    result.ilp_constraints = ilp.constraints;
    if (ilp.result.used_edge_count() <= routed->used_edge_count())
      result.result = ilp.result;
  }
  if (budget.expired()) result.interrupted = true;

  result.seconds = watch.elapsed_seconds();
  return result;
}

} // namespace transtore::arch
