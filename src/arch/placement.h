// Device placement on the connection grid by simulated annealing.
//
// The cost is the workload-weighted sum of Manhattan distances between
// communicating devices (direct tasks count the device pair; cached
// transfers count source->target since the storage segment will be chosen
// near the consumer). Deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/connection_grid.h"
#include "arch/workload.h"

namespace transtore::arch {

struct placement_options {
  std::uint64_t seed = 1;
  int iterations = 4000;
  double initial_temperature = 4.0;
  /// Grid nodes devices may not occupy (failed valves; see arch/fault.h).
  /// Empty = no bans; otherwise sized node_count.
  std::vector<bool> banned_nodes;
};

/// Returns one grid node per device. Throws capacity_error when the grid
/// has fewer nodes than devices.
[[nodiscard]] std::vector<int> place_devices(const connection_grid& grid,
                                             const routing_workload& workload,
                                             const placement_options& options);

/// The cost that place_devices minimizes (exposed for tests/benches).
[[nodiscard]] long placement_cost(const connection_grid& grid,
                                  const routing_workload& workload,
                                  const std::vector<int>& device_nodes);

} // namespace transtore::arch
