#include "arch/workload.h"

#include <algorithm>

namespace transtore::arch {

std::vector<int> routing_workload::tasks_in_time_order() const {
  std::vector<int> order(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ta = tasks[static_cast<std::size_t>(a)];
    const auto& tb = tasks[static_cast<std::size_t>(b)];
    if (ta.window.begin != tb.window.begin)
      return ta.window.begin < tb.window.begin;
    return a < b;
  });
  return order;
}

routing_workload derive_workload(const sched::schedule& s) {
  routing_workload w;
  w.device_count = s.device_count;

  auto device_of = [&](int op) {
    return s.ops[static_cast<std::size_t>(op)].device;
  };

  for (std::size_t t = 0; t < s.transfers.size(); ++t) {
    const sched::edge_transfer& tr = s.transfers[t];
    switch (tr.kind) {
      case sched::transfer_kind::handoff:
        break;
      case sched::transfer_kind::direct: {
        const auto& leg = s.legs[static_cast<std::size_t>(tr.direct_leg)];
        transport_task task;
        task.id = static_cast<int>(w.tasks.size());
        task.kind = task_kind::direct;
        task.transfer_index = static_cast<int>(t);
        task.from_device = device_of(tr.source_op);
        task.to_device = device_of(tr.target_op);
        task.window = leg.window;
        w.tasks.push_back(task);
        break;
      }
      case sched::transfer_kind::cached: {
        const auto& store = s.legs[static_cast<std::size_t>(tr.store_leg)];
        const auto& fetch = s.legs[static_cast<std::size_t>(tr.fetch_leg)];
        cache_request cache;
        cache.id = static_cast<int>(w.caches.size());
        cache.transfer_index = static_cast<int>(t);
        cache.hold = tr.cache_hold;
        cache.source_device = device_of(tr.source_op);
        cache.target_device = device_of(tr.target_op);

        transport_task store_task;
        store_task.id = static_cast<int>(w.tasks.size());
        store_task.kind = task_kind::store;
        store_task.transfer_index = static_cast<int>(t);
        store_task.from_device = device_of(tr.source_op);
        store_task.to_device = -1;
        store_task.window = store.window;
        store_task.cache_id = cache.id;
        cache.store_task = store_task.id;
        w.tasks.push_back(store_task);

        transport_task fetch_task;
        fetch_task.id = static_cast<int>(w.tasks.size());
        fetch_task.kind = task_kind::fetch;
        fetch_task.transfer_index = static_cast<int>(t);
        fetch_task.from_device = -1;
        fetch_task.to_device = device_of(tr.target_op);
        fetch_task.window = fetch.window;
        fetch_task.cache_id = cache.id;
        cache.fetch_task = fetch_task.id;
        w.tasks.push_back(fetch_task);

        w.caches.push_back(cache);
        break;
      }
    }
  }
  return w;
}

} // namespace transtore::arch
