#include "arch/ilp_synthesis.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace transtore::arch {
namespace {

using milp::cmp;
using milp::linear_expr;
using milp::variable;

/// Per-task arc variables: arc[e][0] traverses edge e from its lower to its
/// higher endpoint, arc[e][1] the reverse. Missing (invalid) arcs are
/// represented by an invalid variable handle.
struct task_vars {
  std::vector<std::array<variable, 2>> arc;
};

/// Walks the selected arcs from `source`, erasing loops, until no out-arc
/// remains; returns the visited node sequence.
std::vector<int> loop_erased_walk(
    const connection_grid& grid, int source,
    const std::map<std::pair<int, int>, bool>& arc_selected) {
  std::vector<int> walk{source};
  std::set<std::pair<int, int>> consumed;
  while (true) {
    const int at = walk.back();
    int next = -1;
    for (const auto& [edge, neighbor] : grid.incidences(at)) {
      const auto key = std::make_pair(edge, at < neighbor ? 0 : 1);
      if (consumed.count(key)) continue;
      const auto it = arc_selected.find(key);
      if (it != arc_selected.end() && it->second) {
        next = neighbor;
        consumed.insert(key);
        break;
      }
    }
    if (next < 0) break;
    // Loop erasure: if we have seen `next`, cut the cycle out.
    const auto seen = std::find(walk.begin(), walk.end(), next);
    if (seen != walk.end()) {
      walk.erase(seen + 1, walk.end());
    } else {
      walk.push_back(next);
    }
  }
  return walk;
}

} // namespace

ilp_synthesis_result synthesize_with_ilp(const connection_grid& grid,
                                         const routing_workload& workload,
                                         const std::vector<int>& device_nodes,
                                         const ilp_synthesis_options& options) {
  require(static_cast<int>(device_nodes.size()) == workload.device_count,
          "synthesize_with_ilp: placement size mismatch");
  const int num_edges = grid.edge_count();
  const int num_nodes = grid.node_count();
  require(options.banned_nodes.empty() ||
              static_cast<int>(options.banned_nodes.size()) == num_nodes,
          "synthesize_with_ilp: banned_nodes size mismatch");
  require(options.banned_edges.empty() ||
              static_cast<int>(options.banned_edges.size()) == num_edges,
          "synthesize_with_ilp: banned_edges size mismatch");
  require(options.banned_storage.empty() ||
              static_cast<int>(options.banned_storage.size()) == num_edges,
          "synthesize_with_ilp: banned_storage size mismatch");
  auto node_banned = [&](int n) {
    return !options.banned_nodes.empty() &&
           options.banned_nodes[static_cast<std::size_t>(n)];
  };
  auto edge_banned = [&](int e) {
    if (!options.banned_edges.empty() &&
        options.banned_edges[static_cast<std::size_t>(e)])
      return true;
    const auto [u, v] = grid.endpoints(e);
    return node_banned(u) || node_banned(v);
  };
  auto storage_banned = [&](int e) {
    return edge_banned(e) ||
           (!options.banned_storage.empty() &&
            options.banned_storage[static_cast<std::size_t>(e)]);
  };
  std::vector<int> device_at_node(static_cast<std::size_t>(num_nodes), -1);
  for (std::size_t d = 0; d < device_nodes.size(); ++d)
    device_at_node[static_cast<std::size_t>(device_nodes[d])] =
        static_cast<int>(d);

  milp::model m;

  // ---- segment-use objective variables (constraint (11) / objective (12)).
  std::vector<variable> seg_used(static_cast<std::size_t>(num_edges));
  for (int e = 0; e < num_edges; ++e)
    seg_used[static_cast<std::size_t>(e)] =
        m.add_continuous(0.0, 1.0, "s_" + std::to_string(e));

  // ---- terminals and permitted device nodes per task.
  auto terminal_source = [&](const transport_task& t) {
    return t.from_device >= 0
               ? device_nodes[static_cast<std::size_t>(t.from_device)]
               : -1;
  };
  auto terminal_target = [&](const transport_task& t) {
    return t.to_device >= 0
               ? device_nodes[static_cast<std::size_t>(t.to_device)]
               : -1;
  };

  // ---- per-task arc variables (flow form of constraint (9)).
  std::vector<task_vars> tasks(workload.tasks.size());
  for (std::size_t r = 0; r < workload.tasks.size(); ++r) {
    const transport_task& task = workload.tasks[r];
    tasks[r].arc.resize(static_cast<std::size_t>(num_edges));
    const int src = terminal_source(task);
    const int dst = terminal_target(task);
    for (int e = 0; e < num_edges; ++e) {
      if (edge_banned(e)) continue; // faulted segment or valve
      const auto [u, v] = grid.endpoints(e);
      auto allowed_node = [&](int n) {
        const int dev = device_at_node[static_cast<std::size_t>(n)];
        return dev < 0 || n == src || n == dst;
      };
      if (!allowed_node(u) || !allowed_node(v)) continue; // no transit
      tasks[r].arc[static_cast<std::size_t>(e)][0] = m.add_binary(
          "f_" + std::to_string(r) + "_" + std::to_string(e) + "_fwd");
      tasks[r].arc[static_cast<std::size_t>(e)][1] = m.add_binary(
          "f_" + std::to_string(r) + "_" + std::to_string(e) + "_rev");
    }
  }

  /// Edge-use expression for one task.
  auto edge_use = [&](std::size_t r, int e) {
    linear_expr expr;
    const auto& a = tasks[r].arc[static_cast<std::size_t>(e)];
    if (a[0].valid()) expr += a[0];
    if (a[1].valid()) expr += a[1];
    return expr;
  };
  /// In-flow expression at a node for one task.
  auto in_flow = [&](std::size_t r, int n) {
    linear_expr expr;
    for (const auto& [edge, neighbor] : grid.incidences(n)) {
      const auto& a = tasks[r].arc[static_cast<std::size_t>(edge)];
      // Arc into n is the one departing from `neighbor`.
      const variable arc_in = neighbor < n ? a[0] : a[1];
      if (arc_in.valid()) expr += arc_in;
    }
    return expr;
  };
  auto out_flow = [&](std::size_t r, int n) {
    linear_expr expr;
    for (const auto& [edge, neighbor] : grid.incidences(n)) {
      const auto& a = tasks[r].arc[static_cast<std::size_t>(edge)];
      const variable arc_out = n < neighbor ? a[0] : a[1];
      if (arc_out.valid()) expr += arc_out;
    }
    return expr;
  };

  // ---- cache segment selection (sigma / entry / exit).
  struct cache_vars {
    std::vector<int> candidates;
    std::vector<variable> sigma;                  // per candidate
    std::vector<std::array<variable, 2>> entry;   // per candidate x side
    std::vector<std::array<variable, 2>> exit;    // per candidate x side
  };
  std::vector<cache_vars> caches(workload.caches.size());

  for (std::size_t c = 0; c < workload.caches.size(); ++c) {
    const cache_request& cache = workload.caches[c];
    const int src =
        device_nodes[static_cast<std::size_t>(cache.source_device)];
    const int dst =
        device_nodes[static_cast<std::size_t>(cache.target_device)];

    // Candidate segments: nearest to the consumer (plus the warm start's
    // segment so the incumbent stays representable).
    std::vector<int> ranked;
    for (int e = 0; e < num_edges; ++e) {
      if (storage_banned(e)) continue;
      const auto [u, v] = grid.endpoints(e);
      const bool u_dev = device_at_node[static_cast<std::size_t>(u)] >= 0;
      const bool v_dev = device_at_node[static_cast<std::size_t>(v)] >= 0;
      if (u_dev && v_dev) continue; // nowhere to open the segment
      ranked.push_back(e);
    }
    std::sort(ranked.begin(), ranked.end(), [&](int a, int b) {
      const int sa = 2 * grid.distance_to_edge(dst, a) +
                     grid.distance_to_edge(src, a);
      const int sb = 2 * grid.distance_to_edge(dst, b) +
                     grid.distance_to_edge(src, b);
      if (sa != sb) return sa < sb;
      return a < b;
    });
    if (static_cast<int>(ranked.size()) > options.candidate_segments)
      ranked.resize(static_cast<std::size_t>(options.candidate_segments));
    if (options.warm_start) {
      const int ws_edge =
          options.warm_start->caches[static_cast<std::size_t>(c)].edge;
      if (std::find(ranked.begin(), ranked.end(), ws_edge) == ranked.end())
        ranked.push_back(ws_edge);
    }
    require(!ranked.empty(), "synthesize_with_ilp: no candidate segments");

    cache_vars& cv = caches[c];
    cv.candidates = ranked;
    linear_expr sigma_sum;
    for (std::size_t k = 0; k < ranked.size(); ++k) {
      const int e = ranked[k];
      const auto [u, v] = grid.endpoints(e);
      cv.sigma.push_back(m.add_binary("sig_" + std::to_string(c) + "_" +
                                      std::to_string(e)));
      sigma_sum += cv.sigma.back();
      m.add_constraint(linear_expr(seg_used[static_cast<std::size_t>(e)]) -
                           cv.sigma.back(),
                       cmp::greater_equal, 0.0);
      // Entry/exit endpoint selection; a device endpoint is only usable
      // when it is the respective terminal itself.
      std::array<variable, 2> entry{};
      std::array<variable, 2> exit{};
      const std::array<int, 2> side_node{u, v};
      linear_expr entry_sum, exit_sum;
      for (int side = 0; side < 2; ++side) {
        const int n = side_node[static_cast<std::size_t>(side)];
        const int dev = device_at_node[static_cast<std::size_t>(n)];
        if (dev < 0 || n == src) {
          entry[static_cast<std::size_t>(side)] =
              m.add_binary("ent_" + std::to_string(c) + "_" +
                           std::to_string(e) + "_" + std::to_string(side));
          entry_sum += entry[static_cast<std::size_t>(side)];
        }
        if (dev < 0 || n == dst) {
          exit[static_cast<std::size_t>(side)] =
              m.add_binary("exi_" + std::to_string(c) + "_" +
                           std::to_string(e) + "_" + std::to_string(side));
          exit_sum += exit[static_cast<std::size_t>(side)];
        }
      }
      m.add_constraint(entry_sum - cv.sigma.back(), cmp::equal, 0.0);
      m.add_constraint(exit_sum - cv.sigma.back(), cmp::equal, 0.0);
      cv.entry.push_back(entry);
      cv.exit.push_back(exit);
      // The store flow must not pass through the far endpoint of the
      // chosen segment (the realized path appends that node), and likewise
      // the fetch flow must not revisit the node prepended to it.
      const cache_request& cr = workload.caches[c];
      const std::size_t store_r = static_cast<std::size_t>(cr.store_task);
      const std::size_t fetch_r = static_cast<std::size_t>(cr.fetch_task);
      if (entry[0].valid()) {
        const linear_expr in_far = in_flow(store_r, v);
        if (!in_far.empty())
          m.add_constraint(in_far + entry[0], cmp::less_equal, 1.0);
      }
      if (entry[1].valid()) {
        const linear_expr in_far = in_flow(store_r, u);
        if (!in_far.empty())
          m.add_constraint(in_far + entry[1], cmp::less_equal, 1.0);
      }
      if (exit[0].valid()) {
        const linear_expr in_far = in_flow(fetch_r, v);
        if (!in_far.empty())
          m.add_constraint(in_far + exit[0], cmp::less_equal, 1.0);
      }
      if (exit[1].valid()) {
        const linear_expr in_far = in_flow(fetch_r, u);
        if (!in_far.empty())
          m.add_constraint(in_far + exit[1], cmp::less_equal, 1.0);
      }
      // Neither flow may route over the chosen segment edge itself: the
      // realized paths traverse it via the appended/prepended hop, so a
      // flow using it too would double-use the edge (an alternate optimum
      // the extraction cannot realize, e.g. a segment incident to the
      // source with the flow arriving through it).
      for (const std::size_t task_r : {store_r, fetch_r}) {
        const linear_expr on_segment = edge_use(task_r, e);
        if (!on_segment.empty())
          m.add_constraint(on_segment + cv.sigma.back(), cmp::less_equal,
                           1.0);
      }
    }
    m.add_constraint(sigma_sum, cmp::equal, 1.0,
                     "sigma_one_" + std::to_string(c));
  }

  // ---- flow conservation per task and node.
  for (std::size_t r = 0; r < workload.tasks.size(); ++r) {
    const transport_task& task = workload.tasks[r];
    const int src = terminal_source(task);
    const int dst = terminal_target(task);
    for (int n = 0; n < num_nodes; ++n) {
      linear_expr balance = out_flow(r, n) - in_flow(r, n);
      double rhs = 0.0;
      if (task.kind == task_kind::direct) {
        if (n == src) rhs += 1.0;
        if (n == dst) rhs -= 1.0;
      } else if (task.kind == task_kind::store) {
        if (n == src) rhs += 1.0;
        // Sink is the selected entry endpoint.
        const cache_vars& cv = caches[static_cast<std::size_t>(task.cache_id)];
        for (std::size_t k = 0; k < cv.candidates.size(); ++k) {
          const auto [u, v] = grid.endpoints(cv.candidates[k]);
          if (u == n && cv.entry[k][0].valid()) balance += cv.entry[k][0];
          if (v == n && cv.entry[k][1].valid()) balance += cv.entry[k][1];
        }
      } else { // fetch
        if (n == dst) rhs -= 1.0;
        const cache_vars& cv = caches[static_cast<std::size_t>(task.cache_id)];
        for (std::size_t k = 0; k < cv.candidates.size(); ++k) {
          const auto [u, v] = grid.endpoints(cv.candidates[k]);
          if (u == n && cv.exit[k][0].valid()) balance -= cv.exit[k][0];
          if (v == n && cv.exit[k][1].valid()) balance -= cv.exit[k][1];
        }
      }
      if (balance.empty() && rhs != 0.0)
        throw capacity_error(
            "synthesize_with_ilp: terminal node has no usable arcs");
      if (!balance.empty())
        m.add_constraint(balance, cmp::equal, rhs);
    }
    // Each edge used at most once per path (no back-and-forth).
    for (int e = 0; e < num_edges; ++e) {
      const linear_expr use = edge_use(r, e);
      if (!use.empty()) {
        m.add_constraint(use, cmp::less_equal, 1.0);
        m.add_constraint(linear_expr(seg_used[static_cast<std::size_t>(e)]) -
                             use,
                         cmp::greater_equal, 0.0); // constraint (11)
      }
    }
  }

  // ---- conflict constraints (10): overlapping-window tasks are node- and
  // edge-disjoint. Node usage of a task is its in-flow, plus its source
  // indicator, plus -- for store/fetch tasks -- the segment-endpoint
  // occupancy of the final/leading segment traversal (the realized path
  // covers both endpoints of the chosen segment).
  auto node_usage = [&](std::size_t r, int n, double& constant) {
    const transport_task& task = workload.tasks[r];
    linear_expr usage = in_flow(r, n);
    if (terminal_source(task) == n) constant += 1.0;
    if (task.kind == task_kind::store) {
      const cache_vars& cv = caches[static_cast<std::size_t>(task.cache_id)];
      for (std::size_t k = 0; k < cv.candidates.size(); ++k) {
        const auto [u, v] = grid.endpoints(cv.candidates[k]);
        // Entering at u puts the far endpoint v on the path, and vice versa.
        if (v == n && cv.entry[k][0].valid()) usage += cv.entry[k][0];
        if (u == n && cv.entry[k][1].valid()) usage += cv.entry[k][1];
      }
    } else if (task.kind == task_kind::fetch) {
      const cache_vars& cv = caches[static_cast<std::size_t>(task.cache_id)];
      for (std::size_t k = 0; k < cv.candidates.size(); ++k) {
        const auto [u, v] = grid.endpoints(cv.candidates[k]);
        // The fetch path covers both endpoints of the chosen segment.
        if (u == n || v == n) usage += cv.sigma[k];
      }
    }
    return usage;
  };

  for (std::size_t r1 = 0; r1 < workload.tasks.size(); ++r1) {
    for (std::size_t r2 = r1 + 1; r2 < workload.tasks.size(); ++r2) {
      if (!workload.tasks[r1].window.overlaps(workload.tasks[r2].window))
        continue;
      for (int e = 0; e < num_edges; ++e) {
        const linear_expr sum = edge_use(r1, e) + edge_use(r2, e);
        if (!sum.empty()) m.add_constraint(sum, cmp::less_equal, 1.0);
      }
      for (int n = 0; n < num_nodes; ++n) {
        double constant = 0.0;
        const linear_expr usage =
            node_usage(r1, n, constant) + node_usage(r2, n, constant);
        if (!usage.empty())
          m.add_constraint(usage, cmp::less_equal, 1.0 - constant);
      }
    }
  }

  // ---- held segments block overlapping paths (edge only: p'_r exception).
  for (std::size_t c = 0; c < workload.caches.size(); ++c) {
    const cache_request& cache = workload.caches[c];
    if (cache.hold.empty()) continue;
    for (std::size_t r = 0; r < workload.tasks.size(); ++r) {
      const transport_task& task = workload.tasks[r];
      if (static_cast<int>(r) == cache.store_task ||
          static_cast<int>(r) == cache.fetch_task)
        continue;
      if (!task.window.overlaps(cache.hold)) continue;
      for (std::size_t k = 0; k < caches[c].candidates.size(); ++k) {
        const linear_expr use = edge_use(r, caches[c].candidates[k]);
        if (!use.empty())
          m.add_constraint(use + caches[c].sigma[k], cmp::less_equal, 1.0);
      }
    }
    for (std::size_t c2 = c + 1; c2 < workload.caches.size(); ++c2) {
      if (!cache.hold.overlaps(workload.caches[c2].hold)) continue;
      for (std::size_t k = 0; k < caches[c].candidates.size(); ++k)
        for (std::size_t k2 = 0; k2 < caches[c2].candidates.size(); ++k2)
          if (caches[c].candidates[k] == caches[c2].candidates[k2])
            m.add_constraint(linear_expr(caches[c].sigma[k]) +
                                 caches[c2].sigma[k2],
                             cmp::less_equal, 1.0);
    }
  }

  // ---- objective (12).
  linear_expr objective;
  for (int e = 0; e < num_edges; ++e)
    objective += seg_used[static_cast<std::size_t>(e)];
  m.set_objective(objective, milp::objective_sense::minimize);

  // ---- warm start from a heuristic chip.
  milp::solver_options solver_options;
  solver_options.time_limit_seconds = options.time_limit_seconds;
  solver_options.log_progress = options.log_progress;
  solver_options.cancel = options.cancel;
  if (options.warm_start) {
    const chip& ws = *options.warm_start;
    std::vector<double> assignment(
        static_cast<std::size_t>(m.variable_count()), 0.0);
    auto set = [&](variable v, double value) {
      if (v.valid()) assignment[static_cast<std::size_t>(v.index)] = value;
    };
    auto set_arc = [&](std::size_t r, int a, int b) {
      const int e = grid.edge_between(a, b);
      check(e >= 0, "warm start: nonadjacent path nodes");
      set(tasks[r].arc[static_cast<std::size_t>(e)][a < b ? 0 : 1], 1.0);
    };
    for (const auto& p : ws.paths) {
      const std::size_t r = static_cast<std::size_t>(p.task_id);
      const transport_task& task = workload.tasks[r];
      // Flow covers the path without the storage-segment traversal.
      std::size_t first = 0;
      std::size_t last = p.nodes.size() - 1;
      if (task.kind == task_kind::store) --last;   // drop final segment hop
      if (task.kind == task_kind::fetch) ++first;  // drop leading segment hop
      for (std::size_t i = first; i < last; ++i)
        set_arc(r, p.nodes[i], p.nodes[i + 1]);
    }
    for (const auto& cp : ws.caches) {
      const cache_vars& cv = caches[static_cast<std::size_t>(cp.cache_id)];
      const auto it =
          std::find(cv.candidates.begin(), cv.candidates.end(), cp.edge);
      check(it != cv.candidates.end(), "warm start: segment not a candidate");
      const std::size_t k =
          static_cast<std::size_t>(it - cv.candidates.begin());
      set(cv.sigma[k], 1.0);
      const auto [u, v] = grid.endpoints(cp.edge);
      // Entry endpoint: second-to-last node of the store path; exit
      // endpoint: second node of the fetch path.
      const cache_request& cr =
          workload.caches[static_cast<std::size_t>(cp.cache_id)];
      const auto& store_path =
          ws.paths[static_cast<std::size_t>(cr.store_task)];
      const auto& fetch_path =
          ws.paths[static_cast<std::size_t>(cr.fetch_task)];
      const int entry_node = store_path.nodes[store_path.nodes.size() - 2];
      const int exit_node = fetch_path.nodes[1];
      set(cv.entry[k][entry_node == u ? 0 : 1], 1.0);
      set(cv.exit[k][exit_node == u ? 0 : 1], 1.0);
    }
    const auto used = ws.used_edges();
    for (int e = 0; e < num_edges; ++e)
      if (used[static_cast<std::size_t>(e)])
        set(seg_used[static_cast<std::size_t>(e)], 1.0);
    solver_options.warm_start = std::move(assignment);
  }

  const milp::solution sol = milp::solve(m, solver_options);

  ilp_synthesis_result result{chip(grid, device_nodes)};
  result.status = sol.status;
  result.nodes = sol.nodes_explored;
  result.seconds = sol.seconds;
  result.variables = m.variable_count();
  result.constraints = m.constraint_count();

  if (sol.status == milp::solve_status::infeasible)
    throw capacity_error(
        "synthesize_with_ilp: infeasible (grid too small for the workload)");
  check(sol.has_solution(),
        "synthesize_with_ilp: solver returned no incumbent");
  result.objective = sol.objective;
  result.best_bound = sol.best_bound;

  // ---- extract chip from the incumbent.
  chip& out = result.result;
  out.paths.resize(workload.tasks.size());
  out.caches.resize(workload.caches.size());

  // Cache placements first (store/fetch extraction needs the segment).
  std::vector<int> chosen_edge(workload.caches.size(), -1);
  std::vector<int> chosen_entry(workload.caches.size(), -1);
  std::vector<int> chosen_exit(workload.caches.size(), -1);
  for (std::size_t c = 0; c < workload.caches.size(); ++c) {
    const cache_vars& cv = caches[c];
    for (std::size_t k = 0; k < cv.candidates.size(); ++k) {
      if (sol.value(cv.sigma[k]) < 0.5) continue;
      chosen_edge[c] = cv.candidates[k];
      const auto [u, v] = grid.endpoints(cv.candidates[k]);
      chosen_entry[c] = cv.entry[k][0].valid() && sol.value(cv.entry[k][0]) > 0.5
                            ? u
                            : v;
      chosen_exit[c] = cv.exit[k][0].valid() && sol.value(cv.exit[k][0]) > 0.5
                           ? u
                           : v;
    }
    check(chosen_edge[c] >= 0, "synthesize_with_ilp: cache without segment");
    cache_placement cp;
    cp.cache_id = static_cast<int>(c);
    cp.edge = chosen_edge[c];
    cp.hold = workload.caches[c].hold;
    out.caches[c] = cp;
  }

  for (std::size_t r = 0; r < workload.tasks.size(); ++r) {
    const transport_task& task = workload.tasks[r];
    std::map<std::pair<int, int>, bool> selected;
    for (int e = 0; e < num_edges; ++e) {
      const auto& a = tasks[r].arc[static_cast<std::size_t>(e)];
      if (a[0].valid() && sol.value(a[0]) > 0.5) selected[{e, 0}] = true;
      if (a[1].valid() && sol.value(a[1]) > 0.5) selected[{e, 1}] = true;
    }
    routed_path rp;
    rp.task_id = static_cast<int>(r);
    rp.window = task.window;
    if (task.kind == task_kind::direct || task.kind == task_kind::store) {
      rp.nodes = loop_erased_walk(grid, terminal_source(task), selected);
    } else {
      const std::size_t c = static_cast<std::size_t>(task.cache_id);
      rp.nodes = loop_erased_walk(grid, chosen_exit[c], selected);
    }
    if (task.kind == task_kind::store) {
      const std::size_t c = static_cast<std::size_t>(task.cache_id);
      check(rp.nodes.back() == chosen_entry[c],
            "synthesize_with_ilp: store flow does not reach the segment");
      const auto [u, v] = grid.endpoints(chosen_edge[c]);
      rp.nodes.push_back(chosen_entry[c] == u ? v : u);
    }
    if (task.kind == task_kind::fetch) {
      const std::size_t c = static_cast<std::size_t>(task.cache_id);
      const auto [u, v] = grid.endpoints(chosen_edge[c]);
      rp.nodes.insert(rp.nodes.begin(), chosen_exit[c] == u ? v : u);
    }
    rp.edges.reserve(rp.nodes.size() - 1);
    for (std::size_t i = 0; i + 1 < rp.nodes.size(); ++i) {
      const int e = grid.edge_between(rp.nodes[i], rp.nodes[i + 1]);
      check(e >= 0, "synthesize_with_ilp: extracted path disconnected");
      rp.edges.push_back(e);
    }
    out.paths[r] = std::move(rp);
  }

  out.validate(workload);
  return result;
}

} // namespace transtore::arch
