// Full-fidelity JSON (de)serialization for arch::chip: grid dimensions,
// device placement, every routed path, and every cache placement. The
// counterpart of sched/schedule_io.h for the architecture stage; together
// they let a synthesized design cross a process boundary (result cache,
// `transtore_cli serve`) and be re-validated or re-compressed without
// re-running synthesis. Round-trips byte-identically and is versioned.
#pragma once

#include <string>

#include "arch/chip.h"
#include "common/json.h"

namespace transtore::arch {

/// Version stamp of the chip document layout.
inline constexpr int chip_format_version = 1;

/// Write the chip as one JSON object through `w` (positioned where a value
/// is expected) -- for embedding into larger documents.
void write_chip(json_writer& w, const chip& c);

/// Standalone document: {"format":1,"kind":"chip",...}.
[[nodiscard]] std::string serialize(const chip& c);

/// Reconstruct a chip from a parsed value (the object written by
/// write_chip). Throws invalid_input_error on malformed or
/// version-mismatched input.
[[nodiscard]] chip chip_from_value(const json_value& v);

/// Reconstruct from a standalone document string.
[[nodiscard]] chip chip_from_json(const std::string& text);

} // namespace transtore::arch
