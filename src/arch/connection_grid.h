// Connection grid (paper Fig. 6): the W x H lattice on which devices are
// placed and transportation paths are constructed from channel segments
// joined by switches.
//
// Nodes are indexed row-major (y * width + x); edges are indexed with all
// horizontal segments first, then all vertical ones. Every edge is one
// channel segment capable of caching exactly one fluid sample.
#pragma once

#include <array>
#include <vector>

#include "common/error.h"
#include "common/geometry.h"

namespace transtore::arch {

class connection_grid {
public:
  connection_grid(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int node_count() const { return width_ * height_; }
  [[nodiscard]] int edge_count() const {
    return (width_ - 1) * height_ + width_ * (height_ - 1);
  }

  [[nodiscard]] int node_at(int x, int y) const;
  [[nodiscard]] point coordinate(int node) const;

  /// Endpoints of an edge, (lower node, higher node).
  [[nodiscard]] std::pair<int, int> endpoints(int edge) const;

  /// Edge between two adjacent nodes, or -1.
  [[nodiscard]] int edge_between(int a, int b) const;

  /// Up to four (edge, neighbor-node) incidences of a node.
  [[nodiscard]] const std::vector<std::pair<int, int>>& incidences(
      int node) const;

  /// Manhattan distance between two nodes.
  [[nodiscard]] int distance(int a, int b) const;

  /// Manhattan distance from a node to the nearest endpoint of an edge.
  [[nodiscard]] int distance_to_edge(int node, int edge) const;

  /// Total switch-valve capacity of the full grid: one valve per
  /// (edge, endpoint) incidence, i.e. 2 * edge_count(). Used for the
  /// denominator of the paper's Fig. 8 valve ratio.
  [[nodiscard]] int total_valve_capacity() const { return 2 * edge_count(); }

private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::vector<std::pair<int, int>>> incidences_;
};

} // namespace transtore::arch
