#include "arch/connection_grid.h"

#include <cstdlib>

namespace transtore::arch {

connection_grid::connection_grid(int width, int height)
    : width_(width), height_(height) {
  require(width >= 2 && height >= 2,
          "connection_grid: need at least a 2x2 grid");
  incidences_.resize(static_cast<std::size_t>(node_count()));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const int n = node_at(x, y);
      auto& inc = incidences_[static_cast<std::size_t>(n)];
      if (x + 1 < width_)
        inc.emplace_back(edge_between(n, node_at(x + 1, y)), node_at(x + 1, y));
      if (x > 0)
        inc.emplace_back(edge_between(n, node_at(x - 1, y)), node_at(x - 1, y));
      if (y + 1 < height_)
        inc.emplace_back(edge_between(n, node_at(x, y + 1)), node_at(x, y + 1));
      if (y > 0)
        inc.emplace_back(edge_between(n, node_at(x, y - 1)), node_at(x, y - 1));
    }
  }
}

int connection_grid::node_at(int x, int y) const {
  require(x >= 0 && x < width_ && y >= 0 && y < height_,
          "connection_grid: coordinate out of range");
  return y * width_ + x;
}

point connection_grid::coordinate(int node) const {
  require(node >= 0 && node < node_count(), "connection_grid: bad node");
  return {node % width_, node / width_};
}

std::pair<int, int> connection_grid::endpoints(int edge) const {
  require(edge >= 0 && edge < edge_count(), "connection_grid: bad edge");
  const int horizontal = (width_ - 1) * height_;
  if (edge < horizontal) {
    const int y = edge / (width_ - 1);
    const int x = edge % (width_ - 1);
    return {node_at(x, y), node_at(x + 1, y)};
  }
  const int v = edge - horizontal;
  const int y = v / width_;
  const int x = v % width_;
  return {node_at(x, y), node_at(x, y + 1)};
}

int connection_grid::edge_between(int a, int b) const {
  require(a >= 0 && a < node_count() && b >= 0 && b < node_count(),
          "connection_grid: bad node");
  if (a > b) std::swap(a, b);
  const point pa = coordinate(a);
  const point pb = coordinate(b);
  if (pa.y == pb.y && pb.x == pa.x + 1) return pa.y * (width_ - 1) + pa.x;
  if (pa.x == pb.x && pb.y == pa.y + 1)
    return (width_ - 1) * height_ + pa.y * width_ + pa.x;
  return -1;
}

const std::vector<std::pair<int, int>>& connection_grid::incidences(
    int node) const {
  require(node >= 0 && node < node_count(), "connection_grid: bad node");
  return incidences_[static_cast<std::size_t>(node)];
}

int connection_grid::distance(int a, int b) const {
  return manhattan_distance(coordinate(a), coordinate(b));
}

int connection_grid::distance_to_edge(int node, int edge) const {
  const auto [u, v] = endpoints(edge);
  return std::min(distance(node, u), distance(node, v));
}

} // namespace transtore::arch
