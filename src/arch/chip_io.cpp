#include "arch/chip_io.h"

#include "common/error.h"

namespace transtore::arch {
namespace {

void write_int_array(json_writer& w, const std::string& key,
                     const std::vector<int>& values) {
  w.begin_array(key);
  for (int v : values) w.value(v);
  w.end_array();
}

[[nodiscard]] std::vector<int> int_array_from(const json_value& v) {
  std::vector<int> out;
  out.reserve(v.size());
  for (const json_value& e : v.elements()) out.push_back(e.as_int());
  return out;
}

} // namespace

void write_chip(json_writer& w, const chip& c) {
  w.begin_object();
  w.field("grid_width", c.grid().width());
  w.field("grid_height", c.grid().height());
  write_int_array(w, "device_nodes", c.device_nodes());
  w.begin_array("paths");
  for (const routed_path& p : c.paths) {
    w.begin_object();
    w.field("task_id", p.task_id);
    write_int_array(w, "nodes", p.nodes);
    write_int_array(w, "edges", p.edges);
    w.field("begin", p.window.begin);
    w.field("end", p.window.end);
    w.end_object();
  }
  w.end_array();
  w.begin_array("caches");
  for (const cache_placement& cp : c.caches) {
    w.begin_object();
    w.field("cache_id", cp.cache_id);
    w.field("edge", cp.edge);
    w.field("begin", cp.hold.begin);
    w.field("end", cp.hold.end);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string serialize(const chip& c) {
  json_writer w;
  w.begin_object();
  w.field("format", chip_format_version);
  w.field("kind", "chip");
  w.key("chip");
  write_chip(w, c);
  w.end_object();
  return w.str();
}

chip chip_from_value(const json_value& v) {
  const int width = v.at("grid_width").as_int();
  const int height = v.at("grid_height").as_int();
  require(width >= 2 && height >= 2,
          "chip_io: grid dimensions must be at least 2x2");
  connection_grid grid(width, height);
  std::vector<int> device_nodes = int_array_from(v.at("device_nodes"));
  for (int node : device_nodes)
    require(node >= 0 && node < grid.node_count(),
            "chip_io: device node " + std::to_string(node) + " out of range");
  chip c(std::move(grid), std::move(device_nodes));
  for (const json_value& e : v.at("paths").elements()) {
    routed_path p;
    p.task_id = e.at("task_id").as_int();
    p.nodes = int_array_from(e.at("nodes"));
    p.edges = int_array_from(e.at("edges"));
    require(p.nodes.empty() || p.edges.size() + 1 == p.nodes.size(),
            "chip_io: path edge/node counts are inconsistent");
    p.window = {e.at("begin").as_int(), e.at("end").as_int()};
    c.paths.push_back(std::move(p));
  }
  for (const json_value& e : v.at("caches").elements()) {
    cache_placement cp;
    cp.cache_id = e.at("cache_id").as_int();
    cp.edge = e.at("edge").as_int();
    require(cp.edge >= 0 && cp.edge < c.grid().edge_count(),
            "chip_io: cache edge " + std::to_string(cp.edge) +
                " out of range");
    cp.hold = {e.at("begin").as_int(), e.at("end").as_int()};
    c.caches.push_back(cp);
  }
  return c;
}

chip chip_from_json(const std::string& text) {
  const json_value doc = json_value::parse(text);
  require(doc.at("format").as_int() == chip_format_version,
          "chip_io: unsupported format version " +
              doc.at("format").number_text());
  require(doc.at("kind").as_string() == "chip",
          "chip_io: document kind is not \"chip\"");
  return chip_from_value(doc.at("chip"));
}

} // namespace transtore::arch
