// Hardware fault model for flow-based chips (after Su & Chakrabarty's
// fault-tolerant reconfiguration framing).
//
// A fault_set names the resources that have failed on a physical chip:
//
//   * devices -- operation devices (mixers) that can no longer execute
//                operations. Failed devices are excluded at the scheduling
//                level only; their grid nodes stay routable so that legs
//                already executed before the failure remain representable.
//   * valves  -- grid switch nodes that stick closed. A failed valve bans
//                its node and every incident channel segment.
//   * edges   -- channel segments that clog. A failed segment can neither
//                carry transport paths nor cache a sample.
//   * storage -- channel segments whose caching is unreliable but that
//                still pass fluid (storage-only bans).
//
// The set is grid-specific: valve/edge/storage ids index one concrete
// connection grid. Recovery on a replacement (grown) grid therefore clears
// them and keeps only the device exclusions.
#pragma once

#include <string>
#include <vector>

#include "arch/connection_grid.h"
#include "common/json.h"

namespace transtore::arch {

struct fault_set {
  std::vector<int> devices;
  std::vector<int> valves;
  std::vector<int> edges;
  std::vector<int> storage;

  [[nodiscard]] bool empty() const {
    return devices.empty() && valves.empty() && edges.empty() &&
           storage.empty();
  }

  /// Sort and deduplicate every list (canonical form for serialization
  /// and cache keys).
  void normalize();

  /// Throws invalid_input_error when any id is out of range for the given
  /// grid / device count. Call after normalize().
  void validate(const connection_grid& grid, int device_count) const;

  friend bool operator==(const fault_set&, const fault_set&) = default;
};

/// node_count-sized map of grid nodes banned for placement and routing
/// (the failed valves).
[[nodiscard]] std::vector<bool> banned_node_map(const fault_set& faults,
                                                const connection_grid& grid);

/// edge_count-sized map of segments banned for transport: failed segments
/// plus every segment incident to a failed valve.
[[nodiscard]] std::vector<bool> banned_edge_map(const fault_set& faults,
                                                const connection_grid& grid);

/// edge_count-sized map of segments banned for caching: the transport bans
/// plus the storage-only failures.
[[nodiscard]] std::vector<bool> banned_storage_map(const fault_set& faults,
                                                   const connection_grid& grid);

/// Version stamp of the fault document layout.
inline constexpr int fault_format_version = 1;

/// Write the fault set as one JSON object through `w` (positioned where a
/// value is expected) -- for embedding into larger documents.
void write_fault_set(json_writer& w, const fault_set& f);

/// Standalone document: {"format":1,"kind":"faults",...}.
[[nodiscard]] std::string serialize(const fault_set& f);

/// Reconstruct a fault set from a parsed value (the object written by
/// write_fault_set). Range validation is deferred to fault_set::validate
/// since the grid is not known here. Throws invalid_input_error on
/// malformed input.
[[nodiscard]] fault_set fault_set_from_value(const json_value& v);

/// Reconstruct from a standalone document string.
[[nodiscard]] fault_set fault_set_from_json(const std::string& text);

} // namespace transtore::arch
