// ILP architectural synthesis -- the paper's Section 3.2 formulation.
//
// We emit the paper's model with one documented strengthening: the
// degree-counting path constraints (9) (with their y_i,r big-M indicators)
// are replaced by an equivalent unit-flow formulation per transportation
// path -- two directed arc binaries per edge with flow conservation. Both
// describe simple source-sink paths on the connection grid; the flow form
// gives a much tighter LP relaxation and needs no big-M.
//
// Faithful elements:
//   * placement variables a_i,k (constraint (8)) -- here fixed to the
//     heuristic placement (constants), keeping the model at a size the
//     in-repo MILP solver handles; the paper's free-placement variant is
//     the same model with a_i,k binary;
//   * storage sub-paths p_r,1 / p_r,2 / p_r,3: segment-choice binaries
//     sigma_e,c with entry/exit endpoint selection feeding the flow
//     conservation right-hand sides;
//   * conflict constraints (10): overlapping-window paths are node- and
//     edge-disjoint; held segments exclude other paths while their end
//     nodes remain usable (the p'_r exception);
//   * objective (12): minimize the number of used channel segments s_j
//     with the linking constraints (11).
#pragma once

#include <optional>
#include <vector>

#include "arch/chip.h"
#include "milp/solver.h"

namespace transtore::arch {

struct ilp_synthesis_options {
  double time_limit_seconds = 30.0;
  /// Candidate storage segments per cache (nearest to the consumer);
  /// bounds the sigma variable count.
  int candidate_segments = 10;
  /// Optional heuristic solution used as the MILP incumbent.
  std::optional<chip> warm_start;
  bool log_progress = false;
  /// Cooperative cancellation, forwarded to the MILP solver.
  cancel_token cancel;
  /// Faulted resources (see arch/fault.h): no arc variables are created on
  /// banned nodes/edges and banned storage segments are never candidates.
  /// Empty = no bans; otherwise sized node_count / edge_count / edge_count.
  std::vector<bool> banned_nodes;
  std::vector<bool> banned_edges;
  std::vector<bool> banned_storage;
};

struct ilp_synthesis_result {
  chip result;
  milp::solve_status status = milp::solve_status::no_solution;
  double objective = 0.0;  // number of used segments in the incumbent
  double best_bound = 0.0;
  long nodes = 0;
  double seconds = 0.0;
  int variables = 0;
  int constraints = 0;
};

/// Synthesize the connection graph by ILP with devices fixed at
/// `device_nodes`. Throws capacity_error when the model is infeasible
/// (grid too small) and invalid_input_error on malformed input.
[[nodiscard]] ilp_synthesis_result synthesize_with_ilp(
    const connection_grid& grid, const routing_workload& workload,
    const std::vector<int>& device_nodes, const ilp_synthesis_options& options);

} // namespace transtore::arch
