#include "arch/placement.h"

#include <algorithm>
#include <cmath>

#include "common/prng.h"

namespace transtore::arch {
namespace {

/// Device-pair communication weights from the workload.
std::vector<std::vector<int>> pair_weights(const routing_workload& w) {
  std::vector<std::vector<int>> weight(
      static_cast<std::size_t>(w.device_count),
      std::vector<int>(static_cast<std::size_t>(w.device_count), 0));
  for (const auto& task : w.tasks) {
    if (task.kind == task_kind::direct)
      ++weight[static_cast<std::size_t>(task.from_device)]
              [static_cast<std::size_t>(task.to_device)];
  }
  for (const auto& cache : w.caches)
    ++weight[static_cast<std::size_t>(cache.source_device)]
            [static_cast<std::size_t>(cache.target_device)];
  return weight;
}

} // namespace

long placement_cost(const connection_grid& grid,
                    const routing_workload& workload,
                    const std::vector<int>& device_nodes) {
  long cost = 0;
  const auto weight = pair_weights(workload);
  const int d = workload.device_count;
  for (int a = 0; a < d; ++a)
    for (int b = 0; b < d; ++b) {
      if (weight[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] ==
          0)
        continue;
      cost += static_cast<long>(
                  weight[static_cast<std::size_t>(a)]
                        [static_cast<std::size_t>(b)]) *
              std::max(1, grid.distance(device_nodes[static_cast<std::size_t>(a)],
                                        device_nodes[static_cast<std::size_t>(b)]));
    }
  // Port-starvation term: a device with heavy transport/storage traffic
  // needs incident channel segments; penalize low-degree (corner/border)
  // nodes in proportion to the device's traffic so a busy device is not
  // walled in by held storage segments.
  std::vector<long> traffic(static_cast<std::size_t>(d), 0);
  for (const auto& task : workload.tasks) {
    if (task.from_device >= 0)
      ++traffic[static_cast<std::size_t>(task.from_device)];
    if (task.to_device >= 0 && task.to_device != task.from_device)
      ++traffic[static_cast<std::size_t>(task.to_device)];
  }
  std::vector<bool> is_device_node(
      static_cast<std::size_t>(grid.node_count()), false);
  for (int node : device_nodes)
    is_device_node[static_cast<std::size_t>(node)] = true;
  for (int a = 0; a < d; ++a) {
    long usable_ports = 0;
    for (const auto& [edge, neighbor] :
         grid.incidences(device_nodes[static_cast<std::size_t>(a)])) {
      (void)edge;
      if (!is_device_node[static_cast<std::size_t>(neighbor)]) ++usable_ports;
    }
    cost += (4 - usable_ports) * traffic[static_cast<std::size_t>(a)];
  }
  return cost;
}

std::vector<int> place_devices(const connection_grid& grid,
                               const routing_workload& workload,
                               const placement_options& options) {
  const int devices = workload.device_count;
  require(devices > 0, "place_devices: no devices");
  require(options.banned_nodes.empty() ||
              static_cast<int>(options.banned_nodes.size()) ==
                  grid.node_count(),
          "place_devices: banned_nodes size mismatch");
  auto banned = [&](int n) {
    return !options.banned_nodes.empty() &&
           options.banned_nodes[static_cast<std::size_t>(n)];
  };
  int free_nodes = 0;
  for (int n = 0; n < grid.node_count(); ++n)
    if (!banned(n)) ++free_nodes;
  if (devices > free_nodes)
    throw capacity_error(
        "place_devices: grid has fewer usable nodes than devices");

  prng rng(options.seed);

  // Initial placement: spread devices along the grid boundary (matches the
  // paper's Fig. 11 layouts where devices sit at the periphery and the
  // interior serves as routing/storage fabric).
  std::vector<int> boundary;
  for (int y = 0; y < grid.height(); ++y)
    for (int x = 0; x < grid.width(); ++x)
      if ((x == 0 || y == 0 || x == grid.width() - 1 ||
           y == grid.height() - 1) &&
          !banned(grid.node_at(x, y)))
        boundary.push_back(grid.node_at(x, y));
  std::vector<int> nodes;
  if (devices <= static_cast<int>(boundary.size())) {
    const double stride = static_cast<double>(boundary.size()) / devices;
    for (int d = 0; d < devices; ++d)
      nodes.push_back(boundary[static_cast<std::size_t>(
          std::min<double>(boundary.size() - 1, std::floor(d * stride)))]);
    // Deduplicate collisions (possible for tiny grids).
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  }
  for (int n = 0; static_cast<int>(nodes.size()) < devices &&
                  n < grid.node_count();
       ++n)
    if (!banned(n) && std::find(nodes.begin(), nodes.end(), n) == nodes.end())
      nodes.push_back(n);
  nodes.resize(static_cast<std::size_t>(devices));

  std::vector<bool> occupied(static_cast<std::size_t>(grid.node_count()),
                             false);
  for (int n : nodes) occupied[static_cast<std::size_t>(n)] = true;

  long cost = placement_cost(grid, workload, nodes);
  std::vector<int> best = nodes;
  long best_cost = cost;

  double temperature = options.initial_temperature;
  const double cooling =
      std::pow(0.01 / options.initial_temperature,
               1.0 / std::max(1, options.iterations));

  for (int iter = 0; iter < options.iterations; ++iter) {
    // Move one device to a random free node, or swap two devices.
    const int d = static_cast<int>(rng.index(static_cast<std::size_t>(devices)));
    std::vector<int> candidate = nodes;
    if (devices >= 2 && rng.bernoulli(0.3)) {
      int d2 = static_cast<int>(rng.index(static_cast<std::size_t>(devices)));
      while (d2 == d)
        d2 = static_cast<int>(rng.index(static_cast<std::size_t>(devices)));
      std::swap(candidate[static_cast<std::size_t>(d)],
                candidate[static_cast<std::size_t>(d2)]);
    } else {
      const int target =
          static_cast<int>(rng.index(static_cast<std::size_t>(grid.node_count())));
      if (occupied[static_cast<std::size_t>(target)] || banned(target))
        continue;
      candidate[static_cast<std::size_t>(d)] = target;
    }
    const long candidate_cost = placement_cost(grid, workload, candidate);
    const long delta = candidate_cost - cost;
    if (delta <= 0 ||
        rng.uniform_real() < std::exp(-static_cast<double>(delta) /
                                      std::max(1e-9, temperature))) {
      for (int n : nodes) occupied[static_cast<std::size_t>(n)] = false;
      nodes = candidate;
      for (int n : nodes) occupied[static_cast<std::size_t>(n)] = true;
      cost = candidate_cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = nodes;
      }
    }
    temperature *= cooling;
  }
  return best;
}

} // namespace transtore::arch
