// Content-addressed result cache: the pipeline is deterministic per
// (sequencing graph, pipeline options), so repeated requests for the same
// assay should be a lookup, not an 11-second MILP re-solve.
//
// Keying. make_cache_key() derives a *canonical* text form of the request:
// operations are sorted by name and referenced by name (so the same graph
// built with its operations added in a different order -- different ids --
// hashes equal), and every pipeline_options field is printed with
// round-trip-exact doubles (so any option change hashes different). The
// 64-bit FNV-1a hash of that text addresses the entry; the full canonical
// text is kept alongside and compared exactly on every lookup, so a hash
// collision degrades to a miss, never to a wrong result.
//
// Tiers. An in-memory LRU tier (bounded by entry count AND by a byte
// budget charged from stored document sizes) sits in front of an optional
// on-disk tier (one file per key, <dir>/<16-hex-digest>.json, written
// atomically via rename). Disk entries are the api/serialize.h flow
// documents themselves -- self-describing and human-inspectable; on a disk
// hit the document is deserialized, its key re-derived from the embedded
// (graph, options) and verified, and the entry promoted into memory.
//
// Zero-copy hits. Entries are immutable and handed out as
// shared_ptr<const entry>: a hit shares the stored flow_result and
// document bytes with the cache (and with every other concurrent hit)
// instead of deep-copying them -- the serve front end writes the document
// bytes straight from the shared entry.
//
// Only fully completed (status::ok) results are cached; best-effort
// time_limit/cancelled outcomes and failures are always recomputed.
//
// Single-flight. Concurrent misses on the same key would all pay the
// solve (a cache stampede): lookup_or_lead() elects one leader per key
// and blocks the other callers until the leader stores (they then return
// the entry as a hit) or aborts (the next waiter takes over leadership).
// This is what makes "only the first occurrence of each (graph, options)
// pays solver time" hold under a concurrent request stream.
//
// Thread safety: every public member is safe to call concurrently.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "api/pipeline.h"

namespace transtore::api {

/// Canonical identity of one (graph, options) request.
struct cache_key {
  std::string canonical;   // name-canonical text (hash + exact-match basis)
  /// Id-faithful graph text. Two graphs that differ only in operation
  /// insertion order share `canonical` (and hash) but not `identity`; a
  /// cache hit additionally requires identity equality, because the cached
  /// result addresses operations by id -- serving it to an id-permuted
  /// twin would silently mis-map every operation. The twin recomputes (and
  /// takes over the entry) instead.
  std::string identity;
  std::uint64_t hash = 0;  // FNV-1a of `canonical`

  /// 16-hex-digit digest (the on-disk file stem).
  [[nodiscard]] std::string digest() const;
};

/// Derive the canonical key. Invariant under operation insertion order when
/// operation names are unique (they are for every built-in assay and every
/// graph accepted by assay/io.h); graphs with duplicate names fall back to
/// id-order canonicalization, which is safe but order-sensitive.
[[nodiscard]] cache_key make_cache_key(const assay::sequencing_graph& graph,
                                       const pipeline_options& options);

/// Same key extended by a scenario tag (e.g. a fault-recovery scenario's
/// canonical description). An empty tag yields exactly the plain key, so
/// pre-existing keys and disk files stay stable.
[[nodiscard]] cache_key make_cache_key(const assay::sequencing_graph& graph,
                                       const pipeline_options& options,
                                       const std::string& scenario);

struct result_cache_options {
  /// Entries held by the in-memory LRU tier.
  std::size_t memory_entries = 64;
  /// Directory of the on-disk tier; empty disables it. Created on first
  /// store if missing.
  std::string disk_dir;
  /// Entries held by the (memory-only) negative tier: structurally failed
  /// outcomes (infeasible / invalid_input) that are deterministic for the
  /// key and therefore pointless to re-solve. 0 disables negative caching.
  std::size_t negative_entries = 256;
  /// Byte budget of the in-memory tier, each entry charged the size of its
  /// stored document. 0 = no byte bound (entry count still applies).
  /// Least-recently-used entries are evicted until the tier fits; the most
  /// recently stored entry is always kept, so a single document larger
  /// than the budget still caches (the budget is then exceeded by exactly
  /// that one entry).
  std::size_t memory_bytes = 0;
};

struct cache_stats {
  std::uint64_t lookups = 0;
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  /// Bytes released by memory-tier evictions (document sizes of evicted
  /// entries; the on-disk copies, when a disk tier exists, remain).
  std::uint64_t bytes_evicted = 0;
  /// Memory hits that coalesced onto a concurrent leader's in-flight solve
  /// (a subset of memory_hits: the waiter paid a wait, not a solve).
  std::uint64_t coalesced_hits = 0;
  /// Disk entries that could not be read, parsed, or key-verified (treated
  /// as misses).
  std::uint64_t disk_errors = 0;
  /// Negative tier (counted separately from the positive tiers above;
  /// negative probes do not touch `lookups`/`misses`).
  std::uint64_t negative_hits = 0;
  std::uint64_t negative_stores = 0;
  std::uint64_t negative_evictions = 0;
  /// Point-in-time occupancy, captured under the same lock as the counters
  /// above: stats() is one atomic snapshot, so `lookups == memory_hits +
  /// disk_hits + misses` and `entries`/`bytes` agree with the counters no
  /// matter what runs concurrently.
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t negative_entries = 0;
};

class result_cache {
public:
  explicit result_cache(result_cache_options options = {});

  /// One cached result: the serialized flow document (served verbatim by
  /// the service front end, hence byte-identical replays) plus the
  /// deserialized value for in-process reuse.
  struct entry {
    std::shared_ptr<const std::string> document;
    std::shared_ptr<const flow_result> flow;
  };
  /// How entries are handed out: shared and immutable. Every hit on one
  /// key returns the same entry object -- no per-hit copy of the
  /// flow_result or the document bytes.
  using entry_ptr = std::shared_ptr<const entry>;

  /// Memory tier first, then disk. A hit refreshes LRU recency. Does not
  /// join or lead flights (a concurrent solve of the same key reads as a
  /// plain miss) -- the solve paths use lookup_or_lead instead. Null on a
  /// miss.
  [[nodiscard]] entry_ptr lookup(const cache_key& key);

  /// Outcome of a single-flight lookup.
  enum class flight {
    hit,    // `out` holds the entry (cached, from disk, or coalesced onto
            // a concurrent leader's freshly stored result)
    leader, // miss; the caller owns the solve and MUST end the flight via
            // store() (success) or abort_flight() (failure)
    bypass, // `give_up` fired while coalescing; the caller proceeds on its
            // own (an optional store() is still welcome) and must NOT
            // call abort_flight()
  };

  /// Single-flight lookup (see header comment). `give_up` is polled while
  /// waiting on a concurrent leader; return true to stop waiting (e.g. a
  /// fired cancel token or an expired deadline).
  [[nodiscard]] flight lookup_or_lead(const cache_key& key, entry_ptr& out,
                                      const std::function<bool()>& give_up);

  /// Insert (or refresh) an entry in both tiers; completes a flight on
  /// this key and wakes its waiters. Never throws: disk-tier failures are
  /// counted in stats().disk_errors and skipped.
  void store(const cache_key& key, entry e);

  /// Leader's failure path: end the flight without storing. The longest-
  /// waiting caller inherits leadership.
  void abort_flight(const cache_key& key);

  /// A cached structural failure: the status and message the solver is
  /// guaranteed to reproduce for this key.
  struct negative_entry {
    status code = status::infeasible;
    std::string message;
  };

  /// Probe the negative tier (memory-only, bounded, LRU). Not part of the
  /// single-flight protocol: callers probe before lookup_or_lead.
  [[nodiscard]] std::optional<negative_entry> lookup_negative(
      const cache_key& key);

  /// Record a structural failure for this key. Only infeasible and
  /// invalid_input outcomes are accepted (anything else is dropped --
  /// time_limit/cancelled/internal are not deterministic for the key).
  void store_negative(const cache_key& key, negative_entry e);

  [[nodiscard]] cache_stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const result_cache_options& options() const {
    return options_;
  }

private:
  struct slot {
    std::string canonical;
    std::string identity;
    entry_ptr value;
  };
  using lru_list = std::list<slot>;

  /// Document size charged against the byte budget.
  [[nodiscard]] static std::size_t charge(const entry_ptr& e) {
    return e && e->document ? e->document->size() : 0;
  }

  /// All three expect lock_ held.
  void touch(lru_list::iterator it);
  void insert_locked(const cache_key& key, entry_ptr e);
  void evict_to_budget_locked();
  [[nodiscard]] entry_ptr disk_lookup(const cache_key& key);
  void disk_store(const cache_key& key, const entry& e);
  [[nodiscard]] std::string disk_path(const cache_key& key) const;

  struct negative_slot {
    std::string canonical;
    std::string identity;
    negative_entry value;
  };
  using negative_list = std::list<negative_slot>;

  result_cache_options options_;
  mutable std::mutex lock_;
  lru_list order_; // front = most recent
  std::size_t bytes_ = 0; // sum of charge() over order_
  std::unordered_map<std::string, lru_list::iterator> index_; // by canonical
  negative_list negative_order_; // front = most recent
  std::unordered_map<std::string, negative_list::iterator> negative_index_;
  std::unordered_set<std::string> inflight_; // keys being solved by a leader
  std::condition_variable flight_done_;
  cache_stats stats_;
  bool disk_dir_ready_ = false;
};

} // namespace transtore::api
