// Socket serve front end: a unix-domain (and optional loopback-TCP)
// listener that multiplexes many concurrent line-delimited-JSON
// connections onto one request handler -- in practice one api::executor
// and one shared api::result_cache behind `transtore_cli serve`.
//
// The front end owns the transport and nothing else:
//
//  * an accept loop (one thread, poll over every listener plus a wake
//    pipe) hands each connection to a session;
//  * each session runs a reader thread (framing: the hardened 1 MiB
//    per-line cap, oversized/truncated lines answered with a structured
//    error built by the caller's framing_error hook) and a writer thread
//    (responses resolved and written strictly in request order);
//  * the handler is called on the reader thread and must never block on a
//    solve -- it either returns a complete response line or a deferred
//    `finish` closure that the writer resolves in order. `stats` and
//    `shutdown` are therefore sequence points per connection: their
//    replies are built only after every earlier response on that
//    connection has resolved.
//
// Backpressure: with max_inflight > 0 the front end counts, per
// connection, the responses admitted but not yet written; at the cap the
// handler is invoked with serve_request_info::overloaded set and is
// expected to shed the request (a structured queue_full error) instead of
// queueing more work. Shed replies are counted in serve_stats::shed.
//
// Observability: serve_stats is an atomic snapshot (one lock) of
// connection counters, per-connection request counts, byte counters, and
// per-op latency histograms (16 power-of-two millisecond buckets,
// admission to write completion).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace transtore::api {

/// What the handler hands back for one request line. Exactly one of
/// `line` (complete response) or `finish` (deferred builder, resolved on
/// the writer thread in request order) should be set; an empty reply
/// writes nothing but still advances the order.
struct serve_reply {
  std::string op = "error"; // metric label: latency is keyed per op
  std::string line;         // immediate response (errors, ping, acks)
  std::function<std::string()> finish; // deferred response, may block
  bool shed = false;              // counted in serve_stats::shed
  bool close_connection = false;  // close this connection after writing
  bool shutdown_server = false;   // unblock wait() after writing
};

/// Per-request context passed to the handler.
struct serve_request_info {
  std::uint64_t connection = 0; // 1-based connection id
  std::uint64_t sequence = 0;   // 1-based request number on this connection
  std::size_t inflight = 0;     // admitted, response not yet written
  bool overloaded = false;      // inflight at max_inflight: please shed
};

using serve_handler =
    std::function<serve_reply(const std::string& line,
                              const serve_request_info& info)>;

struct serve_options {
  /// Unix-domain listener path; empty = no unix listener. An existing
  /// socket file at the path is replaced.
  std::string unix_path;
  /// Loopback TCP listener port; -1 = no TCP listener, 0 = ephemeral
  /// (read the bound port back via serve_front::tcp_port()).
  int tcp_port = -1;
  /// Hard per-request-line cap; longer lines are consumed up to the next
  /// newline and answered with one framing error.
  std::size_t max_line_bytes = std::size_t{1} << 20; // 1 MiB
  /// Per-connection cap on admitted-but-unwritten responses; 0 = none.
  std::size_t max_inflight = 0;
  /// Builds the response line for framing-level errors the front end
  /// itself detects (oversized/truncated lines, handler exceptions), so
  /// the wire protocol stays with the caller. Required.
  std::function<std::string(const char* code, const std::string& message)>
      framing_error;
};

/// One latency histogram: power-of-two millisecond buckets, bucket 0 is
/// [0, 1) ms, bucket i is [2^(i-1), 2^i) ms, the last bucket is open.
struct op_latency {
  static constexpr std::size_t bucket_count = 16;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
  std::array<std::uint64_t, bucket_count> buckets{};
};

/// Atomic snapshot of the front end (every field under one lock, so
/// `requests == responses + currently-inflight + shed-but-unwritten`
/// style cross-checks hold in any snapshot).
struct serve_stats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests = 0;  // non-blank lines admitted to a handler
  std::uint64_t responses = 0; // response lines fully written
  std::uint64_t shed = 0;      // replies flagged shed by the handler
  std::uint64_t framing_errors = 0; // oversized/truncated/handler-throw
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Requests admitted per currently-open connection (unordered).
  std::vector<std::uint64_t> open_connection_requests;
  /// Admission-to-write-completion latency per op label.
  std::map<std::string, op_latency> latency;
};

class serve_front {
public:
  serve_front(serve_options options, serve_handler handler);
  ~serve_front();
  serve_front(const serve_front&) = delete;
  serve_front& operator=(const serve_front&) = delete;

  /// Bind + listen on every configured listener and start the accept
  /// loop. Returns an empty string on success, otherwise a description of
  /// the failure (no listener is left behind on failure).
  [[nodiscard]] std::string start();

  /// The TCP port actually bound (meaningful after start() when
  /// options.tcp_port >= 0; ephemeral requests read back the real port).
  [[nodiscard]] int tcp_port() const;

  /// Block until a handler reply set shutdown_server or stop() ran.
  void wait();

  /// Stop accepting, close the read side of every session (pending
  /// responses still resolve and get written, in order), join every
  /// thread, close and unlink listeners. Idempotent; also run by the
  /// destructor.
  void stop();

  [[nodiscard]] serve_stats stats() const;

private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

} // namespace transtore::api
