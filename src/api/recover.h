// Mid-assay fault recovery -- the retry ladder over a faulted run.
//
// recover() takes a completed synthesis result, a fault set, and the time
// step at which the faults struck, and produces a single verifier-passing
// schedule + chip in which every operation that had started before the
// fault is kept verbatim (completed work is never re-executed) and the
// remainder is re-planned around the failed resources. Three rungs are
// tried in order, each strictly more invasive and each cancellable through
// the run_context:
//
//   1. reroute      -- the schedule survives as-is (no future operation was
//                      bound to a failed device); only the chip's paths and
//                      cache segments are re-derived around the banned
//                      resources, with devices pinned to their original
//                      nodes. This models re-programming the valve control
//                      sequence as if the routes had avoided the faults all
//                      along (time-dependent re-routing of a half-executed
//                      plan is out of scope).
//   2. reschedule   -- the remaining sub-DAG is spliced onto the healthy
//                      devices (sched/splice.h) and the chip re-routed on
//                      the original grid, devices still pinned.
//   3. resynthesize -- the spliced schedule is re-synthesized on a
//                      replacement grid with free placement and growth;
//                      valve/edge/storage faults are cleared (they name
//                      segments of the broken chip), device exclusions are
//                      kept.
//
// Outcome mapping: success when the recovered makespan does not exceed the
// original; status::degraded (with the full value) when recovery succeeded
// but finishes later; status::infeasible naming the blocking resource when
// no rung can help (sim::recovery_blocker).
#pragma once

#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/result.h"
#include "api/run_context.h"
#include "api/serialize.h"
#include "arch/fault.h"

namespace transtore::api {

/// Which rung of the retry ladder produced the recovery.
enum class recovery_rung { none = 0, reroute = 1, reschedule = 2,
                           resynthesize = 3 };

[[nodiscard]] const char* to_string(recovery_rung r);

/// Everything recover() needs: the run's identity, its original result,
/// and the injected fault.
struct recovery_request {
  assay::sequencing_graph graph;
  pipeline_options options; // configuration the original run was made with
  flow_result original;     // the run being recovered
  arch::fault_set faults;
  int fault_time = 0;
};

/// A successful (possibly degraded) recovery.
struct recovery_result {
  recovery_rung rung = recovery_rung::none;
  int fault_time = 0;
  int original_makespan = 0;
  int recovered_makespan = 0;
  std::vector<int> completed_ops;   // prefix kept verbatim (started < T)
  std::vector<int> rescheduled_ops; // remainder re-planned (empty on rung 1)
  /// The recovered run: spliced schedule, re-routed or re-synthesized chip,
  /// compacted layout, simulator stats. Every wall-clock field is zeroed so
  /// recovery documents are byte-identical across runs and machines.
  flow_result recovered;
};

/// Run the retry ladder. Returns ok or degraded with a recovery_result,
/// infeasible naming the blocking resource, or the usual structured
/// cancellation/deadline/internal outcomes.
[[nodiscard]] result<recovery_result> recover(const recovery_request& req,
                                              const run_context& ctx = {});

/// Resume recovery from a serialized checkpoint document (the
/// cross-process path): same ladder, fault set and time taken from the
/// checkpoint state.
[[nodiscard]] result<recovery_result> recover(const checkpoint_document& doc,
                                              const run_context& ctx = {});

/// The recovery outcome as one JSON document (used by the serve front end
/// and `transtore_cli --fault`): rung, makespans, op partition, and the
/// embedded flow document of the recovered run.
[[nodiscard]] std::string to_json(const assay::sequencing_graph& graph,
                                  const pipeline_options& options,
                                  const recovery_result& r);

} // namespace transtore::api
