// Staged synthesis pipeline -- the public surface of the library.
//
// The paper's method is four independent stages; this API makes each one a
// first-class value that can be inspected, serialized, and reused:
//
//   api::pipeline p(graph, options);
//   auto scheduled   = p.schedule(ctx);                 // Section 3.1
//   auto synthesized = scheduled->synthesize(ctx);      // Section 3.2
//   auto compressed  = synthesized->compress(ctx);      // Section 3.3
//   auto verified    = compressed->verify(ctx);         // simulator replay
//   core::flow_result r = verified->result();
//
// Every stage returns api::result<Stage> (see result.h): no exceptions
// cross the api boundary, deadline/cancel outcomes are structured, and a
// best-effort value (e.g. the heuristic schedule after a truncated ILP) is
// still delivered. Stage values are cheap to copy and share their upstream
// outputs, so parameter sweeps re-synthesize from one schedule without
// re-scheduling:
//
//   auto s = p.schedule().take();
//   for (int g : {4, 5, 6})
//     auto chip = s.synthesize({.grid_width = g, .grid_height = g}, ctx);
//
// core::run_flow() remains as a thin blocking shim over this pipeline.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "api/result.h"
#include "api/run_context.h"
#include "arch/synthesis.h"
#include "assay/sequencing_graph.h"
#include "baseline/dedicated_storage.h"
#include "phys/layout.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace transtore::api {

/// Complete configuration of one pipeline run (the former
/// core::flow_options; core keeps an alias to this type).
struct pipeline_options {
  // Resources (paper: "maximum numbers of devices allowed in the chip").
  int device_count = 1;
  int grid_width = 4;
  int grid_height = 4;

  // Timing model.
  sched::timing_options timing{};

  // Scheduling (objective (6) weights and engine).
  double alpha = 1.0;
  double beta = 0.15;
  bool storage_aware = true; // false = "optimize execution time only"
  sched::schedule_engine schedule_engine = sched::schedule_engine::combined;
  double sched_ilp_time_limit = 10.0;
  int heuristic_restarts = 24;
  /// Simulated-annealing improvement iterations after the constructive
  /// schedulers (sched::scheduler_options::local_search_iterations).
  int local_search_iterations = 6000;
  /// Worker threads for the scheduling MILP's branch-and-bound tree search
  /// (sched::scheduler_options::solver_threads): 1 = sequential, 0 = all
  /// hardware threads, > 1 = parallel engine. Clamped at execution time by
  /// the run_context's thread budget (see run_context::set_thread_budget and
  /// the executor's oversubscription guard) -- the clamp never changes the
  /// cache key.
  int solver_threads = 1;
  /// Bit-identical deterministic parallel search at any thread count
  /// (milp::solver_options::deterministic).
  bool solver_deterministic = false;
  /// Racing solver portfolio for the scheduling MILP
  /// (sched::scheduler_options::portfolio).
  bool portfolio = false;

  // Architecture.
  arch::synthesis_engine arch_engine = arch::synthesis_engine::heuristic;
  double arch_ilp_time_limit = 20.0;
  int arch_attempts = 8;
  /// On capacity failure, retry synthesis up to this many times with a
  /// one-step-larger grid (0 = fail immediately, the paper's fixed-grid
  /// protocol). The grid actually used is visible in the chip.
  int grid_growth = 0;
  /// Resources known to be failed before the run starts (arch/fault.h).
  /// Failed devices shrink the schedulable device pool; failed valves,
  /// channel segments, and storage segments are never placed on, routed
  /// over, or used for caching. Empty = healthy chip.
  arch::fault_set faults;

  // Physical design.
  phys::phys_options physical{};

  // Extras.
  bool run_baseline = false; // also evaluate the dedicated-storage baseline
  bool verify = true;        // run the independent simulator
  std::uint64_t seed = 1;
};

/// Aggregated outputs of a full run (the former core::flow_result; core
/// keeps an alias to this type).
struct flow_result {
  sched::scheduling_result scheduling;
  arch::arch_result architecture;
  phys::layout_result layout;
  std::optional<sim::sim_stats> stats;
  std::optional<baseline::baseline_result> baseline;
  double total_seconds = 0.0;

  /// Multi-line summary of the headline metrics.
  [[nodiscard]] std::string report(const assay::sequencing_graph& graph) const;
};

/// Flatten a flow result (plus the assay identity) to one JSON document.
/// With include_timing = false every wall-clock field is omitted, making
/// reports for deterministic runs byte-comparable across machines and
/// worker counts.
[[nodiscard]] std::string to_json(const assay::sequencing_graph& graph,
                                  const flow_result& result,
                                  bool include_timing = true);

namespace detail {
/// Immutable per-run state shared by every stage value of one pipeline.
struct job_state {
  assay::sequencing_graph graph;
  pipeline_options options;
};

/// Internal bridge used by api/serialize.cpp to reconstruct stage values
/// from deserialized parts (the only way to build them outside a pipeline).
struct stage_access;
} // namespace detail

class result_cache;
class synthesized;
class compressed;
class verified;

/// Per-call overrides for scheduled::synthesize -- the sweep knobs.
struct synthesize_overrides {
  std::optional<int> grid_width;
  std::optional<int> grid_height;
  std::optional<arch::synthesis_engine> engine;
  std::optional<int> attempts;
  std::optional<int> grid_growth;
};

/// Stage 1 output: the storage-aware schedule. Reusable: synthesize() may
/// be called any number of times (different grids/engines) without paying
/// for scheduling again.
class scheduled {
public:
  [[nodiscard]] const sched::scheduling_result& scheduling() const {
    return *scheduling_;
  }
  [[nodiscard]] const sched::schedule& best() const {
    return scheduling_->best;
  }
  [[nodiscard]] const assay::sequencing_graph& graph() const {
    return state_->graph;
  }

  /// The schedule as a standalone JSON document.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] result<synthesized> synthesize(
      const run_context& ctx = {}) const;
  [[nodiscard]] result<synthesized> synthesize(
      const synthesize_overrides& overrides, const run_context& ctx = {}) const;

private:
  friend class pipeline;
  friend struct detail::stage_access;
  std::shared_ptr<const detail::job_state> state_;
  std::shared_ptr<const sched::scheduling_result> scheduling_;
};

/// Stage 2 output: the synthesized chip architecture.
class synthesized {
public:
  [[nodiscard]] const sched::scheduling_result& scheduling() const {
    return *scheduling_;
  }
  [[nodiscard]] const arch::arch_result& architecture() const {
    return *architecture_;
  }
  [[nodiscard]] const arch::chip& chip() const { return architecture_->result; }
  [[nodiscard]] const assay::sequencing_graph& graph() const {
    return state_->graph;
  }

  /// The architecture metrics as a standalone JSON document.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] result<compressed> compress(const run_context& ctx = {}) const;
  [[nodiscard]] result<compressed> compress(const phys::phys_options& physical,
                                            const run_context& ctx = {}) const;

private:
  friend class scheduled;
  friend struct detail::stage_access;
  std::shared_ptr<const detail::job_state> state_;
  std::shared_ptr<const sched::scheduling_result> scheduling_;
  std::shared_ptr<const arch::arch_result> architecture_;
};

/// Stage 3 output: the compacted physical layout.
class compressed {
public:
  [[nodiscard]] const sched::scheduling_result& scheduling() const {
    return *scheduling_;
  }
  [[nodiscard]] const arch::arch_result& architecture() const {
    return *architecture_;
  }
  [[nodiscard]] const phys::layout_result& layout() const { return *layout_; }
  [[nodiscard]] const assay::sequencing_graph& graph() const {
    return state_->graph;
  }

  /// The layout dimensions as a standalone JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Run the independent simulator (and, when options.run_baseline is set,
  /// the dedicated-storage baseline).
  [[nodiscard]] result<verified> verify(const run_context& ctx = {}) const;

  /// Assemble a flow_result without verification (options.verify = false
  /// path of the one-shot flow).
  [[nodiscard]] flow_result result_without_verification() const;

private:
  friend class synthesized;
  friend struct detail::stage_access;
  std::shared_ptr<const detail::job_state> state_;
  std::shared_ptr<const sched::scheduling_result> scheduling_;
  std::shared_ptr<const arch::arch_result> architecture_;
  std::shared_ptr<const phys::layout_result> layout_;
};

/// Stage 4 output: simulator statistics (and optional baseline) plus the
/// assembled flow_result.
class verified {
public:
  [[nodiscard]] const sim::sim_stats& stats() const { return *stats_; }
  [[nodiscard]] const assay::sequencing_graph& graph() const {
    return state_->graph;
  }

  /// The aggregate result (total_seconds = sum of recorded stage times).
  [[nodiscard]] flow_result result() const;

  /// Full JSON document (same shape as core::to_json).
  [[nodiscard]] std::string to_json(bool include_timing = true) const;

private:
  friend class compressed;
  friend struct detail::stage_access;
  std::shared_ptr<const detail::job_state> state_;
  std::shared_ptr<const sched::scheduling_result> scheduling_;
  std::shared_ptr<const arch::arch_result> architecture_;
  std::shared_ptr<const phys::layout_result> layout_;
  std::shared_ptr<const sim::sim_stats> stats_;
  std::shared_ptr<const baseline::baseline_result> baseline_; // may be null
};

/// Outcome of a cache-aware run: the structured result plus whether it was
/// served from the cache and the full serialized document (api/serialize.h
/// flow format) that was stored or loaded -- the service front end replies
/// with this document verbatim so replays are byte-identical.
///
/// The value is a *shared immutable* flow_result: a cache hit hands out
/// the cache entry's own object (and document bytes), so serving a hit
/// copies nothing -- every concurrent hit on a key shares one flow_result
/// and one document string with the cache.
struct cached_outcome {
  result<std::shared_ptr<const flow_result>> outcome;
  bool cache_hit = false;
  std::shared_ptr<const std::string> document; // null when nothing was cached
};

/// Entry point: binds a sequencing graph to a configuration. Stateless
/// apart from the immutable job description; schedule() may be called
/// repeatedly (e.g. after tweaking nothing but the run_context).
class pipeline {
public:
  explicit pipeline(assay::sequencing_graph graph,
                    pipeline_options options = {});

  [[nodiscard]] const assay::sequencing_graph& graph() const {
    return state_->graph;
  }
  [[nodiscard]] const pipeline_options& options() const {
    return state_->options;
  }

  /// Attach a result cache: run() becomes a lookup keyed on the canonical
  /// content hash of (graph, options) and only solves on a miss (storing
  /// the completed result). See api/result_cache.h.
  pipeline& set_cache(std::shared_ptr<result_cache> cache) {
    cache_ = std::move(cache);
    return *this;
  }

  /// Stage 1: storage-aware scheduling & binding.
  [[nodiscard]] result<scheduled> schedule(const run_context& ctx = {}) const;

  /// One-shot convenience: schedule -> synthesize -> compress -> verify
  /// (verification and baseline per options). Equivalent to the staged
  /// calls; core::run_flow is a shim over this. Consults the cache when one
  /// is attached.
  [[nodiscard]] result<flow_result> run(const run_context& ctx = {}) const;

  /// run() plus cache bookkeeping: reports whether the result came from the
  /// cache, shares (never copies) the cached flow_result, and hands back
  /// the serialized flow document. Without an attached cache this is run()
  /// with cache_hit = false and no document. This is the zero-copy path
  /// the executor and serve front end use; run() itself pays one copy to
  /// honour its by-value contract.
  [[nodiscard]] cached_outcome run_cached(const run_context& ctx = {}) const;

private:
  friend struct detail::stage_access;
  [[nodiscard]] result<flow_result> run_uncached(const run_context& ctx) const;
  std::shared_ptr<const detail::job_state> state_;
  std::shared_ptr<result_cache> cache_;
};

} // namespace transtore::api
