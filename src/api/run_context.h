// Execution context threaded through every pipeline stage: a wall-clock
// deadline shared by all stages, a cancellation token, a progress callback,
// and a logging sink. A default-constructed run_context imposes nothing --
// no deadline, no cancellation, silent.
//
// The deadline is absolute (fixed when set_deadline is called), so a
// four-stage pipeline and a thousand-job batch share one budget naturally:
// each stage clamps its solver time limits to remaining_seconds().
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <utility>

#include "common/interrupt.h"
#include "common/logging.h"

namespace transtore::api {

/// One progress tick: which stage, what happened, seconds since the
/// context was created.
struct progress_event {
  std::string stage;  // "schedule" / "synthesize" / "compress" / "verify" / "batch"
  std::string detail;
  double elapsed_seconds = 0.0;
};

using progress_callback = std::function<void(const progress_event&)>;
using log_sink = std::function<void(log_level, const std::string&)>;

class run_context {
public:
  run_context() : created_(clock::now()) {}

  /// Absolute wall-clock budget measured from now; <= 0 clears it.
  run_context& set_deadline(double seconds) {
    if (seconds > 0.0)
      deadline_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                                     std::chrono::duration<double>(seconds));
    else
      deadline_ = {};
    has_deadline_ = seconds > 0.0;
    return *this;
  }
  run_context& set_cancel(cancel_token token) {
    cancel_ = std::move(token);
    return *this;
  }
  run_context& set_progress(progress_callback callback) {
    progress_ = std::move(callback);
    return *this;
  }
  run_context& set_log(log_sink sink) {
    log_ = std::move(sink);
    return *this;
  }
  /// Cap on the solver threads any single stage may use (0 = uncapped).
  /// The executor sets this on every job context so W concurrent jobs with
  /// T solver threads each keep W x T within hardware_concurrency.
  run_context& set_thread_budget(int threads) {
    thread_budget_ = threads > 0 ? threads : 0;
    return *this;
  }

  [[nodiscard]] static run_context with_deadline(double seconds) {
    run_context ctx;
    ctx.set_deadline(seconds);
    return ctx;
  }

  [[nodiscard]] bool cancelled() const { return cancel_.cancelled(); }
  [[nodiscard]] bool deadline_expired() const {
    return has_deadline_ && clock::now() >= deadline_;
  }
  [[nodiscard]] bool interrupted() const {
    return cancelled() || deadline_expired();
  }
  [[nodiscard]] bool has_deadline() const { return has_deadline_; }

  /// Seconds left on the deadline (never negative); "huge" when unlimited.
  [[nodiscard]] double remaining_seconds() const {
    if (!has_deadline_) return 1e18;
    const double left =
        std::chrono::duration<double>(deadline_ - clock::now()).count();
    return left > 0.0 ? left : 0.0;
  }
  /// Remaining budget in the 0-means-unlimited convention of the option
  /// structs, floored away from zero so an exhausted budget still reads as
  /// "a tiny limit" rather than "no limit".
  [[nodiscard]] double budget_or_zero() const {
    if (!has_deadline_) return 0.0;
    const double left = remaining_seconds();
    return left > 1e-3 ? left : 1e-3;
  }

  [[nodiscard]] const cancel_token& token() const { return cancel_; }

  [[nodiscard]] int thread_budget() const { return thread_budget_; }
  /// Apply the budget to a requested solver thread count: 0 (auto) becomes
  /// the budget itself when one is set, and explicit requests are clamped
  /// down to it. With no budget the request passes through.
  [[nodiscard]] int clamp_threads(int requested) const {
    if (thread_budget_ <= 0) return requested;
    if (requested <= 0) return thread_budget_;
    return requested < thread_budget_ ? requested : thread_budget_;
  }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - created_).count();
  }

  void report(const std::string& stage, const std::string& detail) const {
    if (progress_) progress_({stage, detail, elapsed_seconds()});
  }
  void log(log_level level, const std::string& message) const {
    if (log_)
      log_(level, message);
    else
      log_line(level, message);
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point created_;
  clock::time_point deadline_{};
  bool has_deadline_ = false;
  int thread_budget_ = 0;
  cancel_token cancel_;
  progress_callback progress_;
  log_sink log_;
};

} // namespace transtore::api
