#include "api/recover.h"

#include <algorithm>
#include <utility>

#include "arch/synthesis.h"
#include "common/error.h"
#include "common/json.h"
#include "phys/layout.h"
#include "sched/splice.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"

namespace transtore::api {
namespace {

template <typename T>
result<T> failure_from_current_exception(const run_context& ctx) {
  try {
    throw;
  } catch (const cancelled_error& e) {
    return result<T>::failure(
        ctx.cancelled() ? status::cancelled : status::time_limit, e.what());
  } catch (const invalid_input_error& e) {
    return result<T>::failure(status::invalid_input, e.what());
  } catch (const infeasible_error& e) {
    return result<T>::failure(status::infeasible, e.what());
  } catch (const capacity_error& e) {
    return result<T>::failure(status::capacity, e.what());
  } catch (const std::exception& e) {
    return result<T>::failure(status::internal, e.what());
  }
}

/// Assemble the recovered flow_result: compact the chip, replay the
/// schedule through the independent simulator, and zero every wall-clock
/// field so recovery documents are byte-identical across runs, machines,
/// and worker counts.
flow_result assemble_recovered(const assay::sequencing_graph& graph,
                               const sched::schedule& s,
                               arch::arch_result architecture,
                               const phys::phys_options& physical,
                               const cancel_token& cancel) {
  flow_result flow;
  flow.scheduling.best = s;
  phys::phys_options po = physical;
  po.cancel = cancel;
  flow.layout = phys::generate_layout(architecture.result, po);
  flow.stats = sim::simulate(graph, s, architecture.workload,
                             architecture.result);
  flow.architecture = std::move(architecture);
  flow.scheduling.seconds = 0.0;
  flow.architecture.seconds = 0.0;
  flow.layout.seconds = 0.0;
  flow.total_seconds = 0.0;
  return flow;
}

/// Shared arch configuration of the pinned rungs (1 and 2): original grid,
/// devices pinned to their original nodes, fault bans active.
arch::arch_options pinned_arch_options(const recovery_request& req,
                                       const arch::chip& chip,
                                       const arch::fault_set& faults,
                                       const run_context& ctx) {
  arch::arch_options ao;
  ao.grid_width = chip.grid().width();
  ao.grid_height = chip.grid().height();
  ao.attempts = req.options.arch_attempts;
  ao.placement.seed = req.options.seed;
  ao.router.seed = req.options.seed;
  ao.faults = faults;
  ao.fixed_placement = chip.device_nodes();
  ao.cancel = ctx.token();
  ao.time_budget_seconds = ctx.budget_or_zero();
  return ao;
}

result<recovery_result> finish(const run_context& ctx, recovery_result r) {
  r.recovered_makespan = r.recovered.scheduling.best.makespan();
  ctx.report("recover",
             std::string("done via ") + to_string(r.rung) + ", tE=" +
                 std::to_string(r.recovered_makespan) + " (was " +
                 std::to_string(r.original_makespan) + ")");
  if (r.recovered_makespan > r.original_makespan)
    return result<recovery_result>::partial(
        status::degraded, std::move(r),
        "recover: recovered schedule finishes at " +
            std::to_string(r.recovered_makespan) +
            " vs the original " + std::to_string(r.original_makespan));
  return result<recovery_result>::success(std::move(r));
}

} // namespace

const char* to_string(recovery_rung r) {
  switch (r) {
    case recovery_rung::none: return "none";
    case recovery_rung::reroute: return "reroute";
    case recovery_rung::reschedule: return "reschedule";
    case recovery_rung::resynthesize: return "resynthesize";
  }
  return "none";
}

result<recovery_result> recover(const recovery_request& req,
                                const run_context& ctx) {
  if (ctx.cancelled())
    return result<recovery_result>::failure(
        status::cancelled, "recover: cancelled before start");
  try {
    ctx.report("recover", "start " + req.graph.name());
    req.graph.validate();
    const sched::schedule& s = req.original.scheduling.best;
    s.validate(req.graph);
    const arch::chip& chip = req.original.architecture.result;
    const arch::routing_workload& workload =
        req.original.architecture.workload;
    require(req.fault_time >= 0, "recover: fault time must be >= 0");
    arch::fault_set faults = req.faults;
    faults.normalize();
    faults.validate(chip.grid(), s.device_count);
    require(!faults.empty(), "recover: fault set is empty");

    if (const auto blocked = sim::recovery_blocker(req.graph, s, chip,
                                                   workload, faults,
                                                   req.fault_time))
      return result<recovery_result>::failure(status::infeasible,
                                              "recover: " + *blocked);

    std::vector<bool> failed(static_cast<std::size_t>(s.device_count), false);
    for (int d : faults.devices) failed[static_cast<std::size_t>(d)] = true;

    recovery_result out;
    out.fault_time = req.fault_time;
    out.original_makespan = s.makespan();
    for (const sched::scheduled_op& so : s.ops)
      if (so.start < req.fault_time) out.completed_ops.push_back(so.op);
    std::sort(out.completed_ops.begin(), out.completed_ops.end());

    // ------------------------------------------------------ rung 1: reroute
    // Applicable only when the schedule itself survives the fault: no
    // operation still running or yet to run is bound to a failed device.
    // (In-flight ops on failed devices were already rejected above.)
    const bool schedule_survives = [&] {
      for (const sched::scheduled_op& so : s.ops)
        if (so.end > req.fault_time &&
            failed[static_cast<std::size_t>(so.device)])
          return false;
      return true;
    }();
    if (schedule_survives) {
      ctx.report("recover", "rung 1: reroute around the faults");
      try {
        arch::arch_result ar = arch::synthesize_architecture(
            s, pinned_arch_options(req, chip, faults, ctx));
        out.rung = recovery_rung::reroute;
        out.recovered = assemble_recovered(req.graph, s, std::move(ar),
                                           req.options.physical, ctx.token());
        return finish(ctx, std::move(out));
      } catch (const capacity_error&) {
        if (ctx.cancelled()) throw;
        // The faulted chip has no room to reroute the full workload;
        // climb to rung 2.
      }
    }

    // --------------------------------------------------- rung 2: reschedule
    ctx.report("recover", "rung 2: reschedule the remainder");
    sched::splice_options sp;
    sp.device_count = s.device_count;
    sp.timing = req.options.timing;
    sp.failed_devices = failed;
    sp.alpha = req.options.alpha;
    sp.beta = req.options.beta;
    sp.storage_aware = req.options.storage_aware;
    sp.restarts = std::max(1, req.options.heuristic_restarts);
    sp.seed = req.options.seed;
    sp.time_budget_seconds = ctx.budget_or_zero();
    sp.cancel = ctx.token();
    const sched::splice_result spliced =
        sched::splice_schedule(req.graph, s, req.fault_time, sp);
    out.completed_ops = spliced.prefix_ops;
    out.rescheduled_ops = spliced.remainder_ops;
    try {
      arch::arch_result ar = arch::synthesize_architecture(
          spliced.spliced, pinned_arch_options(req, chip, faults, ctx));
      out.rung = recovery_rung::reschedule;
      out.recovered =
          assemble_recovered(req.graph, spliced.spliced, std::move(ar),
                             req.options.physical, ctx.token());
      return finish(ctx, std::move(out));
    } catch (const capacity_error&) {
      if (ctx.cancelled()) throw;
      // Even the spliced schedule cannot be routed on the faulted chip;
      // climb to rung 3.
    }

    // ------------------------------------------------- rung 3: resynthesize
    // A replacement chip: grid-specific faults are gone with the broken
    // grid, the device exclusions already live in the spliced schedule.
    ctx.report("recover", "rung 3: resynthesize on a replacement grid");
    arch::arch_options ao;
    ao.grid_width = chip.grid().width();
    ao.grid_height = chip.grid().height();
    ao.attempts = req.options.arch_attempts;
    ao.placement.seed = req.options.seed;
    ao.router.seed = req.options.seed;
    ao.cancel = ctx.token();
    ao.time_budget_seconds = ctx.budget_or_zero();
    const int growth = std::max(req.options.grid_growth, 1);
    for (int extra = 0;; ++extra) {
      try {
        arch::arch_result ar =
            arch::synthesize_architecture(spliced.spliced, ao);
        out.rung = recovery_rung::resynthesize;
        out.recovered =
            assemble_recovered(req.graph, spliced.spliced, std::move(ar),
                               req.options.physical, ctx.token());
        return finish(ctx, std::move(out));
      } catch (const capacity_error&) {
        if (extra >= growth || ctx.cancelled()) throw;
        ++ao.grid_width;
        ++ao.grid_height;
      }
    }
  } catch (...) {
    return failure_from_current_exception<recovery_result>(ctx);
  }
}

result<recovery_result> recover(const checkpoint_document& doc,
                                const run_context& ctx) {
  recovery_request req;
  req.graph = doc.graph;
  req.options = doc.options;
  req.original = doc.flow;
  req.faults = doc.state.faults;
  req.fault_time = doc.state.fault_time;
  return recover(req, ctx);
}

std::string to_json(const assay::sequencing_graph& graph,
                    const pipeline_options& options,
                    const recovery_result& r) {
  json_writer w;
  w.begin_object();
  w.field("assay", graph.name());
  w.field("rung", to_string(r.rung));
  w.field("fault_time", r.fault_time);
  w.field("original_makespan", r.original_makespan);
  w.field("recovered_makespan", r.recovered_makespan);
  w.field("completed", static_cast<long>(r.completed_ops.size()));
  w.field("rescheduled", static_cast<long>(r.rescheduled_ops.size()));
  auto ints = [&w](const std::string& key, const std::vector<int>& values) {
    w.begin_array(key);
    for (int v : values) w.value(v);
    w.end_array();
  };
  ints("completed_ops", r.completed_ops);
  ints("rescheduled_ops", r.rescheduled_ops);
  w.key("result");
  w.value_raw(serialize_flow(graph, options, r.recovered));
  w.end_object();
  return w.str();
}

} // namespace transtore::api
