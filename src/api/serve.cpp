#include "api/serve.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace transtore::api {
namespace {

using steady_clock = std::chrono::steady_clock;

void record_latency(op_latency& h, double ms) {
  ++h.count;
  h.total_ms += ms;
  if (ms > h.max_ms) h.max_ms = ms;
  // Bucket 0 is [0, 1) ms; bucket i is [2^(i-1), 2^i) ms; last is open.
  std::size_t b = 0;
  double upper = 1.0;
  while (b + 1 < op_latency::bucket_count && ms >= upper) {
    upper *= 2.0;
    ++b;
  }
  ++h.buckets[b];
}

/// Write the whole buffer; MSG_NOSIGNAL so a vanished client is an error
/// return (EPIPE), never a SIGPIPE. Returns false once the peer is gone.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

} // namespace

struct serve_front::impl {
  /// One admitted request on its way to a written response.
  struct pending {
    std::string op;
    std::string line;
    std::function<std::string()> finish;
    steady_clock::time_point admitted;
    bool shed = false;
    bool counted = false; // a blank placeholder (nothing admitted)
    bool close_connection = false;
    bool shutdown_server = false;
  };

  struct session {
    int fd = -1;
    std::uint64_t id = 0;
    std::uint64_t requests = 0; // admitted (mirrors metrics under impl lock)
    std::mutex lock;
    std::condition_variable ready;
    std::deque<pending> queue;
    std::size_t inflight = 0; // admitted, not yet written (== queue depth)
    bool reader_done = false;
    bool writer_done = false;
    bool write_failed = false;
    std::thread reader;
    std::thread writer;
  };

  serve_options options;
  serve_handler handler;

  int unix_fd = -1;
  int tcp_fd = -1;
  int bound_tcp_port = -1;
  int wake_pipe[2] = {-1, -1};
  std::thread acceptor;

  mutable std::mutex lock; // sessions list + metrics + shutdown flags
  std::condition_variable shutdown_cv;
  std::vector<std::unique_ptr<session>> sessions;
  std::uint64_t next_connection = 1;
  bool started = false;
  bool stopping = false;
  bool shutdown_requested = false;
  serve_stats metrics; // open_connection_requests filled on snapshot

  void accept_loop();
  void reader_loop(session& s);
  void writer_loop(session& s);
  void admit(session& s, const std::string& line);
  void enqueue(session& s, pending p);
  void request_shutdown();
};

serve_front::serve_front(serve_options options, serve_handler handler)
    : impl_(new impl) {
  impl_->options = std::move(options);
  impl_->handler = std::move(handler);
}

serve_front::~serve_front() { stop(); }

int serve_front::tcp_port() const { return impl_->bound_tcp_port; }

// ---------------------------------------------------------------- listeners

namespace {

std::string close_and_report(int& fd, std::string message) {
  if (fd >= 0) ::close(fd);
  fd = -1;
  return message + " (" + std::strerror(errno) + ")";
}

} // namespace

std::string serve_front::start() {
  impl& im = *impl_;
  if (im.started) return "serve_front: already started";
  if (!im.options.framing_error)
    return "serve_front: options.framing_error is required";
  if (im.options.unix_path.empty() && im.options.tcp_port < 0)
    return "serve_front: no listener configured (unix_path or tcp_port)";

  if (!im.options.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (im.options.unix_path.size() >= sizeof(addr.sun_path))
      return "serve_front: unix socket path too long: " + im.options.unix_path;
    std::memcpy(addr.sun_path, im.options.unix_path.c_str(),
                im.options.unix_path.size() + 1);
    im.unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (im.unix_fd < 0)
      return close_and_report(im.unix_fd, "serve_front: socket(AF_UNIX)");
    ::unlink(im.options.unix_path.c_str()); // replace a stale socket file
    if (::bind(im.unix_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
      return close_and_report(im.unix_fd,
                              "serve_front: bind " + im.options.unix_path);
    if (::listen(im.unix_fd, 64) != 0)
      return close_and_report(im.unix_fd,
                              "serve_front: listen " + im.options.unix_path);
  }

  if (im.options.tcp_port >= 0) {
    im.tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (im.tcp_fd < 0) {
      if (im.unix_fd >= 0) ::close(im.unix_fd), im.unix_fd = -1;
      return close_and_report(im.tcp_fd, "serve_front: socket(AF_INET)");
    }
    const int one = 1;
    ::setsockopt(im.tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(im.options.tcp_port));
    if (::bind(im.tcp_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(im.tcp_fd, 64) != 0) {
      if (im.unix_fd >= 0) ::close(im.unix_fd), im.unix_fd = -1;
      return close_and_report(
          im.tcp_fd, "serve_front: bind/listen 127.0.0.1:" +
                         std::to_string(im.options.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(im.tcp_fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0)
      im.bound_tcp_port = static_cast<int>(ntohs(bound.sin_port));
  }

  if (::pipe(im.wake_pipe) != 0) {
    if (im.unix_fd >= 0) ::close(im.unix_fd), im.unix_fd = -1;
    if (im.tcp_fd >= 0) ::close(im.tcp_fd), im.tcp_fd = -1;
    return "serve_front: pipe() failed (" + std::string(std::strerror(errno)) +
           ")";
  }

  im.started = true;
  im.acceptor = std::thread([&im] { im.accept_loop(); });
  return "";
}

// -------------------------------------------------------------- accept loop

void serve_front::impl::accept_loop() {
  for (;;) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = pollfd{wake_pipe[0], POLLIN, 0};
    if (unix_fd >= 0) fds[n++] = pollfd{unix_fd, POLLIN, 0};
    if (tcp_fd >= 0) fds[n++] = pollfd{tcp_fd, POLLIN, 0};
    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    {
      std::lock_guard<std::mutex> guard(lock);
      if (stopping) return;
    }
    for (nfds_t i = 1; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue; // transient; poll again
      auto s = std::make_unique<session>();
      s->fd = client;
      session& ref = *s;
      {
        std::lock_guard<std::mutex> guard(lock);
        if (stopping) {
          ::close(client);
          return;
        }
        ref.id = next_connection++;
        ++metrics.connections_accepted;
        sessions.push_back(std::move(s));
      }
      ref.reader = std::thread([this, &ref] { reader_loop(ref); });
      ref.writer = std::thread([this, &ref] { writer_loop(ref); });
    }
  }
}

// ------------------------------------------------------------------ reader

void serve_front::impl::enqueue(session& s, pending p) {
  {
    std::lock_guard<std::mutex> guard(s.lock);
    if (p.counted) ++s.inflight;
    s.queue.push_back(std::move(p));
  }
  s.ready.notify_one();
}

/// Admit one complete line: consult the handler (with backpressure state)
/// and queue its reply for the writer. Runs on the reader thread; the
/// handler must not block on a solve.
void serve_front::impl::admit(session& s, const std::string& line) {
  serve_request_info info;
  std::size_t inflight;
  {
    std::lock_guard<std::mutex> guard(s.lock);
    inflight = s.inflight;
  }
  {
    std::lock_guard<std::mutex> guard(lock);
    ++metrics.requests;
    ++s.requests;
    info.connection = s.id;
    info.sequence = s.requests;
    info.inflight = inflight;
    info.overloaded =
        options.max_inflight > 0 && inflight >= options.max_inflight;
  }

  pending p;
  p.admitted = steady_clock::now();
  p.counted = true;
  try {
    serve_reply reply = handler(line, info);
    p.op = std::move(reply.op);
    p.line = std::move(reply.line);
    p.finish = std::move(reply.finish);
    p.shed = reply.shed;
    p.close_connection = reply.close_connection;
    p.shutdown_server = reply.shutdown_server;
  } catch (const std::exception& e) {
    p.op = "error";
    p.line = options.framing_error("internal", e.what());
    std::lock_guard<std::mutex> guard(lock);
    ++metrics.framing_errors;
  }
  enqueue(s, std::move(p));
}

void serve_front::impl::reader_loop(session& s) {
  std::string line;
  bool oversized = false;
  char buf[4096];
  bool closing = false;
  while (!closing) {
    const ssize_t n = ::read(s.fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) { // EOF (client closed, or stop() shut the read side)
      if (!line.empty() || oversized) {
        // The protocol is newline-delimited: a request without its
        // newline is truncated by definition.
        pending p;
        p.op = "error";
        p.admitted = steady_clock::now();
        p.line = options.framing_error(
            "invalid_input", "input ended mid-line (truncated request)");
        {
          std::lock_guard<std::mutex> guard(lock);
          ++metrics.framing_errors;
        }
        enqueue(s, std::move(p));
      }
      break;
    }
    {
      std::lock_guard<std::mutex> guard(lock);
      metrics.bytes_in += static_cast<std::uint64_t>(n);
    }
    for (ssize_t i = 0; i < n && !closing; ++i) {
      const char c = buf[i];
      if (c != '\n') {
        if (line.size() < options.max_line_bytes)
          line.push_back(c);
        else
          oversized = true; // keep consuming up to the newline
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (oversized) {
        pending p;
        p.op = "error";
        p.admitted = steady_clock::now();
        p.line = options.framing_error(
            "invalid_input", "request line exceeds the " +
                                 std::to_string(options.max_line_bytes) +
                                 "-byte limit");
        {
          std::lock_guard<std::mutex> guard(lock);
          ++metrics.framing_errors;
        }
        enqueue(s, std::move(p));
      } else if (line.find_first_not_of(" \t\r") != std::string::npos) {
        admit(s, line);
        std::lock_guard<std::mutex> guard(s.lock);
        if (!s.queue.empty() && (s.queue.back().close_connection ||
                                 s.queue.back().shutdown_server))
          closing = true;
      }
      line.clear();
      oversized = false;
    }
  }
  {
    std::lock_guard<std::mutex> guard(s.lock);
    s.reader_done = true;
  }
  s.ready.notify_all();
}

// ------------------------------------------------------------------ writer

void serve_front::impl::writer_loop(session& s) {
  for (;;) {
    pending p;
    {
      std::unique_lock<std::mutex> guard(s.lock);
      s.ready.wait(guard, [&s] { return s.reader_done || !s.queue.empty(); });
      if (s.queue.empty()) break; // reader done and drained
      p = std::move(s.queue.front());
      s.queue.pop_front();
    }
    std::string text = std::move(p.line);
    if (p.finish) {
      // Resolve even when the write side already failed: deferred replies
      // hold executor tickets that must be redeemed either way.
      try {
        text = p.finish();
      } catch (const std::exception& e) {
        text = options.framing_error("internal", e.what());
        std::lock_guard<std::mutex> guard(lock);
        ++metrics.framing_errors;
      }
    }
    bool wrote = false;
    if (!text.empty() && !s.write_failed) {
      text.push_back('\n');
      if (send_all(s.fd, text.data(), text.size()))
        wrote = true;
      else
        s.write_failed = true; // only the writer thread touches this
    }
    const double ms =
        std::chrono::duration<double, std::milli>(steady_clock::now() -
                                                  p.admitted)
            .count();
    {
      std::lock_guard<std::mutex> guard(s.lock);
      if (p.counted && s.inflight > 0) --s.inflight;
    }
    {
      std::lock_guard<std::mutex> guard(lock);
      if (wrote) {
        ++metrics.responses;
        metrics.bytes_out += static_cast<std::uint64_t>(text.size());
      }
      if (p.shed) ++metrics.shed;
      if (p.counted) record_latency(metrics.latency[p.op], ms);
    }
    if (p.shutdown_server) request_shutdown();
    if (p.close_connection || p.shutdown_server) {
      ::shutdown(s.fd, SHUT_RDWR);
      std::lock_guard<std::mutex> guard(s.lock);
      if (s.reader_done && s.queue.empty()) break;
    }
  }
  std::lock_guard<std::mutex> guard(lock);
  s.writer_done = true;
}

void serve_front::impl::request_shutdown() {
  {
    std::lock_guard<std::mutex> guard(lock);
    shutdown_requested = true;
  }
  shutdown_cv.notify_all();
}

// ----------------------------------------------------------------- control

void serve_front::wait() {
  impl& im = *impl_;
  std::unique_lock<std::mutex> guard(im.lock);
  im.shutdown_cv.wait(guard,
                      [&im] { return im.shutdown_requested || im.stopping; });
}

void serve_front::stop() {
  impl& im = *impl_;
  bool teardown = false;
  {
    std::lock_guard<std::mutex> guard(im.lock);
    im.stopping = true;
    im.shutdown_requested = true;
    if (im.started) {
      im.started = false;
      teardown = true; // exactly one caller owns the teardown
    }
  }
  im.shutdown_cv.notify_all();
  if (!teardown) return;

  // Wake the accept loop and join it before touching the listeners.
  if (im.wake_pipe[1] >= 0) {
    const char byte = 'x';
    (void)!::write(im.wake_pipe[1], &byte, 1);
  }
  if (im.acceptor.joinable()) im.acceptor.join();
  if (im.unix_fd >= 0) ::close(im.unix_fd), im.unix_fd = -1;
  if (im.tcp_fd >= 0) ::close(im.tcp_fd), im.tcp_fd = -1;
  if (!im.options.unix_path.empty()) ::unlink(im.options.unix_path.c_str());
  for (int& fd : im.wake_pipe)
    if (fd >= 0) ::close(fd), fd = -1;

  // Close only the read side of every session: readers see EOF and stop,
  // writers drain every already-admitted response (still in order) and
  // then exit.
  std::vector<impl::session*> open;
  {
    std::lock_guard<std::mutex> guard(im.lock);
    for (auto& s : im.sessions) open.push_back(s.get());
  }
  for (impl::session* s : open) ::shutdown(s->fd, SHUT_RD);
  for (impl::session* s : open) {
    if (s->reader.joinable()) s->reader.join();
    if (s->writer.joinable()) s->writer.join();
    ::close(s->fd);
    s->fd = -1;
  }
  std::lock_guard<std::mutex> guard(im.lock);
  im.sessions.clear();
}

serve_stats serve_front::stats() const {
  impl& im = *impl_;
  std::lock_guard<std::mutex> guard(im.lock);
  serve_stats out = im.metrics;
  out.connections_open = 0;
  out.open_connection_requests.clear();
  for (const auto& s : im.sessions) {
    if (s->writer_done) continue;
    ++out.connections_open;
    out.open_connection_requests.push_back(s->requests);
  }
  return out;
}

} // namespace transtore::api
