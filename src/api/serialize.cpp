#include "api/serialize.h"

#include <charconv>
#include <utility>

#include "arch/chip_io.h"
#include "arch/workload.h"
#include "common/error.h"
#include "sched/schedule_io.h"

namespace transtore::api {
namespace detail {

struct stage_access {
  static scheduled make_scheduled(
      std::shared_ptr<const job_state> state,
      std::shared_ptr<const sched::scheduling_result> scheduling) {
    scheduled s;
    s.state_ = std::move(state);
    s.scheduling_ = std::move(scheduling);
    return s;
  }
  static synthesized make_synthesized(
      std::shared_ptr<const job_state> state,
      std::shared_ptr<const sched::scheduling_result> scheduling,
      std::shared_ptr<const arch::arch_result> architecture) {
    synthesized s;
    s.state_ = std::move(state);
    s.scheduling_ = std::move(scheduling);
    s.architecture_ = std::move(architecture);
    return s;
  }
  static compressed make_compressed(
      std::shared_ptr<const job_state> state,
      std::shared_ptr<const sched::scheduling_result> scheduling,
      std::shared_ptr<const arch::arch_result> architecture,
      std::shared_ptr<const phys::layout_result> layout) {
    compressed s;
    s.state_ = std::move(state);
    s.scheduling_ = std::move(scheduling);
    s.architecture_ = std::move(architecture);
    s.layout_ = std::move(layout);
    return s;
  }

  static const job_state& state(const scheduled& s) { return *s.state_; }
  static const job_state& state(const synthesized& s) { return *s.state_; }
  static const job_state& state(const compressed& s) { return *s.state_; }
  static const arch::arch_result& architecture(const synthesized& s) {
    return *s.architecture_;
  }
  static const arch::arch_result& architecture(const compressed& s) {
    return *s.architecture_;
  }
  static const phys::layout_result& layout(const compressed& s) {
    return *s.layout_;
  }
};

} // namespace detail

namespace {

// ------------------------------------------------------------- enum tables

[[nodiscard]] const char* to_string(sched::schedule_engine e) {
  switch (e) {
    case sched::schedule_engine::heuristic: return "heuristic";
    case sched::schedule_engine::ilp: return "ilp";
    case sched::schedule_engine::combined: return "combined";
    case sched::schedule_engine::sa: return "sa";
    case sched::schedule_engine::grasp: return "grasp";
    case sched::schedule_engine::decomp: return "decomp";
  }
  return "combined";
}

[[nodiscard]] sched::schedule_engine schedule_engine_from(
    const std::string& name) {
  if (name == "heuristic") return sched::schedule_engine::heuristic;
  if (name == "ilp") return sched::schedule_engine::ilp;
  if (name == "combined") return sched::schedule_engine::combined;
  if (name == "sa") return sched::schedule_engine::sa;
  if (name == "grasp") return sched::schedule_engine::grasp;
  if (name == "decomp") return sched::schedule_engine::decomp;
  throw invalid_input_error("serialize: unknown schedule engine \"" + name +
                            "\"");
}

[[nodiscard]] const char* to_string(arch::synthesis_engine e) {
  switch (e) {
    case arch::synthesis_engine::heuristic: return "heuristic";
    case arch::synthesis_engine::ilp: return "ilp";
  }
  return "heuristic";
}

[[nodiscard]] arch::synthesis_engine arch_engine_from(const std::string& name) {
  if (name == "heuristic") return arch::synthesis_engine::heuristic;
  if (name == "ilp") return arch::synthesis_engine::ilp;
  throw invalid_input_error("serialize: unknown synthesis engine \"" + name +
                            "\"");
}

[[nodiscard]] const char* to_string(milp::solve_status s) {
  switch (s) {
    case milp::solve_status::optimal: return "optimal";
    case milp::solve_status::feasible: return "feasible";
    case milp::solve_status::infeasible: return "infeasible";
    case milp::solve_status::unbounded: return "unbounded";
    case milp::solve_status::no_solution: return "no_solution";
  }
  return "no_solution";
}

[[nodiscard]] milp::solve_status solve_status_from(const std::string& name) {
  if (name == "optimal") return milp::solve_status::optimal;
  if (name == "feasible") return milp::solve_status::feasible;
  if (name == "infeasible") return milp::solve_status::infeasible;
  if (name == "unbounded") return milp::solve_status::unbounded;
  if (name == "no_solution") return milp::solve_status::no_solution;
  throw invalid_input_error("serialize: unknown solve status \"" + name +
                            "\"");
}

[[nodiscard]] const char* to_string(sched::crossing_state s) {
  switch (s) {
    case sched::crossing_state::internal: return "internal";
    case sched::crossing_state::delivered: return "delivered";
    case sched::crossing_state::stored: return "stored";
    case sched::crossing_state::pending: return "pending";
  }
  return "pending";
}

[[nodiscard]] sched::crossing_state crossing_state_from(
    const std::string& name) {
  if (name == "internal") return sched::crossing_state::internal;
  if (name == "delivered") return sched::crossing_state::delivered;
  if (name == "stored") return sched::crossing_state::stored;
  if (name == "pending") return sched::crossing_state::pending;
  throw invalid_input_error("serialize: unknown crossing state \"" + name +
                            "\"");
}

// --------------------------------------------------------- result sections

void write_scheduling(json_writer& w, const sched::scheduling_result& r) {
  w.begin_object();
  w.field_exact("seconds", r.seconds);
  w.field("used_ilp", r.used_ilp);
  w.field("ilp_skipped_too_large", r.ilp_skipped_too_large);
  w.field("ilp_interrupted", r.ilp_interrupted);
  w.field("ilp_deadline_clamped", r.ilp_deadline_clamped);
  w.field("ilp_status", to_string(r.ilp_status));
  w.field_exact("ilp_objective", r.ilp_objective);
  w.field_exact("ilp_bound", r.ilp_bound);
  w.field("ilp_variables", r.ilp_variables);
  w.field("ilp_constraints", r.ilp_constraints);
  w.field("ilp_nodes", r.ilp_nodes);
  w.field("ilp_presolve_rows_removed", r.ilp_presolve_rows_removed);
  w.field("ilp_cuts_added", r.ilp_cuts_added);
  w.field_exact("ilp_root_bound", r.ilp_root_bound);
  // Parallel/portfolio footprint, only when present -- sequential documents
  // keep the pre-parallel byte layout.
  if (r.ilp_threads != 1) w.field("ilp_threads", r.ilp_threads);
  if (!r.ilp_workers.empty()) {
    w.begin_array("ilp_workers");
    for (const auto& ws : r.ilp_workers) {
      w.begin_object();
      w.field("nodes", ws.nodes);
      w.field("simplex_iterations", ws.simplex_iterations);
      w.field("dual_simplex_iterations", ws.dual_simplex_iterations);
      w.field("steals", ws.steals);
      w.end_object();
    }
    w.end_array();
  }
  if (r.portfolio_racers > 0) {
    w.field("portfolio_racers", r.portfolio_racers);
    w.field("portfolio_winner", r.portfolio_winner);
  }
  w.key("best");
  sched::write_schedule(w, r.best);
  w.end_object();
}

[[nodiscard]] sched::scheduling_result scheduling_from_value(
    const json_value& v) {
  sched::scheduling_result r;
  r.seconds = v.at("seconds").as_double();
  r.used_ilp = v.at("used_ilp").as_bool();
  r.ilp_skipped_too_large = v.at("ilp_skipped_too_large").as_bool();
  r.ilp_interrupted = v.at("ilp_interrupted").as_bool();
  r.ilp_deadline_clamped = v.at("ilp_deadline_clamped").as_bool();
  r.ilp_status = solve_status_from(v.at("ilp_status").as_string());
  r.ilp_objective = v.at("ilp_objective").as_double();
  r.ilp_bound = v.at("ilp_bound").as_double();
  r.ilp_variables = v.at("ilp_variables").as_int();
  r.ilp_constraints = v.at("ilp_constraints").as_int();
  r.ilp_nodes = v.at("ilp_nodes").as_long();
  r.ilp_presolve_rows_removed = v.at("ilp_presolve_rows_removed").as_int();
  r.ilp_cuts_added = v.at("ilp_cuts_added").as_int();
  r.ilp_root_bound = v.at("ilp_root_bound").as_double();
  if (const json_value* threads = v.find("ilp_threads"))
    r.ilp_threads = threads->as_int();
  if (const json_value* workers = v.find("ilp_workers")) {
    for (const json_value& e : workers->elements()) {
      milp::worker_stats ws;
      ws.nodes = e.at("nodes").as_long();
      ws.simplex_iterations = e.at("simplex_iterations").as_long();
      ws.dual_simplex_iterations = e.at("dual_simplex_iterations").as_long();
      ws.steals = e.at("steals").as_long();
      r.ilp_workers.push_back(ws);
    }
  }
  if (const json_value* racers = v.find("portfolio_racers"))
    r.portfolio_racers = racers->as_int();
  if (const json_value* winner = v.find("portfolio_winner"))
    r.portfolio_winner = winner->as_string();
  r.best = sched::schedule_from_value(v.at("best"));
  return r;
}

void write_architecture(json_writer& w, const arch::arch_result& r) {
  w.begin_object();
  w.field_exact("seconds", r.seconds);
  w.field("attempts_used", r.attempts_used);
  w.field("interrupted", r.interrupted);
  w.field("used_ilp", r.used_ilp);
  w.field("ilp_status", to_string(r.ilp_status));
  w.field_exact("ilp_objective", r.ilp_objective);
  w.field_exact("ilp_bound", r.ilp_bound);
  w.field("ilp_variables", r.ilp_variables);
  w.field("ilp_constraints", r.ilp_constraints);
  w.key("chip");
  arch::write_chip(w, r.result);
  w.end_object();
}

/// The workload is not stored: it is re-derived from the schedule, which is
/// deterministic and keeps the documents lean.
[[nodiscard]] arch::arch_result architecture_from_value(
    const json_value& v, const sched::schedule& s) {
  arch::arch_result r;
  r.seconds = v.at("seconds").as_double();
  r.attempts_used = v.at("attempts_used").as_int();
  r.interrupted = v.at("interrupted").as_bool();
  r.used_ilp = v.at("used_ilp").as_bool();
  r.ilp_status = solve_status_from(v.at("ilp_status").as_string());
  r.ilp_objective = v.at("ilp_objective").as_double();
  r.ilp_bound = v.at("ilp_bound").as_double();
  r.ilp_variables = v.at("ilp_variables").as_int();
  r.ilp_constraints = v.at("ilp_constraints").as_int();
  r.result = arch::chip_from_value(v.at("chip"));
  r.workload = arch::derive_workload(s);
  return r;
}

void write_layout(json_writer& w, const phys::layout_result& r) {
  w.begin_object();
  w.field("dr_width", r.after_synthesis.width);
  w.field("dr_height", r.after_synthesis.height);
  w.field("de_width", r.after_devices.width);
  w.field("de_height", r.after_devices.height);
  w.field("dp_width", r.after_compression.width);
  w.field("dp_height", r.after_compression.height);
  w.field("compression_iterations", r.compression_iterations);
  w.field("bend_points", r.bend_points);
  w.field_exact("seconds", r.seconds);
  auto ints = [&w](const std::string& key, const std::vector<int>& values) {
    w.begin_array(key);
    for (int v : values) w.value(v);
    w.end_array();
  };
  ints("column_position", r.column_position);
  ints("row_position", r.row_position);
  ints("used_columns", r.used_columns);
  ints("used_rows", r.used_rows);
  w.end_object();
}

[[nodiscard]] phys::layout_result layout_from_value(const json_value& v) {
  phys::layout_result r;
  r.after_synthesis = {v.at("dr_width").as_int(), v.at("dr_height").as_int()};
  r.after_devices = {v.at("de_width").as_int(), v.at("de_height").as_int()};
  r.after_compression = {v.at("dp_width").as_int(),
                         v.at("dp_height").as_int()};
  r.compression_iterations = v.at("compression_iterations").as_int();
  r.bend_points = v.at("bend_points").as_int();
  r.seconds = v.at("seconds").as_double();
  auto ints = [&v](const char* key) {
    std::vector<int> out;
    for (const json_value& e : v.at(key).elements()) out.push_back(e.as_int());
    return out;
  };
  r.column_position = ints("column_position");
  r.row_position = ints("row_position");
  r.used_columns = ints("used_columns");
  r.used_rows = ints("used_rows");
  return r;
}

void write_stats(json_writer& w, const sim::sim_stats& s) {
  w.begin_object();
  w.field("makespan", s.makespan);
  w.field("operations", s.operations);
  w.field("transport_legs", s.transport_legs);
  w.field("cached_samples", s.cached_samples);
  w.field("max_active_segments", s.max_active_segments);
  w.field_exact("mean_active_segments", s.mean_active_segments);
  w.field("device_busy_time", s.device_busy_time);
  w.field_exact("device_utilization", s.device_utilization);
  w.end_object();
}

[[nodiscard]] sim::sim_stats stats_from_value(const json_value& v) {
  sim::sim_stats s;
  s.makespan = v.at("makespan").as_int();
  s.operations = v.at("operations").as_int();
  s.transport_legs = v.at("transport_legs").as_int();
  s.cached_samples = v.at("cached_samples").as_int();
  s.max_active_segments = v.at("max_active_segments").as_int();
  s.mean_active_segments = v.at("mean_active_segments").as_double();
  s.device_busy_time = v.at("device_busy_time").as_long();
  s.device_utilization = v.at("device_utilization").as_double();
  return s;
}

void write_baseline(json_writer& w, const baseline::baseline_result& b) {
  w.begin_object();
  w.field("makespan", b.makespan);
  w.field("storage_cells", b.storage_cells);
  w.field("unit_valves", b.unit_valves);
  w.field("chip_valves", b.chip_valves);
  w.field("total_valves", b.total_valves);
  w.field("used_edges", b.used_edges);
  w.field_exact("seconds", b.seconds);
  w.key("retimed");
  sched::write_schedule(w, b.retimed);
  w.end_object();
}

[[nodiscard]] baseline::baseline_result baseline_from_value(
    const json_value& v) {
  baseline::baseline_result b;
  b.makespan = v.at("makespan").as_int();
  b.storage_cells = v.at("storage_cells").as_int();
  b.unit_valves = v.at("unit_valves").as_int();
  b.chip_valves = v.at("chip_valves").as_int();
  b.total_valves = v.at("total_valves").as_int();
  b.used_edges = v.at("used_edges").as_int();
  b.seconds = v.at("seconds").as_double();
  b.retimed = sched::schedule_from_value(v.at("retimed"));
  return b;
}

void write_checkpoint_state(json_writer& w, const sim::checkpoint& cp) {
  w.begin_object();
  w.key("faults");
  arch::write_fault_set(w, cp.faults);
  w.field("fault_time", cp.fault_time);
  auto ints = [&w](const std::string& key, const std::vector<int>& values) {
    w.begin_array(key);
    for (int v : values) w.value(v);
    w.end_array();
  };
  ints("completed", cp.completed);
  ints("in_flight", cp.in_flight);
  w.begin_array("fluids");
  for (const sim::fluid_position& fp : cp.fluids) {
    w.begin_object();
    w.field("transfer", fp.transfer_index);
    w.field("state", to_string(fp.state));
    w.field("chip_edge", fp.chip_edge);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

[[nodiscard]] sim::checkpoint checkpoint_state_from_value(
    const json_value& v) {
  sim::checkpoint cp;
  cp.faults = arch::fault_set_from_value(v.at("faults"));
  cp.fault_time = v.at("fault_time").as_int();
  auto ints = [&v](const char* key) {
    std::vector<int> out;
    for (const json_value& e : v.at(key).elements()) out.push_back(e.as_int());
    return out;
  };
  cp.completed = ints("completed");
  cp.in_flight = ints("in_flight");
  for (const json_value& f : v.at("fluids").elements()) {
    sim::fluid_position fp;
    fp.transfer_index = f.at("transfer").as_int();
    fp.state = crossing_state_from(f.at("state").as_string());
    fp.chip_edge = f.at("chip_edge").as_int();
    cp.fluids.push_back(fp);
  }
  return cp;
}

// ------------------------------------------------------- document plumbing

void write_header(json_writer& w, const char* kind,
                  const assay::sequencing_graph& graph,
                  const pipeline_options& options) {
  w.field("format", flow_format_version);
  w.field("kind", kind);
  w.key("graph");
  write_graph(w, graph);
  w.key("options");
  write_options(w, options);
}

/// Parses a document, checks version + kind, and returns the root.
[[nodiscard]] json_value parse_document(const std::string& text,
                                        const char* kind) {
  json_value doc = json_value::parse(text);
  require(doc.at("format").as_int() == flow_format_version,
          "serialize: unsupported format version " +
              doc.at("format").number_text());
  require(doc.at("kind").as_string() == kind,
          "serialize: document kind \"" + doc.at("kind").as_string() +
              "\" is not \"" + kind + "\"");
  return doc;
}

template <typename T>
[[nodiscard]] result<T> failure_from_current_exception() {
  try {
    throw;
  } catch (const internal_error& e) {
    return result<T>::failure(status::internal, e.what());
  } catch (const ts_error& e) {
    return result<T>::failure(status::invalid_input, e.what());
  } catch (const std::exception& e) {
    return result<T>::failure(status::internal, e.what());
  }
}

/// Common prefix of every stage document: graph, options, scheduling (with
/// the schedule re-validated against the graph).
struct stage_parts {
  std::shared_ptr<detail::job_state> state;
  std::shared_ptr<sched::scheduling_result> scheduling;
};

[[nodiscard]] stage_parts parts_from(const json_value& doc) {
  stage_parts parts;
  parts.state = std::make_shared<detail::job_state>();
  parts.state->graph = graph_from_value(doc.at("graph"));
  parts.state->options = options_from_value(doc.at("options"));
  parts.scheduling = std::make_shared<sched::scheduling_result>(
      scheduling_from_value(doc.at("scheduling")));
  parts.scheduling->best.validate(parts.state->graph);
  return parts;
}

} // namespace

// --------------------------------------------------------- building blocks

void write_graph(json_writer& w, const assay::sequencing_graph& g) {
  w.begin_object();
  w.field("name", g.name());
  w.begin_array("ops");
  for (int id = 0; id < g.operation_count(); ++id) {
    const assay::operation& op = g.at(id);
    w.begin_object();
    w.field("name", op.name);
    w.field("duration", op.duration);
    w.begin_array("parents");
    for (int parent : op.parents) w.value(parent);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

assay::sequencing_graph graph_from_value(const json_value& v) {
  assay::sequencing_graph g(v.at("name").as_string());
  const json_value& ops = v.at("ops");
  for (const json_value& op : ops.elements())
    g.add_operation(op.at("name").as_string(), op.at("duration").as_int());
  // Dependencies are re-added child-by-child so each op's parents list
  // comes back in its original order (children lists rebuild in child-id
  // order, which is how every construction path in this library adds them).
  for (std::size_t child = 0; child < ops.size(); ++child)
    for (const json_value& parent : ops[child].at("parents").elements())
      g.add_dependency(parent.as_int(), static_cast<int>(child));
  return g;
}

void write_options(json_writer& w, const pipeline_options& o) {
  w.begin_object();
  w.field("device_count", o.device_count);
  w.field("grid_width", o.grid_width);
  w.field("grid_height", o.grid_height);
  w.field("transport_time", o.timing.transport_time);
  w.field("count_reagent_loads", o.timing.count_reagent_loads);
  w.field("storage_ports", o.timing.storage_ports);
  w.field_exact("alpha", o.alpha);
  w.field_exact("beta", o.beta);
  w.field("storage_aware", o.storage_aware);
  w.field("schedule_engine", to_string(o.schedule_engine));
  w.field_exact("sched_ilp_time_limit", o.sched_ilp_time_limit);
  w.field("heuristic_restarts", o.heuristic_restarts);
  w.field("local_search_iterations", o.local_search_iterations);
  w.field("arch_engine", to_string(o.arch_engine));
  w.field_exact("arch_ilp_time_limit", o.arch_ilp_time_limit);
  w.field("arch_attempts", o.arch_attempts);
  w.field("grid_growth", o.grid_growth);
  w.field("pitch", o.physical.pitch);
  w.field("scale", o.physical.scale);
  w.field("device_size", o.physical.device_size);
  w.field("storage_length", o.physical.storage_length);
  w.field("run_baseline", o.run_baseline);
  w.field("verify", o.verify);
  // Fault keys are emitted only when present so documents (and cache keys)
  // of healthy runs are byte-identical to the pre-fault format.
  auto fault_ints = [&w](const char* key, const std::vector<int>& values) {
    if (values.empty()) return;
    w.begin_array(key);
    for (int v : values) w.value(v);
    w.end_array();
  };
  fault_ints("fault_devices", o.faults.devices);
  fault_ints("fault_valves", o.faults.valves);
  fault_ints("fault_edges", o.faults.edges);
  fault_ints("fault_storage", o.faults.storage);
  // Parallel-search keys follow the same only-when-non-default rule, so
  // sequential documents (and cache keys) are byte-identical to the
  // pre-parallel format. The executor's thread-budget clamp is applied at
  // execution time, never here, so a clamped run still hits the same key.
  if (o.solver_threads != 1) w.field("solver_threads", o.solver_threads);
  if (o.solver_deterministic)
    w.field("solver_deterministic", o.solver_deterministic);
  if (o.portfolio) w.field("portfolio", o.portfolio);
  // Seeds above 2^53 would lose precision as JSON numbers; emit those as
  // decimal strings (the reader accepts both forms).
  if (o.seed <= (std::uint64_t{1} << 53))
    w.field("seed", static_cast<long>(o.seed));
  else
    w.field("seed", std::to_string(o.seed));
  w.end_object();
}

pipeline_options options_from_value(const json_value& v,
                                    pipeline_options base) {
  pipeline_options o = std::move(base);
  for (const auto& [key, value] : v.members()) {
    if (key == "device_count") o.device_count = value.as_int();
    else if (key == "grid_width") o.grid_width = value.as_int();
    else if (key == "grid_height") o.grid_height = value.as_int();
    else if (key == "transport_time")
      o.timing.transport_time = value.as_int();
    else if (key == "count_reagent_loads")
      o.timing.count_reagent_loads = value.as_bool();
    else if (key == "storage_ports") o.timing.storage_ports = value.as_int();
    else if (key == "alpha") o.alpha = value.as_double();
    else if (key == "beta") o.beta = value.as_double();
    else if (key == "storage_aware") o.storage_aware = value.as_bool();
    else if (key == "schedule_engine")
      o.schedule_engine = schedule_engine_from(value.as_string());
    else if (key == "sched_ilp_time_limit")
      o.sched_ilp_time_limit = value.as_double();
    else if (key == "heuristic_restarts")
      o.heuristic_restarts = value.as_int();
    else if (key == "local_search_iterations")
      o.local_search_iterations = value.as_int();
    else if (key == "arch_engine")
      o.arch_engine = arch_engine_from(value.as_string());
    else if (key == "arch_ilp_time_limit")
      o.arch_ilp_time_limit = value.as_double();
    else if (key == "arch_attempts") o.arch_attempts = value.as_int();
    else if (key == "grid_growth") o.grid_growth = value.as_int();
    else if (key == "pitch") o.physical.pitch = value.as_int();
    else if (key == "scale") o.physical.scale = value.as_int();
    else if (key == "device_size") o.physical.device_size = value.as_int();
    else if (key == "storage_length")
      o.physical.storage_length = value.as_int();
    else if (key == "run_baseline") o.run_baseline = value.as_bool();
    else if (key == "verify") o.verify = value.as_bool();
    else if (key == "solver_threads") o.solver_threads = value.as_int();
    else if (key == "solver_deterministic")
      o.solver_deterministic = value.as_bool();
    else if (key == "portfolio") o.portfolio = value.as_bool();
    else if (key == "fault_devices" || key == "fault_valves" ||
             key == "fault_edges" || key == "fault_storage") {
      std::vector<int> ids;
      for (const json_value& e : value.elements()) ids.push_back(e.as_int());
      if (key == "fault_devices") o.faults.devices = std::move(ids);
      else if (key == "fault_valves") o.faults.valves = std::move(ids);
      else if (key == "fault_edges") o.faults.edges = std::move(ids);
      else o.faults.storage = std::move(ids);
    }
    else if (key == "seed") {
      if (value.is_string()) {
        // from_chars keeps malformed/negative seeds in the ts_error
        // taxonomy (stoull would throw std::invalid_argument -> misreported
        // as internal, and silently wraps "-1").
        const std::string& text = value.as_string();
        std::uint64_t seed = 0;
        const char* const first = text.data();
        const char* const last = first + text.size();
        const auto [p, ec] = std::from_chars(first, last, seed);
        require(ec == std::errc() && p == last && !text.empty(),
                "serialize: seed \"" + text +
                    "\" is not an unsigned integer");
        o.seed = seed;
      } else {
        const long seed = value.as_long();
        // Above 2^53 every double is integral, so as_long cannot detect
        // that the JSON number was silently snapped to a neighbour; the
        // writer emits such seeds as strings, and readers insist on it.
        require(seed >= 0 && seed <= (1L << 53),
                "serialize: seed " + value.number_text() +
                    " must be in [0, 2^53] (pass larger seeds as a decimal "
                    "string)");
        o.seed = static_cast<std::uint64_t>(seed);
      }
    } else {
      throw invalid_input_error("serialize: unknown option \"" + key + "\"");
    }
  }
  return o;
}

// ----------------------------------------------------------- flow documents

std::string serialize_flow(const assay::sequencing_graph& graph,
                           const pipeline_options& options,
                           const flow_result& flow) {
  json_writer w;
  w.begin_object();
  write_header(w, "flow", graph, options);
  w.key("scheduling");
  write_scheduling(w, flow.scheduling);
  w.key("architecture");
  write_architecture(w, flow.architecture);
  w.key("layout");
  write_layout(w, flow.layout);
  if (flow.stats) {
    w.key("stats");
    write_stats(w, *flow.stats);
  }
  if (flow.baseline) {
    w.key("baseline");
    write_baseline(w, *flow.baseline);
  }
  w.field_exact("total_seconds", flow.total_seconds);
  w.end_object();
  return w.str();
}

result<flow_document> deserialize_flow(const std::string& text) {
  try {
    const json_value doc = parse_document(text, "flow");
    flow_document out;
    out.graph = graph_from_value(doc.at("graph"));
    out.options = options_from_value(doc.at("options"));
    out.flow.scheduling = scheduling_from_value(doc.at("scheduling"));
    out.flow.scheduling.best.validate(out.graph);
    out.flow.architecture = architecture_from_value(
        doc.at("architecture"), out.flow.scheduling.best);
    out.flow.architecture.result.validate(out.flow.architecture.workload);
    out.flow.layout = layout_from_value(doc.at("layout"));
    if (const json_value* stats = doc.find("stats"))
      out.flow.stats = stats_from_value(*stats);
    if (const json_value* baseline = doc.find("baseline"))
      out.flow.baseline = baseline_from_value(*baseline);
    out.flow.total_seconds = doc.at("total_seconds").as_double();
    return result<flow_document>::success(std::move(out));
  } catch (...) {
    return failure_from_current_exception<flow_document>();
  }
}

// ----------------------------------------------------- checkpoint documents

std::string serialize_checkpoint(const assay::sequencing_graph& graph,
                                 const pipeline_options& options,
                                 const flow_result& flow,
                                 const sim::checkpoint& state) {
  json_writer w;
  w.begin_object();
  write_header(w, "checkpoint", graph, options);
  w.key("scheduling");
  write_scheduling(w, flow.scheduling);
  w.key("architecture");
  write_architecture(w, flow.architecture);
  w.key("layout");
  write_layout(w, flow.layout);
  if (flow.stats) {
    w.key("stats");
    write_stats(w, *flow.stats);
  }
  if (flow.baseline) {
    w.key("baseline");
    write_baseline(w, *flow.baseline);
  }
  w.field_exact("total_seconds", flow.total_seconds);
  w.key("checkpoint");
  write_checkpoint_state(w, state);
  w.end_object();
  return w.str();
}

result<checkpoint_document> deserialize_checkpoint(const std::string& text) {
  try {
    const json_value doc = parse_document(text, "checkpoint");
    checkpoint_document out;
    out.graph = graph_from_value(doc.at("graph"));
    out.options = options_from_value(doc.at("options"));
    out.flow.scheduling = scheduling_from_value(doc.at("scheduling"));
    out.flow.scheduling.best.validate(out.graph);
    out.flow.architecture = architecture_from_value(
        doc.at("architecture"), out.flow.scheduling.best);
    out.flow.architecture.result.validate(out.flow.architecture.workload);
    out.flow.layout = layout_from_value(doc.at("layout"));
    if (const json_value* stats = doc.find("stats"))
      out.flow.stats = stats_from_value(*stats);
    if (const json_value* baseline = doc.find("baseline"))
      out.flow.baseline = baseline_from_value(*baseline);
    out.flow.total_seconds = doc.at("total_seconds").as_double();
    out.state = checkpoint_state_from_value(doc.at("checkpoint"));
    return result<checkpoint_document>::success(std::move(out));
  } catch (...) {
    return failure_from_current_exception<checkpoint_document>();
  }
}

// ---------------------------------------------------------- stage documents

std::string serialize_stage(const scheduled& stage) {
  json_writer w;
  w.begin_object();
  write_header(w, "stage.scheduled", stage.graph(),
               detail::stage_access::state(stage).options);
  w.key("scheduling");
  write_scheduling(w, stage.scheduling());
  w.end_object();
  return w.str();
}

std::string serialize_stage(const synthesized& stage) {
  json_writer w;
  w.begin_object();
  write_header(w, "stage.synthesized", stage.graph(),
               detail::stage_access::state(stage).options);
  w.key("scheduling");
  write_scheduling(w, stage.scheduling());
  w.key("architecture");
  write_architecture(w, detail::stage_access::architecture(stage));
  w.end_object();
  return w.str();
}

std::string serialize_stage(const compressed& stage) {
  json_writer w;
  w.begin_object();
  write_header(w, "stage.compressed", stage.graph(),
               detail::stage_access::state(stage).options);
  w.key("scheduling");
  write_scheduling(w, stage.scheduling());
  w.key("architecture");
  write_architecture(w, detail::stage_access::architecture(stage));
  w.key("layout");
  write_layout(w, detail::stage_access::layout(stage));
  w.end_object();
  return w.str();
}

result<scheduled> deserialize_scheduled(const std::string& text) {
  try {
    const json_value doc = parse_document(text, "stage.scheduled");
    stage_parts parts = parts_from(doc);
    return result<scheduled>::success(detail::stage_access::make_scheduled(
        std::move(parts.state), std::move(parts.scheduling)));
  } catch (...) {
    return failure_from_current_exception<scheduled>();
  }
}

result<synthesized> deserialize_synthesized(const std::string& text) {
  try {
    const json_value doc = parse_document(text, "stage.synthesized");
    stage_parts parts = parts_from(doc);
    auto architecture = std::make_shared<arch::arch_result>(
        architecture_from_value(doc.at("architecture"),
                                parts.scheduling->best));
    architecture->result.validate(architecture->workload);
    return result<synthesized>::success(
        detail::stage_access::make_synthesized(std::move(parts.state),
                                               std::move(parts.scheduling),
                                               std::move(architecture)));
  } catch (...) {
    return failure_from_current_exception<synthesized>();
  }
}

result<compressed> deserialize_compressed(const std::string& text) {
  try {
    const json_value doc = parse_document(text, "stage.compressed");
    stage_parts parts = parts_from(doc);
    auto architecture = std::make_shared<arch::arch_result>(
        architecture_from_value(doc.at("architecture"),
                                parts.scheduling->best));
    architecture->result.validate(architecture->workload);
    auto layout = std::make_shared<phys::layout_result>(
        layout_from_value(doc.at("layout")));
    return result<compressed>::success(detail::stage_access::make_compressed(
        std::move(parts.state), std::move(parts.scheduling),
        std::move(architecture), std::move(layout)));
  } catch (...) {
    return failure_from_current_exception<compressed>();
  }
}

} // namespace transtore::api
