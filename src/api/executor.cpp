#include "api/executor.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "common/stopwatch.h"

namespace transtore::api {

executor::executor(executor_options options) {
  if (options.workers > 0) {
    workers_ = options.workers;
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    workers_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

std::vector<job_outcome> executor::run(
    const std::vector<job>& jobs, const run_context& ctx,
    const completion_callback& on_complete) const {
  std::vector<job_outcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  std::atomic<std::size_t> next{0};
  std::mutex callback_mutex; // serializes on_complete and progress ticks

  // Progress callbacks from concurrently running pipelines funnel through
  // one lock so user callbacks never run concurrently with themselves.
  run_context job_ctx = ctx;
  job_ctx.set_progress([&ctx, &callback_mutex](const progress_event& event) {
    std::lock_guard<std::mutex> lock(callback_mutex);
    ctx.report(event.stage, event.detail);
  });

  auto worker = [&]() {
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= jobs.size()) return;
      const job& j = jobs[index];

      job_outcome outcome;
      outcome.index = index;
      outcome.name = j.name.empty() ? j.graph.name() : j.name;

      stopwatch watch;
      if (ctx.cancelled()) {
        outcome.code = status::cancelled;
        outcome.message = "batch: cancelled before job started";
      } else {
        const pipeline p(j.graph, j.options);
        auto r = p.run(job_ctx);
        outcome.code = r.code();
        outcome.message = r.message();
        if (r.has_value()) outcome.flow = std::move(r).take();
      }
      outcome.seconds = watch.elapsed_seconds();

      {
        std::lock_guard<std::mutex> lock(callback_mutex);
        ctx.report("batch", outcome.name + ": " +
                                std::string(to_string(outcome.code)));
        if (on_complete) on_complete(outcome);
      }
      outcomes[index] = std::move(outcome);
    }
  };

  const int thread_count =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(workers_), jobs.size()));
  if (thread_count <= 1) {
    worker();
    return outcomes;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(thread_count));
  for (int t = 0; t < thread_count; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return outcomes;
}

} // namespace transtore::api
