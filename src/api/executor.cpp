#include "api/executor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stopwatch.h"

namespace transtore::api {
namespace {

/// Execute one job through the (optionally cache-aware) pipeline and fold
/// the outcome into the job_outcome vocabulary. Shared by batch and
/// service mode so their semantics cannot drift.
job_outcome execute_job(const job& j, const run_context& ctx,
                        const std::shared_ptr<result_cache>& cache) {
  job_outcome outcome;
  outcome.name = j.name.empty() ? j.graph.name() : j.name;

  stopwatch watch;
  if (ctx.cancelled()) {
    outcome.code = status::cancelled;
    outcome.message = "batch: cancelled before job started";
  } else {
    pipeline p(j.graph, j.options);
    if (cache) p.set_cache(cache);
    cached_outcome r = p.run_cached(ctx);
    outcome.code = r.outcome.code();
    outcome.message = r.outcome.message();
    outcome.cache_hit = r.cache_hit;
    outcome.result_json = std::move(r.document);
    // The shared handle moves straight through: a cache hit never copies
    // the flow_result on its way to the caller.
    if (r.outcome.has_value()) outcome.flow = std::move(r.outcome).take();
  }
  outcome.seconds = watch.elapsed_seconds();
  return outcome;
}

/// Oversubscription guard (documented in api/README.md): with W worker jobs
/// each allowed T solver threads, keep W x T <= hardware_concurrency by
/// budgeting each job hardware_concurrency / W solver threads (floor 1). A
/// caller-set budget is only ever tightened, never widened.
int guarded_thread_budget(const run_context& ctx, int workers) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int cores = hw > 0 ? static_cast<int>(hw) : 1;
  const int guard = std::max(1, cores / std::max(1, workers));
  const int caller = ctx.thread_budget();
  return caller > 0 ? std::min(caller, guard) : guard;
}

} // namespace

// ------------------------------------------------------------ service mode

struct executor::service_state {
  struct queued {
    job work;
    run_context ctx;
    ticket id = 0;
  };

  /// Max-heap order: higher priority first, then lower ticket (FIFO).
  struct later {
    bool operator()(const queued& a, const queued& b) const {
      if (a.work.priority != b.work.priority)
        return a.work.priority < b.work.priority;
      return a.id > b.id;
    }
  };

  std::mutex lock;
  std::condition_variable work_ready;
  std::condition_variable outcome_ready;
  std::vector<queued> heap; // std::push_heap/pop_heap with `later`
  std::unordered_map<ticket, job_outcome> done;
  std::unordered_set<ticket> open;    // submitted, not yet redeemed by wait()
  std::unordered_set<ticket> claimed; // a wait() is already underway
  ticket next_ticket = 1;
  bool stopping = false;
  bool workers_started = false;
  std::vector<std::thread> threads;
  // Lifetime counters for executor::stats(); all mutated under `lock` so
  // a snapshot is internally consistent with the queue itself.
  std::size_t running = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t cache_hits = 0;
};

executor::executor(executor_options options)
    : options_(std::move(options)), service_(new service_state) {
  if (options_.workers > 0) {
    workers_ = options_.workers;
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    workers_ = hw > 0 ? static_cast<int>(hw) : 1;
  }
}

executor::~executor() { shutdown(); }

result<executor::ticket> executor::submit(job j, const run_context& ctx) {
  service_state& s = *service_;
  std::unique_lock<std::mutex> guard(s.lock);
  if (s.stopping)
    return result<ticket>::failure(status::cancelled,
                                   "executor: shut down, not accepting jobs");
  if (options_.queue_capacity > 0 &&
      s.heap.size() >= options_.queue_capacity) {
    ++s.rejected_queue_full;
    return result<ticket>::failure(
        status::queue_full,
        "executor: queue at capacity (" +
            std::to_string(options_.queue_capacity) + " pending jobs)");
  }
  const ticket id = s.next_ticket++;
  ++s.submitted;
  s.open.insert(id);
  run_context job_ctx = ctx;
  job_ctx.set_thread_budget(guarded_thread_budget(ctx, workers_));
  s.heap.push_back(service_state::queued{std::move(j), std::move(job_ctx), id});
  std::push_heap(s.heap.begin(), s.heap.end(), service_state::later{});
  if (!s.workers_started) {
    s.workers_started = true;
    const std::shared_ptr<result_cache> cache = options_.cache;
    for (int t = 0; t < workers_; ++t)
      s.threads.emplace_back([&s, cache] {
        for (;;) {
          service_state::queued next;
          {
            std::unique_lock<std::mutex> inner(s.lock);
            s.work_ready.wait(inner, [&s] {
              return s.stopping || !s.heap.empty();
            });
            if (s.heap.empty()) return; // stopping and drained
            std::pop_heap(s.heap.begin(), s.heap.end(),
                          service_state::later{});
            next = std::move(s.heap.back());
            s.heap.pop_back();
            ++s.running;
          }
          job_outcome outcome = execute_job(next.work, next.ctx, cache);
          {
            std::lock_guard<std::mutex> inner(s.lock);
            --s.running;
            ++s.completed;
            if (outcome.cache_hit) ++s.cache_hits;
            s.done.emplace(next.id, std::move(outcome));
          }
          s.outcome_ready.notify_all();
        }
      });
  }
  guard.unlock();
  s.work_ready.notify_one();
  return result<ticket>::success(id);
}

job_outcome executor::wait(ticket t) {
  service_state& s = *service_;
  std::unique_lock<std::mutex> guard(s.lock);
  // The claim marker also catches a concurrent second wait() on the same
  // ticket, which would otherwise block forever once the first redeems.
  if (s.open.count(t) == 0 || !s.claimed.insert(t).second) {
    job_outcome unknown;
    unknown.code = status::internal;
    unknown.message = "executor: wait on unknown, already-redeemed, or "
                      "concurrently-waited ticket " +
                      std::to_string(t);
    return unknown;
  }
  s.outcome_ready.wait(guard, [&s, t] { return s.done.count(t) != 0; });
  const auto it = s.done.find(t);
  job_outcome outcome = std::move(it->second);
  s.done.erase(it);
  s.open.erase(t);
  s.claimed.erase(t);
  return outcome;
}

std::size_t executor::pending() const {
  std::lock_guard<std::mutex> guard(service_->lock);
  return service_->heap.size();
}

executor_stats executor::stats() const {
  service_state& s = *service_;
  std::lock_guard<std::mutex> guard(s.lock);
  executor_stats out;
  out.pending = s.heap.size();
  out.running = s.running;
  out.submitted = s.submitted;
  out.completed = s.completed;
  out.rejected_queue_full = s.rejected_queue_full;
  out.cache_hits = s.cache_hits;
  return out;
}

void executor::shutdown() {
  service_state& s = *service_;
  {
    std::lock_guard<std::mutex> guard(s.lock);
    s.stopping = true;
  }
  s.work_ready.notify_all();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> guard(s.lock);
    threads.swap(s.threads);
  }
  for (std::thread& t : threads) t.join();
}

// -------------------------------------------------------------- batch mode

std::vector<job_outcome> executor::run(
    const std::vector<job>& jobs, const run_context& ctx,
    const completion_callback& on_complete) const {
  std::vector<job_outcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  // Dispatch order: priority desc, then submission order. With a bounded
  // queue, only the first queue_capacity jobs of that order are admitted;
  // the overflow is rejected up front with a structured queue_full outcome
  // (mirroring what submit() would have told a service client).
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&jobs](std::size_t a, std::size_t b) {
                     return jobs[a].priority > jobs[b].priority;
                   });
  std::size_t admitted = order.size();
  if (options_.queue_capacity > 0 && order.size() > options_.queue_capacity)
    admitted = options_.queue_capacity;

  std::atomic<std::size_t> next{0};
  std::mutex callback_mutex; // serializes on_complete and progress ticks

  // Progress callbacks from concurrently running pipelines funnel through
  // one lock so user callbacks never run concurrently with themselves.
  run_context job_ctx = ctx;
  job_ctx.set_thread_budget(guarded_thread_budget(ctx, workers_));
  job_ctx.set_progress([&ctx, &callback_mutex](const progress_event& event) {
    std::lock_guard<std::mutex> lock(callback_mutex);
    ctx.report(event.stage, event.detail);
  });

  auto finish = [&](std::size_t index, job_outcome outcome) {
    outcome.index = index;
    {
      std::lock_guard<std::mutex> lock(callback_mutex);
      ctx.report("batch", outcome.name + ": " +
                              std::string(to_string(outcome.code)));
      if (on_complete) on_complete(outcome);
    }
    outcomes[index] = std::move(outcome);
  };

  for (std::size_t k = admitted; k < order.size(); ++k) {
    const job& j = jobs[order[k]];
    job_outcome rejected;
    rejected.name = j.name.empty() ? j.graph.name() : j.name;
    rejected.code = status::queue_full;
    rejected.message =
        "batch: queue capacity " + std::to_string(options_.queue_capacity) +
        " exceeded by " + std::to_string(order.size() - admitted) + " jobs";
    finish(order[k], std::move(rejected));
  }

  auto worker = [&]() {
    for (;;) {
      const std::size_t k = next.fetch_add(1);
      if (k >= admitted) return;
      const std::size_t index = order[k];
      finish(index, execute_job(jobs[index], job_ctx, options_.cache));
    }
  };

  const int thread_count = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(workers_), admitted));
  if (thread_count <= 1) {
    worker();
    return outcomes;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(thread_count));
  for (int t = 0; t < thread_count; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return outcomes;
}

} // namespace transtore::api
