// Batch executor: many (graph, options) jobs through one worker pool.
//
// The benches, the CLI's `synth --all`, and any multi-assay service front
// end share this entry point. Jobs are independent pipeline runs; each one
// is seeded from its own options, so results are deterministic and
// identical for every worker count -- only the completion order varies.
// Completed results are streamed to an optional callback (serialized by an
// internal mutex) and returned in job order.
//
// The run_context is shared by the whole batch: one deadline and one cancel
// token cover all jobs, so a service can bound "synthesize these 50 design
// points" as a single budgeted operation.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/pipeline.h"

namespace transtore::api {

/// One unit of batch work.
struct job {
  std::string name; // label for reports; defaults to the graph's name
  assay::sequencing_graph graph;
  pipeline_options options;
};

/// Outcome of one job, in the structured-status vocabulary of result.h.
struct job_outcome {
  std::size_t index = 0; // position in the submitted job list
  std::string name;
  status code = status::ok;
  std::string message;
  std::optional<flow_result> flow; // present for ok and best-effort outcomes
  double seconds = 0.0;            // wall time of this job
};

struct executor_options {
  /// Worker threads; 0 derives a default from std::thread::hardware_concurrency.
  int workers = 0;
};

class executor {
public:
  explicit executor(executor_options options = {});

  using completion_callback = std::function<void(const job_outcome&)>;

  /// Run every job and return the outcomes ordered by job index. The
  /// optional callback observes each outcome as it completes (possibly out
  /// of order, never concurrently). Never throws on job failures -- they
  /// are reported through job_outcome::code.
  [[nodiscard]] std::vector<job_outcome> run(
      const std::vector<job>& jobs, const run_context& ctx = {},
      const completion_callback& on_complete = {}) const;

  [[nodiscard]] int workers() const { return workers_; }

private:
  int workers_ = 1;
};

} // namespace transtore::api
