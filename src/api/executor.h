// Batch + service executor: many (graph, options) jobs through one worker
// pool, with priorities, a bounded queue, and an optional result cache.
//
// Two modes share the pool semantics:
//
//  * Batch -- run(jobs, ctx, on_complete): the benches, the CLI's
//    `synth --all`, and tests. Jobs are independent pipeline runs, each
//    seeded from its own options, so results are deterministic and
//    identical for every worker count -- only completion order varies.
//    Higher-priority jobs are dispatched first; when the bounded queue is
//    smaller than the batch, the lowest-priority overflow is rejected with
//    a structured status::queue_full outcome (those jobs never run).
//
//  * Service -- submit()/wait(): the long-lived front end behind
//    `transtore_cli serve`. submit() enqueues one job (rejecting with
//    queue_full when the bounded queue is at capacity) and returns a
//    ticket; wait() blocks until that job's outcome is ready. Worker
//    threads are started lazily on the first submit and joined by
//    shutdown()/the destructor. Pending jobs are dispatched by (priority
//    desc, ticket asc) -- FIFO within a priority level.
//
// When executor_options::cache is set, each job consults the cache through
// pipeline::run_cached: a warm (graph, options) pair is a lookup instead of
// a solve, job_outcome::cache_hit says which happened, and
// job_outcome::result_json carries the stored flow document (byte-identical
// across replays).
//
// The run_context is per batch (run) or per submission (submit): one
// deadline and one cancel token cover all jobs it was passed with.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/result_cache.h"

namespace transtore::api {

/// One unit of work.
struct job {
  std::string name; // label for reports; defaults to the graph's name
  assay::sequencing_graph graph;
  pipeline_options options;
  /// Dispatch priority: higher runs first; ties are FIFO. Not part of the
  /// cache key (it does not affect the result).
  int priority = 0;
};

/// Outcome of one job, in the structured-status vocabulary of result.h.
struct job_outcome {
  std::size_t index = 0; // position in the submitted job list (batch mode)
  std::string name;
  status code = status::ok;
  std::string message;
  /// Present for ok and best-effort outcomes. Shared and immutable: a
  /// cache hit hands out the cache entry's own flow_result (no per-hit
  /// copy); a solve hands out the freshly computed one.
  std::shared_ptr<const flow_result> flow;
  double seconds = 0.0; // wall time of this job
  /// Cache bookkeeping (meaningful when executor_options::cache is set).
  bool cache_hit = false;
  std::shared_ptr<const std::string> result_json; // stored flow document
};

struct executor_options {
  /// Worker threads; 0 derives a default from std::thread::hardware_concurrency.
  int workers = 0;
  /// Bound on *pending* (not yet started) jobs; 0 = unbounded. Overflow is
  /// rejected with status::queue_full instead of blocking the submitter.
  std::size_t queue_capacity = 0;
  /// Optional shared result cache consulted (and filled) per job.
  std::shared_ptr<result_cache> cache;
};

/// One atomic snapshot of the service-mode queue: every field is captured
/// under a single lock, so `submitted == completed + running + pending +
/// unredeemed-done` holds in every snapshot no matter what runs
/// concurrently (the observability contract of the serve `stats` op).
struct executor_stats {
  std::size_t pending = 0;   // accepted, not yet claimed by a worker
  std::size_t running = 0;   // claimed by a worker, not yet completed
  std::uint64_t submitted = 0; // accepted service submissions, lifetime
  std::uint64_t completed = 0; // jobs whose outcome was recorded
  /// Submissions rejected by the bounded queue (status::queue_full); these
  /// are NOT counted in `submitted` -- they never entered the queue.
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t cache_hits = 0; // completed jobs served from the cache
};

class executor {
public:
  explicit executor(executor_options options = {});
  ~executor();
  executor(const executor&) = delete;
  executor& operator=(const executor&) = delete;

  using completion_callback = std::function<void(const job_outcome&)>;
  /// Service-mode job handle, returned by submit() and redeemed by wait().
  using ticket = std::uint64_t;

  /// Batch mode: run every job and return the outcomes ordered by job
  /// index. The optional callback observes each outcome as it completes
  /// (possibly out of order, never concurrently). Never throws on job
  /// failures -- they are reported through job_outcome::code (including
  /// queue_full for jobs shed by a bounded queue).
  [[nodiscard]] std::vector<job_outcome> run(
      const std::vector<job>& jobs, const run_context& ctx = {},
      const completion_callback& on_complete = {}) const;

  /// Service mode: enqueue one job. Fails with status::queue_full when the
  /// bounded queue is at capacity and with status::cancelled after
  /// shutdown(). The run_context is captured for this job alone.
  [[nodiscard]] result<ticket> submit(job j, const run_context& ctx = {});

  /// Blocks until the job behind `t` completes and returns its outcome
  /// (each ticket is redeemable exactly once; a second wait on the same
  /// ticket reports status::internal).
  [[nodiscard]] job_outcome wait(ticket t);

  /// Pending (not yet started) service jobs.
  [[nodiscard]] std::size_t pending() const;

  /// Atomic snapshot of the service-mode queue counters (see
  /// executor_stats). Batch-mode run() does not touch these.
  [[nodiscard]] executor_stats stats() const;

  /// Stop accepting submissions, drain already-queued jobs, join workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] const std::shared_ptr<result_cache>& cache() const {
    return options_.cache;
  }

private:
  struct service_state;

  int workers_ = 1;
  executor_options options_;
  std::unique_ptr<service_state> service_;
};

} // namespace transtore::api
