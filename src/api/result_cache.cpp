#include "api/result_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "api/serialize.h"
#include "common/json.h"

namespace transtore::api {
namespace {

[[nodiscard]] std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull; // FNV offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull; // FNV prime
  }
  return h;
}

/// Round-trip-exact double rendering for the canonical text (reuses the
/// writer so cache keys and documents agree on formatting).
[[nodiscard]] std::string exact(double v) {
  json_writer w;
  w.value_exact(v);
  return w.str();
}

} // namespace

std::string cache_key::digest() const {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

cache_key make_cache_key(const assay::sequencing_graph& graph,
                         const pipeline_options& o) {
  return make_cache_key(graph, o, std::string());
}

cache_key make_cache_key(const assay::sequencing_graph& graph,
                         const pipeline_options& o,
                         const std::string& scenario) {
  std::ostringstream out;
  out << "transtore.key.v1\n";

  // --- graph, canonicalized by operation name when names are unique.
  const int n = graph.operation_count();
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  bool unique_names = true;
  {
    std::vector<std::string> names;
    names.reserve(order.size());
    for (int i = 0; i < n; ++i) names.push_back(graph.at(i).name);
    std::sort(names.begin(), names.end());
    unique_names =
        std::adjacent_find(names.begin(), names.end()) == names.end();
  }
  if (unique_names) {
    std::sort(order.begin(), order.end(), [&graph](int a, int b) {
      return graph.at(a).name < graph.at(b).name;
    });
  }
  out << "graph " << graph.name() << " ops=" << n
      << " edges=" << graph.edge_count()
      << (unique_names ? "" : " id-order") << "\n";
  for (const int id : order) {
    const assay::operation& op = graph.at(id);
    out << "op " << (unique_names ? op.name : std::to_string(id)) << " "
        << op.duration << " <-";
    std::vector<std::string> parents;
    parents.reserve(op.parents.size());
    for (const int parent : op.parents)
      parents.push_back(unique_names ? graph.at(parent).name
                                     : std::to_string(parent));
    std::sort(parents.begin(), parents.end());
    for (const std::string& parent : parents) out << " " << parent;
    out << "\n";
  }

  // --- options: every field, exact doubles. The canonical text reuses the
  // serializer so a new pipeline_options field added to write_options
  // automatically changes keys (a deliberate invalidation).
  {
    json_writer w;
    write_options(w, o);
    out << "options " << w.str() << "\n";
  }
  // alpha/beta repeated in exact form defensively: write_options already
  // renders them exact, but the key must never rely on lossy formatting.
  out << "objective alpha=" << exact(o.alpha) << " beta=" << exact(o.beta)
      << "\n";
  // Appended only when present: the empty-scenario key is byte-identical
  // to the plain two-argument key (existing digests and disk files hold).
  if (!scenario.empty()) out << "scenario " << scenario << "\n";

  cache_key key;
  key.canonical = out.str();
  key.hash = fnv1a(key.canonical);

  // Id-faithful identity (see cache_key::identity): operations in id
  // order with their parent ids. Options are omitted -- equal canonicals
  // already imply equal options.
  std::ostringstream id_text;
  id_text << "transtore.id.v1\ngraph " << graph.name() << "\n";
  for (int i = 0; i < n; ++i) {
    const assay::operation& op = graph.at(i);
    id_text << "op " << i << " " << op.name << " " << op.duration << " <-";
    for (const int parent : op.parents) id_text << " " << parent;
    id_text << "\n";
  }
  key.identity = id_text.str();
  return key;
}

// ------------------------------------------------------------ result_cache

result_cache::result_cache(result_cache_options options)
    : options_(std::move(options)) {
  if (options_.memory_entries == 0) options_.memory_entries = 1;
}

result_cache::entry_ptr result_cache::lookup(const cache_key& key) {
  {
    std::lock_guard<std::mutex> guard(lock_);
    ++stats_.lookups;
    const auto it = index_.find(key.canonical);
    if (it != index_.end() && it->second->identity == key.identity) {
      ++stats_.memory_hits;
      touch(it->second);
      return it->second->value;
    }
  }
  // Disk probe outside the lock: deserialization is the expensive part and
  // concurrent probes for different keys should not serialize.
  if (options_.disk_dir.empty()) {
    std::lock_guard<std::mutex> guard(lock_);
    ++stats_.misses;
    return nullptr;
  }
  entry_ptr from_disk = disk_lookup(key);
  std::lock_guard<std::mutex> guard(lock_);
  if (!from_disk) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.disk_hits;
  insert_locked(key, from_disk);
  return from_disk;
}

result_cache::flight result_cache::lookup_or_lead(
    const cache_key& key, entry_ptr& out,
    const std::function<bool()>& give_up) {
  {
    std::unique_lock<std::mutex> guard(lock_);
    ++stats_.lookups;
    bool waited = false;
    for (;;) {
      const auto it = index_.find(key.canonical);
      if (it != index_.end() && it->second->identity == key.identity) {
        ++stats_.memory_hits;
        if (waited) ++stats_.coalesced_hits; // rode a leader's solve
        touch(it->second);
        out = it->second->value;
        return flight::hit;
      }
      // Equal-canonical, different-identity entries (an id-permuted twin's
      // result) fall through: this caller recomputes and overwrites.
      if (inflight_.insert(key.canonical).second) break; // we lead
      // A concurrent leader is solving this key; coalesce onto its result.
      // Short waits so give_up (deadline/cancel) is polled responsively
      // and a leader that died without abort_flight cannot park us forever.
      flight_done_.wait_for(guard, std::chrono::milliseconds(50));
      waited = true;
      if (give_up && give_up()) return flight::bypass;
    }
  }
  // Leader path: probe the disk tier before conceding a miss.
  if (!options_.disk_dir.empty()) {
    if (entry_ptr from_disk = disk_lookup(key)) {
      std::lock_guard<std::mutex> guard(lock_);
      ++stats_.disk_hits;
      insert_locked(key, from_disk);
      inflight_.erase(key.canonical);
      flight_done_.notify_all();
      out = std::move(from_disk);
      return flight::hit;
    }
  }
  std::lock_guard<std::mutex> guard(lock_);
  ++stats_.misses;
  return flight::leader;
}

void result_cache::store(const cache_key& key, entry e) {
  if (!options_.disk_dir.empty()) disk_store(key, e);
  entry_ptr shared = std::make_shared<const entry>(std::move(e));
  {
    std::lock_guard<std::mutex> guard(lock_);
    ++stats_.stores;
    insert_locked(key, std::move(shared));
    inflight_.erase(key.canonical);
  }
  flight_done_.notify_all();
}

void result_cache::abort_flight(const cache_key& key) {
  {
    std::lock_guard<std::mutex> guard(lock_);
    inflight_.erase(key.canonical);
  }
  flight_done_.notify_all();
}

std::optional<result_cache::negative_entry> result_cache::lookup_negative(
    const cache_key& key) {
  std::lock_guard<std::mutex> guard(lock_);
  const auto it = negative_index_.find(key.canonical);
  if (it == negative_index_.end() || it->second->identity != key.identity)
    return std::nullopt;
  ++stats_.negative_hits;
  negative_order_.splice(negative_order_.begin(), negative_order_,
                         it->second);
  return it->second->value;
}

void result_cache::store_negative(const cache_key& key, negative_entry e) {
  if (e.code != status::infeasible && e.code != status::invalid_input)
    return; // only structural failures are deterministic for the key
  std::lock_guard<std::mutex> guard(lock_);
  if (options_.negative_entries == 0) return;
  ++stats_.negative_stores;
  const auto it = negative_index_.find(key.canonical);
  if (it != negative_index_.end()) {
    it->second->identity = key.identity;
    it->second->value = std::move(e);
    negative_order_.splice(negative_order_.begin(), negative_order_,
                           it->second);
    return;
  }
  negative_order_.push_front(
      negative_slot{key.canonical, key.identity, std::move(e)});
  negative_index_[key.canonical] = negative_order_.begin();
  while (negative_order_.size() > options_.negative_entries) {
    negative_index_.erase(negative_order_.back().canonical);
    negative_order_.pop_back();
    ++stats_.negative_evictions;
  }
}

cache_stats result_cache::stats() const {
  std::lock_guard<std::mutex> guard(lock_);
  // One atomic snapshot: the occupancy fields are captured under the same
  // lock as the counters, so a concurrent store can never yield a stats
  // document whose numbers disagree with each other.
  cache_stats out = stats_;
  out.entries = order_.size();
  out.bytes = bytes_;
  out.negative_entries = negative_order_.size();
  return out;
}

std::size_t result_cache::size() const {
  std::lock_guard<std::mutex> guard(lock_);
  return order_.size();
}

void result_cache::touch(lru_list::iterator it) {
  order_.splice(order_.begin(), order_, it);
}

void result_cache::insert_locked(const cache_key& key, entry_ptr e) {
  const auto it = index_.find(key.canonical);
  if (it != index_.end()) {
    bytes_ -= charge(it->second->value);
    bytes_ += charge(e);
    it->second->identity = key.identity;
    it->second->value = std::move(e);
    touch(it->second);
    evict_to_budget_locked();
    return;
  }
  bytes_ += charge(e);
  order_.push_front(slot{key.canonical, key.identity, std::move(e)});
  index_[key.canonical] = order_.begin();
  evict_to_budget_locked();
}

void result_cache::evict_to_budget_locked() {
  // Entry-count bound first, then the byte budget; both stop before
  // evicting the most recently touched entry, so one oversized document
  // still caches (exceeding the byte budget by exactly that entry).
  while (order_.size() > 1 &&
         (order_.size() > options_.memory_entries ||
          (options_.memory_bytes > 0 && bytes_ > options_.memory_bytes))) {
    const std::size_t released = charge(order_.back().value);
    bytes_ -= released;
    stats_.bytes_evicted += released;
    index_.erase(order_.back().canonical);
    order_.pop_back();
    ++stats_.evictions;
  }
}

std::string result_cache::disk_path(const cache_key& key) const {
  return options_.disk_dir + "/" + key.digest() + ".json";
}

result_cache::entry_ptr result_cache::disk_lookup(const cache_key& key) {
  std::string text;
  {
    std::ifstream in(disk_path(key), std::ios::binary);
    if (!in) return nullptr; // plain miss: no file for this digest
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  // The file ends with the newline disk_store appended; the in-memory
  // document must stay byte-identical to the originally stored string.
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
    text.pop_back();
  auto parsed = deserialize_flow(text);
  if (!parsed.ok()) {
    std::lock_guard<std::mutex> guard(lock_);
    ++stats_.disk_errors;
    return nullptr;
  }
  // Exact verification: re-derive the key from the embedded identity. A
  // digest collision (or a stale/corrupt file) reads as a miss.
  const cache_key stored =
      make_cache_key(parsed.value().graph, parsed.value().options);
  if (stored.canonical != key.canonical) {
    std::lock_guard<std::mutex> guard(lock_);
    ++stats_.disk_errors;
    return nullptr;
  }
  // An id-permuted twin's file (equal canonical, different id numbering)
  // is a plain miss, not an error: the caller recomputes and overwrites.
  if (stored.identity != key.identity) return nullptr;
  flow_document doc = std::move(parsed).take();
  entry e;
  e.document = std::make_shared<const std::string>(std::move(text));
  e.flow = std::make_shared<const flow_result>(std::move(doc.flow));
  return std::make_shared<const entry>(std::move(e));
}

void result_cache::disk_store(const cache_key& key, const entry& e) {
  if (!e.document) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (!disk_dir_ready_) {
      fs::create_directories(options_.disk_dir, ec);
      if (ec) {
        ++stats_.disk_errors;
        return;
      }
      disk_dir_ready_ = true;
    }
  }
  const std::string path = disk_path(key);
  // Unique per process AND thread: two servers sharing one cache dir must
  // not interleave writes into the same temp file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(static_cast<unsigned long long>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
  // FILE* instead of ofstream: the bytes must be fsync'd to stable storage
  // *before* the rename publishes the file, or a crash between rename and
  // writeback could leave a truncated document under the final name (the
  // rename can survive a crash that the data does not). A failed fsync is
  // treated like a failed write: the temp file is discarded and the store
  // becomes a recorded disk error, never a corrupt published entry.
  {
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (!out) {
      std::lock_guard<std::mutex> guard(lock_);
      ++stats_.disk_errors;
      return;
    }
    const std::string& doc = *e.document;
    const bool wrote =
        std::fwrite(doc.data(), 1, doc.size(), out) == doc.size() &&
        std::fputc('\n', out) != EOF;
    const bool synced =
        wrote && std::fflush(out) == 0 && ::fsync(::fileno(out)) == 0;
    const bool closed = std::fclose(out) == 0;
    if (!wrote || !synced || !closed) {
      std::lock_guard<std::mutex> guard(lock_);
      ++stats_.disk_errors;
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec); // atomic within one filesystem
  if (ec) {
    std::lock_guard<std::mutex> guard(lock_);
    ++stats_.disk_errors;
    fs::remove(tmp, ec);
  }
}

} // namespace transtore::api
