// Versioned, full-fidelity (de)serialization for the pipeline's value
// types, so schedules, chips, and whole stage values survive a process
// boundary:
//
//   * flow documents  -- graph + options + every stage output of one run
//     ({"format":1,"kind":"flow",...}); the unit the result cache stores
//     and `transtore_cli serve` replies with. serialize -> deserialize ->
//     serialize is byte-identical.
//   * stage documents -- a scheduled/synthesized/compressed stage value
//     with everything needed to resume the pipeline in another process:
//     deserialize_scheduled(doc)->synthesize(ctx) continues where the
//     serializing process stopped.
//   * building blocks -- graph and pipeline_options readers/writers, also
//     used by the service front end to parse requests (options_from_value
//     applies partial overrides on top of a base configuration).
//
// The schedule and chip payloads embed the sched/schedule_io.h and
// arch/chip_io.h object layouts. The routing workload is not stored: it is
// a deterministic derivation of the schedule (arch::derive_workload) and is
// rebuilt on load.
#pragma once

#include <string>

#include "api/pipeline.h"
#include "api/result.h"
#include "common/json.h"
#include "sim/fault_injector.h"

namespace transtore::api {

/// Version stamp shared by flow and stage documents.
inline constexpr int flow_format_version = 1;

// ---------------------------------------------------------- building blocks

/// Graph as one JSON object: {"name":...,"ops":[{name,duration,parents}]}.
void write_graph(json_writer& w, const assay::sequencing_graph& g);
[[nodiscard]] assay::sequencing_graph graph_from_value(const json_value& v);

/// Every pipeline_options field as one JSON object (doubles rendered
/// round-trip exact).
void write_options(json_writer& w, const pipeline_options& o);

/// Reads options from `v`, starting from `base` and overriding only the
/// keys present -- the service front end's partial-override semantics.
/// Throws invalid_input_error on unknown keys or malformed values.
[[nodiscard]] pipeline_options options_from_value(const json_value& v,
                                                  pipeline_options base = {});

// ----------------------------------------------------------- flow documents

/// A deserialized flow document: the run's identity plus its full result.
struct flow_document {
  assay::sequencing_graph graph;
  pipeline_options options;
  flow_result flow;
};

[[nodiscard]] std::string serialize_flow(const assay::sequencing_graph& graph,
                                         const pipeline_options& options,
                                         const flow_result& flow);
[[nodiscard]] result<flow_document> deserialize_flow(const std::string& text);

// ----------------------------------------------------- checkpoint documents

/// A deserialized checkpoint document: the faulted run's identity, its
/// original (pre-fault) result, and the frozen execution state at the fault
/// time. api::recover resumes from this in any process -- the
/// cross-process analogue of handing recover() the in-memory pieces.
struct checkpoint_document {
  assay::sequencing_graph graph;
  pipeline_options options;
  flow_result flow;
  sim::checkpoint state;
};

[[nodiscard]] std::string serialize_checkpoint(
    const assay::sequencing_graph& graph, const pipeline_options& options,
    const flow_result& flow, const sim::checkpoint& state);
[[nodiscard]] result<checkpoint_document> deserialize_checkpoint(
    const std::string& text);

// ---------------------------------------------------------- stage documents

[[nodiscard]] std::string serialize_stage(const scheduled& stage);
[[nodiscard]] std::string serialize_stage(const synthesized& stage);
[[nodiscard]] std::string serialize_stage(const compressed& stage);

[[nodiscard]] result<scheduled> deserialize_scheduled(const std::string& text);
[[nodiscard]] result<synthesized> deserialize_synthesized(
    const std::string& text);
[[nodiscard]] result<compressed> deserialize_compressed(
    const std::string& text);

} // namespace transtore::api
