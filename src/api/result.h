// Structured outcomes for the staged synthesis API.
//
// The api boundary does not throw: every stage returns api::result<T>,
// which carries a status code, a human-readable message, and -- for the
// best-effort outcomes time_limit and cancelled -- optionally still a
// value. This keeps the paper's protocol ("return the incumbent when the
// solver budget runs out") visible in the type system instead of hiding it
// behind exceptions.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/error.h"

namespace transtore::api {

enum class status {
  ok,            // stage completed inside its budget
  time_limit,    // deadline hit; a best-effort value may still be present
  cancelled,     // cancel token fired; a best-effort value may be present
  degraded,      // fault recovery succeeded but the recovered schedule
                 // finishes later than the original (value present)
  invalid_input, // malformed graph/options (maps invalid_input_error)
  infeasible,    // optimization model has no solution (infeasible_error)
  capacity,      // grid/storage budget exceeded (capacity_error)
  internal,      // library invariant violated (internal_error)
  queue_full,    // executor's bounded queue rejected the job (submit again
                 // later or shed load); the job never ran
};

[[nodiscard]] constexpr const char* to_string(status s) {
  switch (s) {
    case status::ok: return "ok";
    case status::time_limit: return "time_limit";
    case status::cancelled: return "cancelled";
    case status::degraded: return "degraded";
    case status::invalid_input: return "invalid_input";
    case status::infeasible: return "infeasible";
    case status::capacity: return "capacity";
    case status::internal: return "internal";
    case status::queue_full: return "queue_full";
  }
  return "unknown";
}

/// Outcome of one pipeline stage: a status plus, when the stage produced
/// anything (always for ok, best-effort for time_limit/cancelled), a value.
template <typename T>
class result {
public:
  static result success(T value) {
    return result(status::ok, std::move(value), {});
  }
  /// Best-effort outcome: the deadline or cancel fired but a usable value
  /// exists (e.g. the heuristic schedule after a truncated ILP).
  static result partial(status code, T value, std::string message) {
    return result(code, std::move(value), std::move(message));
  }
  static result failure(status code, std::string message) {
    return result(code, std::nullopt, std::move(message));
  }

  [[nodiscard]] status code() const { return status_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] bool ok() const { return status_ == status::ok; }
  [[nodiscard]] bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] const T& value() const& {
    check(value_.has_value(), "api::result: value() on empty result (" +
                                  std::string(to_string(status_)) + ": " +
                                  message_ + ")");
    return *value_;
  }
  [[nodiscard]] T& value() & {
    check(value_.has_value(), "api::result: value() on empty result (" +
                                  std::string(to_string(status_)) + ": " +
                                  message_ + ")");
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    check(value_.has_value(), "api::result: take() on empty result (" +
                                  std::string(to_string(status_)) + ": " +
                                  message_ + ")");
    return std::move(*value_);
  }
  const T* operator->() const { return &value(); }
  const T& operator*() const { return value(); }

  /// Re-wrap this outcome's status/message for a different value type
  /// (propagating a failed upstream stage through a chain).
  template <typename U>
  [[nodiscard]] api::result<U> propagate() const {
    check(status_ != status::ok,
          "api::result: propagate() on an ok result loses its value");
    return api::result<U>::failure(status_, message_);
  }

private:
  result(status code, std::optional<T> value, std::string message)
      : status_(code), value_(std::move(value)), message_(std::move(message)) {}

  status status_;
  std::optional<T> value_;
  std::string message_;
};

} // namespace transtore::api
