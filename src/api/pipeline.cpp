#include "api/pipeline.h"

#include <sstream>
#include <utility>

#include "api/result_cache.h"
#include "api/serialize.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace transtore::api {
namespace {

/// Translate the exception currently in flight into a stage failure.
/// cancelled_error is attributed to the token or the deadline depending on
/// which actually fired.
template <typename T>
result<T> failure_from_current_exception(const run_context& ctx) {
  try {
    throw;
  } catch (const cancelled_error& e) {
    return result<T>::failure(
        ctx.cancelled() ? status::cancelled : status::time_limit, e.what());
  } catch (const invalid_input_error& e) {
    return result<T>::failure(status::invalid_input, e.what());
  } catch (const infeasible_error& e) {
    return result<T>::failure(status::infeasible, e.what());
  } catch (const capacity_error& e) {
    return result<T>::failure(status::capacity, e.what());
  } catch (const std::exception& e) {
    return result<T>::failure(status::internal, e.what());
  }
}

/// Wrap a completed stage value: ok normally, partial when the run context
/// was interrupted while the stage still produced something usable.
template <typename T>
result<T> finish_stage(const run_context& ctx, const char* stage, T value) {
  if (ctx.cancelled())
    return result<T>::partial(status::cancelled, std::move(value),
                              std::string(stage) +
                                  ": cancelled; best-effort result delivered");
  if (ctx.deadline_expired())
    return result<T>::partial(status::time_limit, std::move(value),
                              std::string(stage) +
                                  ": deadline hit; best-effort result "
                                  "delivered");
  return result<T>::success(std::move(value));
}

// ---------------------------------------------------------- JSON sections

void write_schedule_section(json_writer& w, const assay::sequencing_graph& g,
                            const sched::scheduling_result& scheduling) {
  const sched::schedule& s = scheduling.best;
  w.key("schedule").begin_object();
  w.field("makespan", s.makespan());
  w.field("device_count", s.device_count);
  w.field("stores", s.store_count());
  w.field("peak_concurrent_caches", s.peak_concurrent_caches());
  w.field("total_cache_time", s.total_cache_time());
  w.field("used_ilp", scheduling.used_ilp);
  if (scheduling.used_ilp) {
    w.field("ilp_nodes", scheduling.ilp_nodes);
    w.field("ilp_presolve_rows_removed", scheduling.ilp_presolve_rows_removed);
    w.field("ilp_cuts_added", scheduling.ilp_cuts_added);
    w.field("ilp_root_bound", scheduling.ilp_root_bound);
    // Parallel-search footprint: emitted only when the parallel engine (or
    // the portfolio) actually ran, so sequential documents are unchanged.
    if (scheduling.ilp_threads > 1) w.field("ilp_threads", scheduling.ilp_threads);
    if (!scheduling.ilp_workers.empty()) {
      w.begin_array("ilp_workers");
      for (const auto& ws : scheduling.ilp_workers) {
        w.begin_object();
        w.field("nodes", ws.nodes);
        w.field("simplex_iterations", ws.simplex_iterations);
        w.field("steals", ws.steals);
        w.end_object();
      }
      w.end_array();
    }
    if (scheduling.portfolio_racers > 0) {
      w.field("portfolio_racers", scheduling.portfolio_racers);
      w.field("portfolio_winner", scheduling.portfolio_winner);
    }
  }
  w.begin_array("operations");
  for (const auto& op : s.ops) {
    w.begin_object();
    w.field("name", g.at(op.op).name);
    w.field("device", op.device);
    w.field("start", op.start);
    w.field("end", op.end);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_architecture_section(json_writer& w,
                                const arch::arch_result& architecture) {
  w.key("architecture").begin_object();
  w.field("grid_width", architecture.result.grid().width());
  w.field("grid_height", architecture.result.grid().height());
  w.field("used_edges", architecture.result.used_edge_count());
  w.field("valves", architecture.result.valve_count());
  w.field("edge_ratio", architecture.result.edge_ratio());
  w.field("valve_ratio", architecture.result.valve_ratio());
  w.field("paths", static_cast<long>(architecture.result.paths.size()));
  w.field("caches", static_cast<long>(architecture.result.caches.size()));
  w.end_object();
}

void write_layout_section(json_writer& w, const phys::layout_result& layout) {
  w.key("layout").begin_object();
  w.field("dr_width", layout.after_synthesis.width);
  w.field("dr_height", layout.after_synthesis.height);
  w.field("de_width", layout.after_devices.width);
  w.field("de_height", layout.after_devices.height);
  w.field("dp_width", layout.after_compression.width);
  w.field("dp_height", layout.after_compression.height);
  w.field("compression_iterations", layout.compression_iterations);
  w.field("bend_points", layout.bend_points);
  w.end_object();
}

void write_assay_header(json_writer& w, const assay::sequencing_graph& g) {
  w.field("assay", g.name());
  w.field("operations", g.operation_count());
  w.field("edges", g.edge_count());
}

} // namespace

// ------------------------------------------------------------- flow_result

std::string flow_result::report(const assay::sequencing_graph& graph) const {
  std::ostringstream out;
  const sched::schedule& s = scheduling.best;
  out << "assay " << graph.name() << ": |O|=" << graph.operation_count()
      << ", devices=" << s.device_count << "\n";
  out << "  schedule: tE=" << s.makespan() << "s, stores=" << s.store_count()
      << ", peak storage=" << s.peak_concurrent_caches()
      << ", cache time=" << s.total_cache_time() << "s\n";
  out << "  architecture: edges=" << architecture.result.used_edge_count()
      << ", valves=" << architecture.result.valve_count()
      << ", edge ratio=" << format_double(architecture.result.edge_ratio(), 2)
      << ", valve ratio="
      << format_double(architecture.result.valve_ratio(), 2) << "\n";
  out << "  layout: dr=" << format_dims(layout.after_synthesis.width,
                                        layout.after_synthesis.height)
      << ", de=" << format_dims(layout.after_devices.width,
                                layout.after_devices.height)
      << ", dp=" << format_dims(layout.after_compression.width,
                                layout.after_compression.height)
      << " (" << layout.compression_iterations << " compression iterations, "
      << layout.bend_points << " bends)\n";
  if (stats)
    out << "  verified: " << stats->transport_legs << " legs, "
        << stats->cached_samples << " cached samples, device utilization "
        << format_double(100.0 * stats->device_utilization, 1) << "%\n";
  if (baseline)
    out << "  dedicated-storage baseline: tE=" << baseline->makespan
        << "s, cells=" << baseline->storage_cells
        << ", valves=" << baseline->total_valves << "\n";
  return out.str();
}

std::string to_json(const assay::sequencing_graph& graph,
                    const flow_result& result, bool include_timing) {
  json_writer w;
  w.begin_object();
  write_assay_header(w, graph);
  write_schedule_section(w, graph, result.scheduling);
  write_architecture_section(w, result.architecture);
  write_layout_section(w, result.layout);
  if (result.stats) {
    w.key("verification").begin_object();
    w.field("transport_legs", result.stats->transport_legs);
    w.field("cached_samples", result.stats->cached_samples);
    w.field("max_active_segments", result.stats->max_active_segments);
    w.field("mean_active_segments", result.stats->mean_active_segments);
    w.field("device_utilization", result.stats->device_utilization);
    w.end_object();
  }
  if (result.baseline) {
    w.key("dedicated_storage_baseline").begin_object();
    w.field("makespan", result.baseline->makespan);
    w.field("storage_cells", result.baseline->storage_cells);
    w.field("unit_valves", result.baseline->unit_valves);
    w.field("total_valves", result.baseline->total_valves);
    w.end_object();
  }
  if (include_timing) w.field("total_seconds", result.total_seconds);
  w.end_object();
  return w.str();
}

// ---------------------------------------------------------------- pipeline

pipeline::pipeline(assay::sequencing_graph graph, pipeline_options options)
    : state_(std::make_shared<detail::job_state>(
          detail::job_state{std::move(graph), options})) {}

result<scheduled> pipeline::schedule(const run_context& ctx) const {
  if (ctx.cancelled())
    return result<scheduled>::failure(status::cancelled,
                                      "schedule: cancelled before start");
  try {
    ctx.report("schedule", "start " + state_->graph.name());
    state_->graph.validate();
    const pipeline_options& o = state_->options;

    // Failed devices shrink the schedulable pool: the schedule is built
    // directly on the surviving count (device ids stay compact; fault ids
    // above the configured count are grid-specific noise and ignored here).
    arch::fault_set faults = o.faults;
    faults.normalize();
    int failed_devices = 0;
    for (int d : faults.devices)
      if (d < o.device_count) ++failed_devices;
    if (failed_devices >= o.device_count)
      throw infeasible_error("schedule: every device is failed");

    sched::scheduler_options so;
    so.device_count = o.device_count - failed_devices;
    so.timing = o.timing;
    so.alpha = o.alpha;
    so.beta = o.beta;
    so.storage_aware = o.storage_aware;
    so.engine = o.schedule_engine;
    so.ilp_time_limit_seconds = o.sched_ilp_time_limit;
    so.heuristic_restarts = o.heuristic_restarts;
    so.local_search_iterations = o.local_search_iterations;
    so.seed = o.seed;
    so.cancel = ctx.token();
    so.time_budget_seconds = ctx.budget_or_zero();
    // Thread budget is an execution-time property (executor oversubscription
    // guard), applied here so it never feeds into the cache key.
    so.solver_threads = ctx.clamp_threads(o.solver_threads);
    so.solver_deterministic = o.solver_deterministic;
    so.portfolio = o.portfolio;

    scheduled stage;
    stage.state_ = state_;
    stage.scheduling_ = std::make_shared<const sched::scheduling_result>(
        sched::make_schedule(state_->graph, so));
    ctx.report("schedule",
               "done, tE=" + std::to_string(stage.best().makespan()));
    if (stage.scheduling_->ilp_interrupted &&
        stage.scheduling_->ilp_deadline_clamped && !ctx.interrupted())
      // The ILP was truncated by its clamped share of the pipeline budget
      // even though the deadline has not formally passed yet; surface it.
      // (An ILP that merely hit its ordinary per-solver cap is NOT a
      // deadline outcome -- ilp_deadline_clamped tells the two apart.)
      return result<scheduled>::partial(
          status::time_limit, std::move(stage),
          "schedule: ILP truncated by the pipeline deadline; heuristic "
          "result delivered");
    return finish_stage(ctx, "schedule", std::move(stage));
  } catch (...) {
    return failure_from_current_exception<scheduled>(ctx);
  }
}

// --------------------------------------------------------------- scheduled

std::string scheduled::to_json() const {
  json_writer w;
  w.begin_object();
  write_assay_header(w, state_->graph);
  write_schedule_section(w, state_->graph, *scheduling_);
  w.end_object();
  return w.str();
}

result<synthesized> scheduled::synthesize(const run_context& ctx) const {
  return synthesize(synthesize_overrides{}, ctx);
}

result<synthesized> scheduled::synthesize(const synthesize_overrides& over,
                                          const run_context& ctx) const {
  if (ctx.cancelled())
    return result<synthesized>::failure(status::cancelled,
                                        "synthesize: cancelled before start");
  try {
    const pipeline_options& o = state_->options;
    arch::arch_options ao;
    ao.grid_width = over.grid_width.value_or(o.grid_width);
    ao.grid_height = over.grid_height.value_or(o.grid_height);
    ao.engine = over.engine.value_or(o.arch_engine);
    ao.attempts = over.attempts.value_or(o.arch_attempts);
    ao.placement.seed = o.seed;
    ao.router.seed = o.seed;
    ao.ilp.time_limit_seconds = o.arch_ilp_time_limit;
    ao.cancel = ctx.token();
    ao.time_budget_seconds = ctx.budget_or_zero();
    // Device faults were consumed at the scheduling stage (the schedule is
    // built on the surviving pool); only physical-resource faults reach
    // placement and routing.
    ao.faults = o.faults;
    ao.faults.devices.clear();
    const int growth = over.grid_growth.value_or(o.grid_growth);

    synthesized stage;
    stage.state_ = state_;
    stage.scheduling_ = scheduling_;
    for (int extra = 0;; ++extra) {
      ctx.report("synthesize",
                 "grid " + std::to_string(ao.grid_width) + "x" +
                     std::to_string(ao.grid_height));
      try {
        stage.architecture_ = std::make_shared<const arch::arch_result>(
            arch::synthesize_architecture(scheduling_->best, ao));
        break;
      } catch (const capacity_error&) {
        // Grid growth stays available after a deadline expiry (the retry
        // is cheap heuristics only); explicit cancellation aborts.
        if (extra >= growth || ctx.cancelled()) throw;
        ++ao.grid_width;
        ++ao.grid_height;
      }
    }
    ctx.report("synthesize",
               "done, edges=" +
                   std::to_string(stage.chip().used_edge_count()));
    return finish_stage(ctx, "synthesize", std::move(stage));
  } catch (...) {
    return failure_from_current_exception<synthesized>(ctx);
  }
}

// ------------------------------------------------------------- synthesized

std::string synthesized::to_json() const {
  json_writer w;
  w.begin_object();
  write_assay_header(w, state_->graph);
  write_architecture_section(w, *architecture_);
  w.end_object();
  return w.str();
}

result<compressed> synthesized::compress(const run_context& ctx) const {
  return compress(state_->options.physical, ctx);
}

result<compressed> synthesized::compress(const phys::phys_options& physical,
                                         const run_context& ctx) const {
  if (ctx.cancelled())
    return result<compressed>::failure(status::cancelled,
                                       "compress: cancelled before start");
  try {
    ctx.report("compress", "start");
    phys::phys_options po = physical;
    po.cancel = ctx.token();

    compressed stage;
    stage.state_ = state_;
    stage.scheduling_ = scheduling_;
    stage.architecture_ = architecture_;
    stage.layout_ = std::make_shared<const phys::layout_result>(
        phys::generate_layout(architecture_->result, po));
    ctx.report("compress",
               "done, dp=" +
                   std::to_string(stage.layout_->after_compression.width) +
                   "x" +
                   std::to_string(stage.layout_->after_compression.height));
    return finish_stage(ctx, "compress", std::move(stage));
  } catch (...) {
    return failure_from_current_exception<compressed>(ctx);
  }
}

// -------------------------------------------------------------- compressed

std::string compressed::to_json() const {
  json_writer w;
  w.begin_object();
  write_assay_header(w, state_->graph);
  write_layout_section(w, *layout_);
  w.end_object();
  return w.str();
}

flow_result compressed::result_without_verification() const {
  flow_result r;
  r.scheduling = *scheduling_;
  r.architecture = *architecture_;
  r.layout = *layout_;
  r.total_seconds = r.scheduling.seconds + r.architecture.seconds +
                    r.layout.seconds;
  return r;
}

result<verified> compressed::verify(const run_context& ctx) const {
  if (ctx.cancelled())
    return result<verified>::failure(status::cancelled,
                                     "verify: cancelled before start");
  try {
    ctx.report("verify", "simulating");
    verified stage;
    stage.state_ = state_;
    stage.scheduling_ = scheduling_;
    stage.architecture_ = architecture_;
    stage.layout_ = layout_;
    stage.stats_ = std::make_shared<const sim::sim_stats>(
        sim::simulate(state_->graph, scheduling_->best,
                      architecture_->workload, architecture_->result));
    if (state_->options.run_baseline) {
      ctx.report("verify", "dedicated-storage baseline");
      baseline::baseline_options bo;
      bo.timing = state_->options.timing;
      bo.grid_width = state_->options.grid_width;
      bo.grid_height = state_->options.grid_height;
      bo.placement.seed = state_->options.seed;
      bo.router.seed = state_->options.seed;
      stage.baseline_ = std::make_shared<const baseline::baseline_result>(
          baseline::evaluate_baseline(state_->graph, scheduling_->best, bo));
    }
    ctx.report("verify", "done");
    return finish_stage(ctx, "verify", std::move(stage));
  } catch (...) {
    return failure_from_current_exception<verified>(ctx);
  }
}

// ---------------------------------------------------------------- verified

flow_result verified::result() const {
  flow_result r;
  r.scheduling = *scheduling_;
  r.architecture = *architecture_;
  r.layout = *layout_;
  r.stats = *stats_;
  if (baseline_) r.baseline = *baseline_;
  r.total_seconds = r.scheduling.seconds + r.architecture.seconds +
                    r.layout.seconds +
                    (r.baseline ? r.baseline->seconds : 0.0);
  return r;
}

std::string verified::to_json(bool include_timing) const {
  return api::to_json(state_->graph, result(), include_timing);
}

// ----------------------------------------------------------- pipeline::run

namespace {

/// Move a by-value pipeline outcome into the shared-pointer vocabulary of
/// cached_outcome (one move, never a copy).
result<std::shared_ptr<const flow_result>> share_outcome(
    result<flow_result>&& r) {
  using shared = std::shared_ptr<const flow_result>;
  if (!r.has_value()) return r.propagate<shared>();
  const status code = r.code();
  const std::string message = r.message();
  shared flow = std::make_shared<const flow_result>(std::move(r).take());
  if (code == status::ok) return result<shared>::success(std::move(flow));
  return result<shared>::partial(code, std::move(flow), message);
}

} // namespace

result<flow_result> pipeline::run(const run_context& ctx) const {
  if (!cache_) return run_uncached(ctx);
  cached_outcome c = run_cached(ctx);
  if (!c.outcome.has_value()) return c.outcome.propagate<flow_result>();
  // run()'s by-value contract costs one copy out of the shared entry;
  // callers that want the zero-copy handle use run_cached() directly.
  flow_result copy = *c.outcome.value();
  if (c.outcome.ok()) return result<flow_result>::success(std::move(copy));
  return result<flow_result>::partial(c.outcome.code(), std::move(copy),
                                      c.outcome.message());
}

cached_outcome pipeline::run_cached(const run_context& ctx) const {
  if (!cache_) return {share_outcome(run_uncached(ctx)), false, nullptr};

  using shared = std::shared_ptr<const flow_result>;
  const cache_key key = make_cache_key(state_->graph, state_->options);
  if (const auto negative = cache_->lookup_negative(key)) {
    // A structurally failing request (infeasible / invalid_input) is
    // deterministic for the key: replay the recorded failure instead of
    // re-solving to it.
    ctx.report("cache",
               "negative hit " + state_->graph.name() + " " + key.digest());
    return {result<shared>::failure(negative->code, negative->message),
            true, nullptr};
  }
  result_cache::entry_ptr hit;
  const result_cache::flight probe = cache_->lookup_or_lead(
      key, hit, [&ctx] { return ctx.interrupted(); });
  if (probe == result_cache::flight::hit) {
    // Direct hit, disk hit, or coalesced onto a concurrent leader's solve
    // of the same key -- either way, no solver time was paid, and the
    // shared entry is handed out as-is: no flow_result or document copy.
    ctx.report("cache", "hit " + state_->graph.name() + " " + key.digest());
    return {result<shared>::success(hit->flow), true, hit->document};
  }
  const bool leading = probe == result_cache::flight::leader;
  auto solve_and_store = [&]() -> cached_outcome {
    ctx.report("cache", "miss " + state_->graph.name() + " " + key.digest());
    result<shared> outcome = share_outcome(run_uncached(ctx));
    // Only fully completed runs are cached: a best-effort value produced
    // under a deadline or cancel is not the deterministic answer.
    if (!outcome.ok()) {
      if (leading) cache_->abort_flight(key);
      if (outcome.code() == status::infeasible ||
          outcome.code() == status::invalid_input)
        cache_->store_negative(
            key, result_cache::negative_entry{outcome.code(),
                                              outcome.message()});
      return {std::move(outcome), false, nullptr};
    }
    result_cache::entry entry;
    entry.document = std::make_shared<const std::string>(
        serialize_flow(state_->graph, state_->options, *outcome.value()));
    entry.flow = outcome.value(); // the same shared object the caller gets
    cache_->store(key, entry); // completes the flight, wakes waiters
    return {std::move(outcome), false, std::move(entry.document)};
  };
  try {
    // Everything between flight election and store/abort lives inside this
    // guard (including the progress report -- a throwing user callback must
    // not strand the flight): waiters are always released.
    return solve_and_store();
  } catch (...) {
    if (leading) cache_->abort_flight(key);
    throw;
  }
}

result<flow_result> pipeline::run_uncached(const run_context& ctx) const {
  stopwatch watch;
  auto stage1 = schedule(ctx);
  if (!stage1.has_value()) return stage1.propagate<flow_result>();

  auto stage2 = stage1.value().synthesize(ctx);
  if (!stage2.has_value()) return stage2.propagate<flow_result>();

  auto stage3 = stage2.value().compress(ctx);
  if (!stage3.has_value()) return stage3.propagate<flow_result>();

  flow_result flow;
  status last_code = status::ok;
  std::string last_message;
  if (state_->options.verify) {
    auto stage4 = stage3.value().verify(ctx);
    if (!stage4.has_value()) return stage4.propagate<flow_result>();
    flow = stage4.value().result();
    last_code = stage4.code();
    last_message = stage4.message();
  } else {
    flow = stage3.value().result_without_verification();
    if (state_->options.run_baseline) {
      // Baseline evaluation is independent of simulator verification.
      try {
        baseline::baseline_options bo;
        bo.timing = state_->options.timing;
        bo.grid_width = state_->options.grid_width;
        bo.grid_height = state_->options.grid_height;
        bo.placement.seed = state_->options.seed;
        bo.router.seed = state_->options.seed;
        flow.baseline =
            baseline::evaluate_baseline(state_->graph, flow.scheduling.best,
                                        bo);
      } catch (...) {
        return failure_from_current_exception<flow_result>(ctx);
      }
    }
    last_code = stage3.code();
    last_message = stage3.message();
  }
  flow.total_seconds = watch.elapsed_seconds();

  // The earliest interrupted stage wins the status (and its message):
  // stages after it were best-effort completions of an already-late run.
  status outcome = status::ok;
  std::string message;
  const std::pair<status, const std::string*> staged[] = {
      {stage1.code(), &stage1.message()},
      {stage2.code(), &stage2.message()},
      {stage3.code(), &stage3.message()},
      {last_code, &last_message},
  };
  for (const auto& [code, msg] : staged)
    if (outcome == status::ok && code != status::ok) {
      outcome = code;
      message = *msg;
    }
  if (outcome == status::ok) return result<flow_result>::success(std::move(flow));
  return result<flow_result>::partial(outcome, std::move(flow),
                                      std::move(message));
}

} // namespace transtore::api
