// Physical design (paper Section 3.3): turn the planar connection graph
// into a compact chip layout.
//
// Pipeline (Fig. 7):
//  1. *Scaling*: the architecture is drawn on a grid with one cell pitch of
//     `scale` minimum-channel-distance units; the span of used nodes gives
//     the post-synthesis dimensions d_r (Table 2 column dr).
//  2. *Device insertion*: each grid row/column containing devices inflates
//     by (device_size - 1) units, giving d_e.
//  3. *Iterative compression*: rows and columns are pulled toward the upper
//     right, alternating one-unit horizontal and vertical reductions until
//     every adjacent pair of used rows/columns reaches its minimum pitch;
//     channel segments that fall below the storage length requirement get
//     serpentine bend points (each bend recovers two units of length).
//     The result is d_p.
#pragma once

#include <string>

#include "arch/chip.h"
#include "common/interrupt.h"

namespace transtore::phys {

struct phys_options {
  int pitch = 1;          // minimum channel distance (layout units)
  int scale = 5;          // architecture cell pitch in units (paper Table 2)
  int device_size = 7;    // device footprint edge length in units
  int storage_length = 5; // minimum channel length to hold one sample
  /// Cooperative cancellation: the compression loop stops at the next
  /// iteration boundary, returning a valid (partially compressed) layout.
  cancel_token cancel;
};

struct layout_dimensions {
  int width = 0;
  int height = 0;
};

struct layout_result {
  layout_dimensions after_synthesis;  // d_r
  layout_dimensions after_devices;    // d_e
  layout_dimensions after_compression; // d_p
  int compression_iterations = 0;
  int bend_points = 0; // serpentine bends inserted to keep storage length
  double seconds = 0.0;
  /// Final column/row coordinates (unit centers) of used grid columns/rows,
  /// for rendering and tests.
  std::vector<int> column_position;
  std::vector<int> row_position;
  std::vector<int> used_columns; // grid x values in use, ascending
  std::vector<int> used_rows;    // grid y values in use, ascending
};

/// Run the physical design pipeline on a synthesized chip.
[[nodiscard]] layout_result generate_layout(const arch::chip& c,
                                            const phys_options& options = {});

/// SVG rendering of the final layout: devices as squares, channels as
/// lines, storage segments highlighted, bends drawn as serpentines.
[[nodiscard]] std::string render_svg(const arch::chip& c,
                                     const layout_result& layout,
                                     const phys_options& options = {});

} // namespace transtore::phys
