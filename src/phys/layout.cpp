#include "phys/layout.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/stopwatch.h"

namespace transtore::phys {
namespace {

/// Grid columns/rows actually used by the chip (devices, paths, caches).
void collect_used(const arch::chip& c, std::set<int>& cols,
                  std::set<int>& rows) {
  auto touch = [&](int node) {
    const point p = c.grid().coordinate(node);
    cols.insert(p.x);
    rows.insert(p.y);
  };
  for (int node : c.device_nodes()) touch(node);
  for (const auto& p : c.paths)
    for (int n : p.nodes) touch(n);
  for (const auto& cp : c.caches) {
    const auto [u, v] = c.grid().endpoints(cp.edge);
    touch(u);
    touch(v);
  }
}

/// Width demand of a grid column/row: a device footprint or a plain switch.
std::vector<int> lane_widths(const std::vector<int>& lanes,
                             const std::set<int>& device_lanes,
                             const phys_options& opt) {
  std::vector<int> widths;
  widths.reserve(lanes.size());
  for (int lane : lanes)
    widths.push_back(device_lanes.count(lane) ? opt.device_size : 1);
  return widths;
}

/// One compression sweep along one axis: shrink the largest reducible gap
/// between adjacent used lanes by one unit. Returns false when every gap is
/// at its minimum (packing reached).
bool compress_step(std::vector<int>& positions, const std::vector<int>& widths,
                   int pitch) {
  bool reduced = false;
  for (std::size_t i = 1; i < positions.size() && !reduced; ++i) {
    const int min_separation =
        (widths[i - 1] + widths[i]) / 2 + pitch; // center-to-center
    const int separation = positions[i] - positions[i - 1];
    if (separation > min_separation) {
      // Pull this lane and everything beyond it one unit closer.
      for (std::size_t j = i; j < positions.size(); ++j) positions[j] -= 1;
      reduced = true;
    }
  }
  return reduced;
}

int span(const std::vector<int>& positions, const std::vector<int>& widths) {
  if (positions.empty()) return 1;
  const int lo = positions.front() - widths.front() / 2;
  const int hi = positions.back() + widths.back() / 2;
  return hi - lo + 1;
}

} // namespace

layout_result generate_layout(const arch::chip& c, const phys_options& opt) {
  require(opt.pitch >= 1 && opt.scale >= 1 && opt.device_size >= 1 &&
              opt.storage_length >= 1,
          "generate_layout: options must be positive");
  stopwatch watch;
  layout_result result;

  std::set<int> used_cols, used_rows;
  collect_used(c, used_cols, used_rows);
  result.used_columns.assign(used_cols.begin(), used_cols.end());
  result.used_rows.assign(used_rows.begin(), used_rows.end());

  // --- stage 1: scaled architecture bounding box (d_r).
  const rect box = c.used_bounding_box();
  result.after_synthesis = {std::max(1, box.width() * opt.scale),
                            std::max(1, box.height() * opt.scale)};

  // --- stage 2: device insertion (d_e).
  std::set<int> device_cols, device_rows;
  for (int node : c.device_nodes()) {
    const point p = c.grid().coordinate(node);
    device_cols.insert(p.x);
    device_rows.insert(p.y);
  }
  result.after_devices = {
      result.after_synthesis.width +
          (opt.device_size - 1) * static_cast<int>(device_cols.size()),
      result.after_synthesis.height +
          (opt.device_size - 1) * static_cast<int>(device_rows.size())};

  // Initial coordinates: spread lanes like stage 2 (scaled spacing plus
  // device inflation as lanes are passed).
  auto initial_positions = [&](const std::vector<int>& lanes,
                               const std::set<int>& device_lanes) {
    std::vector<int> pos;
    int cursor = 0;
    int previous_lane = lanes.empty() ? 0 : lanes.front();
    bool first = true;
    for (int lane : lanes) {
      if (first) {
        cursor = device_lanes.count(lane) ? opt.device_size / 2 : 0;
        first = false;
      } else {
        cursor += (lane - previous_lane) * opt.scale;
        if (device_lanes.count(lane)) cursor += opt.device_size - 1;
      }
      pos.push_back(cursor);
      previous_lane = lane;
    }
    return pos;
  };
  std::vector<int> col_pos = initial_positions(result.used_columns, device_cols);
  std::vector<int> row_pos = initial_positions(result.used_rows, device_rows);
  const std::vector<int> col_widths =
      lane_widths(result.used_columns, device_cols, opt);
  const std::vector<int> row_widths =
      lane_widths(result.used_rows, device_rows, opt);

  // --- stage 3: alternating one-unit compressions until fixpoint.
  int iterations = 0;
  bool more_h = true;
  bool more_v = true;
  while (more_h || more_v) {
    if (opt.cancel.cancelled()) break;
    if (more_h) {
      more_h = compress_step(col_pos, col_widths, opt.pitch);
      if (more_h) ++iterations;
    }
    if (more_v) {
      more_v = compress_step(row_pos, row_widths, opt.pitch);
      if (more_v) ++iterations;
    }
  }
  result.compression_iterations = iterations;
  result.after_compression = {span(col_pos, col_widths),
                              span(row_pos, row_widths)};

  // --- bends: storage segments must keep their required channel length.
  std::map<int, int> col_of, row_of;
  for (std::size_t i = 0; i < result.used_columns.size(); ++i)
    col_of[result.used_columns[i]] = col_pos[i];
  for (std::size_t i = 0; i < result.used_rows.size(); ++i)
    row_of[result.used_rows[i]] = row_pos[i];

  int bends = 0;
  for (const auto& cp : c.caches) {
    const auto [u, v] = c.grid().endpoints(cp.edge);
    const point pu = c.grid().coordinate(u);
    const point pv = c.grid().coordinate(v);
    const int dx = std::abs(col_of.at(pu.x) - col_of.at(pv.x));
    const int dy = std::abs(row_of.at(pu.y) - row_of.at(pv.y));
    const int geometric_length = dx + dy;
    if (geometric_length < opt.storage_length)
      bends += (opt.storage_length - geometric_length + 1) / 2;
  }
  result.bend_points = bends;

  result.column_position = std::move(col_pos);
  result.row_position = std::move(row_pos);
  result.seconds = watch.elapsed_seconds();
  return result;
}

std::string render_svg(const arch::chip& c, const layout_result& layout,
                       const phys_options& opt) {
  std::map<int, int> col_of, row_of;
  for (std::size_t i = 0; i < layout.used_columns.size(); ++i)
    col_of[layout.used_columns[i]] = layout.column_position[i];
  for (std::size_t i = 0; i < layout.used_rows.size(); ++i)
    row_of[layout.used_rows[i]] = layout.row_position[i];

  const int unit = 12; // pixels per layout unit
  const int margin = 2 * unit;
  auto px = [&](int units) { return margin + units * unit; };
  const int width = px(layout.after_compression.width) + margin;
  const int height = px(layout.after_compression.height) + margin;
  const int max_y = layout.after_compression.height;

  auto node_xy = [&](int node) {
    const point p = c.grid().coordinate(node);
    // y flipped: grid y grows up, SVG y grows down.
    return std::pair<int, int>{px(col_of.at(p.x)),
                               px(max_y - row_of.at(p.y))};
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " "
      << height << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Channels (used edges), storage segments thicker and blue.
  std::set<int> storage_edges;
  for (const auto& cp : c.caches) storage_edges.insert(cp.edge);
  const auto used = c.used_edges();
  for (int e = 0; e < c.grid().edge_count(); ++e) {
    if (!used[static_cast<std::size_t>(e)]) continue;
    const auto [u, v] = c.grid().endpoints(e);
    const auto [x1, y1] = node_xy(u);
    const auto [x2, y2] = node_xy(v);
    const bool storage = storage_edges.count(e) > 0;
    svg << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
        << "\" y2=\"" << y2 << "\" stroke=\""
        << (storage ? "#1565c0" : "#555") << "\" stroke-width=\""
        << (storage ? 5 : 2) << "\"/>\n";
  }

  // Switch nodes.
  for (const auto& p : c.paths)
    for (int n : p.nodes) {
      if (c.device_at(n) >= 0) continue;
      const auto [x, y] = node_xy(n);
      svg << "<circle cx=\"" << x << "\" cy=\"" << y
          << "\" r=\"4\" fill=\"#999\"/>\n";
    }

  // Devices.
  const int half = opt.device_size * unit / 2;
  for (std::size_t d = 0; d < c.device_nodes().size(); ++d) {
    const auto [x, y] = node_xy(c.device_nodes()[d]);
    svg << "<rect x=\"" << x - half << "\" y=\"" << y - half << "\" width=\""
        << 2 * half << "\" height=\"" << 2 * half
        << "\" fill=\"#e8f5e9\" stroke=\"#2e7d32\" stroke-width=\"2\"/>\n";
    svg << "<text x=\"" << x << "\" y=\"" << y + 4
        << "\" text-anchor=\"middle\" font-size=\"12\" fill=\"#2e7d32\">d"
        << d + 1 << "</text>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

} // namespace transtore::phys
