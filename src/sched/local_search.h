// Simulated-annealing improvement of a schedule.
//
// The greedy list scheduler commits operations one at a time and cannot
// undo an early mistake; the paper's ILP explores orders globally but only
// within its solver budget. This pass bridges the gap: starting from any
// valid schedule it perturbs the binding -- swapping adjacent operations on
// a device, relocating an operation to another queue position, or moving
// it to another device -- re-times each candidate with the full device-port
// model, and anneals on objective (6). All moves preserve precedence
// feasibility by construction; every accepted candidate is a valid
// schedule. Deterministic in the seed.
#pragma once

#include <cstdint>

#include "common/interrupt.h"
#include "sched/timing.h"

namespace transtore::sched {

struct local_search_options {
  double alpha = 1.0;
  double beta = 0.15;
  int iterations = 6000;
  double initial_temperature = 60.0; // in objective units (seconds-ish)
  std::uint64_t seed = 1;
  /// Stage wall-clock budget in seconds (0 = unlimited) and cooperative
  /// cancellation; the anneal stops early and returns the best schedule
  /// found so far (never worse than `start`).
  double time_budget_seconds = 0.0;
  cancel_token cancel;
};

/// Anneal `start` and return the best schedule found (never worse than
/// `start` under alpha/beta).
[[nodiscard]] schedule improve_schedule(const assay::sequencing_graph& graph,
                                        const schedule& start,
                                        const timing_options& timing,
                                        const local_search_options& options);

} // namespace transtore::sched
