#include "sched/list_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/prng.h"
#include "common/stopwatch.h"

namespace transtore::sched {
namespace {

/// Longest execution-time path from each op to any sink (inclusive).
std::vector<int> remaining_path(const assay::sequencing_graph& graph) {
  std::vector<int> order = graph.topological_order();
  std::vector<int> path(static_cast<std::size_t>(graph.operation_count()), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int best = 0;
    for (int child : graph.children(*it))
      best = std::max(best, path[static_cast<std::size_t>(child)]);
    path[static_cast<std::size_t>(*it)] = best + graph.at(*it).duration;
  }
  return path;
}

schedule greedy_pass(const assay::sequencing_graph& graph,
                     const list_scheduler_options& options,
                     const std::vector<int>& priority, prng& rng,
                     double noise) {
  timeline_builder builder(graph, options.device_count, options.timing);
  const int n = graph.operation_count();
  const double beta = options.storage_aware ? options.beta : 0.0;

  for (int step = 0; step < n; ++step) {
    int best_op = -1;
    int best_device = -1;
    double best_score = std::numeric_limits<double>::infinity();
    int best_priority = -1;

    for (int op = 0; op < n; ++op) {
      if (!builder.ready(op)) continue;
      for (int d = 0; d < options.device_count; ++d) {
        const auto placement = builder.preview(op, d);
        double score = options.alpha * placement.end +
                       beta * static_cast<double>(placement.cache_time_added);
        if (noise > 0.0) score += rng.uniform_real(0.0, noise);
        const int prio = priority[static_cast<std::size_t>(op)];
        // Tie-breaking: the storage-aware mode prefers deeper chains
        // (depth-first consumption, Fig. 2(c)); the time-only baseline is
        // deliberately storage-blind and just takes the lowest id, like a
        // makespan-only ILP that has no preference among its optima.
        bool tie_better;
        if (options.storage_aware)
          tie_better = prio > best_priority ||
                       (prio == best_priority && op < best_op);
        else
          tie_better = op < best_op;
        const bool better = score < best_score - 1e-9 ||
                            (score < best_score + 1e-9 && tie_better);
        if (better) {
          best_score = score;
          best_op = op;
          best_device = d;
          best_priority = prio;
        }
      }
    }
    check(best_op >= 0, "list scheduler: no ready operation (cycle?)");
    builder.commit(best_op, best_device);
  }
  return builder.build();
}

} // namespace

schedule schedule_with_list(const assay::sequencing_graph& graph,
                            const list_scheduler_options& options) {
  graph.validate();
  require(options.device_count > 0,
          "list scheduler: device count must be positive");
  require(options.restarts >= 1, "list scheduler: need at least one restart");

  const std::vector<int> priority = remaining_path(graph);
  prng rng(options.seed);

  const double final_beta = options.storage_aware ? options.beta : 0.0;
  schedule best;
  double best_objective = std::numeric_limits<double>::infinity();

  const deadline budget(options.time_budget_seconds, options.cancel);
  for (int attempt = 0; attempt < options.restarts; ++attempt) {
    if (attempt > 0 && budget.expired()) break;
    // First pass is pure greedy; later passes add increasing noise.
    const double noise =
        attempt == 0 ? 0.0
                     : options.timing.transport_time *
                           (0.5 + 2.0 * rng.uniform_real());
    schedule candidate = greedy_pass(graph, options, priority, rng, noise);
    const double objective = candidate.objective(options.alpha, final_beta);
    if (objective < best_objective) {
      best_objective = objective;
      best = std::move(candidate);
    }
  }
  best.validate(graph);
  return best;
}

} // namespace transtore::sched
