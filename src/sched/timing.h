// Timing construction: turns a binding (device assignment + per-device
// operation order) into a fully timed schedule with every transport leg and
// cache hold derived.
//
// Device timing model (see DESIGN.md "Key modelling decisions"):
//   * A device is a single serial resource: mixing, loading an operand and
//     unloading a result each occupy it exclusively.
//   * Every transport leg lasts exactly uc seconds (the paper's constant
//     pure transportation time).
//   * A result leaves its mixer eagerly: the store-out leg departs as soon
//     as the producer's port is free -- matching the immediate "store"
//     blocks in the paper's Fig. 2/Fig. 4 timelines. The only exception is
//     a *handoff*: when the next operation on the same device consumes the
//     result, it stays in the mixer.
//   * A transfer is *direct* when the consumer can receive the fluid in the
//     very leg that leaves the producer (one uc leg, both ports busy for
//     the same window); otherwise the fluid is *cached* in channel storage
//     between the store leg and the fetch leg.
//
// With uc=10s and 30s mixes this model reproduces the paper's motivating
// numbers exactly: PCR on one mixer gives tE=290 with 4 stores/capacity 3
// for the Fig. 2(b) order and tE=270 with 3 stores/capacity 2 for the
// Fig. 2(c) order.
#pragma once

#include <optional>
#include <vector>

#include "assay/sequencing_graph.h"
#include "sched/schedule.h"

namespace transtore::sched {

/// Device assignment plus per-device execution order.
struct binding {
  std::vector<int> device_of;                // indexed by operation id
  std::vector<std::vector<int>> device_order; // per device, in execution order
};

struct timing_options {
  int transport_time = 10;        // uc in seconds
  bool count_reagent_loads = false; // include primary-input load legs
  /// 0 = distributed channel storage (the paper's proposal): samples are
  /// cached in channel segments, just-in-time transfers are direct.
  /// 1 = dedicated storage unit baseline (prior work / Fig. 10): every
  /// non-handoff transfer is deposited into the unit and fetched back, and
  /// all store/fetch accesses serialize through this many unit ports.
  int storage_ports = 0;
};

/// Incremental schedule constructor shared by the timing refinement and the
/// list scheduler. Operations are committed one at a time; preview() prices
/// a candidate without mutating state.
class timeline_builder {
public:
  timeline_builder(const assay::sequencing_graph& graph, int device_count,
                   timing_options options);

  /// Outcome of placing `op` on `device` next.
  struct placement {
    int start = 0;
    int end = 0;
    long cache_time_added = 0; // sum of new hold durations
    bool uses_handoff = false;
  };

  /// Price committing `op` on `device` without changing state.
  /// Requires all parents of `op` to be committed.
  [[nodiscard]] placement preview(int op, int device) const;

  /// Commit `op` on `device`. Returns the realized placement.
  placement commit(int op, int device);

  [[nodiscard]] bool committed(int op) const;
  [[nodiscard]] int committed_count() const { return committed_count_; }

  /// All parents of `op` committed (so it can be placed).
  [[nodiscard]] bool ready(int op) const;

  // --- Checkpoint seeding (fault recovery) --------------------------------
  // These install a partially executed schedule verbatim so the remainder
  // of the assay can be re-planned after it. Seed operations in ascending
  // (start, id) order so every parent is committed before its children.

  /// Commit `op` on `device` with a fixed, already-executed interval.
  void seed_operation(int op, int device, int start, int end);

  /// Append an already-executed transport leg verbatim; returns its index
  /// in the final leg list (for remapping seed_transfer leg references).
  int seed_leg(const transport_leg& leg);

  /// Install an already-resolved edge transfer. Leg indices must be values
  /// returned by seed_leg. commit() of the consumer then treats the edge
  /// as delivered and only floors its start by the arrival time.
  void seed_transfer(const edge_transfer& tr);

  /// Record that the fluid of edge (parent, child) already left its
  /// producer with the given store-out window but was not delivered yet:
  /// committing the consumer re-creates the identical store leg and
  /// extends the hold up to its new fetch time.
  void seed_pending_out(int parent, int child, time_interval window);

  /// Raise every port frontier to at least `t` (no new activity may be
  /// planned before the fault time).
  void floor_ports(int t);

  /// Assemble the final schedule; requires every operation committed.
  [[nodiscard]] schedule build() const;

private:
  struct pending_out {
    bool emitted = false;
    time_interval window{};
  };

  struct plan {
    placement result;
    std::vector<transport_leg> new_legs;
    std::vector<edge_transfer> new_transfers;
    // (edge index, window) of store-out reservations emitted by this commit.
    std::vector<std::pair<int, time_interval>> emitted_outs;
    std::vector<std::pair<int, int>> port_updates; // (device, new frontier)
  };

  [[nodiscard]] plan compute(int op, int device) const;
  void apply(const plan& p, int op, int device);

  const assay::sequencing_graph& graph_;
  timing_options options_;
  int device_count_ = 0;

  std::vector<int> edge_index_of_;        // flattened (parent,child) lookup
  std::vector<std::pair<int, int>> edges_;

  std::vector<bool> committed_ops_;
  std::vector<int> device_of_;
  std::vector<int> start_;
  std::vector<int> end_;
  std::vector<int> last_op_;   // per device
  std::vector<int> port_free_; // per device: port frontier time
  std::vector<pending_out> outs_; // per edge
  std::vector<transport_leg> legs_;
  std::vector<std::optional<edge_transfer>> transfers_; // per edge
  int committed_count_ = 0;

  [[nodiscard]] int edge_of(int parent, int child) const;
};

/// Realize a binding as a timed schedule. Throws invalid_input_error when
/// the binding is malformed or its device orders deadlock across devices.
[[nodiscard]] schedule refine_timing(const assay::sequencing_graph& graph,
                                     const binding& b, int device_count,
                                     const timing_options& options = {});

/// Extract the binding (assignment + order by start time) from a schedule.
[[nodiscard]] binding extract_binding(const schedule& s, int device_count);

} // namespace transtore::sched
