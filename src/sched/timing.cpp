#include "sched/timing.h"

#include <algorithm>
#include <limits>

namespace transtore::sched {

timeline_builder::timeline_builder(const assay::sequencing_graph& graph,
                                   int device_count, timing_options options)
    : graph_(graph), options_(options), device_count_(device_count) {
  require(device_count > 0, "timeline_builder: need at least one device");
  require(options.transport_time > 0,
          "timeline_builder: transport time must be positive");
  const int n = graph.operation_count();
  edges_ = graph.edges();
  edge_index_of_.assign(static_cast<std::size_t>(n) * n, -1);
  for (std::size_t e = 0; e < edges_.size(); ++e)
    edge_index_of_[static_cast<std::size_t>(edges_[e].first) * n +
                   edges_[e].second] = static_cast<int>(e);

  require(options.storage_ports >= 0,
          "timeline_builder: storage_ports must be non-negative");
  committed_ops_.assign(n, false);
  device_of_.assign(n, -1);
  start_.assign(n, 0);
  end_.assign(n, 0);
  last_op_.assign(device_count, -1);
  // One extra pseudo-port slot models the dedicated storage unit's port.
  port_free_.assign(device_count + (options.storage_ports > 0 ? 1 : 0), 0);
  outs_.assign(edges_.size(), pending_out{});
  transfers_.assign(edges_.size(), std::nullopt);
}

int timeline_builder::edge_of(int parent, int child) const {
  const int n = graph_.operation_count();
  const int e = edge_index_of_[static_cast<std::size_t>(parent) * n + child];
  check(e >= 0, "timeline_builder: unknown edge");
  return e;
}

bool timeline_builder::committed(int op) const {
  require(op >= 0 && op < graph_.operation_count(),
          "timeline_builder: unknown op");
  return committed_ops_[static_cast<std::size_t>(op)];
}

bool timeline_builder::ready(int op) const {
  if (committed(op)) return false;
  for (int parent : graph_.at(op).parents)
    if (!committed_ops_[static_cast<std::size_t>(parent)]) return false;
  return true;
}

timeline_builder::plan timeline_builder::compute(int op, int device) const {
  require(device >= 0 && device < device_count_,
          "timeline_builder: device out of range");
  require(!committed(op), "timeline_builder: op already committed");
  for (int parent : graph_.at(op).parents)
    require(committed_ops_[static_cast<std::size_t>(parent)],
            "timeline_builder: parents must be committed first");

  const int uc = options_.transport_time;
  const bool dedicated = options_.storage_ports > 0;
  const std::size_t storage_port = static_cast<std::size_t>(device_count_);
  plan p;

  // Local copies of the port frontiers we may move.
  std::vector<int> port = port_free_;

  // Places a store-out leg: it occupies the producing device's port, and --
  // with a dedicated storage unit -- also the unit's single access port.
  auto place_out = [&](std::size_t producer_port) {
    int begin = port[producer_port];
    if (dedicated) begin = std::max(begin, port[storage_port]);
    const time_interval w{begin, begin + uc};
    port[producer_port] = w.end;
    if (dedicated) port[storage_port] = w.end;
    return w;
  };

  // 1. Finalize pending store-outs of the previous op on this device.
  //    A result may stay in the mixer only for a handoff to `op` itself.
  const int prev = last_op_[static_cast<std::size_t>(device)];
  int handoff_parent = -1;
  if (prev >= 0) {
    for (int child : graph_.children(prev)) {
      const int e = edge_of(prev, child);
      if (outs_[static_cast<std::size_t>(e)].emitted) continue;
      if (child == op && handoff_parent < 0) {
        handoff_parent = prev; // result stays in the mixer
        continue;
      }
      p.emitted_outs.emplace_back(
          e, place_out(static_cast<std::size_t>(device)));
    }
  }

  // Window of an edge's store-out reservation, whether pre-existing,
  // emitted within this plan, or still to be created eagerly now.
  auto out_window = [&](int e, int producer) -> time_interval {
    if (outs_[static_cast<std::size_t>(e)].emitted)
      return outs_[static_cast<std::size_t>(e)].window;
    for (const auto& [edge, w] : p.emitted_outs)
      if (edge == e) return w;
    // Producer is still the last op on its (idle-ported) device: the out
    // leg departs as soon as that port is free.
    const int pd = device_of_[static_cast<std::size_t>(producer)];
    port[static_cast<std::size_t>(pd)] =
        std::max(port[static_cast<std::size_t>(pd)],
                 end_[static_cast<std::size_t>(producer)]);
    const time_interval w = place_out(static_cast<std::size_t>(pd));
    p.emitted_outs.emplace_back(e, w);
    return w;
  };

  // 2. Place the in-legs for transported operands, earliest-available first.
  //    Edges whose transfer is already resolved (checkpoint seeding) need
  //    no new leg; they only floor the start by their arrival time.
  std::vector<int> parents = graph_.at(op).parents;
  if (handoff_parent >= 0)
    parents.erase(std::find(parents.begin(), parents.end(), handoff_parent));
  int arrival_floor = 0;
  for (auto it = parents.begin(); it != parents.end();) {
    const auto& tr = transfers_[static_cast<std::size_t>(edge_of(*it, op))];
    if (!tr.has_value()) {
      ++it;
      continue;
    }
    int arrival = end_[static_cast<std::size_t>(*it)];
    if (tr->kind == transfer_kind::cached)
      arrival = legs_[static_cast<std::size_t>(tr->fetch_leg)].window.end;
    else if (tr->kind == transfer_kind::direct)
      arrival = legs_[static_cast<std::size_t>(tr->direct_leg)].window.end;
    arrival_floor = std::max(arrival_floor, arrival);
    it = parents.erase(it);
  }
  std::sort(parents.begin(), parents.end(), [&](int a, int b) {
    const auto wa = outs_[static_cast<std::size_t>(edge_of(a, op))];
    const auto wb = outs_[static_cast<std::size_t>(edge_of(b, op))];
    const int ta = wa.emitted ? wa.window.begin
                              : end_[static_cast<std::size_t>(a)];
    const int tb = wb.emitted ? wb.window.begin
                              : end_[static_cast<std::size_t>(b)];
    if (ta != tb) return ta < tb;
    return a < b;
  });

  int t = std::max(port[static_cast<std::size_t>(device)], arrival_floor);
  for (int parent : parents) {
    const int e = edge_of(parent, op);
    const time_interval w = out_window(e, parent);
    const int pd = device_of_[static_cast<std::size_t>(parent)];

    edge_transfer tr;
    tr.source_op = parent;
    tr.target_op = op;
    if (!dedicated && t <= w.begin) {
      // Direct transfer: the out leg itself delivers the fluid.
      tr.kind = transfer_kind::direct;
      transport_leg leg;
      leg.kind = leg_kind::direct;
      leg.source_op = parent;
      leg.target_op = op;
      leg.from_device = pd;
      leg.to_device = device;
      leg.window = w;
      tr.direct_leg = static_cast<int>(legs_.size() + p.new_legs.size());
      p.new_legs.push_back(leg);
      // Remove the reservation: it became the direct leg.
      for (auto it = p.emitted_outs.begin(); it != p.emitted_outs.end(); ++it)
        if (it->first == e) {
          p.emitted_outs.erase(it);
          break;
        }
      t = w.end;
    } else {
      // Cached transfer: store leg (the reservation), hold, fetch leg. The
      // fetch also needs the unit's access port in the dedicated baseline.
      int fetch_begin = std::max(t, w.end);
      if (dedicated) {
        fetch_begin = std::max(fetch_begin, port[storage_port]);
        port[storage_port] = fetch_begin + uc;
      }
      tr.kind = transfer_kind::cached;
      transport_leg store;
      store.kind = leg_kind::store;
      store.source_op = parent;
      store.target_op = op;
      store.from_device = pd;
      store.to_device = -1;
      store.window = w;
      transport_leg fetch;
      fetch.kind = leg_kind::fetch;
      fetch.source_op = parent;
      fetch.target_op = op;
      fetch.from_device = -1;
      fetch.to_device = device;
      fetch.window = {fetch_begin, fetch_begin + uc};
      tr.store_leg = static_cast<int>(legs_.size() + p.new_legs.size());
      p.new_legs.push_back(store);
      tr.fetch_leg = static_cast<int>(legs_.size() + p.new_legs.size());
      p.new_legs.push_back(fetch);
      tr.cache_hold = {w.end, fetch_begin};
      p.result.cache_time_added += tr.cache_hold.length();
      // The reservation is realized as the store leg.
      for (auto it = p.emitted_outs.begin(); it != p.emitted_outs.end(); ++it)
        if (it->first == e) {
          p.emitted_outs.erase(it);
          break;
        }
      if (outs_[static_cast<std::size_t>(e)].emitted) {
        // Pre-existing reservation: nothing to remove; already persistent.
      }
      t = fetch_begin + uc;
    }
    p.new_transfers.push_back(tr);
  }

  // 3. Reagent loads (optional in the timing model; see DESIGN.md).
  if (options_.count_reagent_loads) {
    for (int k = 0; k < graph_.reagent_inputs(op); ++k) {
      transport_leg leg;
      leg.kind = leg_kind::reagent;
      leg.source_op = -1;
      leg.target_op = op;
      leg.from_device = -1;
      leg.to_device = device;
      leg.window = {t, t + uc};
      p.new_legs.push_back(leg);
      t += uc;
    }
  }

  // 4. Handoff transfer record (no legs).
  if (handoff_parent >= 0) {
    edge_transfer tr;
    tr.source_op = handoff_parent;
    tr.target_op = op;
    tr.kind = transfer_kind::handoff;
    p.new_transfers.push_back(tr);
    p.result.uses_handoff = true;
    t = std::max(t, end_[static_cast<std::size_t>(handoff_parent)]);
  }

  p.result.start = t;
  p.result.end = t + graph_.at(op).duration;
  port[static_cast<std::size_t>(device)] = p.result.end;

  for (std::size_t slot = 0; slot < port.size(); ++slot)
    if (port[slot] != port_free_[slot])
      p.port_updates.emplace_back(static_cast<int>(slot), port[slot]);

  return p;
}

timeline_builder::placement timeline_builder::preview(int op,
                                                      int device) const {
  return compute(op, device).result;
}

void timeline_builder::apply(const plan& p, int op, int device) {
  for (const auto& [e, w] : p.emitted_outs) {
    outs_[static_cast<std::size_t>(e)].emitted = true;
    outs_[static_cast<std::size_t>(e)].window = w;
  }
  for (const auto& leg : p.new_legs) legs_.push_back(leg);
  for (const auto& tr : p.new_transfers) {
    const int e = edge_of(tr.source_op, tr.target_op);
    check(!transfers_[static_cast<std::size_t>(e)].has_value(),
          "timeline_builder: transfer resolved twice");
    transfers_[static_cast<std::size_t>(e)] = tr;
    // Mark the edge's out as consumed so it is not re-finalized.
    outs_[static_cast<std::size_t>(e)].emitted = true;
    if (tr.kind == transfer_kind::cached)
      outs_[static_cast<std::size_t>(e)].window =
          legs_[static_cast<std::size_t>(tr.store_leg)].window;
    if (tr.kind == transfer_kind::direct)
      outs_[static_cast<std::size_t>(e)].window =
          legs_[static_cast<std::size_t>(tr.direct_leg)].window;
  }
  for (const auto& [d, frontier] : p.port_updates)
    port_free_[static_cast<std::size_t>(d)] = frontier;

  committed_ops_[static_cast<std::size_t>(op)] = true;
  device_of_[static_cast<std::size_t>(op)] = device;
  start_[static_cast<std::size_t>(op)] = p.result.start;
  end_[static_cast<std::size_t>(op)] = p.result.end;
  last_op_[static_cast<std::size_t>(device)] = op;
  ++committed_count_;
}

timeline_builder::placement timeline_builder::commit(int op, int device) {
  const plan p = compute(op, device);
  apply(p, op, device);
  return p.result;
}

void timeline_builder::seed_operation(int op, int device, int start, int end) {
  require(device >= 0 && device < device_count_,
          "timeline_builder: seed device out of range");
  require(ready(op), "timeline_builder: seeded op not ready");
  require(start <= end, "timeline_builder: seeded interval is reversed");
  committed_ops_[static_cast<std::size_t>(op)] = true;
  device_of_[static_cast<std::size_t>(op)] = device;
  start_[static_cast<std::size_t>(op)] = start;
  end_[static_cast<std::size_t>(op)] = end;
  last_op_[static_cast<std::size_t>(device)] = op;
  port_free_[static_cast<std::size_t>(device)] =
      std::max(port_free_[static_cast<std::size_t>(device)], end);
  ++committed_count_;
}

int timeline_builder::seed_leg(const transport_leg& leg) {
  require(leg.window.length() == options_.transport_time,
          "timeline_builder: seeded leg has wrong length");
  auto floor_port = [&](int device) {
    if (device < 0) return;
    require(device < device_count_,
            "timeline_builder: seeded leg device out of range");
    port_free_[static_cast<std::size_t>(device)] = std::max(
        port_free_[static_cast<std::size_t>(device)], leg.window.end);
  };
  floor_port(leg.from_device);
  floor_port(leg.to_device);
  // In the dedicated-storage baseline, store and fetch legs also hold the
  // unit's access port.
  if (options_.storage_ports > 0 &&
      (leg.kind == leg_kind::store || leg.kind == leg_kind::fetch)) {
    const std::size_t storage_port = static_cast<std::size_t>(device_count_);
    port_free_[storage_port] =
        std::max(port_free_[storage_port], leg.window.end);
  }
  legs_.push_back(leg);
  return static_cast<int>(legs_.size()) - 1;
}

void timeline_builder::seed_transfer(const edge_transfer& tr) {
  const int e = edge_of(tr.source_op, tr.target_op);
  check(!transfers_[static_cast<std::size_t>(e)].has_value(),
        "timeline_builder: seeded transfer resolved twice");
  const int leg_count = static_cast<int>(legs_.size());
  auto require_leg = [&](int leg) {
    require(leg >= 0 && leg < leg_count,
            "timeline_builder: seeded transfer references unknown leg");
  };
  outs_[static_cast<std::size_t>(e)].emitted = true;
  if (tr.kind == transfer_kind::cached) {
    require_leg(tr.store_leg);
    require_leg(tr.fetch_leg);
    outs_[static_cast<std::size_t>(e)].window =
        legs_[static_cast<std::size_t>(tr.store_leg)].window;
  } else if (tr.kind == transfer_kind::direct) {
    require_leg(tr.direct_leg);
    outs_[static_cast<std::size_t>(e)].window =
        legs_[static_cast<std::size_t>(tr.direct_leg)].window;
  }
  transfers_[static_cast<std::size_t>(e)] = tr;
}

void timeline_builder::seed_pending_out(int parent, int child,
                                        time_interval window) {
  const int e = edge_of(parent, child);
  require(committed(parent),
          "timeline_builder: pending out before its producer");
  require(window.length() == options_.transport_time,
          "timeline_builder: pending out window has wrong length");
  outs_[static_cast<std::size_t>(e)].emitted = true;
  outs_[static_cast<std::size_t>(e)].window = window;
  const int pd = device_of_[static_cast<std::size_t>(parent)];
  port_free_[static_cast<std::size_t>(pd)] =
      std::max(port_free_[static_cast<std::size_t>(pd)], window.end);
}

void timeline_builder::floor_ports(int t) {
  for (int& frontier : port_free_) frontier = std::max(frontier, t);
}

schedule timeline_builder::build() const {
  check(committed_count_ == graph_.operation_count(),
        "timeline_builder: build() before all ops committed");
  schedule s;
  s.device_count = device_count_;
  s.transport_time = options_.transport_time;
  s.ops.resize(static_cast<std::size_t>(graph_.operation_count()));
  for (int i = 0; i < graph_.operation_count(); ++i) {
    scheduled_op so;
    so.op = i;
    so.device = device_of_[static_cast<std::size_t>(i)];
    so.start = start_[static_cast<std::size_t>(i)];
    so.end = end_[static_cast<std::size_t>(i)];
    s.ops[static_cast<std::size_t>(i)] = so;
  }
  s.legs = legs_;
  s.transfers.reserve(transfers_.size());
  for (const auto& tr : transfers_) {
    check(tr.has_value(), "timeline_builder: unresolved transfer");
    s.transfers.push_back(*tr);
  }
  return s;
}

schedule refine_timing(const assay::sequencing_graph& graph, const binding& b,
                       int device_count, const timing_options& options) {
  const int n = graph.operation_count();
  require(static_cast<int>(b.device_of.size()) == n,
          "refine_timing: device_of size mismatch");
  require(static_cast<int>(b.device_order.size()) == device_count,
          "refine_timing: device_order size mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (int d = 0; d < device_count; ++d)
    for (int op : b.device_order[static_cast<std::size_t>(d)]) {
      require(op >= 0 && op < n, "refine_timing: unknown op in order");
      require(!seen[static_cast<std::size_t>(op)],
              "refine_timing: op appears twice in device orders");
      require(b.device_of[static_cast<std::size_t>(op)] == d,
              "refine_timing: order and assignment disagree");
      seen[static_cast<std::size_t>(op)] = true;
    }
  for (int i = 0; i < n; ++i)
    require(seen[static_cast<std::size_t>(i)],
            "refine_timing: op missing from device orders");

  timeline_builder builder(graph, device_count, options);
  std::vector<std::size_t> next(static_cast<std::size_t>(device_count), 0);

  for (int step = 0; step < n; ++step) {
    // Among device-queue heads whose parents are committed, commit the one
    // with the earliest previewed start (ties by op id).
    int best_op = -1;
    int best_device = -1;
    int best_start = std::numeric_limits<int>::max();
    for (int d = 0; d < device_count; ++d) {
      const auto& queue = b.device_order[static_cast<std::size_t>(d)];
      if (next[static_cast<std::size_t>(d)] >= queue.size()) continue;
      const int op = queue[next[static_cast<std::size_t>(d)]];
      if (!builder.ready(op)) continue;
      const auto placement = builder.preview(op, d);
      if (placement.start < best_start ||
          (placement.start == best_start && op < best_op)) {
        best_start = placement.start;
        best_op = op;
        best_device = d;
      }
    }
    require(best_op >= 0,
            "refine_timing: device orders deadlock across devices");
    builder.commit(best_op, best_device);
    ++next[static_cast<std::size_t>(best_device)];
  }
  return builder.build();
}

binding extract_binding(const schedule& s, int device_count) {
  binding b;
  b.device_of.resize(s.ops.size());
  b.device_order.assign(static_cast<std::size_t>(device_count), {});
  std::vector<int> order(s.ops.size());
  for (std::size_t i = 0; i < s.ops.size(); ++i)
    order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b2) {
    if (s.ops[static_cast<std::size_t>(a)].start !=
        s.ops[static_cast<std::size_t>(b2)].start)
      return s.ops[static_cast<std::size_t>(a)].start <
             s.ops[static_cast<std::size_t>(b2)].start;
    return a < b2;
  });
  for (int op : order) {
    const int d = s.ops[static_cast<std::size_t>(op)].device;
    b.device_of[static_cast<std::size_t>(op)] = d;
    b.device_order[static_cast<std::size_t>(d)].push_back(op);
  }
  return b;
}

} // namespace transtore::sched
