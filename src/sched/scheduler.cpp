#include "sched/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "sched/local_search.h"
#include "sched/metaheuristics.h"

namespace transtore::sched {
namespace {

bool is_metaheuristic(schedule_engine engine) {
  return engine == schedule_engine::sa || engine == schedule_engine::grasp ||
         engine == schedule_engine::decomp;
}

list_scheduler_options heuristic_options(const scheduler_options& o) {
  list_scheduler_options lo;
  lo.device_count = o.device_count;
  lo.timing = o.timing;
  lo.alpha = o.alpha;
  lo.beta = o.beta;
  lo.storage_aware = o.storage_aware;
  lo.restarts = o.heuristic_restarts;
  lo.seed = o.seed;
  return lo;
}

ilp_scheduler_options ilp_options(const scheduler_options& o,
                                  const schedule& warm) {
  ilp_scheduler_options io;
  io.device_count = o.device_count;
  io.timing = o.timing;
  io.alpha = o.alpha;
  io.beta = o.storage_aware ? o.beta : 0.0;
  io.time_limit_seconds = o.ilp_time_limit_seconds;
  io.warm_start = warm;
  io.log_progress = o.log_progress;
  io.portfolio = o.portfolio;
  io.seed = o.seed;
  io.milp.threads = o.solver_threads;
  io.milp.deterministic = o.solver_deterministic;
  return io;
}

/// Estimated ILP row count before building the full model (cheap guard).
long estimate_ilp_rows(const assay::sequencing_graph& graph,
                       const scheduler_options& o) {
  const long n = graph.operation_count();
  long unrelated_pairs = 0;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (!graph.reaches(i, j) && !graph.reaches(j, i)) ++unrelated_pairs;
  return 2 * n + n + graph.edge_count() * (2L * o.device_count + 2) +
         unrelated_pairs * 2L * o.device_count + n;
}

} // namespace

scheduling_result make_schedule(const assay::sequencing_graph& graph,
                                const scheduler_options& options) {
  stopwatch watch;
  const deadline budget(options.time_budget_seconds, options.cancel);
  scheduling_result result;

  // A heuristic schedule is always produced: it is either the answer, the
  // ILP warm start, the metaheuristic engines' starting incumbent and
  // never-worse floor, or several of these at once.
  list_scheduler_options lo = heuristic_options(options);
  lo.time_budget_seconds = options.time_budget_seconds;
  lo.cancel = options.cancel;
  if (options.engine == schedule_engine::ilp ||
      is_metaheuristic(options.engine))
    lo.restarts = 1; // single greedy pass: seed/floor, not the answer
  schedule heuristic = schedule_with_list(graph, lo);

  const double effective_beta = options.storage_aware ? options.beta : 0.0;

  if (is_metaheuristic(options.engine)) {
    const double remaining =
        options.time_budget_seconds > 0.0
            ? std::max(budget.remaining_seconds(), 1e-3)
            : 0.0;
    switch (options.engine) {
      case schedule_engine::sa: {
        sa_scheduler_options so;
        so.device_count = options.device_count;
        so.timing = options.timing;
        so.alpha = options.alpha;
        so.beta = options.beta;
        so.storage_aware = options.storage_aware;
        so.iterations = options.local_search_iterations;
        so.seed = options.seed;
        so.time_budget_seconds = remaining;
        so.cancel = options.cancel;
        so.start = std::move(heuristic);
        result.best = schedule_with_sa(graph, so);
        break;
      }
      case schedule_engine::grasp: {
        grasp_scheduler_options go;
        go.device_count = options.device_count;
        go.timing = options.timing;
        go.alpha = options.alpha;
        go.beta = options.beta;
        go.storage_aware = options.storage_aware;
        go.improvement_iterations =
            std::max(0, options.local_search_iterations / 4);
        go.seed = options.seed;
        go.time_budget_seconds = remaining;
        go.cancel = options.cancel;
        go.start = std::move(heuristic);
        result.best = schedule_with_grasp(graph, go);
        break;
      }
      default: {
        decomposition_scheduler_options dopts;
        dopts.device_count = options.device_count;
        dopts.timing = options.timing;
        dopts.alpha = options.alpha;
        dopts.beta = options.beta;
        dopts.storage_aware = options.storage_aware;
        dopts.restarts = std::max(1, options.heuristic_restarts / 4);
        dopts.seed = options.seed;
        dopts.time_budget_seconds = remaining;
        dopts.cancel = options.cancel;
        dopts.start = std::move(heuristic);
        result.best = schedule_with_decomposition(graph, dopts);
        // decomp is purely constructive; the shared annealing post-pass
        // below polishes it (sa/grasp already embed their anneal).
        if (options.local_search_iterations > 0) {
          local_search_options lso;
          lso.alpha = options.alpha;
          lso.beta = effective_beta;
          lso.iterations = options.local_search_iterations;
          lso.seed = derive_seed(options.seed, 0x504F5354ULL);
          lso.cancel = options.cancel;
          if (options.time_budget_seconds > 0.0)
            lso.time_budget_seconds =
                std::max(budget.remaining_seconds(), 1e-3);
          result.best =
              improve_schedule(graph, result.best, options.timing, lso);
        }
        break;
      }
    }
    result.best.validate(graph);
    result.seconds = watch.elapsed_seconds();
    return result;
  }

  bool run_ilp = options.engine != schedule_engine::heuristic;
  if (run_ilp) {
    const long rows = estimate_ilp_rows(graph, options);
    if (options.engine == schedule_engine::combined &&
        rows > options.ilp_row_limit) {
      log_at(log_level::info, "scheduler: skipping ILP (", rows,
             " estimated rows > limit ", options.ilp_row_limit, ")");
      result.ilp_skipped_too_large = true;
      run_ilp = false;
    }
  }
  if (run_ilp && budget.expired()) {
    // Budget already gone: the heuristic carries the instance.
    result.ilp_interrupted = true;
    result.ilp_deadline_clamped = true;
    run_ilp = false;
  }

  if (run_ilp && options.local_search_iterations > 0 && !budget.expired()) {
    // Anneal the heuristic BEFORE the MILP sees it: the warm start handed
    // to the solver is then the best metaheuristic incumbent, so pruning
    // starts from a tight primal bound at the very first node.
    sa_scheduler_options so;
    so.device_count = options.device_count;
    so.timing = options.timing;
    so.alpha = options.alpha;
    so.beta = options.beta;
    so.storage_aware = options.storage_aware;
    so.iterations = options.local_search_iterations;
    so.restarts = 2;
    so.seed = derive_seed(options.seed, 0x5741524DULL);
    so.cancel = options.cancel;
    if (options.time_budget_seconds > 0.0)
      // Leave the bulk of the remaining budget to the ILP itself.
      so.time_budget_seconds =
          std::max(budget.remaining_seconds() * 0.25, 1e-3);
    so.start = heuristic;
    heuristic = schedule_with_sa(graph, so);
  }

  if (run_ilp) {
    ilp_scheduler_options io = ilp_options(options, heuristic);
    io.milp.cancel = options.cancel;
    // Clamp to the remaining stage budget; the 1ms floor keeps a raced-to-
    // zero remainder from reading as "unlimited" in the solver's deadline,
    // and a configured limit of 0 ("uncapped") becomes exactly the
    // remaining budget.
    if (options.time_budget_seconds > 0.0) {
      const double remaining = std::max(budget.remaining_seconds(), 1e-3);
      result.ilp_deadline_clamped =
          io.time_limit_seconds <= 0.0 || remaining < io.time_limit_seconds;
      io.time_limit_seconds = io.time_limit_seconds > 0.0
                                  ? std::min(io.time_limit_seconds, remaining)
                                  : remaining;
    }
    const ilp_schedule_result ilp = schedule_with_ilp(graph, io);
    result.used_ilp = true;
    result.ilp_status = ilp.status;
    result.ilp_interrupted = ilp.interrupted;
    result.ilp_objective = ilp.ilp_objective;
    result.ilp_bound = ilp.ilp_bound;
    result.ilp_variables = ilp.variables;
    result.ilp_constraints = ilp.constraints;
    result.ilp_nodes = ilp.nodes;
    result.ilp_presolve_rows_removed = ilp.presolve_rows_removed;
    result.ilp_cuts_added = ilp.cuts_added;
    result.ilp_root_bound = ilp.root_bound;
    result.ilp_threads = ilp.threads_used;
    result.ilp_workers = ilp.workers;
    result.portfolio_racers = ilp.portfolio_racers;
    result.portfolio_winner = ilp.portfolio_winner;
    // Keep whichever refined schedule scores better under objective (6);
    // the ILP does not model device-port serialization, so its extraction
    // can occasionally refine worse than the heuristic.
    const double ilp_score =
        ilp.refined.objective(options.alpha, effective_beta);
    const double heuristic_score =
        heuristic.objective(options.alpha, effective_beta);
    result.best =
        ilp_score <= heuristic_score ? ilp.refined : std::move(heuristic);
  } else {
    result.best = std::move(heuristic);
  }

  if (options.local_search_iterations > 0) {
    local_search_options lso;
    lso.alpha = options.alpha;
    lso.beta = effective_beta;
    lso.iterations = options.local_search_iterations;
    // Derived stream (uniform with every other engine): the post-pass must
    // not replay the pre-ILP anneal's exact trajectory.
    lso.seed = derive_seed(options.seed, 0x504F5354ULL);
    lso.cancel = options.cancel;
    if (options.time_budget_seconds > 0.0)
      lso.time_budget_seconds = std::max(budget.remaining_seconds(), 1e-3);
    result.best = improve_schedule(graph, result.best, options.timing, lso);
  }

  result.best.validate(graph);
  result.seconds = watch.elapsed_seconds();
  return result;
}

} // namespace transtore::sched
