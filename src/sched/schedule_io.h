// Full-fidelity JSON (de)serialization for sched::schedule, so a schedule
// survives a process boundary (result cache, `transtore_cli serve`,
// cross-process pipeline reuse). Unlike the metric summaries emitted by the
// api stage values, these documents carry every op, transport leg, and
// transfer, and round-trip byte-identically:
//
//   serialize(s) == serialize(schedule_from_json(serialize(s)))
//
// Documents are versioned ("format": 1); readers reject unknown versions.
#pragma once

#include <string>

#include "common/json.h"
#include "sched/schedule.h"

namespace transtore::sched {

/// Version stamp of the schedule document layout.
inline constexpr int schedule_format_version = 1;

/// Write the schedule as one JSON object through `w` (positioned where a
/// value is expected) -- for embedding into larger documents.
void write_schedule(json_writer& w, const schedule& s);

/// Standalone document: {"format":1,"kind":"schedule",...}.
[[nodiscard]] std::string serialize(const schedule& s);

/// Reconstruct a schedule from a parsed value (the object written by
/// write_schedule). Throws invalid_input_error on malformed or
/// version-mismatched input.
[[nodiscard]] schedule schedule_from_value(const json_value& v);

/// Reconstruct from a standalone document string.
[[nodiscard]] schedule schedule_from_json(const std::string& text);

} // namespace transtore::sched
