// Storage-aware list scheduling (heuristic counterpart of the paper's ILP).
//
// The greedy constructor repeatedly commits one ready operation onto one
// device, choosing the (operation, device) pair that minimizes
//
//     alpha * completion_time + beta * new_cache_hold_time
//
// with ties broken by the longest remaining dependency chain (critical-path
// priority) -- in storage-aware mode this naturally produces the
// depth-first consumption orders of the paper's Fig. 2(c). With beta = 0 it
// degenerates to classic makespan-only list scheduling (the paper's
// "optimize execution time only" baseline of Fig. 9).
//
// Multiple seeded restarts perturb the scoring to escape ties; the best
// schedule under the final objective (6) is returned. Deterministic in the
// options' seed.
#pragma once

#include <cstdint>

#include "assay/sequencing_graph.h"
#include "common/interrupt.h"
#include "sched/timing.h"

namespace transtore::sched {

struct list_scheduler_options {
  int device_count = 1;
  timing_options timing{};
  double alpha = 1.0;   // weight of tE in objective (6)
  double beta = 0.15;   // weight of storage time in objective (6)
  bool storage_aware = true; // false: minimize execution time only
  int restarts = 24;    // perturbed greedy restarts (>= 1)
  std::uint64_t seed = 1;
  /// Stage wall-clock budget in seconds (0 = unlimited) and cooperative
  /// cancellation. The first greedy pass always completes so a valid
  /// schedule exists; later restarts stop at the interrupt.
  double time_budget_seconds = 0.0;
  cancel_token cancel;
};

/// Build a schedule heuristically. Throws invalid_input_error for malformed
/// inputs (empty graph, non-positive device count).
[[nodiscard]] schedule schedule_with_list(const assay::sequencing_graph& graph,
                                          const list_scheduler_options& options);

} // namespace transtore::sched
