// Schedule splicing for mid-assay fault recovery.
//
// Given a schedule that has executed up to a fault time T, splice_schedule
// keeps the executed prefix verbatim -- every operation started before T,
// every transport leg departed before T, every sample already parked in
// channel storage -- and re-plans only the remaining sub-DAG on the healthy
// devices, producing one validated schedule in which completed work is
// never re-executed.
//
// The crossing state at T is classified per sequencing-graph edge:
//
//   * internal  -- producer and consumer both started before T: the whole
//                  transfer is installed verbatim.
//   * delivered -- the delivering leg (direct or fetch) departed before T:
//                  legs and transfer are installed verbatim and the
//                  consumer is pinned to its original device (the fluid is
//                  already arriving there).
//   * stored    -- the store leg departed before T but the fetch has not:
//                  the sample sits in channel storage; the consumer's
//                  commit re-creates the identical store leg and extends
//                  the hold to its new fetch time (it may land on any
//                  healthy device).
//   * pending   -- nothing departed: the fluid is still in its producer's
//                  mixer and the transfer is re-resolved from scratch
//                  (including a possible re-handoff).
//
// Conditions no re-planning can fix (an operation in flight on a failed
// device, a fluid trapped in or already delivered into a failed device's
// mixer) are reported through blocking_resource() and make splice_schedule
// throw infeasible_error naming the resource.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "assay/sequencing_graph.h"
#include "common/interrupt.h"
#include "sched/timing.h"

namespace transtore::sched {

struct splice_options {
  int device_count = 1;
  timing_options timing{};
  /// Per-device failure map (empty = no failed devices). Failed devices
  /// receive no remainder operations.
  std::vector<bool> failed_devices;
  double alpha = 1.0;
  double beta = 0.15;
  bool storage_aware = true;
  /// Noisy greedy restarts over the remainder (first pass is pure greedy).
  int restarts = 8;
  std::uint64_t seed = 1;
  double time_budget_seconds = 0.0;
  cancel_token cancel;
};

struct splice_result {
  schedule spliced;
  std::vector<int> prefix_ops;    // ops kept verbatim (started before T)
  std::vector<int> remainder_ops; // ops re-planned (sorted ascending)
};

/// Where one edge's fluid is at the fault time (see the file comment).
enum class crossing_state { internal, delivered, stored, pending };

/// Classify one transfer of `s` at `fault_time`.
[[nodiscard]] crossing_state classify_crossing(const schedule& s,
                                               const edge_transfer& tr,
                                               int fault_time);

/// Schedule-level conditions that make recovery impossible under any retry
/// rung. Returns a description naming the blocking resource, or nullopt.
[[nodiscard]] std::optional<std::string> blocking_resource(
    const assay::sequencing_graph& graph, const schedule& original,
    int fault_time, const std::vector<bool>& failed_devices);

/// Splice `original` at `fault_time`: keep the executed prefix, re-plan
/// the remainder on healthy devices. Throws infeasible_error (with the
/// blocking resource named) when recovery is impossible, and
/// invalid_input_error on malformed arguments.
[[nodiscard]] splice_result splice_schedule(
    const assay::sequencing_graph& graph, const schedule& original,
    int fault_time, const splice_options& options);

} // namespace transtore::sched
