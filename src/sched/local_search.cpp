#include "sched/local_search.h"

#include <algorithm>
#include <cmath>

#include "common/prng.h"
#include "common/stopwatch.h"
#include "sched/moves.h" // position_feasible shared with metaheuristics.cpp

namespace transtore::sched {

schedule improve_schedule(const assay::sequencing_graph& graph,
                          const schedule& start,
                          const timing_options& timing,
                          const local_search_options& options) {
  require(options.iterations >= 0, "improve_schedule: negative iterations");
  const int devices = start.device_count;
  prng rng(options.seed);

  binding current = extract_binding(start, devices);
  double current_cost = start.objective(options.alpha, options.beta);
  binding best = current;
  double best_cost = current_cost;

  double temperature = options.initial_temperature;
  const double cooling =
      options.iterations > 0
          ? std::pow(0.05, 1.0 / options.iterations)
          : 1.0;

  const deadline budget(options.time_budget_seconds, options.cancel);
  for (int iter = 0; iter < options.iterations; ++iter) {
    if ((iter & 255) == 0 && budget.expired()) break;
    binding candidate = current;
    // Pick a random operation and a move.
    const int op = static_cast<int>(rng.index(candidate.device_of.size()));
    const int from_device = candidate.device_of[static_cast<std::size_t>(op)];
    auto& from_queue =
        candidate.device_order[static_cast<std::size_t>(from_device)];
    const auto it = std::find(from_queue.begin(), from_queue.end(), op);
    check(it != from_queue.end(), "improve_schedule: binding corrupt");
    from_queue.erase(it);

    const int to_device =
        devices > 1 && rng.bernoulli(0.35)
            ? static_cast<int>(rng.index(static_cast<std::size_t>(devices)))
            : from_device;
    auto& to_queue =
        candidate.device_order[static_cast<std::size_t>(to_device)];
    const std::size_t position = rng.index(to_queue.size() + 1);
    if (!position_feasible(graph, to_queue, op, position)) {
      // Undo and retry next iteration (cheap rejection).
      auto& q = candidate.device_order[static_cast<std::size_t>(from_device)];
      (void)q;
      temperature *= cooling;
      continue;
    }
    to_queue.insert(to_queue.begin() + static_cast<std::ptrdiff_t>(position),
                    op);
    candidate.device_of[static_cast<std::size_t>(op)] = to_device;

    schedule timed;
    try {
      timed = refine_timing(graph, candidate, devices, timing);
    } catch (const invalid_input_error&) {
      temperature *= cooling;
      continue; // cross-device deadlock; reject
    }
    const double cost = timed.objective(options.alpha, options.beta);
    const double delta = cost - current_cost;
    if (delta <= 0.0 ||
        rng.uniform_real() < std::exp(-delta / std::max(1e-9, temperature))) {
      current = std::move(candidate);
      current_cost = cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = current;
      }
    }
    temperature *= cooling;
  }

  schedule result = refine_timing(graph, best, devices, timing);
  result.validate(graph);
  // The annealer never returns something worse than its starting point.
  if (result.objective(options.alpha, options.beta) >
      start.objective(options.alpha, options.beta))
    return start;
  return result;
}

} // namespace transtore::sched
