#include "sched/schedule.h"

#include <algorithm>
#include <string>

namespace transtore::sched {

int schedule::makespan() const {
  int latest = 0;
  for (const auto& op : ops) latest = std::max(latest, op.end);
  return latest;
}

int schedule::store_count() const {
  int count = 0;
  for (const auto& t : transfers)
    if (t.kind == transfer_kind::cached) ++count;
  return count;
}

int schedule::peak_concurrent_caches() const {
  // Sweep hold boundaries.
  std::vector<std::pair<int, int>> events; // (time, +1/-1)
  for (const auto& t : transfers) {
    if (t.kind != transfer_kind::cached || t.cache_hold.empty()) continue;
    events.emplace_back(t.cache_hold.begin, 1);
    events.emplace_back(t.cache_hold.end, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second; // process releases before acquires
            });
  int current = 0;
  int peak = 0;
  for (const auto& [time, delta] : events) {
    (void)time;
    current += delta;
    peak = std::max(peak, current);
  }
  return peak;
}

long schedule::total_cache_time() const {
  long total = 0;
  for (const auto& t : transfers)
    if (t.kind == transfer_kind::cached) total += t.cache_hold.length();
  return total;
}

std::vector<int> schedule::caches_active_at(int t) const {
  std::vector<int> active;
  for (std::size_t i = 0; i < transfers.size(); ++i)
    if (transfers[i].kind == transfer_kind::cached &&
        transfers[i].cache_hold.contains(t))
      active.push_back(static_cast<int>(i));
  return active;
}

double schedule::objective(double alpha, double beta) const {
  return alpha * makespan() + beta * static_cast<double>(total_cache_time());
}

void schedule::validate(const assay::sequencing_graph& graph) const {
  const int n = graph.operation_count();
  check(static_cast<int>(ops.size()) == n,
        "schedule: wrong number of scheduled operations");
  for (int i = 0; i < n; ++i) {
    const scheduled_op& s = ops[static_cast<std::size_t>(i)];
    check(s.op == i, "schedule: ops must be indexed by operation id");
    check(s.device >= 0 && s.device < device_count,
          "schedule: device out of range");
    check(s.end - s.start == graph.at(i).duration,
          "schedule: execution interval does not match duration");
    check(s.start >= 0, "schedule: negative start time");
  }

  check(static_cast<int>(transfers.size()) == graph.edge_count(),
        "schedule: one transfer required per graph edge");

  auto leg_at = [&](int index) -> const transport_leg& {
    check(index >= 0 && index < static_cast<int>(legs.size()),
          "schedule: transfer references unknown leg");
    return legs[static_cast<std::size_t>(index)];
  };

  for (const edge_transfer& t : transfers) {
    const scheduled_op& src = ops[static_cast<std::size_t>(t.source_op)];
    const scheduled_op& dst = ops[static_cast<std::size_t>(t.target_op)];
    switch (t.kind) {
      case transfer_kind::handoff:
        check(src.device == dst.device,
              "schedule: handoff across different devices");
        check(dst.start >= src.end, "schedule: handoff violates precedence");
        break;
      case transfer_kind::direct: {
        const transport_leg& leg = leg_at(t.direct_leg);
        check(leg.kind == leg_kind::direct, "schedule: direct leg kind");
        check(leg.window.begin >= src.end,
              "schedule: direct leg departs before producer finishes");
        check(leg.window.length() == transport_time,
              "schedule: direct leg length");
        check(dst.start >= leg.window.end,
              "schedule: consumer starts before direct leg arrives");
        break;
      }
      case transfer_kind::cached: {
        const transport_leg& store = leg_at(t.store_leg);
        const transport_leg& fetch = leg_at(t.fetch_leg);
        check(store.kind == leg_kind::store && fetch.kind == leg_kind::fetch,
              "schedule: cached transfer leg kinds");
        check(store.window.length() == transport_time &&
                  fetch.window.length() == transport_time,
              "schedule: cached transfer leg lengths");
        check(store.window.begin >= src.end,
              "schedule: store leg departs before producer finishes");
        check(t.cache_hold.begin == store.window.end &&
                  t.cache_hold.end == fetch.window.begin,
              "schedule: hold must span store end to fetch begin");
        check(!(t.cache_hold.end < t.cache_hold.begin),
              "schedule: negative cache hold");
        check(dst.start >= fetch.window.end,
              "schedule: consumer starts before fetch arrives");
        break;
      }
    }
  }

  // Device exclusivity: execution intervals and port legs must not overlap.
  std::vector<std::vector<time_interval>> busy(
      static_cast<std::size_t>(device_count));
  for (const auto& op : ops)
    busy[static_cast<std::size_t>(op.device)].push_back(
        {op.start, op.end});
  for (const auto& leg : legs) {
    check(leg.window.length() == transport_time, "schedule: leg length != uc");
    if (leg.from_device >= 0)
      busy[static_cast<std::size_t>(leg.from_device)].push_back(leg.window);
    if (leg.to_device >= 0 && leg.to_device != leg.from_device)
      busy[static_cast<std::size_t>(leg.to_device)].push_back(leg.window);
  }
  for (int d = 0; d < device_count; ++d) {
    auto& intervals = busy[static_cast<std::size_t>(d)];
    std::sort(intervals.begin(), intervals.end(),
              [](const time_interval& a, const time_interval& b) {
                return a.begin < b.begin;
              });
    for (std::size_t i = 1; i < intervals.size(); ++i)
      check(intervals[i].begin >= intervals[i - 1].end,
            "schedule: overlapping activity on device " + std::to_string(d));
  }
}

} // namespace transtore::sched
