// Schedule model: the output of scheduling & binding (paper Section 3.1).
//
// A schedule fixes, for every operation, its device and execution interval,
// and derives every fluid movement the chip must perform:
//
//   * handoff  -- the producing operation immediately precedes the consumer
//                 on the same device; the fluid never leaves the mixer.
//   * direct   -- one transport leg of length uc moves the fluid straight
//                 from producer to consumer device (ports of both devices
//                 are busy for the same window).
//   * cached   -- a store leg moves the fluid into channel storage, it is
//                 held there, and a fetch leg later moves it into the
//                 consumer; this is the paper's distributed channel storage.
//
// Storage analytics on this model reproduce the paper's Fig. 2 numbers:
// the 4-store/capacity-3 and 3-store/capacity-2 PCR schedules.
#pragma once

#include <vector>

#include "assay/sequencing_graph.h"
#include "common/geometry.h"

namespace transtore::sched {

enum class leg_kind { direct, store, fetch, reagent };
enum class transfer_kind { handoff, direct, cached };

/// One fluid movement occupying device ports for `window` (length uc).
struct transport_leg {
  leg_kind kind = leg_kind::direct;
  int source_op = -1;   // producing operation; -1 for reagent loads
  int target_op = -1;   // consuming operation
  int from_device = -1; // port busy at the source; -1 = chip inlet/storage
  int to_device = -1;   // port busy at the target; -1 = storage
  time_interval window;
};

/// How one sequencing-graph edge is realized.
struct edge_transfer {
  int source_op = -1;
  int target_op = -1;
  transfer_kind kind = transfer_kind::handoff;
  time_interval cache_hold; // meaningful when kind == cached
  int store_leg = -1;       // index into schedule::legs when cached
  int fetch_leg = -1;       // index into schedule::legs when cached
  int direct_leg = -1;      // index into schedule::legs when direct
};

/// Execution assignment of one operation.
struct scheduled_op {
  int op = -1;
  int device = -1;
  int start = 0; // execution start (seconds)
  int end = 0;   // execution end = start + duration
};

/// Complete schedule with all derived transport and storage activity.
class schedule {
public:
  std::vector<scheduled_op> ops;      // indexed by operation id
  std::vector<transport_leg> legs;
  std::vector<edge_transfer> transfers; // one per graph edge
  int device_count = 0;
  int transport_time = 10; // uc: pure device-to-device transport seconds

  /// Latest operation ending time -- the paper's tE (constraint (5)).
  [[nodiscard]] int makespan() const;

  /// Number of cached transfers (= number of store ops = fetch ops).
  [[nodiscard]] int store_count() const;

  /// Peak number of simultaneously cached samples: the storage capacity a
  /// dedicated unit would need (paper Fig. 2 discussion).
  [[nodiscard]] int peak_concurrent_caches() const;

  /// Sum of cache-hold durations: the realized analogue of the paper's
  /// storage objective term sum of u_ij.
  [[nodiscard]] long total_cache_time() const;

  /// Transfers whose hold interval contains time t.
  [[nodiscard]] std::vector<int> caches_active_at(int t) const;

  /// Weighted objective alpha*tE + beta*total_cache_time (objective (6)).
  [[nodiscard]] double objective(double alpha, double beta) const;

  /// Verifies every structural invariant against the graph: each op
  /// scheduled exactly once with its full duration, precedence respected
  /// per transfer kind, no two activities overlap on any device port, legs
  /// have length uc, holds are non-negative. Throws internal_error on
  /// violation (a schedule produced by this library must always pass).
  void validate(const assay::sequencing_graph& graph) const;
};

} // namespace transtore::sched
