#include "sched/schedule_io.h"

#include "common/error.h"

namespace transtore::sched {
namespace {

[[nodiscard]] const char* to_string(leg_kind k) {
  switch (k) {
    case leg_kind::direct: return "direct";
    case leg_kind::store: return "store";
    case leg_kind::fetch: return "fetch";
    case leg_kind::reagent: return "reagent";
  }
  return "direct";
}

[[nodiscard]] leg_kind leg_kind_from(const std::string& name) {
  if (name == "direct") return leg_kind::direct;
  if (name == "store") return leg_kind::store;
  if (name == "fetch") return leg_kind::fetch;
  if (name == "reagent") return leg_kind::reagent;
  throw invalid_input_error("schedule_io: unknown leg kind \"" + name + "\"");
}

[[nodiscard]] const char* to_string(transfer_kind k) {
  switch (k) {
    case transfer_kind::handoff: return "handoff";
    case transfer_kind::direct: return "direct";
    case transfer_kind::cached: return "cached";
  }
  return "handoff";
}

[[nodiscard]] transfer_kind transfer_kind_from(const std::string& name) {
  if (name == "handoff") return transfer_kind::handoff;
  if (name == "direct") return transfer_kind::direct;
  if (name == "cached") return transfer_kind::cached;
  throw invalid_input_error("schedule_io: unknown transfer kind \"" + name +
                            "\"");
}

void write_interval(json_writer& w, const time_interval& t) {
  w.field("begin", t.begin);
  w.field("end", t.end);
}

[[nodiscard]] time_interval interval_from(const json_value& v) {
  return {v.at("begin").as_int(), v.at("end").as_int()};
}

} // namespace

void write_schedule(json_writer& w, const schedule& s) {
  w.begin_object();
  w.field("device_count", s.device_count);
  w.field("transport_time", s.transport_time);
  w.begin_array("ops");
  for (const scheduled_op& op : s.ops) {
    w.begin_object();
    w.field("op", op.op);
    w.field("device", op.device);
    w.field("start", op.start);
    w.field("end", op.end);
    w.end_object();
  }
  w.end_array();
  w.begin_array("legs");
  for (const transport_leg& leg : s.legs) {
    w.begin_object();
    w.field("kind", to_string(leg.kind));
    w.field("source_op", leg.source_op);
    w.field("target_op", leg.target_op);
    w.field("from_device", leg.from_device);
    w.field("to_device", leg.to_device);
    write_interval(w, leg.window);
    w.end_object();
  }
  w.end_array();
  w.begin_array("transfers");
  for (const edge_transfer& t : s.transfers) {
    w.begin_object();
    w.field("source_op", t.source_op);
    w.field("target_op", t.target_op);
    w.field("kind", to_string(t.kind));
    w.field("hold_begin", t.cache_hold.begin);
    w.field("hold_end", t.cache_hold.end);
    w.field("store_leg", t.store_leg);
    w.field("fetch_leg", t.fetch_leg);
    w.field("direct_leg", t.direct_leg);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string serialize(const schedule& s) {
  json_writer w;
  w.begin_object();
  w.field("format", schedule_format_version);
  w.field("kind", "schedule");
  w.key("schedule");
  write_schedule(w, s);
  w.end_object();
  return w.str();
}

schedule schedule_from_value(const json_value& v) {
  schedule s;
  s.device_count = v.at("device_count").as_int();
  s.transport_time = v.at("transport_time").as_int();
  for (const json_value& e : v.at("ops").elements()) {
    scheduled_op op;
    op.op = e.at("op").as_int();
    op.device = e.at("device").as_int();
    op.start = e.at("start").as_int();
    op.end = e.at("end").as_int();
    s.ops.push_back(op);
  }
  for (const json_value& e : v.at("legs").elements()) {
    transport_leg leg;
    leg.kind = leg_kind_from(e.at("kind").as_string());
    leg.source_op = e.at("source_op").as_int();
    leg.target_op = e.at("target_op").as_int();
    leg.from_device = e.at("from_device").as_int();
    leg.to_device = e.at("to_device").as_int();
    leg.window = interval_from(e);
    s.legs.push_back(leg);
  }
  for (const json_value& e : v.at("transfers").elements()) {
    edge_transfer t;
    t.source_op = e.at("source_op").as_int();
    t.target_op = e.at("target_op").as_int();
    t.kind = transfer_kind_from(e.at("kind").as_string());
    t.cache_hold = {e.at("hold_begin").as_int(), e.at("hold_end").as_int()};
    t.store_leg = e.at("store_leg").as_int();
    t.fetch_leg = e.at("fetch_leg").as_int();
    t.direct_leg = e.at("direct_leg").as_int();
    s.transfers.push_back(t);
  }
  return s;
}

schedule schedule_from_json(const std::string& text) {
  const json_value doc = json_value::parse(text);
  require(doc.at("format").as_int() == schedule_format_version,
          "schedule_io: unsupported format version " +
              doc.at("format").number_text());
  require(doc.at("kind").as_string() == "schedule",
          "schedule_io: document kind is not \"schedule\"");
  return schedule_from_value(doc.at("schedule"));
}

} // namespace transtore::sched
