#include "sched/splice.h"

#include <algorithm>
#include <limits>

#include "common/prng.h"
#include "common/stopwatch.h"

namespace transtore::sched {
namespace {

/// Longest execution-time path from each op to any sink (inclusive) --
/// the same priority the list scheduler uses.
std::vector<int> remaining_path(const assay::sequencing_graph& graph) {
  std::vector<int> order = graph.topological_order();
  std::vector<int> path(static_cast<std::size_t>(graph.operation_count()), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int best = 0;
    for (int child : graph.children(*it))
      best = std::max(best, path[static_cast<std::size_t>(child)]);
    path[static_cast<std::size_t>(*it)] = best + graph.at(*it).duration;
  }
  return path;
}

} // namespace

crossing_state classify_crossing(const schedule& s, const edge_transfer& tr,
                                 int fault_time) {
  if (s.ops[static_cast<std::size_t>(tr.target_op)].start < fault_time)
    return crossing_state::internal;
  switch (tr.kind) {
    case transfer_kind::handoff:
      return crossing_state::pending;
    case transfer_kind::direct:
      return s.legs[static_cast<std::size_t>(tr.direct_leg)].window.begin <
                     fault_time
                 ? crossing_state::delivered
                 : crossing_state::pending;
    case transfer_kind::cached:
      if (s.legs[static_cast<std::size_t>(tr.fetch_leg)].window.begin <
          fault_time)
        return crossing_state::delivered;
      if (s.legs[static_cast<std::size_t>(tr.store_leg)].window.begin <
          fault_time)
        return crossing_state::stored;
      return crossing_state::pending;
  }
  return crossing_state::pending;
}

std::optional<std::string> blocking_resource(
    const assay::sequencing_graph& graph, const schedule& original,
    int fault_time, const std::vector<bool>& failed_devices) {
  (void)graph;
  if (failed_devices.empty()) return std::nullopt;
  auto dev_failed = [&](int d) {
    return d >= 0 && d < static_cast<int>(failed_devices.size()) &&
           failed_devices[static_cast<std::size_t>(d)];
  };

  int healthy = 0;
  for (int d = 0; d < original.device_count; ++d)
    if (!dev_failed(d)) ++healthy;
  bool has_remainder = false;
  for (const scheduled_op& so : original.ops) {
    if (so.start >= fault_time) has_remainder = true;
    if (so.start < fault_time && so.end > fault_time && dev_failed(so.device))
      return "operation " + std::to_string(so.op) +
             " is in flight on failed device " + std::to_string(so.device);
  }
  if (has_remainder && healthy == 0) return std::string("every device failed");

  for (const edge_transfer& tr : original.transfers) {
    const scheduled_op& producer =
        original.ops[static_cast<std::size_t>(tr.source_op)];
    const scheduled_op& consumer =
        original.ops[static_cast<std::size_t>(tr.target_op)];
    const crossing_state cls = classify_crossing(original, tr, fault_time);
    if (cls == crossing_state::pending && producer.start < fault_time &&
        dev_failed(producer.device))
      return "result of operation " + std::to_string(tr.source_op) +
             " is trapped in failed device " + std::to_string(producer.device);
    if (cls == crossing_state::delivered && dev_failed(consumer.device))
      return "input of operation " + std::to_string(tr.target_op) +
             " was already delivered to failed device " +
             std::to_string(consumer.device);
  }
  return std::nullopt;
}

splice_result splice_schedule(const assay::sequencing_graph& graph,
                              const schedule& original, int fault_time,
                              const splice_options& options) {
  graph.validate();
  const int n = graph.operation_count();
  require(static_cast<int>(original.ops.size()) == n,
          "splice_schedule: schedule/graph op count mismatch");
  require(options.device_count == original.device_count,
          "splice_schedule: device count mismatch");
  require(options.timing.transport_time == original.transport_time,
          "splice_schedule: transport time mismatch");
  require(options.restarts >= 1, "splice_schedule: need at least one restart");
  require(fault_time >= 0, "splice_schedule: fault time must be >= 0");
  require(options.failed_devices.empty() ||
              static_cast<int>(options.failed_devices.size()) ==
                  options.device_count,
          "splice_schedule: failed_devices size mismatch");

  if (const auto blocked = blocking_resource(graph, original, fault_time,
                                             options.failed_devices))
    throw infeasible_error("splice_schedule: " + *blocked);

  splice_result out;
  for (int op = 0; op < n; ++op) {
    if (original.ops[static_cast<std::size_t>(op)].start < fault_time)
      out.prefix_ops.push_back(op);
    else
      out.remainder_ops.push_back(op);
  }
  if (out.remainder_ops.empty()) {
    out.spliced = original;
    return out;
  }

  auto dev_failed = [&](int d) {
    return !options.failed_devices.empty() &&
           options.failed_devices[static_cast<std::size_t>(d)];
  };

  // Classify every edge and derive which original legs survive verbatim
  // and which consumers are pinned (their operand already arrived at the
  // original device).
  std::vector<crossing_state> cls(original.transfers.size());
  std::vector<bool> keep_leg(original.legs.size(), false);
  std::vector<int> pinned(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < original.transfers.size(); ++i) {
    const edge_transfer& tr = original.transfers[i];
    cls[i] = classify_crossing(original, tr, fault_time);
    if (cls[i] != crossing_state::internal && cls[i] != crossing_state::delivered)
      continue;
    if (tr.kind == transfer_kind::cached) {
      keep_leg[static_cast<std::size_t>(tr.store_leg)] = true;
      keep_leg[static_cast<std::size_t>(tr.fetch_leg)] = true;
    } else if (tr.kind == transfer_kind::direct) {
      keep_leg[static_cast<std::size_t>(tr.direct_leg)] = true;
    }
    if (cls[i] == crossing_state::delivered)
      pinned[static_cast<std::size_t>(tr.target_op)] =
          original.ops[static_cast<std::size_t>(tr.target_op)].device;
  }
  for (std::size_t i = 0; i < original.legs.size(); ++i)
    if (original.legs[i].kind == leg_kind::reagent &&
        original.legs[i].target_op >= 0 &&
        original.ops[static_cast<std::size_t>(original.legs[i].target_op)]
                .start < fault_time)
      keep_leg[i] = true;

  // Prefix ops in (start, id) order: precedence guarantees every parent
  // starts strictly before its child, so parents seed first.
  std::vector<int> seed_order = out.prefix_ops;
  std::sort(seed_order.begin(), seed_order.end(), [&](int a, int b) {
    const int sa = original.ops[static_cast<std::size_t>(a)].start;
    const int sb = original.ops[static_cast<std::size_t>(b)].start;
    if (sa != sb) return sa < sb;
    return a < b;
  });

  auto seeded_builder = [&]() {
    timeline_builder builder(graph, options.device_count, options.timing);
    for (int op : seed_order) {
      const scheduled_op& so = original.ops[static_cast<std::size_t>(op)];
      builder.seed_operation(op, so.device, so.start, so.end);
    }
    std::vector<int> leg_map(original.legs.size(), -1);
    for (std::size_t i = 0; i < original.legs.size(); ++i)
      if (keep_leg[i])
        leg_map[i] = builder.seed_leg(original.legs[i]);
    for (std::size_t i = 0; i < original.transfers.size(); ++i) {
      const edge_transfer& tr = original.transfers[i];
      if (cls[i] == crossing_state::internal || cls[i] == crossing_state::delivered) {
        edge_transfer copy = tr;
        if (copy.store_leg >= 0)
          copy.store_leg = leg_map[static_cast<std::size_t>(copy.store_leg)];
        if (copy.fetch_leg >= 0)
          copy.fetch_leg = leg_map[static_cast<std::size_t>(copy.fetch_leg)];
        if (copy.direct_leg >= 0)
          copy.direct_leg = leg_map[static_cast<std::size_t>(copy.direct_leg)];
        builder.seed_transfer(copy);
      } else if (cls[i] == crossing_state::stored) {
        builder.seed_pending_out(
            tr.source_op, tr.target_op,
            original.legs[static_cast<std::size_t>(tr.store_leg)].window);
      }
    }
    builder.floor_ports(fault_time);
    return builder;
  };

  const std::vector<int> priority = remaining_path(graph);
  const double beta = options.storage_aware ? options.beta : 0.0;
  prng rng(options.seed);

  auto greedy_remainder = [&](double noise) {
    timeline_builder builder = seeded_builder();
    for (std::size_t step = 0; step < out.remainder_ops.size(); ++step) {
      int best_op = -1;
      int best_device = -1;
      double best_score = std::numeric_limits<double>::infinity();
      int best_priority = -1;
      for (int op : out.remainder_ops) {
        if (!builder.ready(op)) continue;
        for (int d = 0; d < options.device_count; ++d) {
          if (dev_failed(d)) continue;
          if (pinned[static_cast<std::size_t>(op)] >= 0 &&
              d != pinned[static_cast<std::size_t>(op)])
            continue;
          const auto placement = builder.preview(op, d);
          double score =
              options.alpha * placement.end +
              beta * static_cast<double>(placement.cache_time_added);
          if (noise > 0.0) score += rng.uniform_real(0.0, noise);
          const int prio = priority[static_cast<std::size_t>(op)];
          bool tie_better;
          if (options.storage_aware)
            tie_better = prio > best_priority ||
                         (prio == best_priority && op < best_op);
          else
            tie_better = op < best_op;
          const bool better = score < best_score - 1e-9 ||
                              (score < best_score + 1e-9 && tie_better);
          if (better) {
            best_score = score;
            best_op = op;
            best_device = d;
            best_priority = prio;
          }
        }
      }
      check(best_op >= 0, "splice_schedule: no placeable remainder op");
      builder.commit(best_op, best_device);
    }
    return builder.build();
  };

  const double final_beta = options.storage_aware ? options.beta : 0.0;
  schedule best;
  double best_objective = std::numeric_limits<double>::infinity();
  const deadline budget(options.time_budget_seconds, options.cancel);
  for (int attempt = 0; attempt < options.restarts; ++attempt) {
    if (attempt > 0 && budget.expired()) break;
    const double noise = attempt == 0
                             ? 0.0
                             : options.timing.transport_time *
                                   (0.5 + 2.0 * rng.uniform_real());
    schedule candidate = greedy_remainder(noise);
    const double objective = candidate.objective(options.alpha, final_beta);
    if (objective < best_objective) {
      best_objective = objective;
      best = std::move(candidate);
    }
  }
  best.validate(graph);
  out.spliced = std::move(best);
  return out;
}

} // namespace transtore::sched
