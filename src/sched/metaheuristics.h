// Metaheuristic scheduling engines: the quality/time middle ground between
// the list scheduler (milliseconds, greedy) and the paper's full MILP
// (seconds to proof, or a budget-limited incumbent).
//
// Three engines, all over the same schedule/binding model and all
// deterministic in their seed:
//
//   * schedule_with_sa -- restart-capable simulated annealing with a
//     reheating schedule and storage-aware neighborhood moves: relocation
//     within a device queue, device reassignment, adjacent swaps, and
//     targeted transport<->store flips that pull a cached transfer's
//     consumer directly behind its producer (forcing a handoff) or push a
//     handoff's consumer onto another device (freeing the producer early at
//     the cost of a store). The flips attack objective (6)'s storage term
//     directly instead of waiting for random relocation to find them.
//
//   * schedule_with_grasp -- greedy randomized adaptive search: each round
//     rebuilds a schedule with the list scheduler's scoring rule but picks
//     uniformly from a restricted candidate list (all placements within
//     rcl_alpha of the greedy best) instead of committing the argmin, then
//     anneals the construction. Round seeds are derived, not reused, so
//     restarts explore genuinely different constructions.
//
//   * schedule_with_decomposition -- series-parallel decomposition of the
//     assay DAG: weakly connected components run in parallel on disjoint
//     device subsets (allocated by total work), narrow topological
//     crossings split a component into series stages scheduled back to
//     back, and prime components fall back to list scheduling. Composition
//     is by per-device queue concatenation, which is precedence-safe
//     because every cross edge points from an earlier stage to a later one.
//
// Every engine honors a wall-clock budget and a cancel token, and never
// returns a schedule worse (under alpha/beta) than the optional `start`
// incumbent it was given.
#pragma once

#include <cstdint>
#include <optional>

#include "assay/sequencing_graph.h"
#include "common/interrupt.h"
#include "sched/timing.h"

namespace transtore::sched {

/// One SplitMix64 step over base ^ salt: cheap, well-mixed independent
/// streams for restart/round/racer seeds (so perturbed repeats actually
/// differ while staying reproducible from the one caller seed).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t salt);

struct sa_scheduler_options {
  int device_count = 1;
  timing_options timing{};
  double alpha = 1.0;
  double beta = 0.15;
  bool storage_aware = true;
  /// Total annealing iterations, split evenly across restarts.
  int iterations = 9000;
  /// Reheated restarts: each restart resumes from the best binding found
  /// so far with the temperature reset to initial_temperature *
  /// reheat_factor^restart (a decaying reheat escapes local minima early
  /// and converges late).
  int restarts = 3;
  double initial_temperature = 60.0; // in objective units (seconds-ish)
  double reheat_factor = 0.5;
  std::uint64_t seed = 1;
  /// Stage wall-clock budget in seconds (0 = unlimited) and cooperative
  /// cancellation; the anneal stops early with the best schedule so far.
  double time_budget_seconds = 0.0;
  cancel_token cancel;
  /// Starting incumbent; when absent one greedy list pass seeds the anneal.
  /// The result is never worse than this under alpha/beta.
  std::optional<schedule> start;
};

[[nodiscard]] schedule schedule_with_sa(const assay::sequencing_graph& graph,
                                        const sa_scheduler_options& options);

struct grasp_scheduler_options {
  int device_count = 1;
  timing_options timing{};
  double alpha = 1.0;
  double beta = 0.15;
  bool storage_aware = true;
  /// Construction + improvement rounds. Round 0 is pure greedy (rcl_alpha
  /// forced to 0) so GRASP starts no worse than one list pass.
  int rounds = 8;
  /// RCL threshold: candidates scoring within rcl_alpha * (max - min) of
  /// the greedy best are selection candidates. 0 = pure greedy, 1 = fully
  /// random construction.
  double rcl_alpha = 0.3;
  /// SA iterations spent polishing each round's construction.
  int improvement_iterations = 1500;
  std::uint64_t seed = 1;
  double time_budget_seconds = 0.0;
  cancel_token cancel;
  /// Comparison floor: the result is never worse than this under
  /// alpha/beta (it does not seed the construction).
  std::optional<schedule> start;
};

[[nodiscard]] schedule schedule_with_grasp(
    const assay::sequencing_graph& graph,
    const grasp_scheduler_options& options);

struct decomposition_scheduler_options {
  int device_count = 1;
  timing_options timing{};
  double alpha = 1.0;
  double beta = 0.15;
  bool storage_aware = true;
  /// A topological prefix/suffix split is taken as a series cut only when
  /// at most this many edges cross it (narrow waists keep the stage
  /// boundary cheap: few transfers, at most this many concurrent caches).
  int max_cut_width = 2;
  /// Components at or below this size are scheduled directly (prime
  /// fallback) instead of decomposed further.
  int min_component = 4;
  /// Perturbed list-scheduler restarts used on prime components.
  int restarts = 6;
  std::uint64_t seed = 1;
  double time_budget_seconds = 0.0;
  cancel_token cancel;
  /// Comparison floor: the result is never worse than this under
  /// alpha/beta.
  std::optional<schedule> start;
};

[[nodiscard]] schedule schedule_with_decomposition(
    const assay::sequencing_graph& graph,
    const decomposition_scheduler_options& options);

} // namespace transtore::sched
