#include "sched/metaheuristics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/prng.h"
#include "common/stopwatch.h"
#include "sched/list_scheduler.h"
#include "sched/moves.h"

namespace transtore::sched {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t salt) {
  std::uint64_t z = (base ^ salt) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

/// One deterministic greedy list pass: the cheapest valid incumbent, used
/// when an engine is handed no starting schedule.
schedule greedy_seed(const assay::sequencing_graph& graph,
                     int device_count, const timing_options& timing,
                     double alpha, double beta, bool storage_aware,
                     std::uint64_t seed) {
  list_scheduler_options lo;
  lo.device_count = device_count;
  lo.timing = timing;
  lo.alpha = alpha;
  lo.beta = beta;
  lo.storage_aware = storage_aware;
  lo.restarts = 1;
  lo.seed = seed;
  return schedule_with_list(graph, lo);
}

/// Longest execution-time path from each op to any sink (inclusive) -- the
/// list scheduler's critical-path priority, reused for RCL tie context.
std::vector<int> remaining_path(const assay::sequencing_graph& graph) {
  std::vector<int> order = graph.topological_order();
  std::vector<int> path(static_cast<std::size_t>(graph.operation_count()), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int best = 0;
    for (int child : graph.children(*it))
      best = std::max(best, path[static_cast<std::size_t>(child)]);
    path[static_cast<std::size_t>(*it)] = best + graph.at(*it).duration;
  }
  return path;
}

// ------------------------------------------------------------------- SA ---

/// Mutate `candidate` with one randomly chosen neighborhood move. `timed`
/// is the realized schedule of the binding `candidate` was copied from and
/// supplies the transfer kinds the storage-aware flips target. Returns
/// false when the sampled move is infeasible (caller discards the copy).
bool propose_move(const assay::sequencing_graph& graph, binding& candidate,
                  const schedule& timed, int devices, prng& rng) {
  const std::size_t n = candidate.device_of.size();
  const double r = rng.uniform_real();

  if (r < 0.25 && !timed.transfers.empty()) {
    // Transport -> handoff flip: pick a cached transfer and pull its
    // consumer directly behind its producer on the producer's device. The
    // cache hold (and both its legs) disappear if timing accepts it.
    const auto& tr = timed.transfers[rng.index(timed.transfers.size())];
    if (tr.kind == transfer_kind::cached) {
      const int producer_device =
          candidate.device_of[static_cast<std::size_t>(tr.source_op)];
      std::size_t pos = queue_position(candidate, tr.source_op) + 1;
      if (candidate.device_of[static_cast<std::size_t>(tr.target_op)] ==
              producer_device &&
          queue_position(candidate, tr.target_op) < pos)
        --pos; // consumer currently earlier on the same queue shifts it
      return relocate_op(graph, candidate, tr.target_op, producer_device,
                         pos);
    }
    // Sampled a non-cached transfer: fall through to the generic moves.
  }
  if (r < 0.4 && devices > 1 && !timed.transfers.empty()) {
    // Handoff -> store flip: evict the consumer of a handoff/direct
    // transfer to another device. The producer's port frees up earlier for
    // the ops behind it, at the cost of one cached transfer.
    const auto& tr = timed.transfers[rng.index(timed.transfers.size())];
    if (tr.kind != transfer_kind::cached) {
      int to = static_cast<int>(rng.index(static_cast<std::size_t>(devices)));
      const int cur =
          candidate.device_of[static_cast<std::size_t>(tr.target_op)];
      if (to == cur) to = (to + 1) % devices;
      const std::size_t len =
          candidate.device_order[static_cast<std::size_t>(to)].size();
      return relocate_op(graph, candidate, tr.target_op, to,
                         rng.index(len + 1));
    }
  }
  if (r < 0.55) {
    // Adjacent swap on one device queue.
    const int d = static_cast<int>(rng.index(static_cast<std::size_t>(devices)));
    const auto& q = candidate.device_order[static_cast<std::size_t>(d)];
    if (q.size() >= 2) {
      const std::size_t k = rng.index(q.size() - 1);
      return relocate_op(graph, candidate, q[k], d, k + 1);
    }
    // Queue too short: fall through to relocation.
  }
  const int op = static_cast<int>(rng.index(n));
  const int to =
      devices > 1 && rng.bernoulli(0.35)
          ? static_cast<int>(rng.index(static_cast<std::size_t>(devices)))
          : candidate.device_of[static_cast<std::size_t>(op)];
  const std::size_t len =
      candidate.device_order[static_cast<std::size_t>(to)].size() +
      (to == candidate.device_of[static_cast<std::size_t>(op)] ? 0 : 1);
  return relocate_op(graph, candidate, op, to, rng.index(len));
}

} // namespace

schedule schedule_with_sa(const assay::sequencing_graph& graph,
                          const sa_scheduler_options& options) {
  graph.validate();
  require(options.device_count > 0, "sa scheduler: device count must be positive");
  require(options.iterations >= 0, "sa scheduler: negative iterations");
  require(options.restarts >= 1, "sa scheduler: need at least one restart");

  const double beta = options.storage_aware ? options.beta : 0.0;
  const deadline budget(options.time_budget_seconds, options.cancel);

  const schedule start =
      options.start ? *options.start
                    : greedy_seed(graph, options.device_count, options.timing,
                                  options.alpha, options.beta,
                                  options.storage_aware, options.seed);
  const double start_cost = start.objective(options.alpha, beta);

  binding best = extract_binding(start, options.device_count);
  double best_cost = start_cost;
  schedule best_timed = start;

  const int per_restart =
      std::max(1, options.iterations / options.restarts);
  const double cooling = std::pow(0.05, 1.0 / per_restart);

  for (int restart = 0; restart < options.restarts; ++restart) {
    if (budget.expired() || options.iterations == 0) break;
    prng rng(derive_seed(options.seed, static_cast<std::uint64_t>(restart)));
    // Reheat: resume from the incumbent at a (decaying) high temperature.
    double temperature = options.initial_temperature *
                         std::pow(options.reheat_factor, restart);
    binding current = best;
    double current_cost = best_cost;
    schedule current_timed = best_timed;

    for (int iter = 0; iter < per_restart; ++iter) {
      if ((iter & 127) == 0 && budget.expired()) break;
      binding candidate = current;
      if (!propose_move(graph, candidate, current_timed,
                        options.device_count, rng)) {
        temperature *= cooling;
        continue;
      }
      schedule timed;
      try {
        timed = refine_timing(graph, candidate, options.device_count,
                              options.timing);
      } catch (const invalid_input_error&) {
        temperature *= cooling;
        continue; // cross-device deadlock; reject
      }
      const double cost = timed.objective(options.alpha, beta);
      const double delta = cost - current_cost;
      if (delta <= 0.0 ||
          rng.uniform_real() <
              std::exp(-delta / std::max(1e-9, temperature))) {
        current = std::move(candidate);
        current_cost = cost;
        current_timed = std::move(timed);
        if (cost < best_cost) {
          best_cost = cost;
          best = current;
          best_timed = current_timed;
        }
      }
      temperature *= cooling;
    }
  }

  best_timed.validate(graph);
  if (best_timed.objective(options.alpha, beta) > start_cost) return start;
  return best_timed;
}

// ---------------------------------------------------------------- GRASP ---

namespace {

/// One randomized-greedy construction: the list scheduler's scoring rule,
/// but each step picks uniformly from the restricted candidate list of
/// placements scoring within rcl_alpha * (max - min) of the best.
schedule rcl_pass(const assay::sequencing_graph& graph,
                  const grasp_scheduler_options& options,
                  const std::vector<int>& priority, double rcl_alpha,
                  prng& rng) {
  timeline_builder builder(graph, options.device_count, options.timing);
  const int n = graph.operation_count();
  const double beta = options.storage_aware ? options.beta : 0.0;

  struct candidate {
    int op = -1;
    int device = -1;
    double score = 0.0;
    int priority = 0;
  };
  std::vector<candidate> candidates;
  std::vector<std::size_t> rcl;

  for (int step = 0; step < n; ++step) {
    candidates.clear();
    double min_score = std::numeric_limits<double>::infinity();
    double max_score = -std::numeric_limits<double>::infinity();
    for (int op = 0; op < n; ++op) {
      if (!builder.ready(op)) continue;
      for (int d = 0; d < options.device_count; ++d) {
        const auto placement = builder.preview(op, d);
        const double score =
            options.alpha * placement.end +
            beta * static_cast<double>(placement.cache_time_added);
        candidates.push_back(
            {op, d, score, priority[static_cast<std::size_t>(op)]});
        min_score = std::min(min_score, score);
        max_score = std::max(max_score, score);
      }
    }
    check(!candidates.empty(), "grasp: no ready operation (cycle?)");

    const double threshold =
        min_score + rcl_alpha * (max_score - min_score) + 1e-9;
    rcl.clear();
    for (std::size_t i = 0; i < candidates.size(); ++i)
      if (candidates[i].score <= threshold) rcl.push_back(i);

    std::size_t pick;
    if (rcl_alpha <= 0.0) {
      // Pure greedy round: argmin with the list scheduler's critical-path
      // tie break, so round 0 matches one deterministic list pass.
      pick = rcl[0];
      for (std::size_t i : rcl) {
        const candidate& c = candidates[i];
        const candidate& b = candidates[pick];
        const bool tie_better =
            c.priority > b.priority ||
            (c.priority == b.priority && c.op < b.op);
        if (c.score < b.score - 1e-9 ||
            (c.score < b.score + 1e-9 && tie_better))
          pick = i;
      }
    } else {
      pick = rcl[rng.index(rcl.size())];
    }
    builder.commit(candidates[pick].op, candidates[pick].device);
  }
  return builder.build();
}

} // namespace

schedule schedule_with_grasp(const assay::sequencing_graph& graph,
                             const grasp_scheduler_options& options) {
  graph.validate();
  require(options.device_count > 0,
          "grasp scheduler: device count must be positive");
  require(options.rounds >= 1, "grasp scheduler: need at least one round");

  const double beta = options.storage_aware ? options.beta : 0.0;
  const deadline budget(options.time_budget_seconds, options.cancel);
  const std::vector<int> priority = remaining_path(graph);

  schedule best;
  double best_cost = std::numeric_limits<double>::infinity();

  for (int round = 0; round < options.rounds; ++round) {
    if (round > 0 && budget.expired()) break;
    // Derived (not reused) seeds: every round constructs and anneals with
    // its own independent stream.
    prng rng(derive_seed(options.seed, 0x47524153ULL + round));
    const double rcl_alpha = round == 0 ? 0.0 : options.rcl_alpha;
    schedule constructed =
        rcl_pass(graph, options, priority, rcl_alpha, rng);

    if (options.improvement_iterations > 0 && !budget.expired()) {
      sa_scheduler_options sa;
      sa.device_count = options.device_count;
      sa.timing = options.timing;
      sa.alpha = options.alpha;
      sa.beta = options.beta;
      sa.storage_aware = options.storage_aware;
      sa.iterations = options.improvement_iterations;
      sa.restarts = 1;
      sa.seed = derive_seed(options.seed, 0x53415F49ULL + round);
      sa.cancel = options.cancel;
      if (options.time_budget_seconds > 0.0)
        sa.time_budget_seconds = std::max(budget.remaining_seconds(), 1e-3);
      sa.start = std::move(constructed);
      constructed = schedule_with_sa(graph, sa);
    }

    const double cost = constructed.objective(options.alpha, beta);
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(constructed);
    }
  }

  if (options.start &&
      options.start->objective(options.alpha, beta) < best_cost)
    return *options.start;
  best.validate(graph);
  return best;
}

// -------------------------------------------------- SP decomposition ------

namespace {

struct decomposition_context {
  const assay::sequencing_graph& graph;
  const decomposition_scheduler_options& options;
  const deadline& budget;
  std::uint64_t salt = 0; // distinct derived seed per prime solve
};

/// List-schedule the induced subgraph of `ops` (given in topological
/// order) on the devices `device_ids`, appending the resulting per-device
/// orders to `out`.
void solve_prime(decomposition_context& ctx, const std::vector<int>& ops,
                 const std::vector<int>& device_ids, binding& out) {
  const auto& o = ctx.options;
  std::vector<int> local(
      static_cast<std::size_t>(ctx.graph.operation_count()), -1);
  assay::sequencing_graph sub(ctx.graph.name() + "#component");
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto& op = ctx.graph.at(ops[i]);
    local[static_cast<std::size_t>(ops[i])] =
        sub.add_operation(op.name, op.duration);
  }
  for (int u : ops)
    for (int v : ctx.graph.children(u))
      if (local[static_cast<std::size_t>(v)] >= 0)
        sub.add_dependency(local[static_cast<std::size_t>(u)],
                           local[static_cast<std::size_t>(v)]);

  list_scheduler_options lo;
  lo.device_count = static_cast<int>(device_ids.size());
  lo.timing = o.timing;
  lo.alpha = o.alpha;
  lo.beta = o.beta;
  lo.storage_aware = o.storage_aware;
  lo.restarts = o.restarts;
  lo.seed = derive_seed(o.seed, 0x5350ULL + ctx.salt++);
  lo.cancel = o.cancel;
  if (o.time_budget_seconds > 0.0)
    lo.time_budget_seconds = std::max(ctx.budget.remaining_seconds(), 1e-3);
  const schedule sub_schedule = schedule_with_list(sub, lo);
  const binding sub_binding =
      extract_binding(sub_schedule, lo.device_count);

  for (std::size_t d = 0; d < device_ids.size(); ++d)
    for (int local_op : sub_binding.device_order[d]) {
      const int global_op = ops[static_cast<std::size_t>(local_op)];
      // ops is topologically ordered and sub ids were assigned in that
      // order, so local id == index into ops.
      out.device_of[static_cast<std::size_t>(global_op)] = device_ids[d];
      out.device_order[static_cast<std::size_t>(device_ids[d])].push_back(
          global_op);
    }
}

/// Weakly-connected components of the induced subgraph, each in
/// topological order, heaviest (by total duration) first.
std::vector<std::vector<int>> weak_components(
    const assay::sequencing_graph& graph, const std::vector<int>& ops) {
  std::vector<int> parent(
      static_cast<std::size_t>(graph.operation_count()), -1);
  for (int op : ops) parent[static_cast<std::size_t>(op)] = op;
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x)
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
    return x;
  };
  for (int u : ops)
    for (int v : graph.children(u))
      if (parent[static_cast<std::size_t>(v)] >= 0)
        parent[static_cast<std::size_t>(find(u))] = find(v);

  std::vector<std::vector<int>> components;
  std::vector<int> component_of(
      static_cast<std::size_t>(graph.operation_count()), -1);
  for (int op : ops) { // ops topological => components stay topological
    const int root = find(op);
    if (component_of[static_cast<std::size_t>(root)] < 0) {
      component_of[static_cast<std::size_t>(root)] =
          static_cast<int>(components.size());
      components.emplace_back();
    }
    components[static_cast<std::size_t>(
                   component_of[static_cast<std::size_t>(root)])]
        .push_back(op);
  }
  std::sort(components.begin(), components.end(),
            [&](const std::vector<int>& a, const std::vector<int>& b) {
              auto work = [&](const std::vector<int>& c) {
                long w = 0;
                for (int op : c) w += graph.at(op).duration;
                return w;
              };
              const long wa = work(a), wb = work(b);
              return wa != wb ? wa > wb : a[0] < b[0];
            });
  return components;
}

void solve_component(decomposition_context& ctx, const std::vector<int>& ops,
                     const std::vector<int>& device_ids, binding& out);

/// Parallel composition: allocate device subsets proportional to each
/// component's total work (one device minimum) and recurse independently.
void solve_parallel(decomposition_context& ctx,
                    const std::vector<std::vector<int>>& components,
                    const std::vector<int>& device_ids, binding& out) {
  const std::size_t k = components.size();
  std::vector<long> work(k, 0);
  long total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (int op : components[i]) work[i] += ctx.graph.at(op).duration;
    total += work[i];
  }
  std::vector<int> share(k, 1);
  int assigned = static_cast<int>(k);
  const int devices = static_cast<int>(device_ids.size());
  // Heaviest-first proportional top-up of the remaining devices.
  while (assigned < devices) {
    std::size_t target = 0;
    double worst = -1.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double load = static_cast<double>(work[i]) / share[i];
      if (load > worst) {
        worst = load;
        target = i;
      }
    }
    ++share[target];
    ++assigned;
  }
  (void)total;
  int next = 0;
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<int> subset(device_ids.begin() + next,
                            device_ids.begin() + next + share[i]);
    next += share[i];
    solve_component(ctx, components[i], subset, out);
  }
}

/// Narrowest topological series cut with at most max_cut_width crossing
/// edges and at least min_component/2 ops on each side (ties broken toward
/// the middle so stages stay balanced); -1 when none qualifies.
int find_series_cut(const decomposition_context& ctx,
                    const std::vector<int>& ops) {
  const std::size_t n = ops.size();
  const std::size_t guard =
      static_cast<std::size_t>(std::max(1, ctx.options.min_component / 2));
  if (n < 2 * guard + 2) return -1;
  std::vector<int> pos(
      static_cast<std::size_t>(ctx.graph.operation_count()), -1);
  for (std::size_t i = 0; i < n; ++i)
    pos[static_cast<std::size_t>(ops[i])] = static_cast<int>(i);
  // crossing(p) = edges with pos[u] < p <= pos[v], via a difference array.
  std::vector<int> diff(n + 1, 0);
  for (int u : ops)
    for (int v : ctx.graph.children(u)) {
      const int pv = pos[static_cast<std::size_t>(v)];
      if (pv < 0) continue;
      diff[static_cast<std::size_t>(pos[static_cast<std::size_t>(u)]) + 1] +=
          1;
      diff[static_cast<std::size_t>(pv) + 1] -= 1;
    }
  const int mid = static_cast<int>(n) / 2;
  auto mid_distance = [mid](int p) { return p > mid ? p - mid : mid - p; };
  int crossing = 0;
  int best_cut = -1;
  int best_width = ctx.options.max_cut_width + 1;
  for (std::size_t p = 1; p < n; ++p) {
    crossing += diff[p];
    if (p < guard || n - p < guard) continue;
    const int cut = static_cast<int>(p);
    if (crossing < best_width ||
        (crossing == best_width && best_cut >= 0 &&
         mid_distance(cut) < mid_distance(best_cut))) {
      best_width = crossing;
      best_cut = cut;
    }
  }
  return best_width <= ctx.options.max_cut_width ? best_cut : -1;
}

void solve_component(decomposition_context& ctx, const std::vector<int>& ops,
                     const std::vector<int>& device_ids, binding& out) {
  if (static_cast<int>(ops.size()) <= ctx.options.min_component ||
      ctx.budget.expired()) {
    solve_prime(ctx, ops, device_ids, out);
    return;
  }
  const std::vector<std::vector<int>> components =
      weak_components(ctx.graph, ops);
  if (components.size() >= 2) {
    if (components.size() <= device_ids.size()) {
      solve_parallel(ctx, components, device_ids, out);
      return;
    }
    // More independent components than devices: the queues interleave
    // anyway, so the list scheduler handles the packing directly.
    solve_prime(ctx, ops, device_ids, out);
    return;
  }
  const int cut = find_series_cut(ctx, ops);
  if (cut > 0) {
    const std::vector<int> prefix(ops.begin(), ops.begin() + cut);
    const std::vector<int> suffix(ops.begin() + cut, ops.end());
    // Series composition: all crossing edges run prefix -> suffix, so
    // appending the suffix orders after the prefix orders on every shared
    // device preserves precedence.
    solve_component(ctx, prefix, device_ids, out);
    solve_component(ctx, suffix, device_ids, out);
    return;
  }
  solve_prime(ctx, ops, device_ids, out); // prime: no usable structure
}

} // namespace

schedule schedule_with_decomposition(
    const assay::sequencing_graph& graph,
    const decomposition_scheduler_options& options) {
  graph.validate();
  require(options.device_count > 0,
          "decomposition scheduler: device count must be positive");
  const double beta = options.storage_aware ? options.beta : 0.0;
  const deadline budget(options.time_budget_seconds, options.cancel);

  binding composed;
  composed.device_of.assign(
      static_cast<std::size_t>(graph.operation_count()), -1);
  composed.device_order.resize(
      static_cast<std::size_t>(options.device_count));
  std::vector<int> all_devices(
      static_cast<std::size_t>(options.device_count));
  std::iota(all_devices.begin(), all_devices.end(), 0);

  decomposition_context ctx{graph, options, budget, 0};
  solve_component(ctx, graph.topological_order(), all_devices, composed);

  schedule result;
  try {
    result = refine_timing(graph, composed, options.device_count,
                           options.timing);
  } catch (const invalid_input_error&) {
    // Composition produced a cross-device deadlock (cannot happen for pure
    // series/parallel structure, but stay safe): fall back to the list
    // scheduler on the whole graph.
    result = greedy_seed(graph, options.device_count, options.timing,
                         options.alpha, options.beta, options.storage_aware,
                         options.seed);
  }
  if (options.start &&
      options.start->objective(options.alpha, beta) <
          result.objective(options.alpha, beta))
    return *options.start;
  result.validate(graph);
  return result;
}

} // namespace transtore::sched
