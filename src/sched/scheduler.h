// Scheduling facade: heuristic, ILP, or the combined strategy used by the
// synthesis flow (heuristic first, then the paper's ILP warm-started with
// it, keeping whichever refined schedule scores better on objective (6)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assay/sequencing_graph.h"
#include "milp/solver.h"
#include "sched/ilp_scheduler.h"
#include "sched/list_scheduler.h"

namespace transtore::sched {

enum class schedule_engine {
  heuristic, // list scheduling only
  ilp,       // paper ILP only (internally warm-started by one greedy pass)
  combined,  // heuristic + ILP improvement, best refined schedule wins
  // Metaheuristic engines (sched/metaheuristics.h): the quality/time middle
  // ground between the list scheduler and the full MILP. Each starts from
  // one greedy list pass and never returns worse than it.
  sa,        // restart/reheating simulated annealing, storage-aware moves
  grasp,     // randomized-greedy (RCL) construction + SA improvement
  decomp,    // series-parallel DAG decomposition, list fallback on primes
};

struct scheduler_options {
  int device_count = 1;
  timing_options timing{};
  double alpha = 1.0;
  double beta = 0.15;
  /// false reproduces the "optimize execution time only" baseline (Fig. 9).
  bool storage_aware = true;
  schedule_engine engine = schedule_engine::combined;
  double ilp_time_limit_seconds = 10.0;
  /// ILP models above this row count are skipped in combined mode; the
  /// heuristic then carries the instance, mirroring the paper's best-effort
  /// protocol on the largest assays. The sparse-LU simplex lifted the old
  /// dense-basis ceiling of 2500 rows: CPA (~8.2k rows) and RA70 (~9.3k)
  /// are now attempted within the ILP time limit, leaving only RA100
  /// (~18k rows) to the heuristic by default.
  int ilp_row_limit = 10000;
  int heuristic_restarts = 24;
  /// Simulated-annealing iteration budget. For heuristic/decomp it is the
  /// improvement post-pass after the constructive engine; for ilp/combined
  /// it first polishes the heuristic incumbent BEFORE the MILP sees it (so
  /// the warm start is the best metaheuristic schedule) and then polishes
  /// the winner; the sa engine spends it as its main anneal and grasp
  /// splits it across its rounds' improvement phases. 0 disables annealing
  /// everywhere.
  int local_search_iterations = 6000;
  /// Base seed for every stochastic component; per-restart/round/racer
  /// streams are derived from it (sched::derive_seed), never reused.
  std::uint64_t seed = 1;
  bool log_progress = false;
  /// Whole-stage wall-clock budget in seconds (0 = unlimited). The ILP time
  /// limit is clamped to the remaining budget and the heuristic/annealing
  /// passes stop early; a valid schedule is always returned.
  double time_budget_seconds = 0.0;
  /// Cooperative cancellation, threaded into every engine including the
  /// MILP branch-and-bound loop.
  cancel_token cancel;
  /// Worker threads for the MILP tree search (milp::solver_options::threads):
  /// 1 = sequential, 0 = hardware_concurrency, > 1 = parallel engine. In
  /// portfolio mode this is the TOTAL budget split across the racers.
  int solver_threads = 1;
  /// Round-synchronized deterministic parallel search -- bit-identical
  /// results at any thread count (milp::solver_options::deterministic).
  bool solver_deterministic = false;
  /// Racing solver portfolio (ilp_scheduler_options::portfolio): two
  /// branch-and-bound configs and the annealing heuristic race on a shared
  /// incumbent board; first proof of optimality cancels the rest.
  bool portfolio = false;
};

struct scheduling_result {
  schedule best;
  double seconds = 0.0;
  bool used_ilp = false;
  bool ilp_skipped_too_large = false;
  /// The ILP search was cut short by the time budget or a cancel token;
  /// `best` is the best-effort schedule (heuristic or partial ILP refine).
  bool ilp_interrupted = false;
  /// The stage's wall-clock budget (time_budget_seconds) was the binding
  /// constraint on the ILP: it was skipped outright or got less time than
  /// its configured ilp_time_limit_seconds. Lets callers tell "truncated
  /// by the caller's deadline" apart from "hit its ordinary solver cap".
  bool ilp_deadline_clamped = false;
  milp::solve_status ilp_status = milp::solve_status::no_solution;
  double ilp_objective = 0.0;
  double ilp_bound = 0.0;
  int ilp_variables = 0;
  int ilp_constraints = 0;
  long ilp_nodes = 0;
  /// MILP root presolve/cutting footprint (see milp::solution), surfaced
  /// into schedule reports.
  int ilp_presolve_rows_removed = 0;
  int ilp_cuts_added = 0;
  double ilp_root_bound = 0.0;
  /// Parallel-search footprint: worker threads the (winning) solve ran and
  /// its per-worker breakdown (empty for the sequential engine).
  int ilp_threads = 1;
  std::vector<milp::worker_stats> ilp_workers;
  /// Portfolio bookkeeping (see ilp_schedule_result); racers is 0 when the
  /// portfolio was off or the ILP never ran.
  int portfolio_racers = 0;
  std::string portfolio_winner;
};

/// Produce a validated schedule for `graph` under `options`.
[[nodiscard]] scheduling_result make_schedule(
    const assay::sequencing_graph& graph, const scheduler_options& options);

} // namespace transtore::sched
