// Shared neighborhood-move primitives for the annealing engines.
//
// Both the post-pass annealer (local_search.h) and the standalone
// metaheuristic engines (metaheuristics.h) perturb a binding by removing
// one operation from its device queue and reinserting it elsewhere. The
// feasibility rule is purely structural -- no descendant may sit earlier in
// the target queue and no ancestor later -- so every move that passes it
// yields a binding refine_timing can realize (up to cross-device deadlock,
// which the callers catch and reject).
#pragma once

#include <algorithm>
#include <vector>

#include "assay/sequencing_graph.h"
#include "sched/timing.h"

namespace transtore::sched {

/// Can `op` legally sit at `position` in `queue` given the precedence
/// relation? (No descendant earlier, no ancestor later.) `queue` may still
/// contain `op`; its current slot is ignored.
[[nodiscard]] inline bool position_feasible(
    const assay::sequencing_graph& graph, const std::vector<int>& queue,
    int op, std::size_t position) {
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i] == op) continue;
    const std::size_t effective = i < position ? i : i + 1;
    if (effective < position && graph.reaches(op, queue[i])) return false;
    if (effective > position && graph.reaches(queue[i], op)) return false;
  }
  return true;
}

/// Remove `op` from its current queue in `b` and insert it at `position`
/// (an index into the target queue AFTER removal) on `to_device`. Returns
/// false when the position is precedence-infeasible; `b` is then left with
/// `op` removed from its queue, so callers working on a throwaway copy
/// simply discard it (the cheap-rejection idiom of the annealers).
[[nodiscard]] inline bool relocate_op(const assay::sequencing_graph& graph,
                                      binding& b, int op, int to_device,
                                      std::size_t position) {
  const int from_device = b.device_of[static_cast<std::size_t>(op)];
  auto& from_queue = b.device_order[static_cast<std::size_t>(from_device)];
  const auto it = std::find(from_queue.begin(), from_queue.end(), op);
  check(it != from_queue.end(), "relocate_op: binding corrupt");
  from_queue.erase(it);

  auto& to_queue = b.device_order[static_cast<std::size_t>(to_device)];
  if (position > to_queue.size()) position = to_queue.size();
  if (!position_feasible(graph, to_queue, op, position)) return false;
  to_queue.insert(to_queue.begin() + static_cast<std::ptrdiff_t>(position),
                  op);
  b.device_of[static_cast<std::size_t>(op)] = to_device;
  return true;
}

/// Index of `op` inside its device queue in `b`.
[[nodiscard]] inline std::size_t queue_position(const binding& b, int op) {
  const auto& q =
      b.device_order[static_cast<std::size_t>(
          b.device_of[static_cast<std::size_t>(op)])];
  const auto it = std::find(q.begin(), q.end(), op);
  check(it != q.end(), "queue_position: binding corrupt");
  return static_cast<std::size_t>(it - q.begin());
}

} // namespace transtore::sched
