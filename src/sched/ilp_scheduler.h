// ILP scheduling & binding -- the paper's Table 1 formulation with
// objective (6), solved by the in-repo MILP solver.
//
// Faithful constraints:
//   (1) uniqueness      sum_k s_ik = 1
//   (2) duration        ts_i + u_i <= te_i
//   (3) precedence      ts_j - te_i >= uc * (1 - same_ij)   for edges (i,j)
//   (4) non-overlapping disjunctive big-M pairs per device
//   (5) makespan        te_i <= tE
//   (6) objective       min alpha*tE + beta * sum of cross-device u_ij
//
// Documented linearizations (DESIGN.md): the conditional constraint (4) is
// realized with pairwise ordering binaries o_ij and big-M = horizon; the
// paper's "d_i != d_j" objective filter is realized with per-device
// same-assignment indicators z_ijk (z <= s_ik, z <= s_jk) and storage-time
// variables w_ij >= ts_j - te_i - H*same_ij. Two problem reductions that do
// not change the optimum: ordering binaries are omitted for
// precedence-related pairs, and for pairs whose ASAP/ALAP windows cannot
// overlap within the horizon.
//
// The solver is seeded with a heuristic warm start and a hard time limit;
// on larger assays it returns the best-effort incumbent -- the same
// protocol as the paper's 30-minute Gurobi budget.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "assay/sequencing_graph.h"
#include "milp/solver.h"
#include "sched/timing.h"

namespace transtore::sched {

struct ilp_scheduler_options {
  int device_count = 1;
  timing_options timing{};
  double alpha = 1.0;
  double beta = 0.15;
  double time_limit_seconds = 30.0;
  /// Scheduling horizon (upper bound on tE). 0 = derive from the warm
  /// start's makespan, or a safe serial bound when no warm start is given.
  int horizon = 0;
  /// Known-good schedule used as the MILP incumbent.
  std::optional<schedule> warm_start;
  /// Add the device-load valid inequalities sum_i u_i s_ik <= tE: operations
  /// bound to one device never overlap in time, so their total duration
  /// bounds the makespan. They cut no integer point but lift the LP
  /// relaxation's makespan bound from the critical path toward the
  /// total-work / device-count energetic bound -- the lever that lets
  /// branch and bound actually prove optimality on the multi-device assays
  /// (the paper's plain Table 1 rows leave the relaxation nearly vacuous).
  bool load_valid_inequalities = true;
  /// Break the device-permutation symmetry: devices are interchangeable in
  /// this model (uniform durations and transport), so every schedule has
  /// k! relabelings the search would otherwise prove separately. The
  /// standard scheme pins operation i to devices 0..i (s_ik = 0 for k > i,
  /// emitted as singleton rows the presolve folds into bounds); the warm
  /// start is relabeled by first device appearance so it stays feasible.
  bool break_device_symmetry = true;
  bool log_progress = false;
  /// Racing portfolio (see schedule_with_ilp): a best_estimate
  /// branch-and-bound config, a dfs config, and the simulated-annealing
  /// heuristic race concurrently on the same formulation against one
  /// shared incumbent board. The first solver to PROVE optimality wins and
  /// cancels the others through their cancel tokens; with no proof, the
  /// best incumbent across all racers wins. `milp.threads` is the total
  /// thread budget, split across the two tree searches.
  bool portfolio = false;
  /// Base seed for the portfolio's annealing racer; per-chunk streams are
  /// derived from it (sched::derive_seed) so racer restarts differ while
  /// staying reproducible.
  std::uint64_t seed = 1;
  /// Base MILP solver configuration (branching rule, LP engine ablations).
  /// time_limit_seconds / log_progress / warm_start above take precedence.
  milp::solver_options milp{};
};

struct ilp_schedule_result {
  schedule refined;          // extracted assignment/order, re-timed
  milp::solve_status status = milp::solve_status::no_solution;
  bool interrupted = false;  // stopped by the time limit or a cancel token
  double ilp_objective = 0.0; // objective (6) value of the MILP incumbent
  double ilp_bound = 0.0;     // dual bound on objective (6)
  long nodes = 0;
  long simplex_iterations = 0;
  double seconds = 0.0;
  int variables = 0;
  int constraints = 0;
  // Root presolve + cutting-plane footprint (milp/presolve.h, milp/cuts.h),
  // surfaced so schedule reports can show where the MILP work went.
  int presolve_rows_removed = 0;
  int presolve_bounds_tightened = 0;
  int cuts_added = 0;
  int cut_rounds = 0;
  double root_bound = 0.0;   // objective-(6) LP bound after presolve + cuts
  /// Worker threads the winning solve ran, and its per-worker breakdown
  /// (empty for the sequential engine; see milp::solution::workers).
  int threads_used = 1;
  std::vector<milp::worker_stats> workers;
  /// Portfolio bookkeeping (zero / empty when options.portfolio is off):
  /// racer count, which racer's schedule won ("best_estimate", "dfs" or
  /// "heuristic"), and whether every racer thread was joined before
  /// returning (the no-thread-leak invariant tests assert on).
  int portfolio_racers = 0;
  std::string portfolio_winner;
  bool portfolio_all_joined = false;
};

/// The Table 1 formulation as a standalone MILP, for callers that want to
/// solve it with custom solver options (benchmarks, ablations) instead of
/// running the full scheduling pipeline.
struct scheduling_ilp {
  milp::model model;
  std::vector<std::vector<milp::variable>> assign; // s_ik per op, device
  std::vector<milp::variable> start;               // ts_i
  std::vector<milp::variable> end;                 // te_i
  milp::variable makespan;                         // tE
  /// Warm-start assignment derived from options.warm_start (when given).
  std::optional<std::vector<double>> warm_assignment;
  // Enough structure to translate ANY feasible schedule into a full MILP
  // assignment after the fact (schedule_assignment below) -- the portfolio's
  // heuristic racer uses this to publish annealed schedules to the shared
  // incumbent board mid-race.
  std::vector<std::pair<int, int>> edge_list;      // graph edges (i, j)
  std::vector<std::vector<milp::variable>> same_z; // z_ijk per edge, device
  std::vector<milp::variable> storage;             // w_ij per edge
  struct order_pair {
    int i, j;
    milp::variable order; // 1 when i precedes j
  };
  std::vector<order_pair> order_pairs; // disjunctive pairs actually modeled
  int device_count = 0;
  bool symmetry_broken = false;
};

/// Translate a feasible schedule into a full variable assignment of
/// `ilp.model` (assignment binaries, times, same-device indicators, storage
/// slacks, ordering binaries), relabeling devices by first appearance when
/// the model breaks device symmetry. The schedule must cover the same
/// operation set the ILP was built from.
[[nodiscard]] std::vector<double> schedule_assignment(const scheduling_ilp& ilp,
                                                      const schedule& s);

/// Re-time an incumbent assignment optimally within its own binding: fix
/// every integer/binary variable at the incumbent's value and solve the
/// remaining LP over the continuous times. Heuristic schedules carry the
/// conservative simulated timing, so the polished assignment is often a
/// strictly better MILP incumbent for the same discrete decisions (on RA12
/// it tightens the list-schedule warm start from 279 to 246 and closes the
/// tree in ~0.6x the nodes). Returns nullopt when the restricted solve
/// fails inside `time_limit_seconds` or the polished point does not verify
/// against the full model; callers then keep the raw assignment.
[[nodiscard]] std::optional<std::vector<double>> polish_assignment(
    const scheduling_ilp& ilp, const std::vector<double>& assignment,
    double time_limit_seconds = 2.0, cancel_token cancel = {});

/// Build the paper's scheduling & binding MILP (Table 1, objective (6))
/// without solving it.
[[nodiscard]] scheduling_ilp build_scheduling_ilp(
    const assay::sequencing_graph& graph, const ilp_scheduler_options& options);

/// Solve scheduling & binding with the paper's ILP. Throws
/// invalid_input_error on malformed input; infeasibility cannot occur for a
/// valid DAG with horizon >= serial bound (an internal_error otherwise).
[[nodiscard]] ilp_schedule_result schedule_with_ilp(
    const assay::sequencing_graph& graph, const ilp_scheduler_options& options);

} // namespace transtore::sched
