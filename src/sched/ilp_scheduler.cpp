#include "sched/ilp_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace transtore::sched {
namespace {

/// ASAP start times ignoring device contention (durations only): a valid
/// lower bound on any schedule's start times.
std::vector<int> asap_starts(const assay::sequencing_graph& graph) {
  std::vector<int> est(static_cast<std::size_t>(graph.operation_count()), 0);
  for (int op : graph.topological_order())
    for (int child : graph.children(op))
      est[static_cast<std::size_t>(child)] =
          std::max(est[static_cast<std::size_t>(child)],
                   est[static_cast<std::size_t>(op)] + graph.at(op).duration);
  return est;
}

/// ALAP finish times under the horizon: a valid upper bound on finish times.
std::vector<int> alap_finishes(const assay::sequencing_graph& graph,
                               int horizon) {
  std::vector<int> lft(static_cast<std::size_t>(graph.operation_count()),
                       horizon);
  const std::vector<int> order = graph.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    for (int child : graph.children(*it))
      lft[static_cast<std::size_t>(*it)] =
          std::min(lft[static_cast<std::size_t>(*it)],
                   lft[static_cast<std::size_t>(child)] -
                       graph.at(child).duration);
  return lft;
}

} // namespace

scheduling_ilp build_scheduling_ilp(const assay::sequencing_graph& graph,
                                    const ilp_scheduler_options& options) {
  graph.validate();
  require(options.device_count > 0, "ilp scheduler: device count");
  const int n = graph.operation_count();
  const int devices = options.device_count;
  const int uc = options.timing.transport_time;

  // Horizon: warm start makespan, explicit value, or a safe serial bound
  // (every op serial plus full transport overhead for every edge and leg).
  int horizon = options.horizon;
  if (horizon == 0 && options.warm_start)
    horizon = options.warm_start->makespan();
  if (horizon == 0)
    horizon = graph.total_duration() +
              uc * (2 * graph.edge_count() + 2 * n + 2);
  const double big_m = horizon;

  const std::vector<int> est = asap_starts(graph);
  const std::vector<int> lft = alap_finishes(graph, horizon);

  scheduling_ilp ilp;
  milp::model& m = ilp.model;

  // Assignment binaries s_ik and time variables ts_i, te_i.
  auto& s = ilp.assign;
  auto& ts = ilp.start;
  auto& te = ilp.end;
  s.resize(static_cast<std::size_t>(n));
  ts.resize(static_cast<std::size_t>(n));
  te.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < devices; ++k)
      s[static_cast<std::size_t>(i)].push_back(
          m.add_binary("s_" + std::to_string(i) + "_" + std::to_string(k)));
    ts[static_cast<std::size_t>(i)] =
        m.add_continuous(est[static_cast<std::size_t>(i)],
                         lft[static_cast<std::size_t>(i)] -
                             graph.at(i).duration,
                         "ts_" + std::to_string(i));
    te[static_cast<std::size_t>(i)] = m.add_continuous(
        est[static_cast<std::size_t>(i)] + graph.at(i).duration,
        lft[static_cast<std::size_t>(i)], "te_" + std::to_string(i));
  }
  ilp.makespan = m.add_continuous(
      graph.critical_path_duration(), horizon, "tE");
  const milp::variable t_end = ilp.makespan;

  // (1) uniqueness.
  for (int i = 0; i < n; ++i) {
    milp::linear_expr sum;
    for (int k = 0; k < devices; ++k)
      sum += s[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
    m.add_constraint(sum, milp::cmp::equal, 1.0,
                     "uniq_" + std::to_string(i));
  }

  // (2) duration.
  for (int i = 0; i < n; ++i)
    m.add_constraint(milp::linear_expr(ts[static_cast<std::size_t>(i)]) +
                         graph.at(i).duration -
                         te[static_cast<std::size_t>(i)],
                     milp::cmp::less_equal, 0.0,
                     "dur_" + std::to_string(i));

  // Same-device indicators per edge: same_ij = sum_k z_ijk.
  const auto edges = graph.edges();
  std::vector<milp::linear_expr> same(edges.size());
  std::vector<milp::variable> w(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [i, j] = edges[e];
    milp::linear_expr same_sum;
    for (int k = 0; k < devices; ++k) {
      const milp::variable z =
          m.add_binary("z_" + std::to_string(i) + "_" + std::to_string(j) +
                       "_" + std::to_string(k));
      m.add_constraint(milp::linear_expr(z) -
                           s[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(k)],
                       milp::cmp::less_equal, 0.0);
      m.add_constraint(milp::linear_expr(z) -
                           s[static_cast<std::size_t>(j)]
                            [static_cast<std::size_t>(k)],
                       milp::cmp::less_equal, 0.0);
      same_sum += z;
    }
    same[e] = same_sum;

    // (3) precedence with conditional transport gap.
    m.add_constraint(milp::linear_expr(ts[static_cast<std::size_t>(j)]) -
                         te[static_cast<std::size_t>(i)] +
                         static_cast<double>(uc) * same_sum,
                     milp::cmp::greater_equal, static_cast<double>(uc),
                     "prec_" + std::to_string(i) + "_" + std::to_string(j));

    // Storage-time variable for the objective: w >= ts_j - te_i - H*same.
    w[e] = m.add_continuous(0.0, milp::infinity,
                            "w_" + std::to_string(i) + "_" +
                                std::to_string(j));
    m.add_constraint(milp::linear_expr(w[e]) -
                         ts[static_cast<std::size_t>(j)] +
                         te[static_cast<std::size_t>(i)] + big_m * same_sum,
                     milp::cmp::greater_equal, 0.0);
  }

  // (4) disjunctive non-overlap for pairs that may share a device and may
  // overlap in time. Precedence-related pairs and pairs with disjoint
  // ASAP/ALAP windows are skipped (provably redundant).
  struct pair_info {
    int i, j;
    milp::variable order; // 1 when i precedes j
  };
  std::vector<pair_info> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (graph.reaches(i, j) || graph.reaches(j, i)) continue;
      if (est[static_cast<std::size_t>(i)] >=
              lft[static_cast<std::size_t>(j)] ||
          est[static_cast<std::size_t>(j)] >=
              lft[static_cast<std::size_t>(i)])
        continue;
      const milp::variable o =
          m.add_binary("o_" + std::to_string(i) + "_" + std::to_string(j));
      pairs.push_back({i, j, o});
      for (int k = 0; k < devices; ++k) {
        const milp::linear_expr same_pair =
            milp::linear_expr(
                s[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]) +
            s[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
        // i before j: ts_j >= te_i - M(1-o) - M(2 - s_ik - s_jk)
        m.add_constraint(
            milp::linear_expr(ts[static_cast<std::size_t>(j)]) -
                te[static_cast<std::size_t>(i)] +
                big_m * (1.0 - milp::linear_expr(o)) +
                big_m * (2.0 - same_pair),
            milp::cmp::greater_equal, 0.0);
        // j before i: ts_i >= te_j - M*o - M(2 - s_ik - s_jk)
        m.add_constraint(
            milp::linear_expr(ts[static_cast<std::size_t>(i)]) -
                te[static_cast<std::size_t>(j)] +
                big_m * milp::linear_expr(o) + big_m * (2.0 - same_pair),
            milp::cmp::greater_equal, 0.0);
      }
    }
  }

  // (5) makespan.
  for (int i = 0; i < n; ++i)
    m.add_constraint(milp::linear_expr(te[static_cast<std::size_t>(i)]) -
                         t_end,
                     milp::cmp::less_equal, 0.0);

  // Device-load valid inequalities (see ilp_scheduler_options): the ops
  // assigned to one device occupy disjoint time windows inside [0, tE].
  if (options.load_valid_inequalities) {
    for (int k = 0; k < devices; ++k) {
      milp::linear_expr load;
      for (int i = 0; i < n; ++i)
        load += static_cast<double>(graph.at(i).duration) *
                s[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
      m.add_constraint(load - t_end, milp::cmp::less_equal, 0.0,
                       "load_" + std::to_string(k));
    }
  }

  // Device-symmetry breaking (see ilp_scheduler_options): operation i may
  // only use devices 0..i. Singleton rows by design -- presolve turns them
  // into variable bounds before the first LP.
  if (options.break_device_symmetry) {
    for (int i = 0; i < n && i < devices - 1; ++i)
      for (int k = i + 1; k < devices; ++k)
        m.add_constraint(
            milp::linear_expr(
                s[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]),
            milp::cmp::less_equal, 0.0,
            "sym_" + std::to_string(i) + "_" + std::to_string(k));
  }

  // (6) objective.
  milp::linear_expr objective = options.alpha * milp::linear_expr(t_end);
  for (std::size_t e = 0; e < edges.size(); ++e)
    objective += options.beta * milp::linear_expr(w[e]);
  m.set_objective(objective, milp::objective_sense::minimize);

  // Warm start: translate the heuristic schedule into a full assignment.
  if (options.warm_start) {
    const schedule& ws = *options.warm_start;
    require(static_cast<int>(ws.ops.size()) == n,
            "ilp scheduler: warm start has wrong op count");
    // Relabel devices by first appearance (op-index order) so the warm
    // start satisfies the symmetry-breaking rows; devices are
    // interchangeable, so the relabeled schedule is equivalent.
    std::vector<int> relabel(static_cast<std::size_t>(devices), -1);
    if (options.break_device_symmetry) {
      int next_label = 0;
      for (int i = 0; i < n; ++i) {
        const int d = ws.ops[static_cast<std::size_t>(i)].device;
        if (relabel[static_cast<std::size_t>(d)] < 0)
          relabel[static_cast<std::size_t>(d)] = next_label++;
      }
      for (int d = 0; d < devices; ++d)
        if (relabel[static_cast<std::size_t>(d)] < 0)
          relabel[static_cast<std::size_t>(d)] = next_label++;
    } else {
      for (int d = 0; d < devices; ++d) relabel[static_cast<std::size_t>(d)] = d;
    }
    std::vector<double> assignment(
        static_cast<std::size_t>(m.variable_count()), 0.0);
    auto set = [&](milp::variable v, double value) {
      assignment[static_cast<std::size_t>(v.index)] = value;
    };
    for (int i = 0; i < n; ++i) {
      const auto& so = ws.ops[static_cast<std::size_t>(i)];
      const int device = relabel[static_cast<std::size_t>(so.device)];
      set(s[static_cast<std::size_t>(i)][static_cast<std::size_t>(device)],
          1.0);
      set(ts[static_cast<std::size_t>(i)], so.start);
      set(te[static_cast<std::size_t>(i)], so.end);
    }
    set(t_end, ws.makespan());
    // z_ijk = s_ik * s_jk; w_ij is the realized cross-device slack. The
    // k-th term of same[e] is the z variable for device k (terms() is
    // ordered by variable index, which follows device order here).
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const auto [i, j] = edges[e];
      const int di =
          relabel[static_cast<std::size_t>(ws.ops[static_cast<std::size_t>(i)].device)];
      const int dj =
          relabel[static_cast<std::size_t>(ws.ops[static_cast<std::size_t>(j)].device)];
      if (di == dj) {
        int k = 0;
        for (const auto& [var_index, coeff] : same[e].terms()) {
          (void)coeff;
          if (k == di) assignment[static_cast<std::size_t>(var_index)] = 1.0;
          ++k;
        }
      } else {
        const int gap = ws.ops[static_cast<std::size_t>(j)].start -
                        ws.ops[static_cast<std::size_t>(i)].end;
        set(w[e], std::max(0, gap));
      }
    }
    for (const auto& pr : pairs) {
      const auto& oi = ws.ops[static_cast<std::size_t>(pr.i)];
      const auto& oj = ws.ops[static_cast<std::size_t>(pr.j)];
      const bool i_first =
          oi.start < oj.start || (oi.start == oj.start && pr.i < pr.j);
      set(pr.order, i_first ? 1.0 : 0.0);
    }
    ilp.warm_assignment = std::move(assignment);
  }

  return ilp;
}

ilp_schedule_result schedule_with_ilp(const assay::sequencing_graph& graph,
                                      const ilp_scheduler_options& options) {
  const int n = graph.operation_count();
  const int devices = options.device_count;

  scheduling_ilp ilp = build_scheduling_ilp(graph, options);
  const milp::model& m = ilp.model;

  milp::solver_options solver_options = options.milp;
  solver_options.time_limit_seconds = options.time_limit_seconds;
  solver_options.log_progress = options.log_progress;
  solver_options.warm_start = std::move(ilp.warm_assignment);

  const milp::solution sol = milp::solve(m, solver_options);

  ilp_schedule_result result;
  result.status = sol.status;
  result.interrupted = sol.interrupted;
  result.nodes = sol.nodes_explored;
  result.simplex_iterations = sol.simplex_iterations;
  result.seconds = sol.seconds;
  result.variables = m.variable_count();
  result.constraints = m.constraint_count();
  result.presolve_rows_removed = sol.presolve_rows_removed;
  result.presolve_bounds_tightened = sol.presolve_bounds_tightened;
  result.cuts_added = sol.cuts_added;
  result.cut_rounds = sol.cut_rounds;
  result.root_bound = sol.root_bound;

  check(sol.has_solution(),
        "ilp scheduler: no incumbent (horizon too small or solver failure)");
  result.ilp_objective = sol.objective;
  result.ilp_bound = sol.best_bound;

  // Extract assignment + order and re-time with the device port model.
  binding b;
  b.device_of.assign(static_cast<std::size_t>(n), -1);
  b.device_order.assign(static_cast<std::size_t>(devices), {});
  std::vector<std::pair<double, int>> starts;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < devices; ++k)
      if (sol.value(ilp.assign[static_cast<std::size_t>(i)]
                              [static_cast<std::size_t>(k)]) > 0.5)
        b.device_of[static_cast<std::size_t>(i)] = k;
    check(b.device_of[static_cast<std::size_t>(i)] >= 0,
          "ilp scheduler: op left unassigned");
    starts.emplace_back(sol.value(ilp.start[static_cast<std::size_t>(i)]), i);
  }
  std::sort(starts.begin(), starts.end());
  for (const auto& [start, op] : starts)
    b.device_order[static_cast<std::size_t>(
                       b.device_of[static_cast<std::size_t>(op)])]
        .push_back(op);

  result.refined = refine_timing(graph, b, devices, options.timing);
  result.refined.validate(graph);
  // The ILP does not model device-port serialization, so among alternate
  // MILP optima the extracted ordering can re-time worse than the warm
  // start (which basis engine / pivot order the LP took picks the vertex).
  // Mirror the combined engine's guard: never return a schedule that
  // scores worse under objective (6) than the warm start we were given.
  if (options.warm_start) {
    const double refined_score =
        result.refined.objective(options.alpha, options.beta);
    const double warm_score =
        options.warm_start->objective(options.alpha, options.beta);
    if (warm_score < refined_score) result.refined = *options.warm_start;
  }
  return result;
}

} // namespace transtore::sched
