#include "sched/ilp_scheduler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>

#include "common/stopwatch.h"
#include "sched/list_scheduler.h"
#include "sched/local_search.h"
#include "sched/metaheuristics.h" // derive_seed

namespace transtore::sched {
namespace {

/// ASAP start times ignoring device contention (durations only): a valid
/// lower bound on any schedule's start times.
std::vector<int> asap_starts(const assay::sequencing_graph& graph) {
  std::vector<int> est(static_cast<std::size_t>(graph.operation_count()), 0);
  for (int op : graph.topological_order())
    for (int child : graph.children(op))
      est[static_cast<std::size_t>(child)] =
          std::max(est[static_cast<std::size_t>(child)],
                   est[static_cast<std::size_t>(op)] + graph.at(op).duration);
  return est;
}

/// ALAP finish times under the horizon: a valid upper bound on finish times.
std::vector<int> alap_finishes(const assay::sequencing_graph& graph,
                               int horizon) {
  std::vector<int> lft(static_cast<std::size_t>(graph.operation_count()),
                       horizon);
  const std::vector<int> order = graph.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    for (int child : graph.children(*it))
      lft[static_cast<std::size_t>(*it)] =
          std::min(lft[static_cast<std::size_t>(*it)],
                   lft[static_cast<std::size_t>(child)] -
                       graph.at(child).duration);
  return lft;
}

} // namespace

scheduling_ilp build_scheduling_ilp(const assay::sequencing_graph& graph,
                                    const ilp_scheduler_options& options) {
  graph.validate();
  require(options.device_count > 0, "ilp scheduler: device count");
  const int n = graph.operation_count();
  const int devices = options.device_count;
  const int uc = options.timing.transport_time;

  // Horizon: warm start makespan, explicit value, or a safe serial bound
  // (every op serial plus full transport overhead for every edge and leg).
  int horizon = options.horizon;
  if (horizon == 0 && options.warm_start)
    horizon = options.warm_start->makespan();
  if (horizon == 0)
    horizon = graph.total_duration() +
              uc * (2 * graph.edge_count() + 2 * n + 2);
  const double big_m = horizon;

  const std::vector<int> est = asap_starts(graph);
  const std::vector<int> lft = alap_finishes(graph, horizon);

  scheduling_ilp ilp;
  milp::model& m = ilp.model;

  // Assignment binaries s_ik and time variables ts_i, te_i.
  auto& s = ilp.assign;
  auto& ts = ilp.start;
  auto& te = ilp.end;
  s.resize(static_cast<std::size_t>(n));
  ts.resize(static_cast<std::size_t>(n));
  te.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < devices; ++k)
      s[static_cast<std::size_t>(i)].push_back(
          m.add_binary("s_" + std::to_string(i) + "_" + std::to_string(k)));
    ts[static_cast<std::size_t>(i)] =
        m.add_continuous(est[static_cast<std::size_t>(i)],
                         lft[static_cast<std::size_t>(i)] -
                             graph.at(i).duration,
                         "ts_" + std::to_string(i));
    te[static_cast<std::size_t>(i)] = m.add_continuous(
        est[static_cast<std::size_t>(i)] + graph.at(i).duration,
        lft[static_cast<std::size_t>(i)], "te_" + std::to_string(i));
  }
  ilp.makespan = m.add_continuous(
      graph.critical_path_duration(), horizon, "tE");
  const milp::variable t_end = ilp.makespan;

  // (1) uniqueness.
  for (int i = 0; i < n; ++i) {
    milp::linear_expr sum;
    for (int k = 0; k < devices; ++k)
      sum += s[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
    m.add_constraint(sum, milp::cmp::equal, 1.0,
                     "uniq_" + std::to_string(i));
  }

  // (2) duration.
  for (int i = 0; i < n; ++i)
    m.add_constraint(milp::linear_expr(ts[static_cast<std::size_t>(i)]) +
                         graph.at(i).duration -
                         te[static_cast<std::size_t>(i)],
                     milp::cmp::less_equal, 0.0,
                     "dur_" + std::to_string(i));

  // Same-device indicators per edge: same_ij = sum_k z_ijk.
  const auto edges = graph.edges();
  ilp.edge_list.assign(edges.begin(), edges.end());
  ilp.device_count = devices;
  ilp.symmetry_broken = options.break_device_symmetry;
  ilp.same_z.resize(edges.size());
  std::vector<milp::variable> w(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [i, j] = edges[e];
    milp::linear_expr same_sum;
    for (int k = 0; k < devices; ++k) {
      const milp::variable z =
          m.add_binary("z_" + std::to_string(i) + "_" + std::to_string(j) +
                       "_" + std::to_string(k));
      m.add_constraint(milp::linear_expr(z) -
                           s[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(k)],
                       milp::cmp::less_equal, 0.0);
      m.add_constraint(milp::linear_expr(z) -
                           s[static_cast<std::size_t>(j)]
                            [static_cast<std::size_t>(k)],
                       milp::cmp::less_equal, 0.0);
      ilp.same_z[e].push_back(z);
      same_sum += z;
    }

    // (3) precedence with conditional transport gap.
    m.add_constraint(milp::linear_expr(ts[static_cast<std::size_t>(j)]) -
                         te[static_cast<std::size_t>(i)] +
                         static_cast<double>(uc) * same_sum,
                     milp::cmp::greater_equal, static_cast<double>(uc),
                     "prec_" + std::to_string(i) + "_" + std::to_string(j));

    // Storage-time variable for the objective: w >= ts_j - te_i - H*same.
    w[e] = m.add_continuous(0.0, milp::infinity,
                            "w_" + std::to_string(i) + "_" +
                                std::to_string(j));
    m.add_constraint(milp::linear_expr(w[e]) -
                         ts[static_cast<std::size_t>(j)] +
                         te[static_cast<std::size_t>(i)] + big_m * same_sum,
                     milp::cmp::greater_equal, 0.0);
  }
  ilp.storage = w;

  // (4) disjunctive non-overlap for pairs that may share a device and may
  // overlap in time. Precedence-related pairs and pairs with disjoint
  // ASAP/ALAP windows are skipped (provably redundant).
  auto& pairs = ilp.order_pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (graph.reaches(i, j) || graph.reaches(j, i)) continue;
      if (est[static_cast<std::size_t>(i)] >=
              lft[static_cast<std::size_t>(j)] ||
          est[static_cast<std::size_t>(j)] >=
              lft[static_cast<std::size_t>(i)])
        continue;
      const milp::variable o =
          m.add_binary("o_" + std::to_string(i) + "_" + std::to_string(j));
      pairs.push_back({i, j, o});
      for (int k = 0; k < devices; ++k) {
        const milp::linear_expr same_pair =
            milp::linear_expr(
                s[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]) +
            s[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
        // i before j: ts_j >= te_i - M(1-o) - M(2 - s_ik - s_jk)
        m.add_constraint(
            milp::linear_expr(ts[static_cast<std::size_t>(j)]) -
                te[static_cast<std::size_t>(i)] +
                big_m * (1.0 - milp::linear_expr(o)) +
                big_m * (2.0 - same_pair),
            milp::cmp::greater_equal, 0.0);
        // j before i: ts_i >= te_j - M*o - M(2 - s_ik - s_jk)
        m.add_constraint(
            milp::linear_expr(ts[static_cast<std::size_t>(i)]) -
                te[static_cast<std::size_t>(j)] +
                big_m * milp::linear_expr(o) + big_m * (2.0 - same_pair),
            milp::cmp::greater_equal, 0.0);
      }
    }
  }

  // (5) makespan.
  for (int i = 0; i < n; ++i)
    m.add_constraint(milp::linear_expr(te[static_cast<std::size_t>(i)]) -
                         t_end,
                     milp::cmp::less_equal, 0.0);

  // Device-load valid inequalities (see ilp_scheduler_options): the ops
  // assigned to one device occupy disjoint time windows inside [0, tE].
  if (options.load_valid_inequalities) {
    for (int k = 0; k < devices; ++k) {
      milp::linear_expr load;
      for (int i = 0; i < n; ++i)
        load += static_cast<double>(graph.at(i).duration) *
                s[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
      m.add_constraint(load - t_end, milp::cmp::less_equal, 0.0,
                       "load_" + std::to_string(k));
    }
  }

  // Device-symmetry breaking (see ilp_scheduler_options): operation i may
  // only use devices 0..i. Singleton rows by design -- presolve turns them
  // into variable bounds before the first LP.
  if (options.break_device_symmetry) {
    for (int i = 0; i < n && i < devices - 1; ++i)
      for (int k = i + 1; k < devices; ++k)
        m.add_constraint(
            milp::linear_expr(
                s[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]),
            milp::cmp::less_equal, 0.0,
            "sym_" + std::to_string(i) + "_" + std::to_string(k));
  }

  // (6) objective.
  milp::linear_expr objective = options.alpha * milp::linear_expr(t_end);
  for (std::size_t e = 0; e < edges.size(); ++e)
    objective += options.beta * milp::linear_expr(w[e]);
  m.set_objective(objective, milp::objective_sense::minimize);

  // Warm start: translate the heuristic schedule into a full assignment.
  if (options.warm_start)
    ilp.warm_assignment = schedule_assignment(ilp, *options.warm_start);

  return ilp;
}

std::vector<double> schedule_assignment(const scheduling_ilp& ilp,
                                        const schedule& s) {
  const int n = static_cast<int>(ilp.assign.size());
  const int devices = ilp.device_count;
  require(static_cast<int>(s.ops.size()) == n,
          "schedule_assignment: schedule has wrong op count");
  // Relabel devices by first appearance (op-index order) so the schedule
  // satisfies the symmetry-breaking rows; devices are interchangeable, so
  // the relabeled schedule is equivalent.
  std::vector<int> relabel(static_cast<std::size_t>(devices), -1);
  if (ilp.symmetry_broken) {
    int next_label = 0;
    for (int i = 0; i < n; ++i) {
      const int d = s.ops[static_cast<std::size_t>(i)].device;
      if (relabel[static_cast<std::size_t>(d)] < 0)
        relabel[static_cast<std::size_t>(d)] = next_label++;
    }
    for (int d = 0; d < devices; ++d)
      if (relabel[static_cast<std::size_t>(d)] < 0)
        relabel[static_cast<std::size_t>(d)] = next_label++;
  } else {
    for (int d = 0; d < devices; ++d)
      relabel[static_cast<std::size_t>(d)] = d;
  }
  std::vector<double> assignment(
      static_cast<std::size_t>(ilp.model.variable_count()), 0.0);
  auto set = [&](milp::variable v, double value) {
    assignment[static_cast<std::size_t>(v.index)] = value;
  };
  for (int i = 0; i < n; ++i) {
    const auto& so = s.ops[static_cast<std::size_t>(i)];
    const int device = relabel[static_cast<std::size_t>(so.device)];
    set(ilp.assign[static_cast<std::size_t>(i)][static_cast<std::size_t>(
            device)],
        1.0);
    set(ilp.start[static_cast<std::size_t>(i)], so.start);
    set(ilp.end[static_cast<std::size_t>(i)], so.end);
  }
  set(ilp.makespan, s.makespan());
  // z_ijk = s_ik * s_jk; w_ij is the realized cross-device slack.
  for (std::size_t e = 0; e < ilp.edge_list.size(); ++e) {
    const auto [i, j] = ilp.edge_list[e];
    const int di = relabel[static_cast<std::size_t>(
        s.ops[static_cast<std::size_t>(i)].device)];
    const int dj = relabel[static_cast<std::size_t>(
        s.ops[static_cast<std::size_t>(j)].device)];
    if (di == dj) {
      set(ilp.same_z[e][static_cast<std::size_t>(di)], 1.0);
    } else {
      const int gap = s.ops[static_cast<std::size_t>(j)].start -
                      s.ops[static_cast<std::size_t>(i)].end;
      set(ilp.storage[e], std::max(0, gap));
    }
  }
  for (const auto& pr : ilp.order_pairs) {
    const auto& oi = s.ops[static_cast<std::size_t>(pr.i)];
    const auto& oj = s.ops[static_cast<std::size_t>(pr.j)];
    const bool i_first =
        oi.start < oj.start || (oi.start == oj.start && pr.i < pr.j);
    set(pr.order, i_first ? 1.0 : 0.0);
  }
  return assignment;
}

std::optional<std::vector<double>> polish_assignment(
    const scheduling_ilp& ilp, const std::vector<double>& assignment,
    double time_limit_seconds, cancel_token cancel) {
  const auto& m = ilp.model;
  if (static_cast<int>(assignment.size()) != m.variable_count())
    return std::nullopt;
  // Rebuild the model with every integer/binary variable fixed at the
  // incumbent value through its bounds (kind integer so the builder cannot
  // re-widen fixed binaries); presolve then eliminates them and the solve
  // reduces to the LP over the continuous times.
  milp::model fixed;
  const auto& vars = m.variables();
  for (int i = 0; i < m.variable_count(); ++i) {
    const milp::var_info& v = vars[static_cast<std::size_t>(i)];
    if (v.kind == milp::var_kind::continuous) {
      fixed.add_continuous(v.lower, v.upper, v.name);
    } else {
      const double x = std::round(assignment[static_cast<std::size_t>(i)]);
      fixed.add_integer(x, x, v.name);
    }
  }
  for (const milp::row_info& row : m.constraints()) {
    milp::linear_expr e;
    for (const auto& [index, coef] : row.terms)
      e += coef * milp::variable{index};
    fixed.add_range_constraint(e, row.lower, row.upper, row.name);
  }
  milp::linear_expr objective;
  const std::vector<double>& coefs = m.objective_coefficients();
  for (int i = 0; i < m.variable_count(); ++i)
    if (coefs[static_cast<std::size_t>(i)] != 0.0)
      objective += coefs[static_cast<std::size_t>(i)] * milp::variable{i};
  objective += m.objective_constant();
  fixed.set_objective(objective, m.sense());

  milp::solver_options so;
  so.time_limit_seconds = time_limit_seconds;
  so.cancel = std::move(cancel);
  const milp::solution sol = milp::solve(fixed, so);
  if (!sol.has_solution()) return std::nullopt;
  // Keep the raw incumbent when the restricted solve did not actually
  // improve it, and defensively re-verify against the unrestricted model.
  const double raw = m.evaluate_objective(assignment);
  const bool improved = m.sense() == milp::objective_sense::minimize
                            ? sol.objective < raw - 1e-9
                            : sol.objective > raw + 1e-9;
  if (!improved) return std::nullopt;
  if (!m.is_feasible(sol.values)) return std::nullopt;
  return sol.values;
}

namespace {

/// Extract the incumbent assignment + device order from a full MILP variable
/// assignment and re-time with the device port model.
schedule extract_schedule(const assay::sequencing_graph& graph,
                          const scheduling_ilp& ilp,
                          const ilp_scheduler_options& options,
                          const std::vector<double>& values) {
  const int n = graph.operation_count();
  const int devices = options.device_count;
  auto value = [&](milp::variable v) {
    return values.at(static_cast<std::size_t>(v.index));
  };
  binding b;
  b.device_of.assign(static_cast<std::size_t>(n), -1);
  b.device_order.assign(static_cast<std::size_t>(devices), {});
  std::vector<std::pair<double, int>> starts;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < devices; ++k)
      if (value(ilp.assign[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(k)]) > 0.5)
        b.device_of[static_cast<std::size_t>(i)] = k;
    check(b.device_of[static_cast<std::size_t>(i)] >= 0,
          "ilp scheduler: op left unassigned");
    starts.emplace_back(value(ilp.start[static_cast<std::size_t>(i)]), i);
  }
  std::sort(starts.begin(), starts.end());
  for (const auto& [start, op] : starts)
    b.device_order[static_cast<std::size_t>(
                       b.device_of[static_cast<std::size_t>(op)])]
        .push_back(op);
  schedule refined = refine_timing(graph, b, devices, options.timing);
  refined.validate(graph);
  return refined;
}

/// The racing portfolio behind options.portfolio: two branch-and-bound
/// configurations (best_estimate and dfs, splitting the thread budget) and
/// the simulated-annealing heuristic run concurrently on one shared
/// incumbent board. Every heuristic improvement is translated into a full
/// MILP assignment and offered to the board, where it tightens BOTH tree
/// searches' pruning bound; the first solver to PROVE optimality wins the
/// race and cancels the rest. With no proof inside the time limit, the best
/// incumbent across all racers wins.
struct portfolio_outcome {
  milp::solution sol;            // winning (or synthesized) MILP solution
  std::string winner;            // "best_estimate", "dfs" or "heuristic"
  long total_nodes = 0;          // summed across both tree searches
  long total_iterations = 0;
  std::optional<schedule> heuristic_best; // best annealed schedule seen
  bool all_joined = false;
};

portfolio_outcome run_portfolio(const assay::sequencing_graph& graph,
                                const scheduling_ilp& ilp,
                                const ilp_scheduler_options& options,
                                const milp::solver_options& base) {
  const milp::model& m = ilp.model;
  auto board = std::make_shared<milp::incumbent_board>(true);

  int total_threads = base.threads;
  if (total_threads <= 0)
    total_threads = static_cast<int>(std::thread::hardware_concurrency());
  if (total_threads <= 0) total_threads = 1;

  auto racer_options = [&](milp::node_rule rule, int threads,
                           cancel_token cancel) {
    milp::solver_options so = base;
    so.node_selection = rule;
    so.threads = threads;
    // The race resolves by arrival time, so per-run determinism is off the
    // table regardless; the round engine's synchronization would only slow
    // the racers down.
    so.deterministic = false;
    so.shared_incumbent = board;
    so.warm_start = ilp.warm_assignment;
    so.cancel = std::move(cancel);
    return so;
  };

  cancel_source cancel_a, cancel_b, cancel_h;
  auto cancel_all = [&] {
    cancel_a.cancel();
    cancel_b.cancel();
    cancel_h.cancel();
  };

  const int threads_a = std::max(1, total_threads / 2);
  const int threads_b = std::max(1, total_threads - threads_a);
  milp::solution sol_a, sol_b;
  std::atomic<int> winner{-1};
  std::atomic<int> tree_racers_done{0};
  auto run_racer = [&](int index, const milp::solver_options& so,
                       milp::solution& out) {
    out = milp::solve(m, so);
    tree_racers_done.fetch_add(1, std::memory_order_release);
    if (out.status == milp::solve_status::optimal) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, index)) cancel_all();
    }
  };

  // Heuristic racer: anneal from the warm start (or a fresh list schedule)
  // in short cancellable chunks, publishing every improvement to the board.
  std::optional<schedule> heur_best;
  auto run_heuristic = [&] {
    stopwatch watch;
    schedule current;
    if (options.warm_start) {
      current = *options.warm_start;
    } else {
      list_scheduler_options lo;
      lo.device_count = options.device_count;
      lo.timing = options.timing;
      lo.alpha = options.alpha;
      lo.beta = options.beta;
      lo.seed = options.seed;
      lo.cancel = cancel_h.token();
      current = schedule_with_list(graph, lo);
    }
    auto publish = [&](const schedule& s) {
      std::vector<double> values = schedule_assignment(ilp, s);
      const double objective = m.evaluate_objective(values);
      board->offer(objective, std::move(values));
      if (!heur_best ||
          s.objective(options.alpha, options.beta) <
              heur_best->objective(options.alpha, options.beta))
        heur_best = s;
    };
    publish(current);
    std::uint64_t chunk = 0;
    while (!cancel_h.cancelled() &&
           tree_racers_done.load(std::memory_order_acquire) < 2 &&
           watch.elapsed_seconds() < options.time_limit_seconds) {
      if (base.cancel.cancelled()) { // forward the caller's cancellation
        cancel_all();
        break;
      }
      local_search_options lo;
      lo.alpha = options.alpha;
      lo.beta = options.beta;
      lo.iterations = 2000;
      // Derived per-chunk streams off the caller's seed (uniform with the
      // other engines' seed discipline), instead of the old hardcoded
      // 1, 2, 3, ... sequence every run shared.
      lo.seed = derive_seed(options.seed, 0x52414345ULL + chunk++);
      lo.cancel = cancel_h.token();
      schedule improved =
          improve_schedule(graph, current, options.timing, lo);
      if (improved.objective(options.alpha, options.beta) <
          current.objective(options.alpha, options.beta))
        publish(improved);
      current = std::move(improved);
    }
  };

  std::thread thread_a(run_racer, 0,
                       racer_options(milp::node_rule::best_estimate, threads_a,
                                     cancel_a.token()),
                       std::ref(sol_a));
  std::thread thread_b(run_racer, 1,
                       racer_options(milp::node_rule::dfs, threads_b,
                                     cancel_b.token()),
                       std::ref(sol_b));
  std::thread thread_h(run_heuristic);
  thread_a.join();
  thread_b.join();
  cancel_h.cancel();
  thread_h.join();

  portfolio_outcome out;
  out.all_joined = !thread_a.joinable() && !thread_b.joinable() &&
                   !thread_h.joinable();
  out.heuristic_best = heur_best;
  out.total_nodes = sol_a.nodes_explored + sol_b.nodes_explored;
  out.total_iterations = sol_a.simplex_iterations + sol_b.simplex_iterations;

  const int proven = winner.load();
  if (proven == 0 || proven == 1) {
    out.sol = proven == 0 ? std::move(sol_a) : std::move(sol_b);
    out.winner = proven == 0 ? "best_estimate" : "dfs";
    return out;
  }
  // No optimality proof: best incumbent wins. The racers adopt board
  // incumbents mid-search, but a late heuristic offer can still beat both
  // final incumbents -- check the board last.
  const bool a_ok = sol_a.has_solution();
  const bool b_ok = sol_b.has_solution();
  const bool a_beats_b = a_ok && (!b_ok || sol_a.objective <= sol_b.objective);
  out.sol = a_beats_b ? std::move(sol_a) : std::move(sol_b);
  out.winner = a_beats_b ? "best_estimate" : "dfs";
  std::uint64_t seen = 0;
  double board_objective = 0.0;
  std::vector<double> board_values;
  if (board->fetch(seen, board_objective, board_values) &&
      (!out.sol.has_solution() || board_objective < out.sol.objective)) {
    // Synthesize a feasible solution from the board (the heuristic racer
    // always publishes at least its starting schedule, so in the worst
    // case this recovers the warm start). The tree racers' dual bounds
    // stay valid for the shared model -- keep the tighter one.
    out.winner = "heuristic";
    out.sol.status = milp::solve_status::feasible;
    out.sol.objective = board_objective;
    out.sol.values = std::move(board_values);
    out.sol.best_bound = std::max(sol_a.best_bound, sol_b.best_bound);
    out.sol.interrupted = true;
  }
  return out;
}

} // namespace

ilp_schedule_result schedule_with_ilp(const assay::sequencing_graph& graph,
                                      const ilp_scheduler_options& options) {
  scheduling_ilp ilp = build_scheduling_ilp(graph, options);
  const milp::model& m = ilp.model;

  milp::solver_options solver_options = options.milp;
  solver_options.time_limit_seconds = options.time_limit_seconds;
  solver_options.log_progress = options.log_progress;

  // Re-time the warm incumbent optimally within its own binding before the
  // tree search sees it: heuristic schedules carry conservative simulated
  // timing, and the LP-polished point prunes measurably deeper (RA12 closes
  // in ~0.6x the nodes). Bounded by a slice of the solve budget; on any
  // failure the raw assignment stands.
  if (ilp.warm_assignment) {
    const double slice =
        std::clamp(options.time_limit_seconds * 0.1, 0.1, 2.0);
    if (auto polished =
            polish_assignment(ilp, *ilp.warm_assignment, slice,
                              options.milp.cancel))
      ilp.warm_assignment = std::move(polished);
  }

  milp::solution sol;
  ilp_schedule_result result;
  std::optional<schedule> heuristic_best;
  if (options.portfolio) {
    portfolio_outcome outcome =
        run_portfolio(graph, ilp, options, solver_options);
    sol = std::move(outcome.sol);
    heuristic_best = std::move(outcome.heuristic_best);
    result.nodes = outcome.total_nodes;
    result.simplex_iterations = outcome.total_iterations;
    result.portfolio_racers = 3;
    result.portfolio_winner = std::move(outcome.winner);
    result.portfolio_all_joined = outcome.all_joined;
  } else {
    solver_options.warm_start = std::move(ilp.warm_assignment);
    sol = milp::solve(m, solver_options);
    result.nodes = sol.nodes_explored;
    result.simplex_iterations = sol.simplex_iterations;
  }

  result.status = sol.status;
  result.interrupted = sol.interrupted;
  result.seconds = sol.seconds;
  result.variables = m.variable_count();
  result.constraints = m.constraint_count();
  result.presolve_rows_removed = sol.presolve_rows_removed;
  result.presolve_bounds_tightened = sol.presolve_bounds_tightened;
  result.cuts_added = sol.cuts_added;
  result.cut_rounds = sol.cut_rounds;
  result.root_bound = sol.root_bound;
  result.threads_used = sol.threads_used;
  result.workers = sol.workers;

  check(sol.has_solution(),
        "ilp scheduler: no incumbent (horizon too small or solver failure)");
  result.ilp_objective = sol.objective;
  result.ilp_bound = sol.best_bound;

  result.refined = extract_schedule(graph, ilp, options, sol.values);
  // The ILP does not model device-port serialization, so among alternate
  // MILP optima the extracted ordering can re-time worse than the warm
  // start (which basis engine / pivot order the LP took picks the vertex).
  // Mirror the combined engine's guard: never return a schedule that
  // scores worse under objective (6) than the warm start we were given --
  // or, in portfolio mode, than the heuristic racer's best schedule.
  auto keep_better = [&](const schedule& alternative) {
    if (alternative.objective(options.alpha, options.beta) <
        result.refined.objective(options.alpha, options.beta))
      result.refined = alternative;
  };
  if (options.warm_start) keep_better(*options.warm_start);
  if (heuristic_best) keep_better(*heuristic_best);
  return result;
}

} // namespace transtore::sched
