// Integer grid geometry shared by architectural and physical design.
#pragma once

#include <algorithm>
#include <cstdlib>

namespace transtore {

/// A point on an integer grid (x grows right, y grows up).
struct point {
  int x = 0;
  int y = 0;

  friend bool operator==(const point&, const point&) = default;
};

/// Manhattan distance between two grid points.
inline int manhattan_distance(const point& a, const point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Axis-aligned integer rectangle [lo.x, hi.x] x [lo.y, hi.y], inclusive.
struct rect {
  point lo;
  point hi;

  [[nodiscard]] int width() const { return hi.x - lo.x; }
  [[nodiscard]] int height() const { return hi.y - lo.y; }

  [[nodiscard]] bool contains(const point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  [[nodiscard]] bool intersects(const rect& other) const {
    return lo.x <= other.hi.x && other.lo.x <= hi.x && lo.y <= other.hi.y &&
           other.lo.y <= hi.y;
  }

  /// Smallest rectangle containing both this and `p`.
  [[nodiscard]] rect expanded_to(const point& p) const {
    return rect{{std::min(lo.x, p.x), std::min(lo.y, p.y)},
                {std::max(hi.x, p.x), std::max(hi.y, p.y)}};
  }

  friend bool operator==(const rect&, const rect&) = default;
};

/// Half-open time interval [begin, end) in integer seconds.
struct time_interval {
  int begin = 0;
  int end = 0;

  [[nodiscard]] bool empty() const { return end <= begin; }
  [[nodiscard]] int length() const { return end - begin; }

  /// True when the two half-open intervals share at least one instant.
  [[nodiscard]] bool overlaps(const time_interval& other) const {
    return begin < other.end && other.begin < end;
  }

  [[nodiscard]] bool contains(int t) const { return t >= begin && t < end; }

  friend bool operator==(const time_interval&, const time_interval&) = default;
};

} // namespace transtore
