#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.h"

namespace transtore {

void json_writer::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

json_writer& json_writer::begin_object() {
  separator();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

json_writer& json_writer::end_object() {
  check(!need_comma_.empty(), "json_writer: unbalanced end_object");
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

json_writer& json_writer::begin_array(const std::string& name) {
  if (!name.empty()) key(name);
  separator();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

json_writer& json_writer::end_array() {
  check(!need_comma_.empty(), "json_writer: unbalanced end_array");
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

json_writer& json_writer::key(const std::string& name) {
  separator();
  append_quoted(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

json_writer& json_writer::value(const std::string& v) {
  separator();
  append_quoted(v);
  return *this;
}

void json_writer::append_quoted(const std::string& v) {
  out_ += '"';
  for (char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

json_writer& json_writer::value(const char* v) {
  return value(std::string(v));
}

json_writer& json_writer::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.12g", v);
  out_ += buffer;
  return *this;
}

json_writer& json_writer::value_exact(double v) {
  separator();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buffer[40];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, v);
  check(ec == std::errc(), "json_writer: to_chars failed");
  out_.append(buffer, end);
  return *this;
}

json_writer& json_writer::value_raw(const std::string& json) {
  separator();
  out_ += json;
  return *this;
}

json_writer& json_writer::value(long v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

json_writer& json_writer::value(int v) { return value(static_cast<long>(v)); }

json_writer& json_writer::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

json_writer& json_writer::value_null() {
  separator();
  out_ += "null";
  return *this;
}

// ------------------------------------------------------------- json_value

namespace {

[[noreturn]] void parse_fail(const std::string& what, std::size_t offset) {
  throw invalid_input_error("json: " + what + " at offset " +
                            std::to_string(offset));
}

} // namespace

/// Single-pass recursive-descent parser over the document text.
class json_parser {
public:
  explicit json_parser(const std::string& text) : text_(text) {}

  json_value run() {
    json_value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) parse_fail("trailing content", pos_);
    return v;
  }

private:
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  static constexpr int max_depth = 256;

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) parse_fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  void expect(char c) {
    if (peek() != c)
      parse_fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  json_value parse_value() {
    skip_whitespace();
    if (++depth_ > max_depth) parse_fail("nesting too deep", pos_);
    json_value v;
    switch (peek()) {
      case '{': parse_object(v); break;
      case '[': parse_array(v); break;
      case '"':
        v.kind_ = json_value::kind::string;
        v.text_ = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) parse_fail("bad literal", pos_);
        v.kind_ = json_value::kind::boolean;
        v.bool_ = true;
        break;
      case 'f':
        if (!consume_literal("false")) parse_fail("bad literal", pos_);
        v.kind_ = json_value::kind::boolean;
        v.bool_ = false;
        break;
      case 'n':
        if (!consume_literal("null")) parse_fail("bad literal", pos_);
        v.kind_ = json_value::kind::null;
        break;
      default: parse_number(v); break;
    }
    --depth_;
    return v;
  }

  void parse_object(json_value& v) {
    v.kind_ = json_value::kind::object;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(json_value& v) {
    v.kind_ = json_value::kind::array;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      v.elements_.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) parse_fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) parse_fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          auto hex4 = [this]() -> unsigned {
            if (pos_ + 4 > text_.size()) parse_fail("bad \\u escape", pos_);
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                parse_fail("bad \\u escape", pos_);
            }
            return code;
          };
          unsigned code = hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: RFC 8259 clients (e.g. json.dumps with
            // ensure_ascii) encode non-BMP characters as a \uXXXX\uXXXX
            // pair; combine it into the real code point.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              parse_fail("unpaired high surrogate", pos_);
            pos_ += 2;
            const unsigned low = hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              parse_fail("invalid low surrogate", pos_);
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            parse_fail("unpaired low surrogate", pos_);
          }
          // UTF-8 encode the code point.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: parse_fail("bad escape", pos_ - 1);
      }
    }
  }

  void parse_number(json_value& v) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) parse_fail("expected a value", start);
    v.kind_ = json_value::kind::number;
    v.text_ = text_.substr(start, pos_ - start);
    // from_chars is locale-independent (strtod honours LC_NUMERIC, which
    // would break parsing -- and the byte-identity round trip -- in a host
    // process running under a comma-decimal locale).
    const char* const first = v.text_.data();
    const char* const last = first + v.text_.size();
    const auto [end, ec] = std::from_chars(first, last, v.number_);
    if (ec != std::errc() || end != last) parse_fail("malformed number", start);
  }
};

json_value json_value::parse(const std::string& text) {
  return json_parser(text).run();
}

namespace {
[[nodiscard]] const char* kind_name(json_value::kind k) {
  switch (k) {
    case json_value::kind::null: return "null";
    case json_value::kind::boolean: return "boolean";
    case json_value::kind::number: return "number";
    case json_value::kind::string: return "string";
    case json_value::kind::array: return "array";
    case json_value::kind::object: return "object";
  }
  return "unknown";
}

void require_kind(const json_value& v, json_value::kind want) {
  require(v.type() == want,
          std::string("json: expected ") + kind_name(want) + ", got " +
              kind_name(v.type()));
}
} // namespace

bool json_value::as_bool() const {
  require_kind(*this, kind::boolean);
  return bool_;
}

double json_value::as_double() const {
  require_kind(*this, kind::number);
  return number_;
}

long json_value::as_long() const {
  require_kind(*this, kind::number);
  const double rounded = std::nearbyint(number_);
  // Upper bound is exclusive: double(LONG_MAX) rounds UP to 2^63, so the
  // <= comparison would admit 2^63 itself and the cast below would
  // overflow (UB) instead of reporting the structured error.
  require(rounded == number_ &&
              number_ >= static_cast<double>(std::numeric_limits<long>::min()) &&
              number_ < 9223372036854775808.0 /* 2^63 */,
          "json: number " + text_ + " is not an integral long");
  return static_cast<long>(number_);
}

int json_value::as_int() const {
  const long v = as_long();
  require(v >= std::numeric_limits<int>::min() &&
              v <= std::numeric_limits<int>::max(),
          "json: number " + text_ + " does not fit an int");
  return static_cast<int>(v);
}

const std::string& json_value::as_string() const {
  require_kind(*this, kind::string);
  return text_;
}

const std::string& json_value::number_text() const {
  require_kind(*this, kind::number);
  return text_;
}

std::size_t json_value::size() const {
  require_kind(*this, kind::array);
  return elements_.size();
}

const json_value& json_value::operator[](std::size_t index) const {
  require_kind(*this, kind::array);
  require(index < elements_.size(),
          "json: array index " + std::to_string(index) + " out of range");
  return elements_[index];
}

const std::vector<json_value>& json_value::elements() const {
  require_kind(*this, kind::array);
  return elements_;
}

const json_value* json_value::find(const std::string& key) const {
  require_kind(*this, kind::object);
  for (const auto& [name, member] : members_)
    if (name == key) return &member;
  return nullptr;
}

const json_value& json_value::at(const std::string& key) const {
  const json_value* v = find(key);
  require(v != nullptr, "json: missing key \"" + key + "\"");
  return *v;
}

const std::vector<std::pair<std::string, json_value>>& json_value::members()
    const {
  require_kind(*this, kind::object);
  return members_;
}

void write_value(json_writer& w, const json_value& v) {
  switch (v.type()) {
    case json_value::kind::null: w.value_null(); break;
    case json_value::kind::boolean: w.value(v.as_bool()); break;
    case json_value::kind::number: w.value_raw(v.number_text()); break;
    case json_value::kind::string: w.value(v.as_string()); break;
    case json_value::kind::array:
      w.begin_array();
      for (const json_value& e : v.elements()) write_value(w, e);
      w.end_array();
      break;
    case json_value::kind::object:
      w.begin_object();
      for (const auto& [name, member] : v.members()) {
        w.key(name);
        write_value(w, member);
      }
      w.end_object();
      break;
  }
}

} // namespace transtore
