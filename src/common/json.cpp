#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace transtore {

void json_writer::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

json_writer& json_writer::begin_object() {
  separator();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

json_writer& json_writer::end_object() {
  check(!need_comma_.empty(), "json_writer: unbalanced end_object");
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

json_writer& json_writer::begin_array(const std::string& name) {
  if (!name.empty()) key(name);
  separator();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

json_writer& json_writer::end_array() {
  check(!need_comma_.empty(), "json_writer: unbalanced end_array");
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

json_writer& json_writer::key(const std::string& name) {
  separator();
  append_quoted(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

json_writer& json_writer::value(const std::string& v) {
  separator();
  append_quoted(v);
  return *this;
}

void json_writer::append_quoted(const std::string& v) {
  out_ += '"';
  for (char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

json_writer& json_writer::value(const char* v) {
  return value(std::string(v));
}

json_writer& json_writer::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.12g", v);
  out_ += buffer;
  return *this;
}

json_writer& json_writer::value(long v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

json_writer& json_writer::value(int v) { return value(static_cast<long>(v)); }

json_writer& json_writer::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

} // namespace transtore
