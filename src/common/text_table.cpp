#include "common/text_table.h"

#include <algorithm>

namespace transtore {

void text_table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string text_table::render() const {
  if (rows_.empty()) return "";
  std::size_t columns = 0;
  for (const auto& row : rows_) columns = std::max(columns, row.size());

  std::vector<std::size_t> widths(columns, 0);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      out += cell;
      if (c + 1 < columns) out += std::string(widths[c] - cell.size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < columns; ++c)
        total += widths[c] + (c + 1 < columns ? 2 : 0);
      out += std::string(total, '-');
      out += '\n';
    }
  }
  return out;
}

} // namespace transtore
