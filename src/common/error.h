// Error handling for the transtore library.
//
// Policy (per C++ Core Guidelines E.2/E.3): errors that a caller can be
// expected to handle -- infeasible models, malformed inputs, resource
// exhaustion -- are reported by throwing one of the exception types below.
// Violations of internal invariants are reported through check() with a
// message and indicate a bug in this library, not in the caller.
#pragma once

#include <stdexcept>
#include <string>

namespace transtore {

/// Base class of every exception thrown by this library.
class ts_error : public std::runtime_error {
public:
  explicit ts_error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller-supplied argument or input file is malformed.
class invalid_input_error : public ts_error {
public:
  explicit invalid_input_error(const std::string& what) : ts_error(what) {}
};

/// An optimization model has no feasible solution.
class infeasible_error : public ts_error {
public:
  explicit infeasible_error(const std::string& what) : ts_error(what) {}
};

/// A resource budget (grid capacity, storage capacity, ...) is exceeded.
class capacity_error : public ts_error {
public:
  explicit capacity_error(const std::string& what) : ts_error(what) {}
};

/// A solve was interrupted (cancel token or pipeline deadline) before any
/// usable result existed. Interruptions that still have a best-effort
/// result to hand back are reported through status fields instead.
class cancelled_error : public ts_error {
public:
  explicit cancelled_error(const std::string& what) : ts_error(what) {}
};

/// An internal invariant does not hold; indicates a library bug.
class internal_error : public ts_error {
public:
  explicit internal_error(const std::string& what) : ts_error(what) {}
};

/// Throw invalid_input_error unless `condition` holds.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw invalid_input_error(message);
}

/// Throw internal_error unless `condition` holds. Use for invariants that
/// only a bug in this library can break.
inline void check(bool condition, const std::string& message) {
  if (!condition) throw internal_error(message);
}

} // namespace transtore
