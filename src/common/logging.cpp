#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace transtore {
namespace {

std::atomic<log_level> g_level{log_level::warn};

const char* level_tag(log_level level) {
  switch (level) {
    case log_level::debug: return "debug";
    case log_level::info: return "info ";
    case log_level::warn: return "warn ";
    case log_level::error: return "error";
    case log_level::off: return "off  ";
  }
  return "?";
}

} // namespace

log_level global_log_level() { return g_level.load(std::memory_order_relaxed); }

void set_global_log_level(log_level level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(log_level level, const std::string& message) {
  if (level < global_log_level()) return;
  std::fprintf(stderr, "[transtore %s] %s\n", level_tag(level), message.c_str());
}

} // namespace transtore
