// Small string/format helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace transtore {

/// Join `parts` with `separator` ("a", "b" -> "a,b").
std::string join(const std::vector<std::string>& parts,
                 const std::string& separator);

/// Fixed-precision decimal rendering ("3.14"); trailing zeros kept.
std::string format_double(double value, int decimals);

/// Compact rendering: integers without decimals, otherwise 2 decimals.
std::string format_number(double value);

/// "WxH" dimension rendering used in Table 2 ("15x10").
std::string format_dims(int width, int height);

/// Split on a delimiter; empty tokens preserved.
std::vector<std::string> split(const std::string& text, char delimiter);

/// Strip leading/trailing whitespace.
std::string trim(const std::string& text);

} // namespace transtore
