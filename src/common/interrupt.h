// Cooperative cancellation for long-running solves.
//
// A cancel_source owns a shared flag; the cancel_token copies handed to
// solvers observe it. Tokens are cheap value types: a default-constructed
// token never reports cancellation, so option structs can carry one without
// imposing any cost on callers that do not use the feature. Cancellation is
// level-triggered and sticky -- once a source is cancelled every token stays
// cancelled -- which is exactly the contract the branch-and-bound loop and
// the annealing passes need to unwind at the next safe point.
#pragma once

#include <atomic>
#include <memory>

namespace transtore {

/// Observer half: answers "has the owner asked us to stop?".
class cancel_token {
public:
  cancel_token() = default;

  [[nodiscard]] bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

private:
  friend class cancel_source;
  explicit cancel_token(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Owner half: created by the caller that may want to interrupt a solve.
class cancel_source {
public:
  cancel_source() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const {
    return flag_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] cancel_token token() const { return cancel_token(flag_); }

private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

} // namespace transtore
