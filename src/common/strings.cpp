#include "common/strings.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace transtore {

std::string join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string format_number(double value) {
  const double rounded = std::round(value);
  if (std::abs(value - rounded) < 1e-9 && std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(rounded));
    return buffer;
  }
  return format_double(value, 2);
}

std::string format_dims(int width, int height) {
  std::ostringstream out;
  out << width << "x" << height;
  return out.str();
}

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

} // namespace transtore
