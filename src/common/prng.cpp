#include "common/prng.h"

namespace transtore {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

} // namespace

prng::prng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t prng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t prng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "prng::uniform_int: lo must not exceed hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next()); // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

double prng::uniform_real() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double prng::uniform_real(double lo, double hi) {
  require(lo <= hi, "prng::uniform_real: lo must not exceed hi");
  return lo + (hi - lo) * uniform_real();
}

bool prng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

std::size_t prng::index(std::size_t size) {
  require(size > 0, "prng::index: size must be positive");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

} // namespace transtore
