// Wall-clock stopwatch used for solver time limits and runtime reporting.
#pragma once

#include <chrono>

#include "common/interrupt.h"

namespace transtore {

/// Monotonic stopwatch; starts running on construction.
class stopwatch {
public:
  stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Deadline helper: answers "is the budget exhausted?" for solvers. The
/// budget expires either when the wall-clock allowance runs out or when the
/// optional cancel token fires, so every solver loop that already polls
/// expired() becomes cancellable for free.
class deadline {
public:
  /// A non-positive or infinite budget means "no limit".
  explicit deadline(double budget_seconds, cancel_token cancel = {})
      : budget_seconds_(budget_seconds), cancel_(std::move(cancel)), watch_() {}

  [[nodiscard]] bool expired() const {
    return cancel_.cancelled() ||
           (budget_seconds_ > 0.0 &&
            watch_.elapsed_seconds() >= budget_seconds_);
  }

  /// True when expiry was triggered by the cancel token rather than the
  /// wall clock (callers that must report the two outcomes distinctly).
  [[nodiscard]] bool cancelled() const { return cancel_.cancelled(); }

  [[nodiscard]] double remaining_seconds() const {
    if (budget_seconds_ <= 0.0) return 1e18;
    const double left = budget_seconds_ - watch_.elapsed_seconds();
    return left > 0.0 ? left : 0.0;
  }

  [[nodiscard]] double elapsed_seconds() const {
    return watch_.elapsed_seconds();
  }

private:
  double budget_seconds_;
  cancel_token cancel_;
  stopwatch watch_;
};

} // namespace transtore
