// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (random assay generation,
// simulated-annealing placement, heuristic tie breaking) draws from a prng
// seeded explicitly by the caller, so all results are reproducible from the
// seed alone. The generator is xoshiro256** (Blackman & Vigna), seeded
// through SplitMix64 so that low-entropy seeds still produce well-mixed
// state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace transtore {

/// xoshiro256** generator with convenience sampling helpers.
class prng {
public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit prng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// UniformRandomBitGenerator interface (usable with std::shuffle).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// Uniform real in [lo, hi); requires lo <= hi.
  double uniform_real(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Uniformly chosen index into a container of the given size; size > 0.
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      using std::swap;
      swap(values[i - 1], values[index(i)]);
    }
  }

private:
  std::uint64_t state_[4];
};

} // namespace transtore
