// Minimal streaming JSON writer (objects, arrays, strings, numbers) with
// correct escaping. Shared by the flow-result serializer (core/report.h),
// the staged-API serializers (api/pipeline.h), and the bench harnesses.
#pragma once

#include <string>
#include <vector>

namespace transtore {

class json_writer {
public:
  json_writer& begin_object();
  json_writer& end_object();
  json_writer& begin_array(const std::string& key = {});
  json_writer& end_array();
  json_writer& key(const std::string& name);
  json_writer& value(const std::string& v);
  json_writer& value(const char* v);
  json_writer& value(double v);
  json_writer& value(long v);
  json_writer& value(int v);
  json_writer& value(bool v);

  /// Convenience: key + scalar value.
  template <typename T>
  json_writer& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  [[nodiscard]] std::string str() const { return out_; }

private:
  void separator();
  void append_quoted(const std::string& v);
  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

} // namespace transtore
