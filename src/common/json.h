// Minimal JSON support shared across the library:
//
//  * json_writer -- streaming writer (objects, arrays, strings, numbers)
//    with correct escaping. Used by the flow-result serializer
//    (core/report.h), the staged-API serializers (api/pipeline.h,
//    api/serialize.h), and the bench harnesses.
//  * json_value  -- a parsed document tree with a recursive-descent reader,
//    the counterpart that lets schedules, chips, and pipeline stage values
//    cross a process boundary (api/serialize.h) and lets the service front
//    end (`transtore_cli serve`) read line-delimited requests.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace transtore {

class json_writer {
public:
  json_writer& begin_object();
  json_writer& end_object();
  json_writer& begin_array(const std::string& key = {});
  json_writer& end_array();
  json_writer& key(const std::string& name);
  json_writer& value(const std::string& v);
  json_writer& value(const char* v);
  json_writer& value(double v);
  json_writer& value(long v);
  json_writer& value(int v);
  json_writer& value(bool v);
  json_writer& value_null();

  /// Shortest-round-trip double rendering (std::to_chars): parsing the
  /// emitted text recovers the exact bit pattern, so serialize -> parse ->
  /// serialize is byte-identical. The plain value(double) keeps the
  /// human-oriented %.12g rendering used by reports and bench JSON.
  json_writer& value_exact(double v);

  /// Appends `json` verbatim (after the separator bookkeeping). The caller
  /// guarantees it is one complete, valid JSON value -- used to embed an
  /// already-serialized document without reparsing it.
  json_writer& value_raw(const std::string& json);

  /// Convenience: key + scalar value.
  template <typename T>
  json_writer& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }
  json_writer& field_exact(const std::string& name, double v) {
    key(name);
    return value_exact(v);
  }

  [[nodiscard]] std::string str() const { return out_; }

private:
  void separator();
  void append_quoted(const std::string& v);
  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

/// One parsed JSON value (the reader counterpart of json_writer). Objects
/// keep their members in document order; numbers keep their source text so
/// re-emitting a parsed value is byte-faithful.
class json_value {
public:
  enum class kind { null, boolean, number, string, array, object };

  /// Parses one complete JSON document (trailing whitespace allowed).
  /// Throws invalid_input_error with a byte offset on malformed input.
  [[nodiscard]] static json_value parse(const std::string& text);

  json_value() = default;

  [[nodiscard]] kind type() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == kind::null; }
  [[nodiscard]] bool is_bool() const { return kind_ == kind::boolean; }
  [[nodiscard]] bool is_number() const { return kind_ == kind::number; }
  [[nodiscard]] bool is_string() const { return kind_ == kind::string; }
  [[nodiscard]] bool is_array() const { return kind_ == kind::array; }
  [[nodiscard]] bool is_object() const { return kind_ == kind::object; }

  /// Scalar accessors; throw invalid_input_error on a kind mismatch (and,
  /// for as_long/as_int, on non-integral or out-of-range numbers).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] long as_long() const;
  [[nodiscard]] int as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// The number's source text (e.g. for byte-faithful re-emission).
  [[nodiscard]] const std::string& number_text() const;

  /// Array access.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const json_value& operator[](std::size_t index) const;
  [[nodiscard]] const std::vector<json_value>& elements() const;

  /// Object access. find() returns nullptr when the key is absent; at()
  /// throws invalid_input_error instead.
  [[nodiscard]] const json_value* find(const std::string& key) const;
  [[nodiscard]] const json_value& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const {
    return find(key) != nullptr;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, json_value>>&
  members() const;

private:
  kind kind_ = kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string text_; // string payload, or a number's source text
  std::vector<json_value> elements_;
  std::vector<std::pair<std::string, json_value>> members_;
  friend class json_parser;
};

/// Re-emit a parsed value through a writer (numbers byte-faithful via their
/// source text). `w` must be positioned where a value is expected.
void write_value(json_writer& w, const json_value& v);

} // namespace transtore
