// Minimal leveled logging to stderr.
//
// The library is quiet by default (level::warn); solvers and benches raise
// the level explicitly when the caller asks for progress output. No global
// mutable state other than the process-wide log level, which is an explicit,
// documented knob.
#pragma once

#include <sstream>
#include <string>

namespace transtore {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Process-wide minimum level that is actually emitted.
log_level global_log_level();
void set_global_log_level(log_level level);

/// Emit one line at `level` (no-op if below the global level).
void log_line(log_level level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& out, const T& value, const Rest&... rest) {
  out << value;
  append_all(out, rest...);
}
} // namespace detail

/// Convenience: log_at(log_level::info, "solved ", n, " nodes").
template <typename... Parts>
void log_at(log_level level, const Parts&... parts) {
  if (level < global_log_level()) return;
  std::ostringstream out;
  detail::append_all(out, parts...);
  log_line(level, out.str());
}

} // namespace transtore
