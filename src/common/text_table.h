// Aligned plain-text tables for bench output (Table 2 style).
#pragma once

#include <string>
#include <vector>

namespace transtore {

/// Collects rows of cells and renders them with aligned columns.
class text_table {
public:
  /// The first added row is treated as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with single-space-padded columns and a rule under the header.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
  std::vector<std::vector<std::string>> rows_;
};

} // namespace transtore
