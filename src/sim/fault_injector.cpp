#include "sim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/error.h"

namespace transtore::sim {
namespace {

/// cache_id owning each transfer index, or -1.
std::vector<int> cache_of_transfer(const sched::schedule& s,
                                   const arch::routing_workload& workload) {
  std::vector<int> cache(s.transfers.size(), -1);
  for (const arch::cache_request& cr : workload.caches) {
    check(cr.transfer_index >= 0 &&
              cr.transfer_index < static_cast<int>(cache.size()),
          "fault_injector: cache transfer index out of range");
    cache[static_cast<std::size_t>(cr.transfer_index)] = cr.id;
  }
  return cache;
}

std::vector<bool> failed_device_map(const arch::fault_set& faults,
                                    int device_count) {
  std::vector<bool> failed(static_cast<std::size_t>(device_count), false);
  for (int d : faults.devices)
    if (d >= 0 && d < device_count) failed[static_cast<std::size_t>(d)] = true;
  return failed;
}

} // namespace

checkpoint take_checkpoint(const sched::schedule& s, const arch::chip& chip,
                           const arch::routing_workload& workload,
                           const arch::fault_set& faults, int fault_time) {
  require(fault_time >= 0, "take_checkpoint: fault time must be >= 0");
  checkpoint cp;
  cp.faults = faults;
  cp.faults.normalize();
  cp.fault_time = fault_time;
  for (const sched::scheduled_op& so : s.ops) {
    if (so.end <= fault_time)
      cp.completed.push_back(so.op);
    else if (so.start < fault_time)
      cp.in_flight.push_back(so.op);
  }
  const std::vector<int> cache_id = cache_of_transfer(s, workload);
  for (std::size_t i = 0; i < s.transfers.size(); ++i) {
    const sched::crossing_state state =
        sched::classify_crossing(s, s.transfers[i], fault_time);
    if (state == sched::crossing_state::internal) continue;
    fluid_position fp;
    fp.transfer_index = static_cast<int>(i);
    fp.state = state;
    if (state == sched::crossing_state::stored) {
      const int c = cache_id[i];
      check(c >= 0 && c < static_cast<int>(chip.caches.size()),
            "take_checkpoint: stored transfer without cache placement");
      fp.chip_edge = chip.caches[static_cast<std::size_t>(c)].edge;
    }
    cp.fluids.push_back(fp);
  }
  return cp;
}

std::optional<std::string> recovery_blocker(
    const assay::sequencing_graph& graph, const sched::schedule& s,
    const arch::chip& chip, const arch::routing_workload& workload,
    const arch::fault_set& faults, int fault_time) {
  arch::fault_set f = faults;
  f.normalize();
  f.validate(chip.grid(), s.device_count);

  if (const auto blocked = sched::blocking_resource(
          graph, s, fault_time, failed_device_map(f, s.device_count)))
    return blocked;

  if (f.empty()) return std::nullopt;
  const std::vector<bool> banned = arch::banned_storage_map(f, chip.grid());
  const std::vector<int> cache_id = cache_of_transfer(s, workload);
  for (std::size_t i = 0; i < s.transfers.size(); ++i) {
    if (sched::classify_crossing(s, s.transfers[i], fault_time) !=
        sched::crossing_state::stored)
      continue;
    const int c = cache_id[i];
    check(c >= 0 && c < static_cast<int>(chip.caches.size()),
          "recovery_blocker: stored transfer without cache placement");
    const int edge = chip.caches[static_cast<std::size_t>(c)].edge;
    if (banned[static_cast<std::size_t>(edge)])
      return "sample of operation " +
             std::to_string(s.transfers[i].source_op) +
             " is parked on faulted storage segment " + std::to_string(edge);
  }
  return std::nullopt;
}

namespace {

/// First device whose failure at `fault_time` is survivable, preferring
/// devices that still have work after the fault (so recovery actually
/// re-plans); -1 when none is.
int pick_failed_device(const assay::sequencing_graph& graph,
                       const sched::schedule& s, int fault_time) {
  std::vector<bool> has_tail(static_cast<std::size_t>(s.device_count), false);
  for (const sched::scheduled_op& so : s.ops)
    if (so.start >= fault_time)
      has_tail[static_cast<std::size_t>(so.device)] = true;
  std::vector<int> candidates;
  for (int d = 0; d < s.device_count; ++d)
    if (has_tail[static_cast<std::size_t>(d)]) candidates.push_back(d);
  for (int d = 0; d < s.device_count; ++d)
    if (!has_tail[static_cast<std::size_t>(d)]) candidates.push_back(d);
  for (int d : candidates) {
    std::vector<bool> failed(static_cast<std::size_t>(s.device_count), false);
    failed[static_cast<std::size_t>(d)] = true;
    if (!sched::blocking_resource(graph, s, fault_time, failed)) return d;
  }
  return -1;
}

/// First segment that can fail survivably at `fault_time`: a cache segment
/// no sample has departed towards yet, falling back to any segment without
/// such a cache. Segments can host several cache placements, so the whole
/// edge must be clean, not just one placement. Returns -1 when every
/// segment is (conservatively) occupied.
int pick_failed_storage(const sched::schedule& s, const arch::chip& chip,
                        const arch::routing_workload& workload,
                        int fault_time) {
  std::vector<bool> unsafe(static_cast<std::size_t>(chip.grid().edge_count()),
                           false);
  for (const arch::cache_placement& cp : chip.caches) {
    const arch::cache_request& cache =
        workload.caches[static_cast<std::size_t>(cp.cache_id)];
    if (workload.tasks[static_cast<std::size_t>(cache.store_task)]
            .window.begin < fault_time)
      unsafe[static_cast<std::size_t>(cp.edge)] = true;
  }
  for (const arch::cache_placement& cp : chip.caches)
    if (!unsafe[static_cast<std::size_t>(cp.edge)]) return cp.edge;
  for (int e = 0; e < chip.grid().edge_count(); ++e)
    if (!unsafe[static_cast<std::size_t>(e)]) return e;
  return -1;
}

} // namespace

std::optional<fault_scenario> choose_fault_scenario(
    const assay::sequencing_graph& graph, const sched::schedule& s,
    const arch::chip& chip, const arch::routing_workload& workload,
    double fraction) {
  require(fraction >= 0.0 && fraction <= 1.0,
          "choose_fault_scenario: fraction must be in [0, 1]");
  const int target = std::max(
      0, static_cast<int>(std::floor(s.makespan() * fraction)));

  // Candidate fault times: the target first, then every operation boundary
  // by increasing distance from it. At a busy midpoint every device may
  // have an operation in flight (an unsurvivable failure), while one step
  // past a boundary some device is idle -- so a nearby time usually admits
  // a device fault when the exact target does not.
  std::vector<int> times = {target};
  for (const sched::scheduled_op& so : s.ops) {
    times.push_back(so.start);
    times.push_back(so.end);
  }
  std::sort(times.begin(), times.end(), [target](int a, int b) {
    const int da = std::abs(a - target), db = std::abs(b - target);
    return da != db ? da < db : a < b;
  });
  times.erase(std::unique(times.begin(), times.end()), times.end());

  const bool want_device = s.device_count > 1;
  auto build = [&](int fault_time, bool with_device)
      -> std::optional<fault_scenario> {
    fault_scenario scenario;
    scenario.fault_time = fault_time;
    if (with_device) {
      const int d = pick_failed_device(graph, s, fault_time);
      if (d < 0) return std::nullopt;
      scenario.faults.devices = {d};
    }
    const int segment = pick_failed_storage(s, chip, workload, fault_time);
    if (segment >= 0) scenario.faults.storage = {segment};
    if (scenario.faults.empty()) return std::nullopt;
    if (recovery_blocker(graph, s, chip, workload, scenario.faults,
                         scenario.fault_time))
      return std::nullopt;
    return scenario;
  };

  if (want_device)
    for (int t : times)
      if (auto scenario = build(t, true)) return scenario;
  // Single-device designs -- and designs where no device failure is ever
  // survivable -- degrade to a storage-only fault at the target time.
  for (int t : times)
    if (auto scenario = build(t, false)) return scenario;
  return std::nullopt;
}

} // namespace transtore::sim
