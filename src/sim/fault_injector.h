// Fault injection against a running design (tentpole of the robustness
// layer; fault model in arch/fault.h).
//
// take_checkpoint() freezes the execution state of a synthesized design at
// a chosen time step: which operations have completed, which are mid-mix,
// and where every crossing fluid physically is (still in its producer's
// mixer, parked in a channel segment, or already delivered). The
// checkpoint is what api::recover re-plans from, and what crosses a
// process boundary when recovery resumes elsewhere.
//
// choose_fault_scenario() picks a deterministic, survivable fault for a
// design -- one failed device (when the design has more than one) plus one
// failed storage segment -- at a fraction of the makespan. It is the
// driver behind `--fault auto` / the serve `recover` op's "auto" mode and
// the acceptance tests.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/chip.h"
#include "arch/fault.h"
#include "arch/workload.h"
#include "assay/sequencing_graph.h"
#include "sched/splice.h"

namespace transtore::sim {

/// Where one crossing fluid is at the fault time.
struct fluid_position {
  int transfer_index = -1; // into schedule::transfers
  sched::crossing_state state = sched::crossing_state::pending;
  int chip_edge = -1;      // storage segment holding the sample (stored only)
};

/// Frozen execution state at `fault_time`.
struct checkpoint {
  arch::fault_set faults;
  int fault_time = 0;
  std::vector<int> completed; // ops with end <= fault_time
  std::vector<int> in_flight; // ops with start < fault_time < end
  std::vector<fluid_position> fluids; // crossing transfers only
};

/// Freeze the execution state of (schedule, chip) at `fault_time` with
/// `faults` injected.
[[nodiscard]] checkpoint take_checkpoint(const sched::schedule& s,
                                         const arch::chip& chip,
                                         const arch::routing_workload& workload,
                                         const arch::fault_set& faults,
                                         int fault_time);

/// Combined fatal-condition check: the schedule-level conditions of
/// sched::blocking_resource plus the chip-level one (a sample parked on a
/// faulted storage segment). Returns a description naming the blocking
/// resource, or nullopt when recovery can proceed.
[[nodiscard]] std::optional<std::string> recovery_blocker(
    const assay::sequencing_graph& graph, const sched::schedule& s,
    const arch::chip& chip, const arch::routing_workload& workload,
    const arch::fault_set& faults, int fault_time);

/// A concrete injectable fault scenario.
struct fault_scenario {
  arch::fault_set faults;
  int fault_time = 0;
};

/// Deterministically pick a survivable scenario at ~`fraction` of the
/// makespan: the first device whose failure is recoverable (skipped
/// entirely for single-device designs, where any device failure is fatal)
/// plus the first storage segment nothing has departed towards yet.
/// Returns nullopt when no resource can be failed survivably.
[[nodiscard]] std::optional<fault_scenario> choose_fault_scenario(
    const assay::sequencing_graph& graph, const sched::schedule& s,
    const arch::chip& chip, const arch::routing_workload& workload,
    double fraction);

} // namespace transtore::sim
