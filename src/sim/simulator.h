// Chip execution simulator: an independent replay of a synthesized design.
//
// The simulator re-derives fluid movements from first principles -- tokens
// are created at producer operations, travel along the routed paths, sit in
// their storage segments, and must be present in the consuming device when
// it starts -- and cross-checks every step against the schedule and the
// chip. It is deliberately separate from the constructive code paths so
// that a bug in the builder/router cannot hide itself.
//
// It also renders timestamped snapshots of the running chip (paper
// Fig. 11) and collects channel-utilization statistics.
#pragma once

#include <string>

#include "arch/chip.h"
#include "assay/sequencing_graph.h"
#include "sched/schedule.h"

namespace transtore::sim {

struct sim_stats {
  int makespan = 0;
  int operations = 0;
  int transport_legs = 0;
  int cached_samples = 0;
  int max_active_segments = 0;   // peak of (path + held) segments
  double mean_active_segments = 0.0;
  long device_busy_time = 0;     // total device-seconds executing
  double device_utilization = 0.0;
};

/// Verify a synthesized design end to end and collect statistics.
/// Throws internal_error on any inconsistency between the schedule, the
/// workload, and the chip.
[[nodiscard]] sim_stats simulate(const assay::sequencing_graph& graph,
                                 const sched::schedule& s,
                                 const arch::routing_workload& workload,
                                 const arch::chip& chip);

/// Human-readable snapshot at time t: the ASCII chip plus the running
/// operations, in-flight transports, and held samples.
[[nodiscard]] std::string snapshot(const assay::sequencing_graph& graph,
                                   const sched::schedule& s,
                                   const arch::routing_workload& workload,
                                   const arch::chip& chip, int t);

} // namespace transtore::sim
