#include "sim/simulator.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace transtore::sim {
namespace {

/// Location of a fluid token (one per sequencing-graph edge).
enum class token_state { unborn, in_producer, in_transit, in_segment, in_consumer, consumed };

struct token {
  int transfer_index = -1;
  token_state state = token_state::unborn;
  bool state_visited_segment = false; // store leg already arrived
};

} // namespace

sim_stats simulate(const assay::sequencing_graph& graph,
                   const sched::schedule& s,
                   const arch::routing_workload& workload,
                   const arch::chip& chip) {
  // Structural validation first (throws on violations).
  s.validate(graph);
  chip.validate(workload);

  sim_stats stats;
  stats.makespan = s.makespan();
  stats.operations = graph.operation_count();
  stats.transport_legs = static_cast<int>(s.legs.size());
  stats.cached_samples = s.store_count();

  // Token replay: walk events in time order and enforce the fluid life
  // cycle per transfer.
  // Event order at equal times: producer-end (0) before leg-arrival (1)
  // before leg-departure (2) before consumer-start (3). Arrivals precede
  // departures so that a zero-length hold (store arrival and fetch
  // departure at the same instant) replays correctly.
  struct event {
    int time;
    int order;
    int transfer;
  };
  constexpr int ev_produced = 0;
  constexpr int ev_arrival = 1;
  constexpr int ev_departure = 2;
  constexpr int ev_consume = 3;
  std::vector<event> events;
  for (std::size_t t = 0; t < s.transfers.size(); ++t) {
    const sched::edge_transfer& tr = s.transfers[t];
    const auto& src = s.ops[static_cast<std::size_t>(tr.source_op)];
    const auto& dst = s.ops[static_cast<std::size_t>(tr.target_op)];
    events.push_back({src.end, ev_produced, static_cast<int>(t)});
    if (tr.kind == sched::transfer_kind::direct) {
      const auto& leg = s.legs[static_cast<std::size_t>(tr.direct_leg)];
      events.push_back({leg.window.begin, ev_departure, static_cast<int>(t)});
      events.push_back({leg.window.end, ev_arrival, static_cast<int>(t)});
    } else if (tr.kind == sched::transfer_kind::cached) {
      const auto& store = s.legs[static_cast<std::size_t>(tr.store_leg)];
      const auto& fetch = s.legs[static_cast<std::size_t>(tr.fetch_leg)];
      events.push_back({store.window.begin, ev_departure,
                        static_cast<int>(t)});
      events.push_back({store.window.end, ev_arrival, static_cast<int>(t)});
      events.push_back({fetch.window.begin, ev_departure,
                        static_cast<int>(t)});
      events.push_back({fetch.window.end, ev_arrival, static_cast<int>(t)});
    }
    events.push_back({dst.start, ev_consume, static_cast<int>(t)});
  }
  std::sort(events.begin(), events.end(), [](const event& a, const event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  });

  std::vector<token> tokens(s.transfers.size());
  for (std::size_t t = 0; t < tokens.size(); ++t)
    tokens[t].transfer_index = static_cast<int>(t);

  for (const event& ev : events) {
    token& tok = tokens[static_cast<std::size_t>(ev.transfer)];
    const sched::edge_transfer& tr =
        s.transfers[static_cast<std::size_t>(ev.transfer)];
    switch (ev.order) {
      case 0: // producer finished: token exists in producer device
        check(tok.state == token_state::unborn,
              "simulate: token produced twice");
        tok.state = token_state::in_producer;
        break;
      case 2: // a leg departs: token must be at rest at its origin
        check(tok.state == token_state::in_producer ||
                  tok.state == token_state::in_segment,
              "simulate: leg departs without its fluid at the origin");
        tok.state = token_state::in_transit;
        break;
      case 1: // a leg arrives
        check(tok.state == token_state::in_transit,
              "simulate: leg arrives without a fluid in transit");
        if (tr.kind == sched::transfer_kind::cached &&
            !tok.state_visited_segment) {
          tok.state = token_state::in_segment;
          tok.state_visited_segment = true;
        } else {
          tok.state = token_state::in_consumer;
        }
        break;
      case 3: // consumer starts: token must be present (or handoff)
        if (tr.kind == sched::transfer_kind::handoff) {
          check(tok.state == token_state::in_producer,
                "simulate: handoff fluid left the device");
        } else {
          check(tok.state == token_state::in_consumer,
                "simulate: operation starts before its operand arrived");
        }
        tok.state = token_state::consumed;
        break;
      default:
        break;
    }
  }

  // Channel utilization sampled at transport-time granularity.
  const int step = std::max(1, s.transport_time);
  long active_sum = 0;
  int samples = 0;
  for (int t = 0; t <= stats.makespan; t += step) {
    int active = 0;
    std::vector<bool> seen(static_cast<std::size_t>(chip.grid().edge_count()),
                           false);
    for (const auto& p : chip.paths)
      if (p.window.contains(t))
        for (int e : p.edges)
          if (!seen[static_cast<std::size_t>(e)]) {
            seen[static_cast<std::size_t>(e)] = true;
            ++active;
          }
    for (const auto& cp : chip.caches)
      if (cp.hold.contains(t) && !seen[static_cast<std::size_t>(cp.edge)]) {
        seen[static_cast<std::size_t>(cp.edge)] = true;
        ++active;
      }
    active_sum += active;
    stats.max_active_segments = std::max(stats.max_active_segments, active);
    ++samples;
  }
  stats.mean_active_segments =
      samples > 0 ? static_cast<double>(active_sum) / samples : 0.0;

  for (const auto& op : s.ops) stats.device_busy_time += op.end - op.start;
  stats.device_utilization =
      stats.makespan > 0
          ? static_cast<double>(stats.device_busy_time) /
                (static_cast<double>(stats.makespan) * s.device_count)
          : 0.0;
  return stats;
}

std::string snapshot(const assay::sequencing_graph& graph,
                     const sched::schedule& s,
                     const arch::routing_workload& workload,
                     const arch::chip& chip, int t) {
  std::ostringstream out;
  out << chip.render_ascii(t);
  out << "executing:";
  bool any = false;
  for (const auto& op : s.ops)
    if (op.start <= t && t < op.end) {
      out << " " << graph.at(op.op).name << "@d" << op.device + 1;
      any = true;
    }
  if (!any) out << " (none)";
  out << "\nin transit:";
  any = false;
  for (const auto& p : chip.paths)
    if (p.window.contains(t)) {
      const auto& task = workload.tasks[static_cast<std::size_t>(p.task_id)];
      const auto& tr =
          s.transfers[static_cast<std::size_t>(task.transfer_index)];
      out << " " << graph.at(tr.source_op).name << "->"
          << graph.at(tr.target_op).name;
      any = true;
    }
  if (!any) out << " (none)";
  out << "\nheld samples:";
  any = false;
  for (const auto& cp : chip.caches)
    if (cp.hold.contains(t)) {
      const auto& cr = workload.caches[static_cast<std::size_t>(cp.cache_id)];
      const auto& tr =
          s.transfers[static_cast<std::size_t>(cr.transfer_index)];
      out << " " << graph.at(tr.source_op).name << "(for "
          << graph.at(tr.target_op).name << ")";
      any = true;
    }
  if (!any) out << " (none)";
  out << "\n";
  return out.str();
}

} // namespace transtore::sim
