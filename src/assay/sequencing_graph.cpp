#include "assay/sequencing_graph.h"

#include <algorithm>
#include <sstream>

namespace transtore::assay {

int sequencing_graph::add_operation(std::string name, int duration_seconds) {
  require(duration_seconds > 0, "sequencing_graph: duration must be positive");
  operation op;
  op.name = name.empty() ? "o" + std::to_string(ops_.size() + 1)
                         : std::move(name);
  op.duration = duration_seconds;
  ops_.push_back(std::move(op));
  children_.emplace_back();
  return static_cast<int>(ops_.size()) - 1;
}

void sequencing_graph::add_dependency(int parent, int child) {
  require(parent >= 0 && parent < operation_count(),
          "sequencing_graph: unknown parent id");
  require(child >= 0 && child < operation_count(),
          "sequencing_graph: unknown child id");
  require(parent != child, "sequencing_graph: self dependency");
  auto& plist = ops_[static_cast<std::size_t>(child)].parents;
  require(std::find(plist.begin(), plist.end(), parent) == plist.end(),
          "sequencing_graph: duplicate dependency");
  require(static_cast<int>(plist.size()) < max_inputs,
          "sequencing_graph: operation already has two inputs");
  require(static_cast<int>(children_[static_cast<std::size_t>(parent)].size()) <
              max_children,
          "sequencing_graph: operation output already feeds two consumers");
  plist.push_back(parent);
  children_[static_cast<std::size_t>(parent)].push_back(child);
  ++edge_count_;
}

const operation& sequencing_graph::at(int id) const {
  require(id >= 0 && id < operation_count(), "sequencing_graph: unknown id");
  return ops_[static_cast<std::size_t>(id)];
}

const std::vector<int>& sequencing_graph::children(int id) const {
  require(id >= 0 && id < operation_count(), "sequencing_graph: unknown id");
  return children_[static_cast<std::size_t>(id)];
}

std::vector<std::pair<int, int>> sequencing_graph::edges() const {
  std::vector<std::pair<int, int>> result;
  result.reserve(static_cast<std::size_t>(edge_count_));
  for (int child = 0; child < operation_count(); ++child)
    for (int parent : at(child).parents) result.emplace_back(parent, child);
  std::sort(result.begin(), result.end());
  return result;
}

void sequencing_graph::validate() const {
  require(operation_count() > 0, "sequencing_graph: empty graph");
  (void)topological_order(); // throws on cycles
}

std::vector<int> sequencing_graph::topological_order() const {
  const int n = operation_count();
  std::vector<int> indegree(n, 0);
  for (int i = 0; i < n; ++i)
    indegree[i] = static_cast<int>(at(i).parents.size());
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<int> ready;
  for (int i = 0; i < n; ++i)
    if (indegree[i] == 0) ready.push_back(i);
  while (!ready.empty()) {
    // Pop the smallest id for deterministic output.
    const auto it = std::min_element(ready.begin(), ready.end());
    const int node = *it;
    ready.erase(it);
    order.push_back(node);
    for (int child : children(node))
      if (--indegree[child] == 0) ready.push_back(child);
  }
  require(static_cast<int>(order.size()) == n,
          "sequencing_graph: dependency cycle detected");
  return order;
}

int sequencing_graph::critical_path_duration() const {
  const std::vector<int> order = topological_order();
  std::vector<int> finish(ops_.size(), 0);
  int best = 0;
  for (int id : order) {
    int start = 0;
    for (int parent : at(id).parents)
      start = std::max(start, finish[static_cast<std::size_t>(parent)]);
    finish[static_cast<std::size_t>(id)] = start + at(id).duration;
    best = std::max(best, finish[static_cast<std::size_t>(id)]);
  }
  return best;
}

int sequencing_graph::total_duration() const {
  int total = 0;
  for (const auto& op : ops_) total += op.duration;
  return total;
}

bool sequencing_graph::reaches(int ancestor, int descendant) const {
  require(ancestor >= 0 && ancestor < operation_count(),
          "sequencing_graph: unknown id");
  require(descendant >= 0 && descendant < operation_count(),
          "sequencing_graph: unknown id");
  if (ancestor == descendant) return true;
  std::vector<int> stack{ancestor};
  std::vector<bool> seen(ops_.size(), false);
  seen[static_cast<std::size_t>(ancestor)] = true;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    for (int child : children(node)) {
      if (child == descendant) return true;
      if (!seen[static_cast<std::size_t>(child)]) {
        seen[static_cast<std::size_t>(child)] = true;
        stack.push_back(child);
      }
    }
  }
  return false;
}

std::string sequencing_graph::to_dot() const {
  std::ostringstream out;
  out << "digraph \"" << name_ << "\" {\n";
  for (int i = 0; i < operation_count(); ++i)
    out << "  n" << i << " [label=\"" << at(i).name << " (" << at(i).duration
        << "s)\"];\n";
  for (const auto& [parent, child] : edges())
    out << "  n" << parent << " -> n" << child << ";\n";
  out << "}\n";
  return out.str();
}

} // namespace transtore::assay
