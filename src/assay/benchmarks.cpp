#include "assay/benchmarks.h"

#include <algorithm>

#include "common/prng.h"

namespace transtore::assay {

sequencing_graph make_pcr() {
  sequencing_graph g("PCR");
  // Level 1: four mixes of the eight input samples.
  const int o1 = g.add_operation("o1", 30);
  const int o2 = g.add_operation("o2", 30);
  const int o3 = g.add_operation("o3", 30);
  const int o4 = g.add_operation("o4", 30);
  // Level 2 and the root, exactly as in Fig. 2(a).
  const int o5 = g.add_operation("o5", 30);
  const int o6 = g.add_operation("o6", 30);
  const int o7 = g.add_operation("o7", 30);
  g.add_dependency(o1, o5);
  g.add_dependency(o2, o5);
  g.add_dependency(o3, o6);
  g.add_dependency(o4, o6);
  g.add_dependency(o5, o7);
  g.add_dependency(o6, o7);
  return g;
}

sequencing_graph make_ivd() {
  // Four sample/reagent chains whose results merge pairwise into a
  // differential measurement, plus a final detection mix: a connected
  // 12-operation DAG with fan-in like the published IVD protocols.
  sequencing_graph g("IVD");
  std::vector<int> dilutes;
  for (int chain = 0; chain < 4; ++chain) {
    const std::string s = std::to_string(chain + 1);
    const int mix = g.add_operation("mix" + s, 30);    // sample + reagent
    const int dilute = g.add_operation("dil" + s, 30); // + buffer
    g.add_dependency(mix, dilute);
    dilutes.push_back(dilute);
  }
  const int c1 = g.add_operation("cmb1", 30);
  g.add_dependency(dilutes[0], c1);
  g.add_dependency(dilutes[1], c1);
  const int c2 = g.add_operation("cmb2", 30);
  g.add_dependency(dilutes[2], c2);
  g.add_dependency(dilutes[3], c2);
  const int diff = g.add_operation("diff", 30);
  g.add_dependency(c1, diff);
  g.add_dependency(c2, diff);
  const int detect = g.add_operation("det", 30); // + detection dye
  g.add_dependency(diff, detect);
  check(g.operation_count() == 12, "IVD reconstruction must have 12 ops");
  return g;
}

sequencing_graph make_cpa() {
  sequencing_graph g("CPA");
  // Exponential serial-dilution tree: levels of size 1, 2, 4, 8, 16.
  // Node k of level l mixes the output of node k/2 of level l-1 with buffer.
  std::vector<std::vector<int>> levels;
  levels.push_back({g.add_operation("d0", 30)});
  for (int level = 1; level <= 4; ++level) {
    std::vector<int> current;
    const int width = 1 << level;
    for (int k = 0; k < width; ++k) {
      const int id = g.add_operation(
          "d" + std::to_string(level) + "_" + std::to_string(k), 30);
      g.add_dependency(levels.back()[static_cast<std::size_t>(k / 2)], id);
      current.push_back(id);
    }
    levels.push_back(std::move(current));
  }
  // Eight odd leaves each feed a three-operation replicate chain:
  // leaf -> rep1, leaf -> rep2, rep2 -> rep3 (output volume limits an
  // operation to two direct consumers).
  const std::vector<int>& leaves = levels.back();
  for (int k = 1; k < 16; k += 2) {
    const int leaf = leaves[static_cast<std::size_t>(k)];
    const std::string s = std::to_string(k);
    const int rep1 = g.add_operation("r" + s + "a", 30);
    const int rep2 = g.add_operation("r" + s + "b", 30);
    const int rep3 = g.add_operation("r" + s + "c", 30);
    g.add_dependency(leaf, rep1);
    g.add_dependency(leaf, rep2);
    g.add_dependency(rep2, rep3);
  }
  check(g.operation_count() == 55, "CPA reconstruction must have 55 ops");
  return g;
}

sequencing_graph make_fig4_example() {
  sequencing_graph g("Fig4");
  const int o1 = g.add_operation("o1", 30);
  const int o2 = g.add_operation("o2", 30);
  const int o3 = g.add_operation("o3", 30);
  const int o4 = g.add_operation("o4", 30);
  const int o5 = g.add_operation("o5", 30);
  g.add_dependency(o1, o4);
  g.add_dependency(o2, o4);
  g.add_dependency(o2, o5);
  g.add_dependency(o3, o5);
  return g;
}

sequencing_graph make_random_assay(int operations, std::uint64_t seed,
                                   int duration,
                                   double two_parent_fraction) {
  require(operations > 0, "make_random_assay: operations must be positive");
  prng rng(seed);
  sequencing_graph g("RA" + std::to_string(operations));
  std::vector<int> child_slots; // remaining output capacity per op

  for (int i = 0; i < operations; ++i) {
    const int id = g.add_operation("o" + std::to_string(i + 1), duration);
    child_slots.push_back(sequencing_graph::max_children);
    if (i == 0) continue;

    // Candidate producers: earlier ops with spare output volume, biased
    // toward recent ops so the DAG has realistic depth.
    auto pick_parent = [&](int exclude) -> int {
      std::vector<int> pool;
      const int window = std::min(i, 12);
      for (int back = 1; back <= window; ++back) {
        const int cand = i - back;
        if (cand != exclude && child_slots[static_cast<std::size_t>(cand)] > 0)
          pool.push_back(cand);
      }
      if (pool.empty()) {
        for (int cand = 0; cand < i; ++cand)
          if (cand != exclude &&
              child_slots[static_cast<std::size_t>(cand)] > 0)
            pool.push_back(cand);
      }
      if (pool.empty()) return -1;
      return pool[rng.index(pool.size())];
    };

    const int first = pick_parent(-1);
    if (first >= 0) {
      g.add_dependency(first, id);
      --child_slots[static_cast<std::size_t>(first)];
    }
    if (first >= 0 && rng.bernoulli(two_parent_fraction)) {
      const int second = pick_parent(first);
      if (second >= 0) {
        g.add_dependency(second, id);
        --child_slots[static_cast<std::size_t>(second)];
      }
    }
  }
  return g;
}

sequencing_graph make_benchmark(const std::string& name) {
  if (name == "PCR") return make_pcr();
  if (name == "IVD") return make_ivd();
  if (name == "CPA") return make_cpa();
  if (name == "RA30") return make_ra30();
  if (name == "RA70") return make_ra70();
  if (name == "RA100") return make_ra100();
  throw invalid_input_error("make_benchmark: unknown benchmark '" + name +
                            "'");
}

} // namespace transtore::assay
