// Benchmark assays used in the paper's evaluation (Table 2).
//
// PCR is fully specified in the paper (Fig. 2(a)). CPA and IVD are standard
// bioassay benchmarks from the biochip synthesis literature; the paper only
// reports their operation counts (55 and 12), so we reconstruct graphs of
// exactly those sizes with the canonical structure of each protocol (see
// DESIGN.md, substitutions). RA30/RA70/RA100 are random assays; the paper's
// instances are not published, so we generate seeded layered DAGs with the
// same operation counts.
#pragma once

#include <array>
#include <cstdint>

#include "assay/sequencing_graph.h"

namespace transtore::assay {

/// Polymerase chain reaction, mixing stage (paper Fig. 2(a)):
/// 8 samples, 7 mixing operations in a binary tree.
[[nodiscard]] sequencing_graph make_pcr();

/// In-vitro diagnostics: four sample/reagent chains of three operations
/// each (mix, dilute, detect-prep), 12 operations total.
[[nodiscard]] sequencing_graph make_ivd();

/// Colorimetric protein assay (Bradford): an exponential serial-dilution
/// tree of 31 mixing operations (levels 1+2+4+8+16) whose eight odd leaves
/// each feed three replicate reagent mixes -- 55 operations total.
[[nodiscard]] sequencing_graph make_cpa();

/// The five-operation example of the paper's Fig. 4 (o2 feeds o4 and o5;
/// o3 feeds o5) used to demonstrate storage-aware scheduling.
[[nodiscard]] sequencing_graph make_fig4_example();

/// Seeded random layered DAG with `operations` nodes. Operation durations
/// are `duration` seconds; roughly `two_parent_fraction` of non-root nodes
/// mix two earlier results, the rest mix one earlier result with a fresh
/// reagent. Deterministic in (operations, seed).
[[nodiscard]] sequencing_graph make_random_assay(int operations,
                                                 std::uint64_t seed,
                                                 int duration = 30,
                                                 double two_parent_fraction = 0.45);

/// The paper's random assays with fixed seeds.
[[nodiscard]] inline sequencing_graph make_ra30() {
  return make_random_assay(30, 30);
}
[[nodiscard]] inline sequencing_graph make_ra70() {
  return make_random_assay(70, 70);
}
[[nodiscard]] inline sequencing_graph make_ra100() {
  return make_random_assay(100, 100);
}

/// Fetch any benchmark by its Table 2 name ("PCR", "IVD", "CPA", "RA30",
/// "RA70", "RA100"); throws invalid_input_error for unknown names.
[[nodiscard]] sequencing_graph make_benchmark(const std::string& name);

/// Paper Table 2 resource configuration (device count, square grid edge)
/// per built-in assay, largest first -- the single source of truth shared
/// by the bench harnesses and the CLI's batch mode.
struct benchmark_resources {
  const char* name;
  int devices;
  int grid; // grid is grid x grid
};

[[nodiscard]] inline const std::array<benchmark_resources, 6>&
benchmark_resource_table() {
  static const std::array<benchmark_resources, 6> table = {{
      {"RA100", 4, 5}, {"RA70", 3, 4}, {"CPA", 3, 4},
      {"RA30", 2, 4},  {"IVD", 2, 4},  {"PCR", 1, 4},
  }};
  return table;
}

} // namespace transtore::assay
