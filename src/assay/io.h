// Plain-text serialization of sequencing graphs.
//
// Format (one directive per line, '#' starts a comment):
//
//   assay PCR
//   op o1 30
//   op o2 30
//   dep o1 o2
//
// Operations are referenced by name; names must be unique.
#pragma once

#include <string>

#include "assay/sequencing_graph.h"

namespace transtore::assay {

/// Parses the text format; throws invalid_input_error with a line number on
/// malformed input.
[[nodiscard]] sequencing_graph parse_sequencing_graph(const std::string& text);

/// Renders a graph into the text format (round-trips with the parser).
[[nodiscard]] std::string to_text(const sequencing_graph& graph);

/// Reads a graph from a file. Throws invalid_input_error when the file
/// cannot be opened or parsed.
[[nodiscard]] sequencing_graph load_sequencing_graph(const std::string& path);

} // namespace transtore::assay
