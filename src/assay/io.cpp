#include "assay/io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.h"

namespace transtore::assay {

sequencing_graph parse_sequencing_graph(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  std::string assay_name = "assay";
  sequencing_graph graph(assay_name);
  std::map<std::string, int> ids;
  bool renamed = false;

  auto fail = [&](const std::string& why) {
    throw invalid_input_error("sequencing graph parse error, line " +
                              std::to_string(line_number) + ": " + why);
  };

  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    std::istringstream parts(line);
    std::string directive;
    parts >> directive;
    if (directive == "assay") {
      std::string name;
      parts >> name;
      if (name.empty()) fail("'assay' needs a name");
      if (renamed) fail("duplicate 'assay' directive");
      // Rebuild with the right name; must come before any ops.
      if (graph.operation_count() > 0)
        fail("'assay' directive must precede operations");
      graph = sequencing_graph(name);
      renamed = true;
    } else if (directive == "op") {
      std::string name;
      int duration = 0;
      parts >> name >> duration;
      if (name.empty()) fail("'op' needs a name and a duration");
      if (duration <= 0) fail("operation duration must be positive");
      if (ids.count(name) != 0) fail("duplicate operation name '" + name + "'");
      ids[name] = graph.add_operation(name, duration);
    } else if (directive == "dep") {
      std::string parent, child;
      parts >> parent >> child;
      const auto p = ids.find(parent);
      const auto c = ids.find(child);
      if (p == ids.end()) fail("unknown operation '" + parent + "'");
      if (c == ids.end()) fail("unknown operation '" + child + "'");
      try {
        graph.add_dependency(p->second, c->second);
      } catch (const invalid_input_error& e) {
        fail(e.what());
      }
    } else {
      fail("unknown directive '" + directive + "'");
    }
  }
  if (graph.operation_count() == 0)
    throw invalid_input_error("sequencing graph parse error: no operations");
  graph.validate();
  return graph;
}

std::string to_text(const sequencing_graph& graph) {
  std::ostringstream out;
  out << "assay " << graph.name() << "\n";
  for (int i = 0; i < graph.operation_count(); ++i)
    out << "op " << graph.at(i).name << " " << graph.at(i).duration << "\n";
  for (const auto& [parent, child] : graph.edges())
    out << "dep " << graph.at(parent).name << " " << graph.at(child).name
        << "\n";
  return out.str();
}

sequencing_graph load_sequencing_graph(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open sequencing graph file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_sequencing_graph(buffer.str());
}

} // namespace transtore::assay
