// Sequencing graphs: the bioassay protocol DAGs that drive synthesis.
//
// A node is a (mixing) operation with a fixed duration; an edge (parent ->
// child) says the child consumes the parent's output fluid. Mixers take two
// inputs, so an operation with p parents additionally consumes (2 - p)
// primary reagent/sample inputs loaded from chip inlets. An operation's
// output has enough volume for at most two consumers (paper Fig. 4 shows an
// operation feeding two children).
#pragma once

#include <string>
#include <vector>

#include "common/error.h"

namespace transtore::assay {

/// One operation (node) in the sequencing graph.
struct operation {
  std::string name;
  int duration = 30;        // execution time in seconds
  std::vector<int> parents; // producing operations (size <= max_inputs)
};

/// Directed acyclic graph of operations.
class sequencing_graph {
public:
  static constexpr int max_inputs = 2;   // a mixer joins two fluids
  static constexpr int max_children = 2; // output volume feeds at most two

  explicit sequencing_graph(std::string name = "assay")
      : name_(std::move(name)) {}

  /// Adds an operation; returns its id (dense, 0-based).
  int add_operation(std::string name, int duration_seconds);

  /// Declares that `child` consumes `parent`'s output.
  /// Throws invalid_input_error on unknown ids, duplicate edges, self loops,
  /// or input/output arity violations.
  void add_dependency(int parent, int child);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int operation_count() const {
    return static_cast<int>(ops_.size());
  }
  [[nodiscard]] const operation& at(int id) const;
  [[nodiscard]] const std::vector<int>& children(int id) const;
  [[nodiscard]] int edge_count() const { return edge_count_; }

  /// Primary (reagent/sample) inputs the operation loads from chip inlets.
  [[nodiscard]] int reagent_inputs(int id) const {
    return max_inputs - static_cast<int>(at(id).parents.size());
  }

  /// All (parent, child) pairs in id order.
  [[nodiscard]] std::vector<std::pair<int, int>> edges() const;

  /// Throws invalid_input_error if the graph has a cycle or is empty.
  void validate() const;

  /// Operation ids in a topological order (parents first).
  /// Throws invalid_input_error on cycles.
  [[nodiscard]] std::vector<int> topological_order() const;

  /// Length (in seconds of execution time only) of the longest
  /// dependency chain; a lower bound on any schedule's makespan.
  [[nodiscard]] int critical_path_duration() const;

  /// Sum of all operation durations; the serial lower bound for one device.
  [[nodiscard]] int total_duration() const;

  /// True if `ancestor` can reach `descendant` along edges.
  [[nodiscard]] bool reaches(int ancestor, int descendant) const;

  /// Graphviz rendering for documentation and debugging.
  [[nodiscard]] std::string to_dot() const;

private:
  std::string name_;
  std::vector<operation> ops_;
  std::vector<std::vector<int>> children_;
  int edge_count_ = 0;
};

} // namespace transtore::assay
