// Linear expressions over model variables.
//
// A linear_expr is a sparse sum of (coefficient * variable) terms plus a
// constant offset. Expressions are built with natural operator syntax:
//
//   linear_expr e = 2.0 * x + y - 3.0;
//   e += 0.5 * z;
//
// and handed to model::add_constraint / model::set_objective.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.h"

namespace transtore::milp {

/// Lightweight handle to a model variable. Only valid for the model that
/// created it.
struct variable {
  int index = -1;

  [[nodiscard]] bool valid() const { return index >= 0; }
  friend bool operator==(const variable&, const variable&) = default;
};

/// Sparse linear expression: sum of coeff*var terms plus a constant.
class linear_expr {
public:
  linear_expr() = default;
  /*implicit*/ linear_expr(double constant) : constant_(constant) {}
  /*implicit*/ linear_expr(variable v) { add_term(v, 1.0); }

  /// Adds `coefficient * v`; merges with an existing term for `v`.
  void add_term(variable v, double coefficient) {
    require(v.valid(), "linear_expr: invalid variable handle");
    terms_[v.index] += coefficient;
  }

  void add_constant(double value) { constant_ += value; }

  [[nodiscard]] double constant() const { return constant_; }

  /// Terms in ascending variable-index order. Zero coefficients may appear
  /// if terms cancelled; consumers should skip them.
  [[nodiscard]] const std::map<int, double>& terms() const { return terms_; }

  [[nodiscard]] bool empty() const { return terms_.empty(); }

  linear_expr& operator+=(const linear_expr& other) {
    for (const auto& [index, coeff] : other.terms_) terms_[index] += coeff;
    constant_ += other.constant_;
    return *this;
  }

  linear_expr& operator-=(const linear_expr& other) {
    for (const auto& [index, coeff] : other.terms_) terms_[index] -= coeff;
    constant_ -= other.constant_;
    return *this;
  }

  linear_expr& operator*=(double factor) {
    for (auto& [index, coeff] : terms_) coeff *= factor;
    constant_ *= factor;
    return *this;
  }

private:
  std::map<int, double> terms_;
  double constant_ = 0.0;
};

inline linear_expr operator+(linear_expr a, const linear_expr& b) {
  a += b;
  return a;
}

inline linear_expr operator-(linear_expr a, const linear_expr& b) {
  a -= b;
  return a;
}

inline linear_expr operator*(double factor, linear_expr e) {
  e *= factor;
  return e;
}

inline linear_expr operator*(linear_expr e, double factor) {
  e *= factor;
  return e;
}

inline linear_expr operator-(linear_expr e) {
  e *= -1.0;
  return e;
}

} // namespace transtore::milp
