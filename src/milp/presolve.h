// Root presolve for the MILP solver.
//
// Iterated reductions applied to the computational-form LP (lp.h) plus
// integrality markers before branch and bound starts:
//
//   * singleton-row elimination -- a one-term row is a variable bound in
//     disguise; the bound is transferred (and rounded for integers) and the
//     row removed;
//   * activity-based bound tightening -- interval arithmetic over each
//     row's residual activity tightens variable bounds (the generalization
//     of the old root `propagate_bounds`), with integer rounding;
//   * coefficient (big-M) strengthening -- on single-sided rows, a binary
//     variable's coefficient and the row bound shrink to what the residual
//     activity actually supports; this is what collapses the paper's
//     `M = horizon` disjunctive and precedence constraints to tight boxes;
//   * redundant-row removal -- rows satisfied by the activity bounds alone
//     are dropped;
//   * variable fixing -- bounds that close to a point pin the variable
//     (the LP then holds it there; columns are never renumbered).
//
// The reductions preserve every integer-feasible point, so the MILP optimum
// is unchanged; the LP relaxation is tightened (integer rounding and
// coefficient strengthening cut fractional points), which is the point.
//
// Postsolve: columns are preserved, so a reduced-space `x` already is the
// full-space assignment (`postsolve_primal` just validates the contract).
// `postsolve_duals` scatters reduced-row duals back to the original row
// indexing; removed rows report dual 0, which is exact for redundant rows
// and leaves `(x, duals)` a valid optimality certificate of the original
// rows under the *presolved* variable bounds (see tests/test_milp.cpp,
// PresolveCertificate).
#pragma once

#include <vector>

#include "milp/lp.h"

namespace transtore::milp {

struct presolve_options {
  /// Maximum fixpoint passes over the rows.
  int max_passes = 12;
  /// Individual reductions (ablation knobs; all on by default).
  bool bound_tightening = true;
  bool singleton_rows = true;
  bool remove_redundant_rows = true;
  bool coefficient_tightening = true;
  double feasibility_tolerance = 1e-7;
  /// Minimum improvement for a bound change to be recorded (churn guard).
  double min_bound_improvement = 1e-9;
  /// Bound magnitude above which tightening results are distrusted and
  /// clamped away (numerical safety for huge big-M arithmetic).
  double huge_bound = 1e15;
};

struct presolve_stats {
  int passes = 0;
  int rows_removed = 0;             // redundant + singleton rows dropped
  int singleton_rows = 0;           // subset of rows_removed
  int bounds_tightened = 0;         // variable-bound improvements applied
  int coefficients_tightened = 0;   // big-M strengthenings applied
  int variables_fixed = 0;          // lower == upper after presolve
};

/// Reduced problem over the SAME column space plus postsolve data. Rows are
/// renumbered (removed rows excluded); columns never are.
struct presolved_problem {
  lp_problem reduced;
  bool infeasible = false;
  presolve_stats stats;

  int original_rows = 0;
  /// reduced row index -> original row index (strictly increasing).
  std::vector<int> row_origin;

  /// Validates that `x` (a reduced-space assignment) is full-space sized.
  /// Columns are preserved by this presolve, so the values pass through
  /// unchanged; the call exists to keep the postsolve contract explicit at
  /// call sites (and to stay correct if column reductions are added later).
  void postsolve_primal(std::vector<double>& x) const;

  /// Maps reduced-row duals to the original row space (removed rows get 0).
  [[nodiscard]] std::vector<double> postsolve_duals(
      const std::vector<double>& reduced_duals) const;
};

/// Run the presolve loop. `is_integer` marks integral columns (size
/// lp.num_vars). The input problem is not modified.
[[nodiscard]] presolved_problem presolve(const lp_problem& lp,
                                         const std::vector<bool>& is_integer,
                                         const presolve_options& options = {});

} // namespace transtore::milp
