// Bounded-variable primal/dual simplex.
//
// The LP engine behind branch and bound. Architecture (see
// src/milp/README.md for the long-form description):
//
//   * primal simplex with a composite phase 1 (basic bound violations are
//     priced with +/-1 costs, no artificial columns) for cold starts and
//     numerical recovery;
//   * dual simplex with a bound-flipping (long-step) two-pass ratio test
//     for warm re-solves after branch-and-bound bound changes, where the
//     previous optimal basis stays dual feasible;
//   * devex reference-weight pricing over a rotating partial-pricing
//     candidate list (Dantzig available for ablations, Bland's rule as the
//     anti-cycling fallback after a run of degenerate steps);
//   * a basis factorization refreshed by periodic refactorization and kept
//     current between refactorizations by product-form (eta) updates
//     (eta-on-LU). Two engines are available behind `basis_engine`: the
//     default sparse LU (Markowitz pivoting with Suhl threshold partial
//     pivoting, O(m + fill) ftran/btran -- see milp/lu.h) and the dense
//     explicit inverse retained for ablation and as the numerical fallback
//     when a factorization comes out singular.
//
// solve() picks the method automatically: a warm-started basis that lost
// primal feasibility (branching) but kept dual feasibility re-solves with
// the dual method; everything else goes through the primal path. All
// tie-breaking is by lowest index and all decisions are seed/time
// independent, so repeated solves are bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stopwatch.h"
#include "milp/lp.h"
#include "milp/lu.h"

namespace transtore::milp {

enum class pricing_rule : unsigned char { dantzig, devex };

/// Basis-inverse representation. sparse_lu is the default; dense keeps the
/// explicit m x m inverse (the seed representation, O(m^2) per solve step
/// and O(m^2) memory -- viable only to ~2500 rows).
enum class basis_engine : unsigned char { dense, sparse_lu };

/// Tunables for one simplex solve.
struct simplex_options {
  long max_iterations = 200000;
  double feasibility_tolerance = 1e-7;
  double optimality_tolerance = 1e-7;
  double pivot_tolerance = 1e-9;
  int refactor_interval = 200;
  int degenerate_switch = 400; // consecutive degenerate steps before Bland
  /// Use the dual simplex on warm starts whose basis is dual feasible but
  /// primal infeasible (the branch-and-bound re-solve pattern). false
  /// reproduces the primal-only seed behaviour for ablations.
  bool allow_dual = true;
  pricing_rule pricing = pricing_rule::devex;
  /// Partial-pricing candidate list size; 0 derives it from the column
  /// count. Ignored under Dantzig/Bland pricing (full scans).
  int partial_pricing_size = 0;
  /// Basis-inverse representation. The dense engine remains the numerical
  /// fallback: a singular sparse LU factorization retries densely before
  /// the slack-basis repair.
  basis_engine engine = basis_engine::sparse_lu;
  /// Markowitz/Suhl tunables of the sparse engine.
  lu_options lu;
};

/// Cumulative counters across all solves of one simplex_solver.
struct simplex_stats {
  long primal_iterations = 0;
  long dual_iterations = 0;
  long dual_bound_flips = 0;  // nonbasic flips taken by the dual ratio test
  long refactorizations = 0;
  long dual_solves = 0;       // solves that entered the dual method
  long dual_updates = 0;      // incremental dual (y) updates from pivot rows
  long dual_recomputes = 0;   // full dual recomputations (btran) in the dual
  long primal_fallbacks = 0;  // dual aborts recovered by the primal path
  long lu_factorizations = 0; // successful sparse LU factorizations
  long dense_fallbacks = 0;   // singular LU repaired by the dense engine
};

/// Stateful solver: keeps the basis between solves so that branch-and-bound
/// can warm start after bound changes.
class simplex_solver {
public:
  explicit simplex_solver(const lp_problem& problem,
                          simplex_options options = {});

  /// Replace the bounds of structural variable `var` (branching).
  void set_variable_bounds(int var, double lower, double upper);

  [[nodiscard]] double variable_lower(int var) const;
  [[nodiscard]] double variable_upper(int var) const;

  /// Solve from the current basis when `warm_start` is true (and a basis
  /// exists), otherwise from the all-slack basis. `iteration_limit`
  /// overrides options.max_iterations when >= 0 (strong-branching probes).
  lp_result solve(const deadline& time_budget, bool warm_start,
                  long iteration_limit = -1);

  /// Install a caller-specified basis (column indices in [0, n+m), one per
  /// row, slack column for row i being n+i) and refactorize. Nonbasic
  /// columns are parked at their nearest bound, except those listed in
  /// `at_upper_columns`, which are parked at their upper bound -- passing
  /// the previous solver's upper-parked set preserves dual feasibility
  /// across a row-append rebuild (the cut-loop warm start). Returns false
  /// when the requested basis is singular -- the solver then repairs itself
  /// by falling back to the slack basis, so it stays usable either way.
  bool load_basis(const std::vector<int>& basic_columns,
                  const std::vector<int>& at_upper_columns = {});

  /// Number of rows (basis dimension).
  [[nodiscard]] int rows() const { return m_; }

  // --- read-only basis/solution accessors (cut separation, basis export).
  /// Column basic at each basis position (size rows()).
  [[nodiscard]] const std::vector<int>& basic_columns() const { return basis_; }
  [[nodiscard]] bool column_is_basic(int column) const {
    return basic_position_[static_cast<std::size_t>(column)] >= 0;
  }
  /// True for a nonbasic column parked at its upper bound.
  [[nodiscard]] bool column_at_upper(int column) const {
    return status_[static_cast<std::size_t>(column)] == status::at_upper;
  }
  /// True for a nonbasic free column (parked at zero).
  [[nodiscard]] bool column_is_free(int column) const {
    return status_[static_cast<std::size_t>(column)] == status::free_zero;
  }
  /// Current value / bounds of any column (structural or slack).
  [[nodiscard]] double column_value(int column) const {
    return x_[static_cast<std::size_t>(column)];
  }
  [[nodiscard]] double column_lower(int column) const {
    return lower_[static_cast<std::size_t>(column)];
  }
  [[nodiscard]] double column_upper(int column) const {
    return upper_[static_cast<std::size_t>(column)];
  }
  /// Tableau row of basis position p: alpha[j] = (e_p B^-1 A)_j for every
  /// column j in [0, n+m) (slack column n+i contributes -e_i). Used by the
  /// Gomory separator; O(m + nnz(A)) via one btran.
  void tableau_row(int position, std::vector<double>& alpha) const;

  [[nodiscard]] const simplex_stats& stats() const { return stats_; }

private:
  enum class status : unsigned char { basic, at_lower, at_upper, free_zero };

  // Problem data (bounds are mutable copies; matrix/cost are fixed).
  const lp_problem& problem_;
  simplex_options options_;
  int n_ = 0; // structural columns
  int m_ = 0; // rows == slack columns == basis size
  std::vector<double> lower_; // size n_ + m_ (structural then slack bounds)
  std::vector<double> upper_;

  // Simplex state.
  std::vector<int> basis_;          // size m_: column basic at each position
  std::vector<int> basic_position_; // size n_+m_: position in basis_ or -1
  std::vector<status> status_;      // size n_+m_
  std::vector<double> x_;           // size n_+m_: current values
  bool basis_valid_ = false;
  long total_iterations_ = 0;
  simplex_stats stats_;

  // Basis inverse representation at the last refactorization -- either the
  // sparse LU factors (lu_) or the dense explicit B0^-1 (binv_, row-major
  // m_ x m_, row p = basis position p; allocated lazily, only when the
  // dense representation is actually in use) -- composed with a
  // product-form eta file for pivots since then. dense_active_ names the
  // representation currently backing the solves: under the sparse_lu
  // engine it flips to true for one refactorization cycle when the LU came
  // out singular but the dense inverse did not (numerical fallback).
  basis_lu lu_;
  std::vector<double> binv_;
  bool dense_active_ = false;
  struct eta_vector {
    int pivot_pos;
    double pivot_value;
    std::vector<std::pair<int, double>> entries; // (position, value), != pivot
  };
  std::vector<eta_vector> etas_;
  std::size_t eta_nonzeros_ = 0;

  // Devex pricing state.
  std::vector<double> devex_weight_; // size n_+m_
  std::vector<int> candidates_;      // partial-pricing candidate list
  int pricing_cursor_ = 0;

  // Incrementally maintained phase-2 duals for the dual simplex: updated
  // from the pivot row (y += theta * rho) instead of a full btran each
  // iteration, and recomputed from scratch whenever the factorization or
  // the basis changes outside the dual loop (refactorization, primal
  // pivots, slack reset, load_basis).
  std::vector<double> dual_y_;
  bool dual_y_valid_ = false;

  // Scratch buffers.
  std::vector<double> work_col_;  // w = B^-1 a_j
  std::vector<double> work_row_;  // y = c_B B^-1 (constraint-row space)
  std::vector<double> work_cost_; // phase-dependent basic costs
  std::vector<double> work_rho_;  // pivot row e_r B^-1
  mutable std::vector<double> work_pos_; // position-space scratch (const helpers)
  mutable std::vector<double> work_rhs_; // row-space scratch, kept all-zero

  [[nodiscard]] int total_columns() const { return n_ + m_; }

  void reset_to_slack_basis();
  void clamp_nonbasic_to_bounds();
  void compute_basic_values();
  /// Rebuilds the basis factorization from the current basis; false when
  /// the basis is (numerically) singular under every available engine --
  /// the caller must repair, e.g. by resetting to the slack basis.
  [[nodiscard]] bool refactorize();
  /// Engine-dispatched rebuild without the eta/statistics bookkeeping.
  [[nodiscard]] bool build_base_inverse();
  [[nodiscard]] bool dense_refactorize();

  // Basis-inverse application helpers. base_* applies the representation of
  // the last refactorization (LU factors or dense inverse); the public
  // ftran/btran compose it with the eta file.
  void apply_etas_ftran(std::vector<double>& v) const;
  void apply_etas_btran(std::vector<double>& z) const;
  void base_ftran(const std::vector<double>& rhs, std::vector<double>& v) const;
  void base_btran(const std::vector<double>& z, std::vector<double>& y) const;
  void dense_ftran(const std::vector<double>& rhs, std::vector<double>& v) const;
  void dense_btran(const std::vector<double>& z, std::vector<double>& y) const;
  void ftran(int column, std::vector<double>& w) const; // w = B^-1 a_col
  void btran_row(int position, std::vector<double>& rho) const; // e_r B^-1
  void record_basis_update(int leaving_pos, double pivot_element,
                           const std::vector<double>& w);
  [[nodiscard]] bool should_refactor(int pivots_since_refactor) const;

  void compute_duals(const std::vector<double>& basic_cost,
                     std::vector<double>& y) const;
  [[nodiscard]] double reduced_cost(int column,
                                    const std::vector<double>& y) const;
  [[nodiscard]] double column_dot(int column,
                                  const std::vector<double>& y) const;
  [[nodiscard]] double column_cost_phase2(int column) const;

  [[nodiscard]] double infeasibility_sum() const;
  [[nodiscard]] bool basic_feasible() const;
  [[nodiscard]] bool dual_feasible(const std::vector<double>& y) const;

  // Pricing.
  struct entering_choice {
    int column = -1;
    int direction = 0;
  };
  [[nodiscard]] double pricing_violation(int column, double reduced,
                                         int& direction) const;
  entering_choice price_full_scan(bool phase1, bool bland,
                                  const std::vector<double>& y);
  entering_choice price_devex(bool phase1, const std::vector<double>& y);
  void refill_candidates(bool phase1, const std::vector<double>& y);
  void update_devex_weights(int entering, int leaving_pos, double pivot_element,
                            bool phase1);
  void reset_devex();

  struct pivot_outcome {
    bool moved = false;        // any progress (step or bound flip)
    bool no_candidate = false; // no improving entering column
    bool unbounded = false;
    double step = 0.0;         // step length taken (0 => degenerate pivot)
  };
  /// One primal simplex iteration; phase1 selects the infeasibility
  /// objective.
  pivot_outcome iterate(bool phase1, bool bland);

  void apply_pivot(int entering, int direction, double step, int leaving_pos,
                   double pivot_element, const std::vector<double>& w,
                   bool leaving_to_upper);

  struct dual_outcome {
    bool moved = false;      // performed a pivot (possibly with flips)
    bool optimal = false;    // no primal-infeasible basic variable remains
    bool infeasible = false; // dual unbounded => primal infeasible
    bool aborted = false;    // numerical trouble: fall back to primal
    double step = 0.0;       // dual step taken (0 => dual-degenerate pivot)
  };
  /// One dual simplex iteration (leaving-row selection, bound-flipping
  /// two-pass ratio test, pivot).
  dual_outcome dual_iterate();
};

} // namespace transtore::milp
