// Bounded-variable primal simplex.
//
// Implements the textbook primal simplex for variables with (possibly
// infinite) lower and upper bounds, with:
//   * composite phase 1 -- basic-variable bound violations are priced with
//     +/-1 costs and driven to zero without artificial columns, which makes
//     warm starts after branch-and-bound bound changes trivial;
//   * bound flips for nonbasic variables whose own range is binding;
//   * Dantzig pricing with an automatic switch to Bland's rule after a run
//     of degenerate steps (anti-cycling);
//   * an explicit dense basis inverse refreshed by periodic refactorization.
//
// The dense inverse caps practical problem size at a few thousand rows; the
// synthesis formulations in this repository stay well below that, matching
// the paper's instance sizes (Table 2).
#pragma once

#include <vector>

#include "common/stopwatch.h"
#include "milp/lp.h"

namespace transtore::milp {

/// Tunables for one simplex solve.
struct simplex_options {
  long max_iterations = 200000;
  double feasibility_tolerance = 1e-7;
  double optimality_tolerance = 1e-7;
  double pivot_tolerance = 1e-9;
  int refactor_interval = 120;
  int degenerate_switch = 400; // consecutive degenerate steps before Bland
};

/// Stateful solver: keeps the basis between solves so that branch-and-bound
/// can warm start after bound changes.
class simplex_solver {
public:
  explicit simplex_solver(const lp_problem& problem,
                          simplex_options options = {});

  /// Replace the bounds of structural variable `var` (branching).
  void set_variable_bounds(int var, double lower, double upper);

  [[nodiscard]] double variable_lower(int var) const;
  [[nodiscard]] double variable_upper(int var) const;

  /// Solve from the current basis when `warm_start` is true (and a basis
  /// exists), otherwise from the all-slack basis.
  lp_result solve(const deadline& time_budget, bool warm_start);

  /// Number of rows (basis dimension).
  [[nodiscard]] int rows() const { return m_; }

private:
  enum class status : unsigned char { basic, at_lower, at_upper, free_zero };

  // Problem data (bounds are mutable copies; matrix/cost are fixed).
  const lp_problem& problem_;
  simplex_options options_;
  int n_ = 0; // structural columns
  int m_ = 0; // rows == slack columns == basis size
  std::vector<double> lower_; // size n_ + m_ (structural then slack bounds)
  std::vector<double> upper_;

  // Simplex state.
  std::vector<int> basis_;          // size m_: column basic at each position
  std::vector<int> basic_position_; // size n_+m_: position in basis_ or -1
  std::vector<status> status_;      // size n_+m_
  std::vector<double> x_;           // size n_+m_: current values
  std::vector<double> binv_;        // row-major m_ x m_ basis inverse
  bool basis_valid_ = false;
  long total_iterations_ = 0;

  // Scratch buffers.
  std::vector<double> work_col_;  // w = B^-1 a_j
  std::vector<double> work_row_;  // y = c_B B^-1
  std::vector<double> work_cost_; // phase-dependent basic costs

  [[nodiscard]] int total_columns() const { return n_ + m_; }

  void reset_to_slack_basis();
  void clamp_nonbasic_to_bounds();
  void compute_basic_values();
  void refactorize();
  void ftran(int column, std::vector<double>& w) const; // w = B^-1 a_col
  void compute_duals(const std::vector<double>& basic_cost,
                     std::vector<double>& y) const;
  [[nodiscard]] double reduced_cost(int column,
                                    const std::vector<double>& y) const;
  [[nodiscard]] double column_cost_phase2(int column) const;

  [[nodiscard]] double infeasibility_sum() const;
  [[nodiscard]] bool basic_feasible() const;

  struct pivot_outcome {
    bool moved = false;        // any progress (step or bound flip)
    bool no_candidate = false; // no improving entering column
    bool unbounded = false;
    double step = 0.0;         // step length taken (0 => degenerate pivot)
  };
  /// One simplex iteration; phase1 selects the infeasibility objective.
  pivot_outcome iterate(bool phase1, bool bland);

  void apply_pivot(int entering, int direction, double step, int leaving_pos,
                   double pivot_element, const std::vector<double>& w,
                   bool leaving_to_upper);
};

} // namespace transtore::milp
