// Mixed-integer linear program builder.
//
// The model is the solver-independent description of a MILP: variables with
// bounds and integrality, ranged linear constraints, and a linear objective.
// The paper's formulations (scheduling ILP of Table 1 and the architectural
// synthesis ILP of Section 3.2) are emitted into this model and solved with
// milp::solve() -- our from-scratch replacement for the Gurobi solver the
// authors used.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "milp/expr.h"

namespace transtore::milp {

/// Positive infinity for variable / row bounds.
inline constexpr double infinity = std::numeric_limits<double>::infinity();

enum class var_kind { continuous, integer, binary };
enum class cmp { less_equal, greater_equal, equal };
enum class objective_sense { minimize, maximize };

/// Full description of one variable.
struct var_info {
  std::string name;
  var_kind kind = var_kind::continuous;
  double lower = 0.0;
  double upper = infinity;
};

/// One ranged constraint: lower <= expr <= upper (constants folded in).
struct row_info {
  std::string name;
  std::vector<std::pair<int, double>> terms; // (variable index, coefficient)
  double lower = -infinity;
  double upper = infinity;
};

/// Builder for a MILP instance.
class model {
public:
  /// Adds a variable; binary kind forces bounds into [0, 1].
  variable add_variable(var_kind kind, double lower, double upper,
                        std::string name = {});

  variable add_continuous(double lower, double upper, std::string name = {}) {
    return add_variable(var_kind::continuous, lower, upper, std::move(name));
  }
  variable add_integer(double lower, double upper, std::string name = {}) {
    return add_variable(var_kind::integer, lower, upper, std::move(name));
  }
  variable add_binary(std::string name = {}) {
    return add_variable(var_kind::binary, 0.0, 1.0, std::move(name));
  }

  /// Adds `expr op rhs`; the expression's constant is moved to the rhs.
  /// Returns the row index.
  int add_constraint(const linear_expr& expr, cmp op, double rhs,
                     std::string name = {});

  /// Adds `lower <= expr <= upper` as one ranged row.
  int add_range_constraint(const linear_expr& expr, double lower, double upper,
                           std::string name = {});

  void set_objective(const linear_expr& expr, objective_sense sense);

  [[nodiscard]] int variable_count() const {
    return static_cast<int>(variables_.size());
  }
  [[nodiscard]] int constraint_count() const {
    return static_cast<int>(rows_.size());
  }
  [[nodiscard]] int integer_variable_count() const;

  [[nodiscard]] const var_info& variable_at(int index) const;
  [[nodiscard]] const row_info& constraint_at(int index) const;

  [[nodiscard]] const std::vector<var_info>& variables() const {
    return variables_;
  }
  [[nodiscard]] const std::vector<row_info>& constraints() const {
    return rows_;
  }

  /// Objective coefficients indexed by variable (minimization form is NOT
  /// applied here; see objective_sense()).
  [[nodiscard]] const std::vector<double>& objective_coefficients() const {
    return objective_;
  }
  [[nodiscard]] double objective_constant() const { return objective_constant_; }
  [[nodiscard]] objective_sense sense() const { return sense_; }

  /// Evaluates the objective at a full assignment.
  [[nodiscard]] double evaluate_objective(const std::vector<double>& x) const;

  /// True when `x` satisfies every row and bound within `tolerance`,
  /// including integrality of integer/binary variables.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tolerance = 1e-6) const;

  /// Human-readable dump (LP-format-like) for debugging and tests.
  [[nodiscard]] std::string to_text() const;

private:
  std::vector<var_info> variables_;
  std::vector<row_info> rows_;
  std::vector<double> objective_;
  double objective_constant_ = 0.0;
  objective_sense sense_ = objective_sense::minimize;
};

} // namespace transtore::milp
