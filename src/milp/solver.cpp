#include "milp/solver.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "milp/cuts.h"
#include "milp/presolve.h"
#include "milp/simplex.h"

namespace transtore::milp {
namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

/// Minimization-form image of the user model plus integrality markers.
struct standard_form {
  lp_problem lp;
  std::vector<bool> is_integer;
  double objective_sign = 1.0;  // +1 minimize, -1 maximize
  double objective_constant = 0.0;
};

standard_form build_standard_form(const model& m) {
  standard_form sf;
  const int n = m.variable_count();
  const int rows = m.constraint_count();
  sf.lp.num_vars = n;
  sf.lp.num_rows = rows;
  sf.lp.cost.resize(n);
  sf.lp.lower.resize(n);
  sf.lp.upper.resize(n);
  sf.is_integer.resize(n);
  sf.objective_sign = m.sense() == objective_sense::minimize ? 1.0 : -1.0;
  sf.objective_constant = m.objective_constant();

  for (int j = 0; j < n; ++j) {
    const var_info& v = m.variable_at(j);
    sf.lp.cost[j] = sf.objective_sign * m.objective_coefficients()[j];
    sf.lp.lower[j] = v.lower;
    sf.lp.upper[j] = v.upper;
    sf.is_integer[j] = v.kind != var_kind::continuous;
  }

  sf.lp.row_lower.resize(rows);
  sf.lp.row_upper.resize(rows);
  // Build CSC by counting per-column entries first.
  std::vector<int> counts(n, 0);
  for (int i = 0; i < rows; ++i)
    for (const auto& [var, coeff] : m.constraint_at(i).terms) {
      (void)coeff;
      ++counts[var];
    }
  sf.lp.col_start.assign(n + 1, 0);
  for (int j = 0; j < n; ++j) sf.lp.col_start[j + 1] = sf.lp.col_start[j] + counts[j];
  const int nnz = sf.lp.col_start[n];
  sf.lp.row_index.resize(nnz);
  sf.lp.value.resize(nnz);
  std::vector<int> cursor(sf.lp.col_start.begin(), sf.lp.col_start.end() - 1);
  for (int i = 0; i < rows; ++i) {
    const row_info& row = m.constraint_at(i);
    sf.lp.row_lower[i] = row.lower;
    sf.lp.row_upper[i] = row.upper;
    for (const auto& [var, coeff] : row.terms) {
      sf.lp.row_index[cursor[var]] = i;
      sf.lp.value[cursor[var]] = coeff;
      ++cursor[var];
    }
  }
  return sf;
}

/// Interval-arithmetic bound propagation over the rows. Tightens variable
/// bounds in place; returns false when a row is proven infeasible. The
/// presolve-off fallback: when presolve is on, its activity-based
/// tightening pass supersedes this.
bool propagate_bounds(const model& m, std::vector<double>& lower,
                      std::vector<double>& upper,
                      const std::vector<bool>& is_integer) {
  const int rows = m.constraint_count();
  for (int pass = 0; pass < 12; ++pass) {
    bool changed = false;
    for (int i = 0; i < rows; ++i) {
      const row_info& row = m.constraint_at(i);
      // min/max possible activity of the row under current bounds.
      double act_min = 0.0;
      double act_max = 0.0;
      for (const auto& [var, coeff] : row.terms) {
        const double lo = lower[var];
        const double hi = upper[var];
        if (coeff > 0.0) {
          act_min += lo == -inf ? -inf : coeff * lo;
          act_max += hi == inf ? inf : coeff * hi;
        } else {
          act_min += hi == inf ? -inf : coeff * hi;
          act_max += lo == -inf ? inf : coeff * lo;
        }
      }
      if (act_min > row.upper + 1e-7 || act_max < row.lower - 1e-7)
        return false;

      for (const auto& [var, coeff] : row.terms) {
        // Residual activity excluding this term.
        const double lo = lower[var];
        const double hi = upper[var];
        double term_min;
        double term_max;
        if (coeff > 0.0) {
          term_min = lo == -inf ? -inf : coeff * lo;
          term_max = hi == inf ? inf : coeff * hi;
        } else {
          term_min = hi == inf ? -inf : coeff * hi;
          term_max = lo == -inf ? inf : coeff * lo;
        }
        const double rest_min =
            (act_min == -inf && term_min == -inf) ? -inf : act_min - term_min;
        const double rest_max =
            (act_max == inf && term_max == inf) ? inf : act_max - term_max;

        // row.lower <= rest + coeff*x <= row.upper
        double new_lo = -inf;
        double new_hi = inf;
        if (coeff > 0.0) {
          if (row.upper != inf && rest_min != -inf)
            new_hi = (row.upper - rest_min) / coeff;
          if (row.lower != -inf && rest_max != inf)
            new_lo = (row.lower - rest_max) / coeff;
        } else {
          if (row.upper != inf && rest_min != -inf)
            new_lo = (row.upper - rest_min) / coeff;
          if (row.lower != -inf && rest_max != inf)
            new_hi = (row.lower - rest_max) / coeff;
        }
        if (is_integer[var]) {
          if (new_lo != -inf) new_lo = std::ceil(new_lo - 1e-7);
          if (new_hi != inf) new_hi = std::floor(new_hi + 1e-7);
        }
        if (new_lo > lower[var] + 1e-9) {
          lower[var] = new_lo;
          changed = true;
        }
        if (new_hi < upper[var] - 1e-9) {
          upper[var] = new_hi;
          changed = true;
        }
        if (lower[var] > upper[var] + 1e-7) return false;
      }
    }
    if (!changed) break;
  }
  return true;
}

struct bound_change {
  int var;
  double lower;
  double upper;
};

/// Basis of a solved node, captured for cross-worker warm starts: after
/// load_basis() a simplex instance's solve is a pure function of (problem,
/// bounds, basic set, upper-parked set) -- load_basis resets every hidden
/// pricing/devex/eta state -- so any worker can re-solve any node from its
/// parent's snapshot and reach the same result.
struct basis_snapshot {
  std::vector<int> basic;
  std::vector<int> at_upper;
};

std::shared_ptr<const basis_snapshot> capture_basis(const simplex_solver& lp,
                                                    int n) {
  auto snap = std::make_shared<basis_snapshot>();
  snap->basic = lp.basic_columns();
  const int total = n + lp.rows();
  for (int c = 0; c < total; ++c)
    if (lp.column_at_upper(c)) snap->at_upper.push_back(c);
  return snap;
}

struct bb_node {
  std::vector<bound_change> changes; // path from root
  double parent_bound = -inf;        // LP bound of the parent (min-form)
  long id = 0;                       // for deterministic tie-breaking
  /// Fractional distance the branch moved the variable (frac for a down
  /// child, 1-frac for an up child); pseudocosts are recorded per unit.
  double branch_distance = 1.0;
  /// Pseudocost completion estimate (min-form): parent bound plus the
  /// branch's own expected degradation plus the cheapest rounding of every
  /// other fractional variable at the parent.
  double estimate = -inf;
  /// Parent basis for cross-worker warm starts (parallel engines; null in
  /// the sequential engine, which relies on its one solver's continuity,
  /// and for the root before any LP was solved). Siblings share the one
  /// immutable snapshot.
  std::shared_ptr<const basis_snapshot> warm;
  /// Worker that created this node (-1 for the root); a worker pulling a
  /// pool node produced by another worker counts it as a steal.
  int producer = -1;
};

/// Pseudocost bookkeeping per integer variable and direction, plus the
/// global per-unit average used as the estimate fallback for unobserved
/// directions.
struct pseudocost_table {
  std::vector<double> up_sum, down_sum;
  std::vector<long> up_count, down_count;
  double total_sum = 0.0;
  long total_count = 0;

  explicit pseudocost_table(int n)
      : up_sum(n, 0.0), down_sum(n, 0.0), up_count(n, 0), down_count(n, 0) {}

  void record(int var, bool up, double degradation_per_frac) {
    if (up) {
      up_sum[var] += degradation_per_frac;
      ++up_count[var];
    } else {
      down_sum[var] += degradation_per_frac;
      ++down_count[var];
    }
    total_sum += degradation_per_frac;
    ++total_count;
  }

  [[nodiscard]] double average() const {
    return total_count > 0 ? total_sum / total_count : 0.0;
  }

  [[nodiscard]] double up_cost(int var, double fallback) const {
    return up_count[var] > 0 ? up_sum[var] / up_count[var] : fallback;
  }
  [[nodiscard]] double down_cost(int var, double fallback) const {
    return down_count[var] > 0 ? down_sum[var] / down_count[var] : fallback;
  }

  [[nodiscard]] double score(int var, double frac, double fallback) const {
    const double up = up_cost(var, fallback);
    const double down = down_cost(var, fallback);
    const double up_est = up * (1.0 - frac);
    const double down_est = down * frac;
    constexpr double eps = 1e-6;
    return std::max(up_est, eps) * std::max(down_est, eps);
  }
};

} // namespace

solver_options classic_primal_only_options() {
  solver_options o;
  o.branching = branch_rule::most_fractional;
  o.reliability = 0;
  o.lp.allow_dual = false;
  o.lp.pricing = pricing_rule::dantzig;
  o.lp.refactor_interval = 120; // the seed's dense-update cadence
  o.lp.engine = basis_engine::dense; // the seed's basis representation
  o.presolve = false;                // the seed ran bare root propagation
  o.cuts = false;
  o.node_propagation = false;
  o.node_selection = node_rule::dfs; // pure depth-first plunging
  return o;
}

namespace {

/// Row-wise view of an lp_problem for the per-node propagation passes.
struct row_view {
  std::vector<std::vector<std::pair<int, double>>> rows; // (var, coeff)
  std::vector<double> lower;
  std::vector<double> upper;

  explicit row_view(const lp_problem& lp)
      : rows(static_cast<std::size_t>(lp.num_rows)), lower(lp.row_lower),
        upper(lp.row_upper) {
    for (int j = 0; j < lp.num_vars; ++j)
      for (int k = lp.col_start[static_cast<std::size_t>(j)];
           k < lp.col_start[static_cast<std::size_t>(j) + 1]; ++k)
        rows[static_cast<std::size_t>(lp.row_index[static_cast<std::size_t>(k)])]
            .emplace_back(j, lp.value[static_cast<std::size_t>(k)]);
  }
};

/// Interval-arithmetic propagation over `view` starting from the bound
/// arrays (node bounds already applied). Returns false when some row is
/// proven infeasible under the node's bounds -- the node prunes without an
/// LP solve. Integer bounds are rounded.
///
/// The activity machinery intentionally mirrors presolve.cpp's (same
/// residual-with-infinity-counts scheme, same 1e-7/1e-9 tolerances) in a
/// flattened per-node form; keep the two in sync when touching either --
/// the committed deterministic baselines pin this exact arithmetic.
bool propagate_node(const row_view& view, const std::vector<bool>& is_integer,
                    std::vector<double>& lower, std::vector<double>& upper,
                    int passes) {
  for (int pass = 0; pass < passes; ++pass) {
    bool changed = false;
    for (std::size_t r = 0; r < view.rows.size(); ++r) {
      const auto& terms = view.rows[r];
      const double row_lo = view.lower[r];
      const double row_hi = view.upper[r];
      double act_min = 0.0;
      double act_max = 0.0;
      int inf_min = 0;
      int inf_max = 0;
      for (const auto& [var, coeff] : terms) {
        const double lo = lower[static_cast<std::size_t>(var)];
        const double hi = upper[static_cast<std::size_t>(var)];
        if (coeff > 0.0) {
          if (lo == -inf) ++inf_min; else act_min += coeff * lo;
          if (hi == inf) ++inf_max; else act_max += coeff * hi;
        } else {
          if (hi == inf) ++inf_min; else act_min += coeff * hi;
          if (lo == -inf) ++inf_max; else act_max += coeff * lo;
        }
      }
      const double total_min = inf_min > 0 ? -inf : act_min;
      const double total_max = inf_max > 0 ? inf : act_max;
      if (total_min > row_hi + 1e-7 || total_max < row_lo - 1e-7)
        return false;
      if (total_min >= row_lo - 1e-7 && total_max <= row_hi + 1e-7)
        continue; // redundant here: no tightening possible

      for (const auto& [var, coeff] : terms) {
        const std::size_t v = static_cast<std::size_t>(var);
        const double lo = lower[v];
        const double hi = upper[v];
        double t_min;
        double t_max;
        if (coeff > 0.0) {
          t_min = lo == -inf ? -inf : coeff * lo;
          t_max = hi == inf ? inf : coeff * hi;
        } else {
          t_min = hi == inf ? -inf : coeff * hi;
          t_max = lo == -inf ? inf : coeff * lo;
        }
        double rest_min;
        if (t_min == -inf)
          rest_min = inf_min > 1 ? -inf : act_min;
        else
          rest_min = inf_min > 0 ? -inf : act_min - t_min;
        double rest_max;
        if (t_max == inf)
          rest_max = inf_max > 1 ? inf : act_max;
        else
          rest_max = inf_max > 0 ? inf : act_max - t_max;

        double new_lo = -inf;
        double new_hi = inf;
        if (coeff > 0.0) {
          if (row_hi != inf && rest_min != -inf) new_hi = (row_hi - rest_min) / coeff;
          if (row_lo != -inf && rest_max != inf) new_lo = (row_lo - rest_max) / coeff;
        } else {
          if (row_hi != inf && rest_min != -inf) new_lo = (row_hi - rest_min) / coeff;
          if (row_lo != -inf && rest_max != inf) new_hi = (row_lo - rest_max) / coeff;
        }
        if (is_integer[v]) {
          if (new_lo != -inf) new_lo = std::ceil(new_lo - 1e-7);
          if (new_hi != inf) new_hi = std::floor(new_hi + 1e-7);
        }
        if (new_lo > lower[v] + 1e-9) {
          lower[v] = new_lo;
          changed = true;
        }
        if (new_hi < upper[v] - 1e-9) {
          upper[v] = new_hi;
          changed = true;
        }
        if (lower[v] > upper[v]) {
          if (lower[v] > upper[v] + 1e-7) return false;
          upper[v] = lower[v]; // sub-tolerance crossing: a fixed value
        }
      }
    }
    if (!changed) break;
  }
  return true;
}

// ------------------------------------------------- parallel tree search

/// Read-only inputs shared by every worker of a parallel tree search.
struct tree_context {
  const model& m;
  const standard_form& sf;
  const solver_options& options;
  const std::vector<double>& root_lower;
  const std::vector<double>& root_upper;
  const row_view* rows; // null = node propagation off
  const deadline& time_budget;
  int n;
};

enum class node_kind {
  skipped,       // pruned by parent bound before any work (not counted)
  prop_pruned,   // infeasible by per-node propagation (no LP spent)
  bound_pruned,  // LP bound at/above the incumbent
  lp_infeasible,
  integral,      // integral LP optimum: evaluated candidate attached
  branched,      // fractional optimum: ready for branching at commit
  dropped,       // LP iteration limit: dropped with a warning
  time_limit,
  unbounded,
};

struct probe_record {
  int var = -1;
  bool up = false;
  double cost = 0.0; // degradation per unit of fractional distance
};

/// Everything a worker learned about one node, handed to the engine's
/// commit step -- the only place search-global state (pseudocosts,
/// incumbent, the open pool) is mutated.
struct node_result {
  node_kind kind = node_kind::skipped;
  double bound = -inf; // min-form LP objective
  long iterations = 0;
  long dual_iterations = 0;
  long probes_run = 0;
  int processed_by = 0;
  std::vector<probe_record> probe_records;
  bool down_infeasible = false;
  bool up_infeasible = false;
  int probed_infeasible_var = -1;
  std::vector<double> x;                          // LP optimum (branched)
  std::vector<std::pair<double, int>> fractional; // (closeness, var)
  /// Effective node bounds of each fractional variable (post-propagation),
  /// aligned with `fractional` -- the child bound changes branch off these.
  std::vector<std::pair<double, double>> fractional_bounds;
  std::shared_ptr<const basis_snapshot> basis; // post-solve, pre-probe
  // Integral candidate, already rounded and feasibility-checked so the
  // commit path only compares objectives under its lock.
  std::vector<double> candidate;
  double candidate_obj = inf; // min-form
  bool candidate_feasible = false;
};

/// Fills per-candidate (up_count, down_count) pseudocost observations; the
/// opportunistic engine snapshots them under its lock, the deterministic
/// engine reads the round-stable table directly.
using pc_count_fn = std::function<void(
    const std::vector<int>&, std::vector<std::pair<long, long>>&)>;

/// Process one node on a worker-private simplex instance: per-node
/// propagation, the LP re-solve (warm from the node's recorded parent
/// basis), and the strong-branching probes. `reload_basis` false trusts
/// the solver's current basis (a worker continuing its own dive).
/// `prune_obj` is the incumbent objective to prune against (+inf when
/// none) and `probe_allowance` this node's share of the global probe
/// budget -- both fixed by the engine so the result is a pure function of
/// its arguments.
node_result process_node(const tree_context& ctx, simplex_solver& lp,
                         const bb_node& node, bool reload_basis,
                         double prune_obj, long probe_allowance,
                         const pc_count_fn& pc_counts,
                         std::vector<double>& prop_lower,
                         std::vector<double>& prop_upper) {
  node_result out;
  const solver_options& options = ctx.options;
  const int n = ctx.n;

  if (node.parent_bound >= prune_obj - options.absolute_gap) {
    out.kind = node_kind::skipped;
    return out;
  }

  if (ctx.rows != nullptr && !node.changes.empty()) {
    prop_lower = ctx.root_lower;
    prop_upper = ctx.root_upper;
    for (const bound_change& change : node.changes) {
      prop_lower[change.var] = change.lower;
      prop_upper[change.var] = change.upper;
    }
    if (!propagate_node(*ctx.rows, ctx.sf.is_integer, prop_lower, prop_upper,
                        options.node_propagation_passes)) {
      out.kind = node_kind::prop_pruned;
      return out;
    }
    for (int j = 0; j < n; ++j)
      lp.set_variable_bounds(j, prop_lower[j], prop_upper[j]);
  } else {
    for (int j = 0; j < n; ++j)
      lp.set_variable_bounds(j, ctx.root_lower[j], ctx.root_upper[j]);
    for (const bound_change& change : node.changes)
      lp.set_variable_bounds(change.var, change.lower, change.upper);
  }

  bool warm = true;
  if (reload_basis) {
    if (node.warm)
      lp.load_basis(node.warm->basic, node.warm->at_upper);
    else
      warm = false; // snapshot-less node (the unsolved root): cold solve
  }
  const lp_result relax = lp.solve(ctx.time_budget, warm);
  out.iterations = relax.iterations;
  out.dual_iterations = relax.dual_iterations;
  if (relax.status == lp_status::time_limit) {
    out.kind = node_kind::time_limit;
    return out;
  }
  if (relax.status == lp_status::infeasible) {
    out.kind = node_kind::lp_infeasible;
    return out;
  }
  if (relax.status == lp_status::unbounded) {
    out.kind = node_kind::unbounded;
    return out;
  }
  if (relax.status == lp_status::iteration_limit) {
    out.kind = node_kind::dropped;
    return out;
  }
  out.bound = relax.objective;
  if (out.bound >= prune_obj - options.absolute_gap) {
    out.kind = node_kind::bound_pruned;
    return out;
  }

  const double int_tol = options.integrality_tolerance;
  for (int j = 0; j < n; ++j) {
    if (!ctx.sf.is_integer[j]) continue;
    const double frac = std::abs(relax.x[j] - std::round(relax.x[j]));
    if (frac <= int_tol) continue;
    out.fractional.emplace_back(0.5 - std::abs(frac - 0.5), j);
    out.fractional_bounds.emplace_back(lp.variable_lower(j),
                                       lp.variable_upper(j));
  }

  if (out.fractional.empty()) {
    // Integral optimum: do the O(nnz) rounding + feasibility check here in
    // the parallel phase so the commit only compares objectives.
    out.kind = node_kind::integral;
    out.candidate = relax.x;
    for (int j = 0; j < n; ++j)
      if (ctx.sf.is_integer[j]) out.candidate[j] = std::round(out.candidate[j]);
    out.candidate_feasible = ctx.m.is_feasible(out.candidate, 1e-5);
    if (out.candidate_feasible) {
      const double user_obj = ctx.m.evaluate_objective(out.candidate);
      out.candidate_obj =
          ctx.sf.objective_sign * (user_obj - ctx.sf.objective_constant);
    }
    return out;
  }

  // The children's warm basis: this node's own optimal basis, captured
  // before the probes below disturb it.
  out.basis = capture_basis(lp, n);

  // Reliability probes (the sequential engine's logic, worker-local): the
  // candidate order and skip rule mirror solve()'s inline loop.
  if (options.branching == branch_rule::pseudocost && options.reliability > 0 &&
      probe_allowance > 0) {
    std::vector<std::pair<double, int>> order = out.fractional;
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    if (static_cast<int>(order.size()) > options.strong_branch_candidates)
      order.resize(static_cast<std::size_t>(options.strong_branch_candidates));
    std::vector<int> vars;
    vars.reserve(order.size());
    for (const auto& [closeness, j] : order) {
      (void)closeness;
      vars.push_back(j);
    }
    std::vector<std::pair<long, long>> counts;
    pc_counts(vars, counts);
    for (std::size_t c = 0; c < vars.size(); ++c) {
      if (out.probes_run >= probe_allowance) break;
      if (std::min(counts[c].first, counts[c].second) >= options.reliability)
        continue;
      const int j = vars[c];
      const double value = relax.x[j];
      const double floor_val = std::floor(value);
      const double frac = value - floor_val;
      const double node_lower = lp.variable_lower(j);
      const double node_upper = lp.variable_upper(j);
      bool local_down_infeasible = false;
      bool local_up_infeasible = false;
      for (const bool up : {false, true}) {
        if (ctx.time_budget.expired()) break;
        if (up)
          lp.set_variable_bounds(j, floor_val + 1.0, node_upper);
        else
          lp.set_variable_bounds(j, node_lower, floor_val);
        const lp_result probe = lp.solve(
            ctx.time_budget, /*warm_start=*/true,
            options.strong_branch_iteration_limit);
        lp.set_variable_bounds(j, node_lower, node_upper);
        ++out.probes_run;
        out.iterations += probe.iterations;
        out.dual_iterations += probe.dual_iterations;
        if (probe.status == lp_status::optimal) {
          const double degradation =
              std::max(0.0, probe.objective - out.bound);
          const double distance = up ? 1.0 - frac : frac;
          out.probe_records.push_back(
              {j, up, degradation / std::max(distance, 1e-6)});
        } else if (probe.status == lp_status::infeasible) {
          if (up)
            local_up_infeasible = true;
          else
            local_down_infeasible = true;
        }
      }
      if (local_down_infeasible || local_up_infeasible) {
        out.probed_infeasible_var = j;
        out.down_infeasible = local_down_infeasible;
        out.up_infeasible = local_up_infeasible;
      }
    }
  }

  out.x = relax.x;
  out.kind = node_kind::branched;
  return out;
}

/// Both children of a branched node, built at commit time (the caller
/// holds whatever lock protects the pseudocost table and the id counter).
struct branch_output {
  bb_node down, up;
  bool down_infeasible = false;
  bool up_infeasible = false;
  bool down_preferred = true;
};

branch_output commit_branch(const tree_context& ctx, const bb_node& node,
                            node_result& nr, pseudocost_table& pc,
                            long& next_node_id) {
  const solver_options& options = ctx.options;

  // Probe observations first, then the parent's own pseudocost record --
  // the same order as the sequential engine (probes are recorded as they
  // run, the parent after the branch-variable pick; both precede the
  // children's estimates).
  for (const probe_record& p : nr.probe_records) pc.record(p.var, p.up, p.cost);
  if (!node.changes.empty()) {
    const bound_change& last = node.changes.back();
    const double degradation = nr.bound - node.parent_bound;
    if (node.parent_bound != -inf && degradation >= 0.0)
      pc.record(last.var, last.lower > ctx.root_lower[last.var],
                degradation / std::max(node.branch_distance, 1e-6));
  }

  int branch_var = -1;
  std::size_t branch_idx = 0;
  double branch_frac = 0.0;
  double best_score = -1.0;
  for (std::size_t i = 0; i < nr.fractional.size(); ++i) {
    const auto& [closeness, j] = nr.fractional[i];
    const double score =
        options.branching == branch_rule::pseudocost
            ? pc.score(j, nr.x[j] - std::floor(nr.x[j]), 1.0)
            : closeness;
    if (score > best_score) {
      best_score = score;
      branch_var = j;
      branch_idx = i;
      branch_frac = nr.x[j];
    }
  }
  if (nr.probed_infeasible_var >= 0) {
    branch_var = nr.probed_infeasible_var;
    for (std::size_t i = 0; i < nr.fractional.size(); ++i)
      if (nr.fractional[i].second == branch_var) branch_idx = i;
    branch_frac = nr.x[branch_var];
  } else {
    nr.down_infeasible = nr.up_infeasible = false;
  }

  const double floor_val = std::floor(branch_frac);
  const double frac = branch_frac - floor_val;
  const double fallback = pc.average();
  double estimate_rest = 0.0;
  if (options.node_selection == node_rule::best_estimate) {
    for (const auto& [closeness, j] : nr.fractional) {
      (void)closeness;
      if (j == branch_var) continue;
      const double fj = nr.x[j] - std::floor(nr.x[j]);
      estimate_rest += std::min(pc.down_cost(j, fallback) * fj,
                                pc.up_cost(j, fallback) * (1.0 - fj));
    }
  }

  branch_output out;
  const auto [eff_lower, eff_upper] = nr.fractional_bounds[branch_idx];

  out.down.changes = node.changes;
  out.down.changes.push_back({branch_var, eff_lower, floor_val});
  out.down.parent_bound = nr.bound;
  out.down.id = next_node_id++;
  out.down.branch_distance = frac;
  out.down.estimate = nr.bound +
                      pc.down_cost(branch_var, fallback) * frac +
                      estimate_rest;
  out.down.warm = nr.basis;

  out.up.changes = node.changes;
  out.up.changes.push_back({branch_var, floor_val + 1.0, eff_upper});
  out.up.parent_bound = nr.bound;
  out.up.id = next_node_id++;
  out.up.branch_distance = 1.0 - frac;
  out.up.estimate = nr.bound +
                    pc.up_cost(branch_var, fallback) * (1.0 - frac) +
                    estimate_rest;
  out.up.warm = nr.basis;

  out.down_infeasible = nr.down_infeasible;
  out.up_infeasible = nr.up_infeasible;
  out.down_preferred = frac <= 0.5;
  return out;
}

} // namespace

// ---------------------------------------------------------- incumbent_board

bool incumbent_board::offer(double objective, std::vector<double> values) {
  std::lock_guard<std::mutex> guard(lock_);
  const bool better = !have_ || (minimize_ ? objective < objective_ - 1e-12
                                           : objective > objective_ + 1e-12);
  if (!better) return false;
  have_ = true;
  objective_ = objective;
  values_ = std::move(values);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool incumbent_board::fetch(std::uint64_t& seen, double& objective,
                            std::vector<double>& values) const {
  if (version_.load(std::memory_order_acquire) == seen) return false;
  std::lock_guard<std::mutex> guard(lock_);
  seen = version_.load(std::memory_order_relaxed);
  if (!have_) return false;
  objective = objective_;
  values = values_;
  return true;
}

double incumbent_board::best_objective() const {
  std::lock_guard<std::mutex> guard(lock_);
  if (!have_) return minimize_ ? inf : -inf;
  return objective_;
}

double solution::gap() const {
  if (!has_solution()) return inf;
  const double incumbent = objective;
  const double bound = best_bound;
  const double denom = std::max(1.0, std::abs(incumbent));
  return std::abs(incumbent - bound) / denom;
}

solution solve(const model& m, const solver_options& options) {
  stopwatch total_watch;
  deadline time_budget(options.time_limit_seconds, options.cancel);
  solution result;

  require(m.variable_count() > 0, "milp::solve: model has no variables");

  standard_form sf = build_standard_form(m);
  const int n = sf.lp.num_vars;

  // Root presolve: the iterated reduction loop when enabled, the legacy
  // bound-propagation pass otherwise.
  if (options.presolve) {
    presolved_problem reduced =
        presolve(sf.lp, sf.is_integer, options.presolve_opts);
    result.presolve_rows_removed = reduced.stats.rows_removed;
    result.presolve_bounds_tightened = reduced.stats.bounds_tightened;
    result.presolve_coefficients_tightened =
        reduced.stats.coefficients_tightened;
    result.presolve_variables_fixed = reduced.stats.variables_fixed;
    if (reduced.infeasible) {
      result.status = solve_status::infeasible;
      result.seconds = total_watch.elapsed_seconds();
      return result;
    }
    sf.lp = std::move(reduced.reduced);
  } else if (options.root_propagation) {
    if (!propagate_bounds(m, sf.lp.lower, sf.lp.upper, sf.is_integer)) {
      result.status = solve_status::infeasible;
      result.seconds = total_watch.elapsed_seconds();
      return result;
    }
  }
  const std::vector<double> root_lower = sf.lp.lower;
  const std::vector<double> root_upper = sf.lp.upper;

  // The LP the tree solves over: the (presolved) root problem, extended in
  // place by the cut rounds below. `tree_problem` keeps the extended
  // problem alive for the solver's lifetime (the solver holds a reference).
  std::unique_ptr<lp_problem> tree_problem;
  auto lp = std::make_unique<simplex_solver>(sf.lp, options.lp);

  const double int_tol = options.integrality_tolerance;
  auto fractional_part = [&](double v) { return std::abs(v - std::round(v)); };

  long simplex_iterations = 0;
  long dual_iterations = 0;
  double root_lp_bound = inf; // min-form LP bound of the (cut) root
  bool root_solved = false;

  // ------------------------------------------------------- root cut loop
  // Solve the root LP once, then separate Gomory + cover cuts in rounds,
  // each round rebuilding the simplex over the extended rows and
  // warm-restarting from the previous basis (the appended cut slacks enter
  // basic, so the dual method re-solves in a handful of pivots).
  std::optional<cut_generator> cutter;
  if (options.cuts && options.cut.max_rounds > 0 && !time_budget.expired()) {
    lp_result root = lp->solve(time_budget, /*warm_start=*/false);
    simplex_iterations += root.iterations;
    dual_iterations += root.dual_iterations;
    auto has_fractional = [&](const lp_result& r) {
      for (int j = 0; j < n; ++j)
        if (sf.is_integer[j] && fractional_part(r.x[j]) > int_tol) return true;
      return false;
    };
    if (root.status == lp_status::optimal) {
      root_lp_bound = root.objective;
      root_solved = true;
      if (has_fractional(root)) {
        cutter.emplace(sf.lp, sf.is_integer, options.cut);
        double bound_before_round = root_lp_bound;
        for (int round = 0; round < options.cut.max_rounds; ++round) {
          if (time_budget.expired()) break;
          if (!cutter->round(*lp, time_budget)) break;
          std::vector<int> at_upper;
          const std::vector<int> basis = cutter->remap_basis(*lp, at_upper);
          auto next_problem = std::make_unique<lp_problem>(cutter->current());
          auto next_lp =
              std::make_unique<simplex_solver>(*next_problem, options.lp);
          next_lp->load_basis(basis, at_upper);
          lp = std::move(next_lp);
          tree_problem = std::move(next_problem);
          const lp_result re = lp->solve(time_budget, /*warm_start=*/true);
          simplex_iterations += re.iterations;
          dual_iterations += re.dual_iterations;
          if (re.status != lp_status::optimal) break;
          root_lp_bound = re.objective;
          if (!has_fractional(re)) break;
          // Stalling termination: on these degenerate big-M relaxations a
          // round that fails to move the bound is chasing alternate optima
          // -- further rounds only bloat the tree's LPs.
          const double improvement = root_lp_bound - bound_before_round;
          if (improvement <=
              options.cut.min_bound_improvement *
                  std::max(1.0, std::abs(root_lp_bound)))
            break;
          bound_before_round = root_lp_bound;
        }
        result.cut_rounds = cutter->stats().rounds;
        result.cuts_added = cutter->stats().added;
        result.cuts_active = cutter->active_cuts();
        if (options.log_progress && result.cuts_added > 0)
          log_at(log_level::info, "milp: root cuts ", result.cuts_added,
                 " rows in ", result.cut_rounds, " rounds, bound ",
                 sf.objective_sign * root_lp_bound + sf.objective_constant);
      }
    }
  }

  // Incumbent state (minimization form).
  bool have_incumbent = false;
  double incumbent_obj = inf;
  std::vector<double> incumbent_values;

  // Racing-portfolio hookup (ignored in deterministic mode, where adoption
  // timing would break bit-identity): improving incumbents are published to
  // the shared board, and board incumbents are adopted -- after rounding and
  // feasibility re-validation -- wherever this solve polls it.
  incumbent_board* board =
      options.deterministic ? nullptr : options.shared_incumbent.get();
  std::uint64_t board_seen = 0;

  auto try_incumbent = [&](std::vector<double> candidate) {
    for (int j = 0; j < n; ++j)
      if (sf.is_integer[j]) candidate[j] = std::round(candidate[j]);
    if (!m.is_feasible(candidate, 1e-5)) return false;
    const double user_obj = m.evaluate_objective(candidate);
    const double min_obj = sf.objective_sign * (user_obj - sf.objective_constant);
    if (!have_incumbent || min_obj < incumbent_obj - options.absolute_gap) {
      have_incumbent = true;
      incumbent_obj = min_obj;
      if (board) board->offer(user_obj, candidate);
      incumbent_values = std::move(candidate);
      return true;
    }
    return false;
  };

  if (options.warm_start) {
    require(static_cast<int>(options.warm_start->size()) == n,
            "milp::solve: warm start has wrong size");
    if (try_incumbent(*options.warm_start)) {
      result.warm_start_accepted = true;
      result.warm_start_objective =
          sf.objective_sign * incumbent_obj + sf.objective_constant;
      log_at(log_level::info, "milp: warm start accepted, objective ",
             result.warm_start_objective);
    } else {
      log_at(log_level::warn, "milp: warm start rejected (infeasible)");
    }
  }

  pseudocost_table pseudocosts(n);

  // Row view of the tree's LP (base + surviving cuts) for per-node
  // propagation, shared read-only by every engine.
  std::optional<row_view> tree_rows;
  if (options.node_propagation)
    tree_rows.emplace(tree_problem ? *tree_problem : sf.lp);

  // Outcome state shared by the three tree engines and the result tail.
  long nodes = 0;
  long probes = 0;
  bool hit_limit = false;
  bool unbounded = false;

  auto finish = [&](bool tree_open, double open_bound) -> solution {
    result.nodes_explored = nodes;
    result.simplex_iterations = simplex_iterations;
    result.dual_simplex_iterations = dual_iterations;
    result.strong_branch_probes = probes;
    result.seconds = total_watch.elapsed_seconds();
    result.interrupted = hit_limit && time_budget.expired();
    if (root_solved)
      result.root_bound =
          sf.objective_sign * root_lp_bound + sf.objective_constant;
    if (!tree_open) open_bound = inf;
    if (unbounded) {
      result.status = solve_status::unbounded;
      return result;
    }
    if (have_incumbent) {
      result.values = incumbent_values;
      result.objective =
          sf.objective_sign * incumbent_obj + sf.objective_constant;
      const double bound_min = std::min(incumbent_obj, open_bound);
      result.best_bound = sf.objective_sign * bound_min + sf.objective_constant;
      const double denom = std::max(1.0, std::abs(incumbent_obj));
      const bool gap_ok =
          open_bound == inf ||
          (incumbent_obj - open_bound) / denom <= options.relative_gap ||
          incumbent_obj - open_bound <= options.absolute_gap;
      const bool proven = !hit_limit && (!tree_open || gap_ok);
      result.status = proven ? solve_status::optimal : solve_status::feasible;
      return result;
    }
    if (hit_limit) {
      result.status = solve_status::no_solution;
      return result;
    }
    result.status = solve_status::infeasible;
    return result;
  };

  // ------------------------------------------------------ engine dispatch
  // threads <= 0 resolves to the hardware; deterministic always takes the
  // round engine (its trajectory must not depend on the thread count, so
  // even threads == 1 runs it); otherwise threads > 1 takes the
  // opportunistic pool engine and threads == 1 the classic sequential loop.
  int threads = options.threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(std::min(hw, 64u));
  }
  threads = std::min(threads, 64);
  result.threads_used = threads;

  const lp_problem& tree_lp_problem = tree_problem ? *tree_problem : sf.lp;
  const tree_context ctx{m,          sf,
                         options,    root_lower,
                         root_upper, tree_rows ? &*tree_rows : nullptr,
                         time_budget, n};

  if (options.deterministic) {
    // ------------------------------------------ deterministic round engine
    // Fixed-width rounds: select `deterministic_round_width` open nodes by
    // a deterministic comparator, process them concurrently on private
    // simplex instances (every node re-solved from its recorded parent
    // basis -- load_basis makes that a pure function of the node), then
    // commit the results in ascending node-id order. Selection, pruning,
    // pseudocost updates, and incumbent acceptance all happen in the
    // single-threaded commit phase, so the trajectory depends on the round
    // width but never on the thread count or on arrival order.
    std::vector<bb_node> open;
    std::multiset<double> open_bounds;
    long next_node_id = 0;
    {
      bb_node root_node;
      root_node.id = next_node_id++;
      root_node.warm = root_solved ? capture_basis(*lp, n) : nullptr;
      open.push_back(std::move(root_node));
      open_bounds.insert(-inf);
    }

    const int width = std::max(1, options.deterministic_round_width);
    std::vector<worker_stats> wstats(static_cast<std::size_t>(threads));

    // Round batch, shared main -> workers through the generation handshake
    // below (mutex acquire/release on both sides orders every access).
    std::vector<bb_node> batch;
    std::vector<node_result> results;
    double round_prune_obj = inf;
    long round_probe_allowance = 0;

    std::mutex mu;
    std::condition_variable cv_start, cv_done;
    std::uint64_t generation = 0;
    int unfinished = 0;
    std::atomic<std::size_t> batch_cursor{0};
    bool shutdown = false;

    // The table is only mutated in the commit phase while the workers wait,
    // so round-time reads need no lock.
    auto pc_counts = [&](const std::vector<int>& vars,
                         std::vector<std::pair<long, long>>& out) {
      out.resize(vars.size());
      for (std::size_t i = 0; i < vars.size(); ++i)
        out[i] = {pseudocosts.up_count[vars[i]],
                  pseudocosts.down_count[vars[i]]};
    };

    auto round_worker = [&](int w) {
      simplex_solver wlp(tree_lp_problem, options.lp);
      std::vector<double> wl, wu;
      std::uint64_t seen_gen = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(mu);
          cv_start.wait(lock,
                        [&] { return shutdown || generation != seen_gen; });
          if (shutdown) return;
          seen_gen = generation;
        }
        for (;;) {
          const std::size_t i =
              batch_cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= batch.size()) break;
          node_result nr =
              process_node(ctx, wlp, batch[i], /*reload_basis=*/true,
                           round_prune_obj, round_probe_allowance, pc_counts,
                           wl, wu);
          nr.processed_by = w;
          results[i] = std::move(nr);
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          if (--unfinished == 0) cv_done.notify_one();
        }
      }
    };

    std::vector<std::thread> team;
    team.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) team.emplace_back(round_worker, w);

    stopwatch log_watch;
    long round = 0;
    bool stop = false;
    while (!stop && !open.empty()) {
      const double open_bound = *open_bounds.begin();
      if (have_incumbent) {
        const double denom = std::max(1.0, std::abs(incumbent_obj));
        if ((incumbent_obj - open_bound) / denom <= options.relative_gap ||
            incumbent_obj - open_bound <= options.absolute_gap)
          break;
      }
      if (nodes >= options.max_nodes || time_budget.expired()) {
        hit_limit = true;
        break;
      }

      // Deterministic selection: dfs keeps LIFO order (newest id first);
      // best_estimate alternates estimate-first rounds with periodic
      // best-bound rounds, mirroring the sequential hybrid backtracking at
      // round granularity.
      ++round;
      bool by_bound = false;
      bool by_estimate = false;
      if (options.node_selection == node_rule::best_estimate) {
        by_bound = options.backtrack_interval > 0 &&
                   round % options.backtrack_interval == 0;
        by_estimate = !by_bound && round % 2 == 0;
      }
      auto better = [&](const bb_node& a, const bb_node& b) {
        if (!by_bound && !by_estimate) return a.id > b.id;
        if (by_bound) {
          if (a.parent_bound != b.parent_bound)
            return a.parent_bound < b.parent_bound;
          if (a.estimate != b.estimate) return a.estimate < b.estimate;
          return a.id < b.id;
        }
        if (a.estimate != b.estimate) return a.estimate < b.estimate;
        if (a.parent_bound != b.parent_bound)
          return a.parent_bound < b.parent_bound;
        return a.id < b.id;
      };
      const std::size_t take =
          std::min<std::size_t>(static_cast<std::size_t>(width), open.size());
      std::partial_sort(open.begin(),
                        open.begin() + static_cast<std::ptrdiff_t>(take),
                        open.end(), better);
      batch.assign(open.begin(),
                   open.begin() + static_cast<std::ptrdiff_t>(take));
      open.erase(open.begin(),
                 open.begin() + static_cast<std::ptrdiff_t>(take));

      round_prune_obj = have_incumbent ? incumbent_obj : inf;
      round_probe_allowance = 0;
      if (options.branching == branch_rule::pseudocost &&
          options.reliability > 0 && probes < options.strong_branch_limit)
        round_probe_allowance = options.strong_branch_limit - probes;

      results.assign(batch.size(), node_result{});
      batch_cursor.store(0, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mu);
        unfinished = threads;
        ++generation;
      }
      cv_start.notify_all();
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_done.wait(lock, [&] { return unfinished == 0; });
      }

      // Commit in ascending node-id order, never in completion order.
      std::vector<std::size_t> order(batch.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return batch[a].id < batch[b].id;
      });
      for (const std::size_t i : order) {
        const bb_node& bnode = batch[i];
        node_result& nr = results[i];
        worker_stats& ws = wstats[static_cast<std::size_t>(nr.processed_by)];
        simplex_iterations += nr.iterations;
        dual_iterations += nr.dual_iterations;
        ws.simplex_iterations += nr.iterations;
        ws.dual_simplex_iterations += nr.dual_iterations;
        probes += nr.probes_run;
        if (nr.kind == node_kind::skipped) {
          open_bounds.erase(open_bounds.find(bnode.parent_bound));
          continue; // parent-bound pruned before any work: not counted
        }
        if (nr.kind == node_kind::time_limit) {
          // Unresolved: keep its bound entry so the dual bound stays
          // conservative, and unwind (determinism is void once a limit
          // fires mid-search, the sequential engine's caveat too).
          hit_limit = true;
          stop = true;
          continue;
        }
        open_bounds.erase(open_bounds.find(bnode.parent_bound));
        ++nodes;
        ++ws.nodes;
        if (!root_solved && bnode.id == 0 && nr.bound != -inf) {
          root_lp_bound = nr.bound;
          root_solved = true;
        }
        if (nr.kind == node_kind::unbounded) {
          unbounded = true;
          stop = true;
          continue;
        }
        if (nr.kind == node_kind::dropped) {
          log_at(log_level::warn, "milp: dropped node after iteration limit");
          continue;
        }
        if (nr.kind == node_kind::integral) {
          if (nr.candidate_feasible &&
              (!have_incumbent ||
               nr.candidate_obj < incumbent_obj - options.absolute_gap)) {
            have_incumbent = true;
            incumbent_obj = nr.candidate_obj;
            incumbent_values = std::move(nr.candidate);
            if (options.log_progress)
              log_at(log_level::info, "milp: incumbent ",
                     sf.objective_sign * incumbent_obj + sf.objective_constant,
                     " at node ", nodes);
          }
          continue;
        }
        if (nr.kind != node_kind::branched) continue; // prop/bound/infeasible
        if (have_incumbent &&
            nr.bound >= incumbent_obj - options.absolute_gap)
          continue; // an earlier commit of this round improved the incumbent
        branch_output br =
            commit_branch(ctx, bnode, nr, pseudocosts, next_node_id);
        if (!br.down_infeasible) open_bounds.insert(nr.bound);
        if (!br.up_infeasible) open_bounds.insert(nr.bound);
        if (!br.down_infeasible) open.push_back(std::move(br.down));
        if (!br.up_infeasible) open.push_back(std::move(br.up));
      }

      if (options.log_progress && log_watch.elapsed_seconds() > 2.0) {
        log_watch.reset();
        log_at(log_level::info, "milp: nodes=", nodes, " open=", open.size(),
               " incumbent=",
               have_incumbent
                   ? std::to_string(sf.objective_sign * incumbent_obj +
                                    sf.objective_constant)
                   : std::string("none"));
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu);
      shutdown = true;
    }
    cv_start.notify_all();
    for (std::thread& t : team) t.join();

    result.workers = std::move(wstats);
    return finish(!open_bounds.empty(),
                  open_bounds.empty() ? inf : *open_bounds.begin());
  }

  if (threads > 1) {
    // -------------------------------------------- opportunistic pool engine
    // A shared open pool under one mutex. Each worker dives on its own
    // preferred child without touching the pool (warm basis kept hot, the
    // sequential plunge); a finished dive pulls the best pool node by the
    // node rule -- pulling a node another worker produced counts as a
    // steal -- and re-solves it from the node's recorded parent basis.
    // `pool_bounds` holds one entry per open OR in-flight node (erased at
    // commit), so the global dual bound and the gap test stay conservative
    // while nodes are being processed.
    std::mutex mu;
    std::condition_variable cv;
    std::vector<bb_node> pool;
    std::multiset<double> pool_bounds;
    long next_node_id = 0;
    long backtracks = 0;
    int active = 0;
    bool stop = false;
    std::atomic<double> prune_obj{have_incumbent ? incumbent_obj : inf};
    std::atomic<long> probes_issued{0};
    std::vector<worker_stats> wstats(static_cast<std::size_t>(threads));
    stopwatch log_watch;

    {
      bb_node root_node;
      root_node.id = next_node_id++;
      root_node.warm = root_solved ? capture_basis(*lp, n) : nullptr;
      pool.push_back(std::move(root_node));
      pool_bounds.insert(-inf);
    }

    // Callers hold mu.
    auto pool_gap_closed = [&]() {
      if (!have_incumbent) return false;
      const double bound = pool_bounds.empty() ? inf : *pool_bounds.begin();
      if (bound == inf) return true;
      const double denom = std::max(1.0, std::abs(incumbent_obj));
      return (incumbent_obj - bound) / denom <= options.relative_gap ||
             incumbent_obj - bound <= options.absolute_gap;
    };
    auto select_pool = [&]() -> bb_node {
      std::size_t pick = pool.size() - 1; // dfs: LIFO
      if (options.node_selection == node_rule::best_estimate) {
        ++backtracks;
        const bool by_bound = options.backtrack_interval > 0 &&
                              backtracks % options.backtrack_interval == 0;
        const bool by_estimate = !by_bound && backtracks % 2 == 0;
        if (by_bound || by_estimate) {
          pick = 0;
          for (std::size_t i = 1; i < pool.size(); ++i) {
            const bb_node& a = pool[i];
            const bb_node& b = pool[pick];
            bool better;
            if (by_bound) {
              better = a.parent_bound != b.parent_bound
                           ? a.parent_bound < b.parent_bound
                           : (a.estimate != b.estimate
                                  ? a.estimate < b.estimate
                                  : a.id < b.id);
            } else {
              better = a.estimate != b.estimate
                           ? a.estimate < b.estimate
                           : (a.parent_bound != b.parent_bound
                                  ? a.parent_bound < b.parent_bound
                                  : a.id < b.id);
            }
            if (better) pick = i;
          }
        }
      }
      bb_node node = std::move(pool[pick]);
      pool[pick] = std::move(pool.back());
      pool.pop_back();
      return node;
    };

    auto worker = [&](int w) {
      simplex_solver wlp(tree_lp_problem, options.lp);
      std::vector<double> wl, wu;
      std::optional<bb_node> hand;
      // True while this worker owns an in-flight node (processing it or
      // holding the dive continuation in `hand`); `active` sums these, so
      // pool-empty + active == 0 really means the tree is exhausted.
      bool counted = false;
      std::uint64_t seen = 0; // per-worker board stamp
      worker_stats& ws = wstats[static_cast<std::size_t>(w)];

      // Only the ≤ strong_branch_candidates probe-candidate counts are
      // snapshotted under the lock (the full table would be a large copy
      // per node).
      auto pc_counts = [&](const std::vector<int>& vars,
                           std::vector<std::pair<long, long>>& out) {
        out.resize(vars.size());
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < vars.size(); ++i)
          out[i] = {pseudocosts.up_count[vars[i]],
                    pseudocosts.down_count[vars[i]]};
      };

      for (;;) {
        if (board) {
          double bobj = 0.0;
          std::vector<double> bvals;
          if (board->fetch(seen, bobj, bvals)) {
            // Re-validate outside the lock, adopt under it.
            for (int j = 0; j < n; ++j)
              if (sf.is_integer[j]) bvals[j] = std::round(bvals[j]);
            if (m.is_feasible(bvals, 1e-5)) {
              const double min_obj =
                  sf.objective_sign *
                  (m.evaluate_objective(bvals) - sf.objective_constant);
              std::lock_guard<std::mutex> lock(mu);
              if (!have_incumbent ||
                  min_obj < incumbent_obj - options.absolute_gap) {
                have_incumbent = true;
                incumbent_obj = min_obj;
                incumbent_values = std::move(bvals);
                prune_obj.store(min_obj, std::memory_order_relaxed);
              }
            }
          }
        }

        bb_node node;
        bool reload = true;
        {
          std::unique_lock<std::mutex> lock(mu);
          if (!stop && (nodes >= options.max_nodes || time_budget.expired())) {
            hit_limit = true;
            stop = true;
          }
          if (stop) {
            if (counted) --active;
            cv.notify_all();
            break;
          }
          if (hand) {
            node = std::move(*hand);
            hand.reset();
            reload = false; // dive on: still counted, basis still hot
          } else {
            cv.wait(lock,
                    [&] { return stop || !pool.empty() || active == 0; });
            if (stop || pool.empty()) { // stop, or exhausted (active == 0)
              cv.notify_all();
              break;
            }
            node = select_pool();
            if (node.producer >= 0 && node.producer != w) ++ws.steals;
            ++active;
            counted = true;
          }
        }

        long allowance = 0;
        if (options.branching == branch_rule::pseudocost &&
            options.reliability > 0) {
          const long issued = probes_issued.load(std::memory_order_relaxed);
          if (issued < options.strong_branch_limit)
            allowance = options.strong_branch_limit - issued;
        }
        node_result nr = process_node(
            ctx, wlp, node, reload, prune_obj.load(std::memory_order_relaxed),
            allowance, pc_counts, wl, wu);
        if (nr.probes_run > 0)
          probes_issued.fetch_add(nr.probes_run, std::memory_order_relaxed);
        ws.simplex_iterations += nr.iterations;
        ws.dual_simplex_iterations += nr.dual_iterations;

        double offer_obj = 0.0;
        std::vector<double> offer_vals;
        {
          std::unique_lock<std::mutex> lock(mu);
          pool_bounds.erase(pool_bounds.find(node.parent_bound));
          if (!root_solved && node.id == 0 && nr.bound != -inf) {
            root_lp_bound = nr.bound;
            root_solved = true;
          }
          switch (nr.kind) {
            case node_kind::skipped:
              break; // not counted, matching the sequential engine
            case node_kind::time_limit:
              ++nodes;
              ++ws.nodes;
              hit_limit = true;
              stop = true;
              break;
            case node_kind::unbounded:
              ++nodes;
              ++ws.nodes;
              unbounded = true;
              stop = true;
              break;
            case node_kind::dropped:
              ++nodes;
              ++ws.nodes;
              log_at(log_level::warn,
                     "milp: dropped node after iteration limit");
              break;
            case node_kind::prop_pruned:
            case node_kind::bound_pruned:
            case node_kind::lp_infeasible:
              ++nodes;
              ++ws.nodes;
              break;
            case node_kind::integral:
              ++nodes;
              ++ws.nodes;
              if (nr.candidate_feasible &&
                  (!have_incumbent ||
                   nr.candidate_obj < incumbent_obj - options.absolute_gap)) {
                have_incumbent = true;
                incumbent_obj = nr.candidate_obj;
                incumbent_values = nr.candidate;
                prune_obj.store(incumbent_obj, std::memory_order_relaxed);
                if (board) {
                  offer_obj = sf.objective_sign * incumbent_obj +
                              sf.objective_constant;
                  offer_vals = std::move(nr.candidate);
                }
                if (options.log_progress)
                  log_at(log_level::info, "milp: incumbent ",
                         sf.objective_sign * incumbent_obj +
                             sf.objective_constant,
                         " at node ", nodes);
              }
              break;
            case node_kind::branched: {
              ++nodes;
              ++ws.nodes;
              if (have_incumbent &&
                  nr.bound >= incumbent_obj - options.absolute_gap)
                break; // raced: the incumbent improved during the LP solve
              branch_output br =
                  commit_branch(ctx, node, nr, pseudocosts, next_node_id);
              br.down.producer = w;
              br.up.producer = w;
              if (!br.down_infeasible) pool_bounds.insert(nr.bound);
              if (!br.up_infeasible) pool_bounds.insert(nr.bound);
              bb_node& preferred = br.down_preferred ? br.down : br.up;
              bb_node& sibling = br.down_preferred ? br.up : br.down;
              const bool preferred_pruned = br.down_preferred
                                                ? br.down_infeasible
                                                : br.up_infeasible;
              const bool sibling_pruned = br.down_preferred
                                              ? br.up_infeasible
                                              : br.down_infeasible;
              if (!sibling_pruned) pool.push_back(std::move(sibling));
              if (!preferred_pruned) hand = std::move(preferred);
              break;
            }
          }
          if (!hand) {
            --active;
            counted = false;
          }
          if (pool_gap_closed()) stop = true;
          if (options.log_progress && log_watch.elapsed_seconds() > 2.0) {
            log_watch.reset();
            log_at(log_level::info, "milp: nodes=", nodes,
                   " open=", pool.size(), " incumbent=",
                   have_incumbent
                       ? std::to_string(sf.objective_sign * incumbent_obj +
                                        sf.objective_constant)
                       : std::string("none"));
          }
          cv.notify_all();
          if (stop) break;
        }
        // Publish to the portfolio board outside the pool lock.
        if (!offer_vals.empty()) board->offer(offer_obj, std::move(offer_vals));
      }
    };

    std::vector<std::thread> team;
    team.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) team.emplace_back(worker, w);
    for (std::thread& t : team) t.join();

    for (const worker_stats& ws : wstats) {
      simplex_iterations += ws.simplex_iterations;
      dual_iterations += ws.dual_simplex_iterations;
    }
    probes = probes_issued.load(std::memory_order_relaxed);
    result.workers = std::move(wstats);
    return finish(!pool_bounds.empty(),
                  pool_bounds.empty() ? inf : *pool_bounds.begin());
  }

  // ------------------------------------------------ sequential tree engine
  // Open-node pool. The node "in hand" is the dive continuation (explored
  // without touching the pool, which keeps dfs mode's LIFO order exact);
  // a finished dive backtracks through select_open().
  std::vector<bb_node> open;
  std::optional<bb_node> in_hand;
  std::multiset<double> open_bounds; // bounds of open + in-hand nodes
  long next_node_id = 0;
  {
    bb_node root_node;
    root_node.parent_bound = -inf;
    root_node.id = next_node_id++;
    in_hand = std::move(root_node);
    open_bounds.insert(-inf);
  }

  long backtracks = 0;
  stopwatch log_watch;

  // Reusable per-node propagation bound buffers.
  std::vector<double> prop_lower;
  std::vector<double> prop_upper;

  auto select_open = [&]() -> bb_node {
    std::size_t pick = open.size() - 1; // dfs: LIFO
    if (options.node_selection == node_rule::best_estimate) {
      // Hybrid backtracking: most backtracks stay LIFO (the adjacent open
      // node keeps the warm basis hot); every second one restarts the dive
      // from the best-estimate node, and every `backtrack_interval`-th from
      // the best-bound node (pumping the global dual bound). Pure
      // best-first jumping doubles the LP cost per node -- the warm dual
      // re-solve only pays off between nearby nodes.
      ++backtracks;
      const bool by_bound = options.backtrack_interval > 0 &&
                            backtracks % options.backtrack_interval == 0;
      const bool by_estimate = !by_bound && backtracks % 2 == 0;
      if (by_bound || by_estimate) {
        pick = 0;
        for (std::size_t i = 1; i < open.size(); ++i) {
          const bb_node& a = open[i];
          const bb_node& b = open[pick];
          bool better;
          if (by_bound) {
            better = a.parent_bound != b.parent_bound
                         ? a.parent_bound < b.parent_bound
                         : (a.estimate != b.estimate ? a.estimate < b.estimate
                                                     : a.id < b.id);
          } else {
            better = a.estimate != b.estimate
                         ? a.estimate < b.estimate
                         : (a.parent_bound != b.parent_bound
                                ? a.parent_bound < b.parent_bound
                                : a.id < b.id);
          }
          if (better) pick = i;
        }
      }
    }
    bb_node node = std::move(open[pick]);
    open[pick] = std::move(open.back());
    open.pop_back();
    return node;
  };

  auto apply_node_bounds = [&](const bb_node& node) {
    for (int j = 0; j < n; ++j)
      lp->set_variable_bounds(j, root_lower[j], root_upper[j]);
    for (const bound_change& change : node.changes)
      lp->set_variable_bounds(change.var, change.lower, change.upper);
  };

  auto best_open_bound = [&]() {
    double bound = open_bounds.empty() ? inf : *open_bounds.begin();
    return bound;
  };

  auto gap_closed = [&]() {
    if (!have_incumbent) return false;
    const double bound = best_open_bound();
    if (bound == inf) return true; // tree exhausted
    const double denom = std::max(1.0, std::abs(incumbent_obj));
    return (incumbent_obj - bound) / denom <= options.relative_gap ||
           incumbent_obj - bound <= options.absolute_gap;
  };

  while (in_hand || !open.empty()) {
    if (board) {
      double bobj = 0.0;
      std::vector<double> bvals;
      if (board->fetch(board_seen, bobj, bvals))
        try_incumbent(std::move(bvals));
    }
    if (gap_closed()) break;
    if (nodes >= options.max_nodes || time_budget.expired()) {
      hit_limit = true;
      break;
    }

    bb_node node;
    if (in_hand) {
      node = std::move(*in_hand);
      in_hand.reset();
    } else {
      node = select_open();
    }
    open_bounds.erase(open_bounds.find(node.parent_bound));

    // Bound-based pruning against the incumbent.
    if (have_incumbent && node.parent_bound >= incumbent_obj - options.absolute_gap)
      continue;

    if (tree_rows && !node.changes.empty()) {
      // Per-node propagation: branching fixes collapse big-M disjunctions,
      // so a few interval passes often prune the node (or shrink its LP)
      // before any pivot is spent.
      prop_lower = root_lower;
      prop_upper = root_upper;
      for (const bound_change& change : node.changes) {
        prop_lower[change.var] = change.lower;
        prop_upper[change.var] = change.upper;
      }
      if (!propagate_node(*tree_rows, sf.is_integer, prop_lower, prop_upper,
                          options.node_propagation_passes)) {
        ++nodes; // processed (pruned by propagation, no LP needed)
        continue;
      }
      for (int j = 0; j < n; ++j)
        lp->set_variable_bounds(j, prop_lower[j], prop_upper[j]);
    } else {
      apply_node_bounds(node);
    }
    const lp_result relax = lp->solve(time_budget, /*warm_start=*/true);
    ++nodes;
    simplex_iterations += relax.iterations;
    dual_iterations += relax.dual_iterations;

    if (options.log_progress && log_watch.elapsed_seconds() > 2.0) {
      log_watch.reset();
      log_at(log_level::info, "milp: nodes=", nodes,
             " open=", open.size(), " incumbent=",
             have_incumbent ? std::to_string(sf.objective_sign * incumbent_obj +
                                             sf.objective_constant)
                            : std::string("none"));
    }

    if (relax.status == lp_status::time_limit) {
      hit_limit = true;
      break;
    }
    if (relax.status == lp_status::infeasible) continue;
    if (relax.status == lp_status::unbounded) {
      unbounded = true;
      break;
    }
    if (relax.status == lp_status::iteration_limit) {
      // Treat as unresolved: requeue would loop; drop with a warning. The
      // iteration cap is high enough that this indicates numerical trouble.
      log_at(log_level::warn, "milp: dropped node after iteration limit");
      continue;
    }

    const double node_bound = relax.objective;
    if (!root_solved) {
      root_lp_bound = node_bound;
      root_solved = true;
    }
    if (have_incumbent && node_bound >= incumbent_obj - options.absolute_gap)
      continue;

    // Collect fractional branching candidates.
    std::vector<std::pair<double, int>> fractional; // (closeness to 0.5, var)
    for (int j = 0; j < n; ++j) {
      if (!sf.is_integer[j]) continue;
      const double frac = fractional_part(relax.x[j]);
      if (frac <= int_tol) continue;
      fractional.emplace_back(0.5 - std::abs(frac - 0.5), j);
    }

    // Reliability initialization: before trusting pseudocosts, seed them
    // with limited strong-branching probes -- warm-started dual re-solves
    // with a tight iteration cap. An infeasible probe direction prunes that
    // child outright.
    bool down_infeasible = false;
    bool up_infeasible = false;
    int probed_infeasible_var = -1;
    if (options.branching == branch_rule::pseudocost &&
        options.reliability > 0 && probes < options.strong_branch_limit &&
        !fractional.empty()) {
      std::vector<std::pair<double, int>> order = fractional;
      std::sort(order.begin(), order.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      if (static_cast<int>(order.size()) > options.strong_branch_candidates)
        order.resize(static_cast<std::size_t>(options.strong_branch_candidates));
      for (const auto& [closeness, j] : order) {
        (void)closeness;
        if (probes >= options.strong_branch_limit) break;
        if (std::min(pseudocosts.up_count[j], pseudocosts.down_count[j]) >=
            options.reliability)
          continue;
        const double value = relax.x[j];
        const double floor_val = std::floor(value);
        const double frac = value - floor_val;
        const double node_lower = lp->variable_lower(j);
        const double node_upper = lp->variable_upper(j);
        bool local_down_infeasible = false;
        bool local_up_infeasible = false;
        for (const bool up : {false, true}) {
          if (time_budget.expired()) break;
          if (up)
            lp->set_variable_bounds(j, floor_val + 1.0, node_upper);
          else
            lp->set_variable_bounds(j, node_lower, floor_val);
          const lp_result probe = lp->solve(
              time_budget, /*warm_start=*/true,
              options.strong_branch_iteration_limit);
          lp->set_variable_bounds(j, node_lower, node_upper);
          ++probes;
          simplex_iterations += probe.iterations;
          dual_iterations += probe.dual_iterations;
          if (probe.status == lp_status::optimal) {
            const double degradation =
                std::max(0.0, probe.objective - node_bound);
            const double distance = up ? 1.0 - frac : frac;
            pseudocosts.record(j, up,
                               degradation / std::max(distance, 1e-6));
          } else if (probe.status == lp_status::infeasible) {
            // Infeasibility holds only under this node's bound set, so it
            // must not pollute the search-global pseudocost averages; the
            // child is pruned below instead.
            if (up)
              local_up_infeasible = true;
            else
              local_down_infeasible = true;
          }
          // Iteration/time-limited probes carry no trustworthy bound.
        }
        if (local_down_infeasible || local_up_infeasible) {
          probed_infeasible_var = j;
          down_infeasible = local_down_infeasible;
          up_infeasible = local_up_infeasible;
        }
      }
    }

    // Pick the branching variable.
    int branch_var = -1;
    double branch_frac = 0.0;
    double best_score = -1.0;
    for (const auto& [closeness, j] : fractional) {
      double score;
      if (options.branching == branch_rule::pseudocost) {
        score = pseudocosts.score(j, relax.x[j] - std::floor(relax.x[j]), 1.0);
      } else {
        score = closeness; // most fractional
      }
      if (score > best_score) {
        best_score = score;
        branch_var = j;
        branch_frac = relax.x[j];
      }
    }
    // A probe that proved one side infeasible makes its variable the best
    // branch: one child is pruned before it is ever solved.
    if (probed_infeasible_var >= 0) {
      branch_var = probed_infeasible_var;
      branch_frac = relax.x[branch_var];
    } else {
      down_infeasible = up_infeasible = false;
    }

    if (branch_var < 0) {
      // Integral LP optimum: candidate incumbent.
      if (try_incumbent(relax.x) && options.log_progress)
        log_at(log_level::info, "milp: incumbent ",
               sf.objective_sign * incumbent_obj + sf.objective_constant,
               " at node ", nodes);
      continue;
    }

    // Record pseudocost data for the parent of this node (per unit of
    // fractional distance, matching the strong-branching probes).
    if (!node.changes.empty()) {
      const bound_change& last = node.changes.back();
      const double degradation = node_bound - node.parent_bound;
      if (node.parent_bound != -inf && degradation >= 0.0)
        pseudocosts.record(last.var, last.lower > root_lower[last.var],
                           degradation /
                               std::max(node.branch_distance, 1e-6));
    }

    const double floor_val = std::floor(branch_frac);
    const double frac = branch_frac - floor_val;

    // Completion estimate: the branch direction's expected degradation plus
    // the cheapest rounding of every other fractional variable.
    const double fallback = pseudocosts.average();
    double estimate_rest = 0.0;
    if (options.node_selection == node_rule::best_estimate) {
      for (const auto& [closeness, j] : fractional) {
        (void)closeness;
        if (j == branch_var) continue;
        const double fj = relax.x[j] - std::floor(relax.x[j]);
        estimate_rest +=
            std::min(pseudocosts.down_cost(j, fallback) * fj,
                     pseudocosts.up_cost(j, fallback) * (1.0 - fj));
      }
    }

    bb_node down_child;
    down_child.changes = node.changes;
    down_child.changes.push_back(
        {branch_var, lp->variable_lower(branch_var), floor_val});
    down_child.parent_bound = node_bound;
    down_child.id = next_node_id++;
    down_child.branch_distance = frac;
    down_child.estimate =
        node_bound + pseudocosts.down_cost(branch_var, fallback) * frac +
        estimate_rest;

    bb_node up_child;
    up_child.changes = node.changes;
    up_child.changes.push_back(
        {branch_var, floor_val + 1.0, lp->variable_upper(branch_var)});
    up_child.parent_bound = node_bound;
    up_child.id = next_node_id++;
    up_child.branch_distance = 1.0 - frac;
    up_child.estimate =
        node_bound +
        pseudocosts.up_cost(branch_var, fallback) * (1.0 - frac) +
        estimate_rest;

    // Plunge: keep the child nearest the LP value in hand; the sibling
    // joins the open pool (push_back keeps dfs mode's LIFO order exact).
    // Children whose side a strong-branching probe proved infeasible are
    // never queued.
    const bool down_preferred = frac <= 0.5;
    bb_node& preferred = down_preferred ? down_child : up_child;
    bb_node& sibling = down_preferred ? up_child : down_child;
    const bool preferred_pruned =
        down_preferred ? down_infeasible : up_infeasible;
    const bool sibling_pruned = down_preferred ? up_infeasible : down_infeasible;
    if (!sibling_pruned) open.push_back(std::move(sibling));
    if (!preferred_pruned) in_hand = std::move(preferred);
    if (!down_infeasible) open_bounds.insert(node_bound);
    if (!up_infeasible) open_bounds.insert(node_bound);
  }

  return finish(in_hand.has_value() || !open.empty(), best_open_bound());
}

} // namespace transtore::milp
