// Branch-and-bound MILP solver.
//
// This is the repository's replacement for the commercial solver (Gurobi)
// used in the paper's experiments. It is a classic LP-based branch and
// bound:
//
//   * LP relaxations solved by the bounded-variable primal/dual simplex
//     (milp/simplex.h), warm started across nodes;
//   * iterated root presolve (milp/presolve.h) -- bound propagation,
//     singleton/redundant row removal, big-M coefficient strengthening --
//     which is what makes the paper's big-M scheduling formulation
//     tractable (the older row-propagation pass remains as the
//     presolve-off fallback);
//   * root cutting planes (milp/cuts.h): Gomory mixed-integer and knapsack
//     cover cuts separated in rounds over the optimal root basis;
//   * per-node bound propagation: branching fixes collapse the big-M
//     disjunctions, pruning children before their LPs are solved;
//   * depth-first plunging by default, with best-estimate diving plus
//     periodic best-bound backtracking available (`node_rule`) for
//     incumbent quality under tight time limits, and global best-bound
//     tracking for gap reporting;
//   * most-fractional or pseudocost branching;
//   * optional caller-supplied incumbent (used by the synthesis flow to
//     seed the search with the heuristic schedule), deterministic results,
//     and hard time/node limits returning best-effort incumbents -- the
//     paper's own protocol for the larger assays.
#pragma once

#include <optional>
#include <vector>

#include "milp/cuts.h"
#include "milp/model.h"
#include "milp/presolve.h"
#include "milp/simplex.h"

namespace transtore::milp {

enum class solve_status {
  optimal,          // proven optimal within tolerances
  feasible,         // feasible incumbent, optimality not proven (limits hit)
  infeasible,       // no feasible assignment exists
  unbounded,        // objective unbounded
  no_solution,      // limits hit before any incumbent was found
};

enum class branch_rule { most_fractional, pseudocost };

/// Open-node selection policy.
///   * dfs: depth-first with plunging, pure LIFO -- the default: adjacent
///     nodes keep the warm dual basis hot, which is what lets the
///     propagation+cuts stack prove optimality (IVD closes in ~12 s).
///   * best_estimate: dives like dfs, but alternate backtracks restart the
///     dive from the open node with the best pseudocost completion
///     estimate, and every `backtrack_interval`-th backtrack from the
///     best-bound node (pumping the global dual bound). Trades LP warmth
///     for incumbent quality under tight time limits (RA16's incumbent
///     improves 323.5 -> 297.5 in the 15 s bench).
enum class node_rule { dfs, best_estimate };

struct solver_options {
  double time_limit_seconds = 60.0;
  /// Cooperative cancellation: when the token fires, the search unwinds at
  /// the next node/LP-iteration boundary and returns the best incumbent so
  /// far (status feasible) or no_solution -- the same contract as the time
  /// limit. Default-constructed tokens never fire.
  cancel_token cancel;
  long max_nodes = 5'000'000;
  double integrality_tolerance = 1e-6;
  double relative_gap = 1e-6;
  double absolute_gap = 1e-9;
  branch_rule branching = branch_rule::pseudocost;
  bool root_propagation = true;
  /// Iterated root presolve (presolve.h): singleton-row elimination,
  /// activity-based bound tightening, big-M coefficient strengthening,
  /// redundant-row removal, variable fixing. Supersedes root_propagation
  /// when on; off reproduces the pre-presolve solver for ablations.
  bool presolve = true;
  presolve_options presolve_opts;
  /// Root cutting planes (cuts.h): Gomory mixed-integer + knapsack cover
  /// cuts separated in rounds over the optimal root basis, appended as rows
  /// the dual simplex warm-restarts over. Off = no cutting (ablation).
  bool cuts = true;
  cut_options cut;
  /// Per-node bound propagation: after applying a node's branching bound
  /// changes, a few interval-arithmetic passes over the rows (including cut
  /// rows) tighten the remaining variable bounds before the LP re-solve --
  /// on the big-M formulations a fixed binary collapses its disjunction, so
  /// children are often pruned without solving any LP. Off = root-only
  /// propagation (today's behaviour).
  bool node_propagation = true;
  /// Propagation passes per node (root presolve handles the root).
  int node_propagation_passes = 3;
  /// Node selection (see node_rule).
  node_rule node_selection = node_rule::dfs;
  /// Under best_estimate, every Nth backtrack picks the best-bound open
  /// node instead of the best-estimate one.
  int backtrack_interval = 8;
  bool log_progress = false;
  /// LP engine tunables, forwarded to the simplex (allow_dual / pricing are
  /// the ablation switches back to the primal-only seed behaviour).
  simplex_options lp;
  /// Pseudocost reliability: a variable's pseudocosts are initialized by
  /// strong-branching probes (cheap dual re-solves) until each direction
  /// has this many observations. 0 disables probing.
  int reliability = 4;
  /// Per-direction iteration cap of one strong-branching probe.
  long strong_branch_iteration_limit = 100;
  /// Total strong-branching probes allowed across the whole search.
  long strong_branch_limit = 100;
  /// Fractional candidates probed per node (most fractional first).
  int strong_branch_candidates = 8;
  /// Optional known-feasible assignment used as the initial incumbent.
  std::optional<std::vector<double>> warm_start;
};

/// Seed-equivalent configuration for ablations/benchmarks: primal-only
/// simplex with Dantzig pricing and most-fractional branching, no
/// strong-branching probes.
[[nodiscard]] solver_options classic_primal_only_options();

struct solution {
  solve_status status = solve_status::no_solution;
  double objective = 0.0;   // user-sense objective of the incumbent
  double best_bound = 0.0;  // user-sense dual bound
  std::vector<double> values;
  long nodes_explored = 0;
  long simplex_iterations = 0;       // total, including probes and cut rounds
  long dual_simplex_iterations = 0;  // subset taken by the dual method
  long strong_branch_probes = 0;     // reliability-initialization re-solves
  // Presolve + cutting-plane footprint of the root (all zero when the
  // respective options are off).
  int presolve_rows_removed = 0;
  int presolve_bounds_tightened = 0;
  int presolve_coefficients_tightened = 0;
  int presolve_variables_fixed = 0;
  int cut_rounds = 0;       // separation rounds run at the root
  int cuts_added = 0;       // cut rows appended across all rounds
  int cuts_active = 0;      // cut rows alive in the tree's LP (post purge)
  double root_bound = 0.0;  // user-sense LP bound after presolve + cuts
  double seconds = 0.0;
  /// True when the search stopped on the wall-clock limit or the cancel
  /// token (as opposed to node limits or natural exhaustion); the incumbent,
  /// if any, is best-effort.
  bool interrupted = false;

  [[nodiscard]] bool has_solution() const {
    return status == solve_status::optimal || status == solve_status::feasible;
  }
  [[nodiscard]] double value(variable v) const {
    return values.at(static_cast<std::size_t>(v.index));
  }
  /// Relative optimality gap (0 when proven optimal; large when unknown).
  [[nodiscard]] double gap() const;
};

/// Solve a MILP. Throws invalid_input_error for malformed models; limit and
/// infeasibility outcomes are reported through solution::status, not thrown.
solution solve(const model& m, const solver_options& options = {});

} // namespace transtore::milp
