// Branch-and-bound MILP solver.
//
// This is the repository's replacement for the commercial solver (Gurobi)
// used in the paper's experiments. It is a classic LP-based branch and
// bound:
//
//   * LP relaxations solved by the bounded-variable primal simplex
//     (milp/simplex.h), warm started across nodes;
//   * root-node bound propagation (interval arithmetic on rows), which is
//     what makes the paper's big-M scheduling formulation tractable;
//   * depth-first search with plunging (the child nearest the LP value is
//     explored first) and global best-bound tracking for gap reporting;
//   * most-fractional or pseudocost branching;
//   * optional caller-supplied incumbent (used by the synthesis flow to
//     seed the search with the heuristic schedule), deterministic results,
//     and hard time/node limits returning best-effort incumbents -- the
//     paper's own protocol for the larger assays.
#pragma once

#include <optional>
#include <vector>

#include "milp/model.h"
#include "milp/simplex.h"

namespace transtore::milp {

enum class solve_status {
  optimal,          // proven optimal within tolerances
  feasible,         // feasible incumbent, optimality not proven (limits hit)
  infeasible,       // no feasible assignment exists
  unbounded,        // objective unbounded
  no_solution,      // limits hit before any incumbent was found
};

enum class branch_rule { most_fractional, pseudocost };

struct solver_options {
  double time_limit_seconds = 60.0;
  /// Cooperative cancellation: when the token fires, the search unwinds at
  /// the next node/LP-iteration boundary and returns the best incumbent so
  /// far (status feasible) or no_solution -- the same contract as the time
  /// limit. Default-constructed tokens never fire.
  cancel_token cancel;
  long max_nodes = 5'000'000;
  double integrality_tolerance = 1e-6;
  double relative_gap = 1e-6;
  double absolute_gap = 1e-9;
  branch_rule branching = branch_rule::pseudocost;
  bool root_propagation = true;
  bool log_progress = false;
  /// LP engine tunables, forwarded to the simplex (allow_dual / pricing are
  /// the ablation switches back to the primal-only seed behaviour).
  simplex_options lp;
  /// Pseudocost reliability: a variable's pseudocosts are initialized by
  /// strong-branching probes (cheap dual re-solves) until each direction
  /// has this many observations. 0 disables probing.
  int reliability = 4;
  /// Per-direction iteration cap of one strong-branching probe.
  long strong_branch_iteration_limit = 100;
  /// Total strong-branching probes allowed across the whole search.
  long strong_branch_limit = 100;
  /// Fractional candidates probed per node (most fractional first).
  int strong_branch_candidates = 8;
  /// Optional known-feasible assignment used as the initial incumbent.
  std::optional<std::vector<double>> warm_start;
};

/// Seed-equivalent configuration for ablations/benchmarks: primal-only
/// simplex with Dantzig pricing and most-fractional branching, no
/// strong-branching probes.
[[nodiscard]] solver_options classic_primal_only_options();

struct solution {
  solve_status status = solve_status::no_solution;
  double objective = 0.0;   // user-sense objective of the incumbent
  double best_bound = 0.0;  // user-sense dual bound
  std::vector<double> values;
  long nodes_explored = 0;
  long simplex_iterations = 0;       // total, including probes
  long dual_simplex_iterations = 0;  // subset taken by the dual method
  long strong_branch_probes = 0;     // reliability-initialization re-solves
  double seconds = 0.0;
  /// True when the search stopped on the wall-clock limit or the cancel
  /// token (as opposed to node limits or natural exhaustion); the incumbent,
  /// if any, is best-effort.
  bool interrupted = false;

  [[nodiscard]] bool has_solution() const {
    return status == solve_status::optimal || status == solve_status::feasible;
  }
  [[nodiscard]] double value(variable v) const {
    return values.at(static_cast<std::size_t>(v.index));
  }
  /// Relative optimality gap (0 when proven optimal; large when unknown).
  [[nodiscard]] double gap() const;
};

/// Solve a MILP. Throws invalid_input_error for malformed models; limit and
/// infeasibility outcomes are reported through solution::status, not thrown.
solution solve(const model& m, const solver_options& options = {});

} // namespace transtore::milp
