// Branch-and-bound MILP solver.
//
// This is the repository's replacement for the commercial solver (Gurobi)
// used in the paper's experiments. It is a classic LP-based branch and
// bound:
//
//   * LP relaxations solved by the bounded-variable primal/dual simplex
//     (milp/simplex.h), warm started across nodes;
//   * iterated root presolve (milp/presolve.h) -- bound propagation,
//     singleton/redundant row removal, big-M coefficient strengthening --
//     which is what makes the paper's big-M scheduling formulation
//     tractable (the older row-propagation pass remains as the
//     presolve-off fallback);
//   * root cutting planes (milp/cuts.h): Gomory mixed-integer and knapsack
//     cover cuts separated in rounds over the optimal root basis;
//   * per-node bound propagation: branching fixes collapse the big-M
//     disjunctions, pruning children before their LPs are solved;
//   * depth-first plunging by default, with best-estimate diving plus
//     periodic best-bound backtracking available (`node_rule`) for
//     incumbent quality under tight time limits, and global best-bound
//     tracking for gap reporting;
//   * most-fractional or pseudocost branching;
//   * optional caller-supplied incumbent (used by the synthesis flow to
//     seed the search with the heuristic schedule), deterministic results,
//     and hard time/node limits returning best-effort incumbents -- the
//     paper's own protocol for the larger assays.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "milp/cuts.h"
#include "milp/model.h"
#include "milp/presolve.h"
#include "milp/simplex.h"

namespace transtore::milp {

enum class solve_status {
  optimal,          // proven optimal within tolerances
  feasible,         // feasible incumbent, optimality not proven (limits hit)
  infeasible,       // no feasible assignment exists
  unbounded,        // objective unbounded
  no_solution,      // limits hit before any incumbent was found
};

enum class branch_rule { most_fractional, pseudocost };

/// Per-worker breakdown of a parallel tree search (solution::workers): how
/// many nodes each thread processed, the simplex work it spent on them, and
/// how many pool nodes it pulled that another worker produced ("steals").
/// Which worker processed which node is scheduling noise -- only the totals
/// are deterministic in deterministic mode.
struct worker_stats {
  long nodes = 0;
  long simplex_iterations = 0;
  long dual_simplex_iterations = 0;
  long steals = 0;
};

/// Cross-solve shared incumbent for racing portfolios: several solves of
/// the SAME model (plus any heuristic that can produce full variable
/// assignments for it) publish improving incumbents here and adopt each
/// other's, so one racer's incumbent prunes every other racer's tree.
/// Objectives are in the user sense of the shared model; `minimize` fixes
/// the improvement direction. Thread-safe. Adopted values are re-validated
/// by the adopting solver (rounded, feasibility-checked), so a stale or
/// foreign assignment can never corrupt a search -- it is just ignored.
class incumbent_board {
public:
  explicit incumbent_board(bool minimize = true) : minimize_(minimize) {}

  /// Adopt (objective, values) when it improves on the board's incumbent.
  /// Returns true when adopted (the version stamp bumps).
  bool offer(double objective, std::vector<double> values);

  /// Cheap monotone change stamp: 0 while empty, bumps on every adoption.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Copy out the incumbent when the board is newer than `seen` (which is
  /// updated); false when empty or unchanged since `seen`.
  bool fetch(std::uint64_t& seen, double& objective,
             std::vector<double>& values) const;

  /// Board objective, or +/- infinity (per direction) while empty.
  [[nodiscard]] double best_objective() const;

private:
  const bool minimize_;
  mutable std::mutex lock_;
  std::atomic<std::uint64_t> version_{0};
  bool have_ = false;
  double objective_ = 0.0;
  std::vector<double> values_;
};

/// Open-node selection policy.
///   * dfs: depth-first with plunging, pure LIFO -- the default: adjacent
///     nodes keep the warm dual basis hot, which is what lets the
///     propagation+cuts stack prove optimality (IVD closes in ~12 s).
///   * best_estimate: dives like dfs, but alternate backtracks restart the
///     dive from the open node with the best pseudocost completion
///     estimate, and every `backtrack_interval`-th backtrack from the
///     best-bound node (pumping the global dual bound). Trades LP warmth
///     for incumbent quality under tight time limits (RA16's incumbent
///     improves 323.5 -> 297.5 in the 15 s bench).
enum class node_rule { dfs, best_estimate };

struct solver_options {
  double time_limit_seconds = 60.0;
  /// Cooperative cancellation: when the token fires, the search unwinds at
  /// the next node/LP-iteration boundary and returns the best incumbent so
  /// far (status feasible) or no_solution -- the same contract as the time
  /// limit. Default-constructed tokens never fire.
  cancel_token cancel;
  long max_nodes = 5'000'000;
  double integrality_tolerance = 1e-6;
  double relative_gap = 1e-6;
  double absolute_gap = 1e-9;
  branch_rule branching = branch_rule::pseudocost;
  bool root_propagation = true;
  /// Iterated root presolve (presolve.h): singleton-row elimination,
  /// activity-based bound tightening, big-M coefficient strengthening,
  /// redundant-row removal, variable fixing. Supersedes root_propagation
  /// when on; off reproduces the pre-presolve solver for ablations.
  bool presolve = true;
  presolve_options presolve_opts;
  /// Root cutting planes (cuts.h): Gomory mixed-integer + knapsack cover
  /// cuts separated in rounds over the optimal root basis, appended as rows
  /// the dual simplex warm-restarts over. Off = no cutting (ablation).
  bool cuts = true;
  cut_options cut;
  /// Per-node bound propagation: after applying a node's branching bound
  /// changes, a few interval-arithmetic passes over the rows (including cut
  /// rows) tighten the remaining variable bounds before the LP re-solve --
  /// on the big-M formulations a fixed binary collapses its disjunction, so
  /// children are often pruned without solving any LP. Off = root-only
  /// propagation (today's behaviour).
  bool node_propagation = true;
  /// Propagation passes per node (root presolve handles the root).
  int node_propagation_passes = 3;
  /// Node selection (see node_rule).
  node_rule node_selection = node_rule::dfs;
  /// Under best_estimate, every Nth backtrack picks the best-bound open
  /// node instead of the best-estimate one.
  int backtrack_interval = 8;
  bool log_progress = false;
  /// LP engine tunables, forwarded to the simplex (allow_dual / pricing are
  /// the ablation switches back to the primal-only seed behaviour).
  simplex_options lp;
  /// Pseudocost reliability: a variable's pseudocosts are initialized by
  /// strong-branching probes (cheap dual re-solves) until each direction
  /// has this many observations. 0 disables probing.
  int reliability = 4;
  /// Per-direction iteration cap of one strong-branching probe.
  long strong_branch_iteration_limit = 100;
  /// Total strong-branching probes allowed across the whole search.
  long strong_branch_limit = 100;
  /// Fractional candidates probed per node (most fractional first).
  int strong_branch_candidates = 8;
  /// Optional known-feasible assignment used as the initial incumbent.
  std::optional<std::vector<double>> warm_start;
  /// Worker threads for the branch-and-bound tree search. 1 (default) is
  /// the classic sequential engine; 0 or negative resolves to
  /// hardware_concurrency; > 1 engages the shared-pool parallel engine
  /// (first-come node order, so results are run-to-run nondeterministic
  /// unless `deterministic` is also set). Each worker owns a private
  /// simplex instance warm-started from its node's recorded parent basis.
  int threads = 1;
  /// Round-synchronized deterministic parallel search: workers expand a
  /// fixed-width round of nodes concurrently, then commit the results in
  /// node-id order (selection, incumbent acceptance, and pseudocost
  /// updates all resolve by id, never by arrival time). Results are
  /// bit-identical for ANY `threads` value, including 1 -- but the
  /// trajectory intentionally differs from the sequential engine's, whose
  /// iteration counts depend on serial warm-basis continuity. Determinism
  /// holds as long as no time limit / cancellation fires mid-search (the
  /// same caveat as the sequential engine).
  bool deterministic = false;
  /// Nodes expanded per synchronized round in deterministic mode. The
  /// search trajectory depends on this value, never on `threads`.
  int deterministic_round_width = 8;
  /// Cross-solve shared incumbent for racing portfolios (see
  /// incumbent_board). All solves sharing one board must be solving the
  /// same model. Ignored in deterministic mode, where adoption timing
  /// would break bit-identity.
  std::shared_ptr<incumbent_board> shared_incumbent;
};

/// Seed-equivalent configuration for ablations/benchmarks: primal-only
/// simplex with Dantzig pricing and most-fractional branching, no
/// strong-branching probes.
[[nodiscard]] solver_options classic_primal_only_options();

struct solution {
  solve_status status = solve_status::no_solution;
  double objective = 0.0;   // user-sense objective of the incumbent
  double best_bound = 0.0;  // user-sense dual bound
  std::vector<double> values;
  long nodes_explored = 0;
  long simplex_iterations = 0;       // total, including probes and cut rounds
  long dual_simplex_iterations = 0;  // subset taken by the dual method
  long strong_branch_probes = 0;     // reliability-initialization re-solves
  // Presolve + cutting-plane footprint of the root (all zero when the
  // respective options are off).
  int presolve_rows_removed = 0;
  int presolve_bounds_tightened = 0;
  int presolve_coefficients_tightened = 0;
  int presolve_variables_fixed = 0;
  int cut_rounds = 0;       // separation rounds run at the root
  int cuts_added = 0;       // cut rows appended across all rounds
  int cuts_active = 0;      // cut rows alive in the tree's LP (post purge)
  double root_bound = 0.0;  // user-sense LP bound after presolve + cuts
  double seconds = 0.0;
  /// True when the search stopped on the wall-clock limit or the cancel
  /// token (as opposed to node limits or natural exhaustion); the incumbent,
  /// if any, is best-effort.
  bool interrupted = false;
  /// Warm-start intake: whether solver_options::warm_start survived the
  /// rounding + feasibility re-validation and was installed as the initial
  /// incumbent, and the user-sense objective it arrived with (0 when none
  /// was given or it was rejected). Lets benches attribute node-count wins
  /// to the quality of the incumbent the search started from.
  bool warm_start_accepted = false;
  double warm_start_objective = 0.0;
  /// Worker threads the tree search actually ran (after resolving the
  /// 0 = auto convention); 1 for the sequential engine.
  int threads_used = 1;
  /// Per-worker breakdown of the parallel engines (empty for the
  /// sequential engine). Sums across workers equal the tree-search part of
  /// the solution totals (the totals additionally include the root
  /// presolve/cut-loop simplex work, which runs before the workers start);
  /// the per-worker split is scheduling noise even in deterministic mode.
  std::vector<worker_stats> workers;

  [[nodiscard]] bool has_solution() const {
    return status == solve_status::optimal || status == solve_status::feasible;
  }
  [[nodiscard]] double value(variable v) const {
    return values.at(static_cast<std::size_t>(v.index));
  }
  /// Relative optimality gap (0 when proven optimal; large when unknown).
  [[nodiscard]] double gap() const;
};

/// Solve a MILP. Throws invalid_input_error for malformed models; limit and
/// infeasibility outcomes are reported through solution::status, not thrown.
solution solve(const model& m, const solver_options& options = {});

} // namespace transtore::milp
