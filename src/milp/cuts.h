// Cutting-plane separation for the MILP solver's root node.
//
// Two families of globally valid cuts over the structural variables:
//
//   * Gomory mixed-integer (GMI) cuts, read off the optimal root basis: for
//     each basic integer variable with fractional value, the tableau row
//     (one btran through the sparse LU) is shifted to the nonbasic bounds,
//     the GMI formula applied per column (integer vs continuous, with slack
//     columns expanded back through their defining rows), and the result
//     expressed over structural variables only -- so the cut stays valid
//     for every node of the tree;
//   * knapsack cover cuts: single-sided rows are relaxed to 0/1 knapsacks
//     (non-binary terms replaced by their worst-case activity, negative
//     binary coefficients complemented) and violated minimal covers found
//     by the classic greedy separation.
//
// The `cut_generator` owns the pool: per round it separates at the current
// fractional point, filters candidates by violation, efficacy and pairwise
// parallelism (deterministically ordered), appends survivors as rows of an
// extended lp_problem, and ages/purges pooled cuts whose slack went idle.
// The caller (solver.cpp) rebuilds the simplex over `current()` and warm
// starts via load_basis -- the previous basis plus the new cut slacks is
// dual feasible, so each round re-solves with a handful of dual pivots.
#pragma once

#include <vector>

#include "milp/lp.h"
#include "milp/simplex.h"

namespace transtore::milp {

struct cut_options {
  /// Separation rounds at the root (0 disables cutting entirely). The
  /// defaults are deliberately lean: on the Table 2 scheduling MILPs a few
  /// strong rounds move the root bound, while long cutting sessions only
  /// bloat every node re-solve (measured in bench_milp).
  int max_rounds = 4;
  /// Cuts accepted per round after filtering.
  int max_cuts_per_round = 8;
  /// Hard cap on active cut rows (pool size).
  int max_active_cuts = 200;
  /// Minimum absolute violation at the separating point.
  double min_violation = 1e-5;
  /// Minimum efficacy (violation / cut norm).
  double min_efficacy = 1e-4;
  /// Maximum |cosine| between two accepted cuts (near-parallel rejection).
  double max_parallelism = 0.95;
  /// Rounds a pooled cut may stay strictly slack before it is purged.
  int max_age = 3;
  /// Relative root-bound improvement a round must deliver for cutting to
  /// continue (stalling termination, applied by the solver's cut loop).
  double min_bound_improvement = 1e-6;
  /// Maximum structural support of one cut (fraction of columns); denser
  /// cuts are rejected to protect the sparse LU's fill.
  double max_support_fraction = 0.5;
  /// Fractionality window for GMI source rows: f0 must lie in
  /// [min_fractionality, 1 - min_fractionality].
  double min_fractionality = 5e-3;
  /// Maximum |coeff| ratio within one cut (numerical-dynamism rejection).
  double max_dynamism = 1e7;
  /// GMI source rows considered per round (most fractional first).
  int max_gomory_source_rows = 32;
};

/// One cut: sum_j terms_j * x_j >= lower over structural variables.
struct cut {
  std::vector<std::pair<int, double>> terms; // (variable, coefficient), sorted
  double lower = 0.0;
  int age = 0;          // consecutive rounds with a strictly slack row
  const char* kind = ""; // "gomory" | "cover"
};

struct cut_stats {
  int rounds = 0;
  int gomory_generated = 0; // candidates produced (pre-filter)
  int cover_generated = 0;
  int added = 0;            // cut rows appended across all rounds
  int purged = 0;           // aged-out rows removed again
};

class cut_generator {
public:
  /// `base` must stay alive for the generator's lifetime.
  cut_generator(const lp_problem& base, std::vector<bool> is_integer,
                cut_options options);

  /// The base problem extended by the active cuts (base rows first, cut
  /// rows after, in pool order).
  [[nodiscard]] const lp_problem& current() const { return extended_; }
  [[nodiscard]] int active_cuts() const {
    return static_cast<int>(pool_.size());
  }
  [[nodiscard]] const std::vector<cut>& pool() const { return pool_; }
  [[nodiscard]] const cut_stats& stats() const { return stats_; }

  /// One separation round at the solver's current (optimal) point. Ages and
  /// purges idle pooled cuts, separates new ones, and rebuilds `current()`.
  /// Returns true when the extended problem changed (cuts added or purged)
  /// -- the caller must then rebuild its simplex over `current()`. The
  /// deadline is polled between source rows so cancellation interrupts a
  /// round in progress.
  bool round(const simplex_solver& solver, const deadline& time_budget);

  /// Basis mapping for the caller's warm start after `round()` returned
  /// true: given the pre-round basis (columns of the pre-round extended
  /// problem), returns the corresponding basis of the new extended problem
  /// -- surviving columns renumbered, purged cut slacks dropped, new cut
  /// slacks appended basic. `at_upper` is filled with the renumbered
  /// nonbasic-at-upper set read from the solver.
  [[nodiscard]] std::vector<int> remap_basis(const simplex_solver& solver,
                                             std::vector<int>& at_upper) const;

private:
  struct candidate {
    cut c;
    double violation = 0.0;
    double efficacy = 0.0;
    double norm = 1.0;
  };

  void separate_gomory(const simplex_solver& solver,
                       const deadline& time_budget,
                       std::vector<candidate>& out) const;
  void separate_covers(const std::vector<double>& x,
                       std::vector<candidate>& out) const;
  [[nodiscard]] bool finalize_candidate(candidate& cand,
                                        const std::vector<double>& x) const;
  void rebuild_extended();

  const lp_problem& base_;
  std::vector<bool> is_integer_;
  cut_options options_;
  lp_problem extended_;
  std::vector<cut> pool_;
  cut_stats stats_;
  /// Base-row slack integrality (integer coefficients over integer columns
  /// and integral row bounds): such slacks take the integer GMI coefficient.
  std::vector<bool> slack_integer_;
  /// Row-wise view of the base rows for slack expansion and cover cuts.
  std::vector<std::vector<std::pair<int, double>>> base_rows_;
  /// Scratch mapping of pre-round extended rows to post-round rows
  /// (base rows identity; purged cut rows -1), rebuilt by round().
  std::vector<int> row_map_;
};

} // namespace transtore::milp
