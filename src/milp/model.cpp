#include "milp/model.h"

#include <cmath>
#include <sstream>

namespace transtore::milp {

variable model::add_variable(var_kind kind, double lower, double upper,
                             std::string name) {
  if (kind == var_kind::binary) {
    lower = 0.0;
    upper = 1.0;
  }
  require(lower <= upper, "model: variable lower bound exceeds upper bound");
  var_info info;
  info.name = name.empty()
                  ? "x" + std::to_string(variables_.size())
                  : std::move(name);
  info.kind = kind;
  info.lower = lower;
  info.upper = upper;
  variables_.push_back(std::move(info));
  objective_.push_back(0.0);
  return variable{static_cast<int>(variables_.size()) - 1};
}

int model::add_constraint(const linear_expr& expr, cmp op, double rhs,
                          std::string name) {
  const double adjusted = rhs - expr.constant();
  switch (op) {
    case cmp::less_equal:
      return add_range_constraint(expr - linear_expr(expr.constant()),
                                  -infinity, adjusted, std::move(name));
    case cmp::greater_equal:
      return add_range_constraint(expr - linear_expr(expr.constant()),
                                  adjusted, infinity, std::move(name));
    case cmp::equal:
      return add_range_constraint(expr - linear_expr(expr.constant()),
                                  adjusted, adjusted, std::move(name));
  }
  throw internal_error("model: unknown comparison");
}

int model::add_range_constraint(const linear_expr& expr, double lower,
                                double upper, std::string name) {
  require(lower <= upper, "model: row lower bound exceeds upper bound");
  row_info row;
  row.name =
      name.empty() ? "c" + std::to_string(rows_.size()) : std::move(name);
  row.lower = lower - expr.constant();
  row.upper = upper == infinity ? infinity : upper - expr.constant();
  if (lower == -infinity) row.lower = -infinity;
  row.terms.reserve(expr.terms().size());
  for (const auto& [index, coeff] : expr.terms()) {
    require(index >= 0 && index < variable_count(),
            "model: constraint references unknown variable");
    if (coeff != 0.0) row.terms.emplace_back(index, coeff);
  }
  rows_.push_back(std::move(row));
  return static_cast<int>(rows_.size()) - 1;
}

void model::set_objective(const linear_expr& expr, objective_sense sense) {
  objective_.assign(variables_.size(), 0.0);
  for (const auto& [index, coeff] : expr.terms()) {
    require(index >= 0 && index < variable_count(),
            "model: objective references unknown variable");
    objective_[static_cast<std::size_t>(index)] = coeff;
  }
  objective_constant_ = expr.constant();
  sense_ = sense;
}

int model::integer_variable_count() const {
  int count = 0;
  for (const auto& v : variables_)
    if (v.kind != var_kind::continuous) ++count;
  return count;
}

const var_info& model::variable_at(int index) const {
  require(index >= 0 && index < variable_count(), "model: variable index");
  return variables_[static_cast<std::size_t>(index)];
}

const row_info& model::constraint_at(int index) const {
  require(index >= 0 && index < constraint_count(), "model: row index");
  return rows_[static_cast<std::size_t>(index)];
}

double model::evaluate_objective(const std::vector<double>& x) const {
  require(x.size() == variables_.size(),
          "model: assignment size mismatch in evaluate_objective");
  double total = objective_constant_;
  for (std::size_t j = 0; j < objective_.size(); ++j)
    total += objective_[j] * x[j];
  return total;
}

bool model::is_feasible(const std::vector<double>& x, double tolerance) const {
  if (x.size() != variables_.size()) return false;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    const auto& v = variables_[j];
    if (x[j] < v.lower - tolerance || x[j] > v.upper + tolerance) return false;
    if (v.kind != var_kind::continuous &&
        std::abs(x[j] - std::round(x[j])) > tolerance)
      return false;
  }
  for (const auto& row : rows_) {
    double activity = 0.0;
    for (const auto& [index, coeff] : row.terms)
      activity += coeff * x[static_cast<std::size_t>(index)];
    if (activity < row.lower - tolerance || activity > row.upper + tolerance)
      return false;
  }
  return true;
}

std::string model::to_text() const {
  std::ostringstream out;
  out << (sense_ == objective_sense::minimize ? "minimize" : "maximize")
      << "\n  ";
  bool first = true;
  for (std::size_t j = 0; j < objective_.size(); ++j) {
    if (objective_[j] == 0.0) continue;
    if (!first) out << " + ";
    out << objective_[j] << " " << variables_[j].name;
    first = false;
  }
  if (objective_constant_ != 0.0) out << " + " << objective_constant_;
  out << "\nsubject to\n";
  for (const auto& row : rows_) {
    out << "  " << row.name << ": ";
    if (row.lower != -infinity) out << row.lower << " <= ";
    bool first_term = true;
    for (const auto& [index, coeff] : row.terms) {
      if (!first_term) out << " + ";
      out << coeff << " " << variables_[static_cast<std::size_t>(index)].name;
      first_term = false;
    }
    if (row.upper != infinity) out << " <= " << row.upper;
    out << "\n";
  }
  out << "bounds\n";
  for (const auto& v : variables_) {
    out << "  " << v.lower << " <= " << v.name << " <= " << v.upper;
    if (v.kind == var_kind::binary) out << " (binary)";
    if (v.kind == var_kind::integer) out << " (integer)";
    out << "\n";
  }
  return out.str();
}

} // namespace transtore::milp
