#include "milp/presolve.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace transtore::milp {
namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

/// Row in working form: terms plus ranged bounds.
struct work_row {
  std::vector<std::pair<int, double>> terms; // (variable, coefficient)
  double lower = -inf;
  double upper = inf;
  bool removed = false;
};

/// Min/max possible activity of a row under current bounds, with the count
/// of infinite contributions kept separate so one-term residuals stay exact
/// even when another term is unbounded.
struct activity {
  double finite_min = 0.0; // sum of finite min contributions
  double finite_max = 0.0;
  int inf_min = 0; // terms contributing -inf to the minimum
  int inf_max = 0; // terms contributing +inf to the maximum

  [[nodiscard]] double min() const { return inf_min > 0 ? -inf : finite_min; }
  [[nodiscard]] double max() const { return inf_max > 0 ? inf : finite_max; }
};

struct term_range {
  double min_c = 0.0; // min of coeff * x over the variable's box
  double max_c = 0.0;
};

term_range contribution(double coeff, double lo, double hi) {
  term_range t;
  if (coeff > 0.0) {
    t.min_c = lo == -inf ? -inf : coeff * lo;
    t.max_c = hi == inf ? inf : coeff * hi;
  } else {
    t.min_c = hi == inf ? -inf : coeff * hi;
    t.max_c = lo == -inf ? inf : coeff * lo;
  }
  return t;
}

activity row_activity(const work_row& row, const std::vector<double>& lower,
                      const std::vector<double>& upper) {
  activity a;
  for (const auto& [var, coeff] : row.terms) {
    const term_range t = contribution(coeff, lower[static_cast<std::size_t>(var)],
                                      upper[static_cast<std::size_t>(var)]);
    if (t.min_c == -inf)
      ++a.inf_min;
    else
      a.finite_min += t.min_c;
    if (t.max_c == inf)
      ++a.inf_max;
    else
      a.finite_max += t.max_c;
  }
  return a;
}

/// Residual min activity of the row excluding one term (exact under
/// infinities thanks to the contribution counts).
double residual_min(const activity& a, const term_range& t) {
  if (t.min_c == -inf) return a.inf_min > 1 ? -inf : a.finite_min;
  return a.inf_min > 0 ? -inf : a.finite_min - t.min_c;
}

double residual_max(const activity& a, const term_range& t) {
  if (t.max_c == inf) return a.inf_max > 1 ? inf : a.finite_max;
  return a.inf_max > 0 ? inf : a.finite_max - t.max_c;
}

class presolver {
public:
  presolver(const lp_problem& lp, const std::vector<bool>& is_integer,
            const presolve_options& options)
      : options_(options), is_integer_(is_integer), lower_(lp.lower),
        upper_(lp.upper) {
    rows_.resize(static_cast<std::size_t>(lp.num_rows));
    for (int i = 0; i < lp.num_rows; ++i) {
      rows_[static_cast<std::size_t>(i)].lower = lp.row_lower[static_cast<std::size_t>(i)];
      rows_[static_cast<std::size_t>(i)].upper = lp.row_upper[static_cast<std::size_t>(i)];
    }
    for (int j = 0; j < lp.num_vars; ++j)
      for (int k = lp.col_start[static_cast<std::size_t>(j)];
           k < lp.col_start[static_cast<std::size_t>(j) + 1]; ++k)
        rows_[static_cast<std::size_t>(lp.row_index[static_cast<std::size_t>(k)])]
            .terms.emplace_back(j, lp.value[static_cast<std::size_t>(k)]);
  }

  bool run(presolve_stats& stats) {
    const double tol = options_.feasibility_tolerance;
    for (int pass = 0; pass < options_.max_passes; ++pass) {
      ++stats.passes;
      bool changed = false;
      for (work_row& row : rows_) {
        if (row.removed) continue;
        activity act = row_activity(row, lower_, upper_);
        if (act.min() > row.upper + tol || act.max() < row.lower - tol)
          return false; // row proven infeasible

        // Redundant row: the bounds alone satisfy it.
        if (options_.remove_redundant_rows && act.min() >= row.lower - tol &&
            act.max() <= row.upper + tol) {
          row.removed = true;
          ++stats.rows_removed;
          changed = true;
          continue;
        }

        // Singleton row: transfer the bound to the variable and drop it.
        if (options_.singleton_rows && row.terms.size() == 1) {
          const auto [var, coeff] = row.terms.front();
          if (std::abs(coeff) > 1e-12) {
            double lo = -inf;
            double hi = inf;
            if (coeff > 0.0) {
              if (row.lower != -inf) lo = row.lower / coeff;
              if (row.upper != inf) hi = row.upper / coeff;
            } else {
              if (row.upper != inf) lo = row.upper / coeff;
              if (row.lower != -inf) hi = row.lower / coeff;
            }
            if (!tighten(var, lo, hi, stats)) return false;
            row.removed = true;
            ++stats.rows_removed;
            ++stats.singleton_rows;
            changed = true;
            continue;
          }
        }

        // Activity-based bound tightening on every term.
        for (const auto& [var, coeff] : row.terms) {
          if (!options_.bound_tightening) break;
          if (std::abs(coeff) <= 1e-12) continue;
          const term_range t = contribution(
              coeff, lower_[static_cast<std::size_t>(var)],
              upper_[static_cast<std::size_t>(var)]);
          const double rest_min = residual_min(act, t);
          const double rest_max = residual_max(act, t);
          // row.lower <= rest + coeff * x <= row.upper
          double new_lo = -inf;
          double new_hi = inf;
          if (coeff > 0.0) {
            if (row.upper != inf && rest_min != -inf)
              new_hi = (row.upper - rest_min) / coeff;
            if (row.lower != -inf && rest_max != inf)
              new_lo = (row.lower - rest_max) / coeff;
          } else {
            if (row.upper != inf && rest_min != -inf)
              new_lo = (row.upper - rest_min) / coeff;
            if (row.lower != -inf && rest_max != inf)
              new_hi = (row.lower - rest_max) / coeff;
          }
          const int before = stats.bounds_tightened;
          if (!tighten(var, new_lo, new_hi, stats)) return false;
          if (stats.bounds_tightened != before) {
            changed = true;
            act = row_activity(row, lower_, upper_); // keep residuals exact
          }
        }

        // Coefficient (big-M) strengthening on single-sided rows.
        if (options_.coefficient_tightening &&
            strengthen_coefficients(row, stats)) {
          changed = true;
          // The row may have become redundant or infeasible; the next pass
          // (or the checks above on revisit) handles it.
        }
      }
      if (!changed) break;
    }
    for (std::size_t j = 0; j < lower_.size(); ++j)
      if (lower_[j] == upper_[j]) ++stats.variables_fixed;
    return true;
  }

  [[nodiscard]] presolved_problem extract(const lp_problem& lp) const {
    presolved_problem out;
    out.original_rows = lp.num_rows;
    lp_problem& r = out.reduced;
    r.num_vars = lp.num_vars;
    r.cost = lp.cost;
    r.lower = lower_;
    r.upper = upper_;
    for (int i = 0; i < lp.num_rows; ++i) {
      const work_row& row = rows_[static_cast<std::size_t>(i)];
      if (row.removed) continue;
      out.row_origin.push_back(i);
      r.row_lower.push_back(row.lower);
      r.row_upper.push_back(row.upper);
    }
    r.num_rows = static_cast<int>(out.row_origin.size());

    // Rebuild CSC from the surviving rows.
    std::vector<std::vector<std::pair<int, double>>> cols(
        static_cast<std::size_t>(lp.num_vars));
    for (int i = 0; i < r.num_rows; ++i) {
      const work_row& row =
          rows_[static_cast<std::size_t>(out.row_origin[static_cast<std::size_t>(i)])];
      for (const auto& [var, coeff] : row.terms)
        if (coeff != 0.0) cols[static_cast<std::size_t>(var)].emplace_back(i, coeff);
    }
    r.col_start.assign(static_cast<std::size_t>(lp.num_vars) + 1, 0);
    for (int j = 0; j < lp.num_vars; ++j)
      r.col_start[static_cast<std::size_t>(j) + 1] =
          r.col_start[static_cast<std::size_t>(j)] +
          static_cast<int>(cols[static_cast<std::size_t>(j)].size());
    for (int j = 0; j < lp.num_vars; ++j)
      for (const auto& [row, coeff] : cols[static_cast<std::size_t>(j)]) {
        r.row_index.push_back(row);
        r.value.push_back(coeff);
      }
    return out;
  }

private:
  /// Applies candidate bounds [lo, hi] to `var` (integer-rounded), keeping
  /// only strict improvements. Returns false on a proven-empty box.
  bool tighten(int var, double lo, double hi, presolve_stats& stats) {
    const std::size_t v = static_cast<std::size_t>(var);
    if (lo != -inf && std::abs(lo) > options_.huge_bound) lo = -inf;
    if (hi != inf && std::abs(hi) > options_.huge_bound) hi = inf;
    if (is_integer_[v]) {
      if (lo != -inf) lo = std::ceil(lo - 1e-7);
      if (hi != inf) hi = std::floor(hi + 1e-7);
    }
    if (lo > lower_[v] + options_.min_bound_improvement) {
      lower_[v] = lo;
      ++stats.bounds_tightened;
    }
    if (hi < upper_[v] - options_.min_bound_improvement) {
      upper_[v] = hi;
      ++stats.bounds_tightened;
    }
    if (lower_[v] > upper_[v] + options_.feasibility_tolerance) return false;
    // Close a sliver of a box to a point so the variable reads as fixed.
    if (lower_[v] != upper_[v] && upper_[v] - lower_[v] <= 1e-11)
      upper_[v] = lower_[v];
    return true;
  }

  [[nodiscard]] bool is_free_binary(int var) const {
    const std::size_t v = static_cast<std::size_t>(var);
    return is_integer_[v] && lower_[v] == 0.0 && upper_[v] == 1.0;
  }

  /// Coefficient strengthening for binary terms of single-sided rows: each
  /// of the two scenarios (x_j = 0 / x_j = 1) bounds the residual activity;
  /// either scenario's bound can be pulled in to the residual's own
  /// activity bound without cutting any feasible point, and the pulled-in
  /// pair (coefficient, row bound) is tighter for fractional x_j. The
  /// classic big-M reduction is the special case where the x_j = 0 (or
  /// x_j = 1) scenario was redundant.
  bool strengthen_coefficients(work_row& row, presolve_stats& stats) {
    const bool has_lower = row.lower != -inf;
    const bool has_upper = row.upper != inf;
    if (has_lower == has_upper) return false; // ranged/equality/free: skip
    bool any = false;
    activity act = row_activity(row, lower_, upper_);
    for (auto& [var, coeff] : row.terms) {
      if (!is_free_binary(var) || std::abs(coeff) <= 1e-12) continue;
      const term_range t = contribution(coeff, 0.0, 1.0);
      if (has_upper) {
        const double rest_max = residual_max(act, t);
        if (rest_max == inf) continue;
        // Scenario bounds on the residual: x_j = 0 -> upper, x_j = 1 ->
        // upper - coeff; both clamp to rest_max.
        const double new_upper = std::min(row.upper, rest_max);
        const double new_scen1 = std::min(row.upper - coeff, rest_max);
        const double new_coeff = new_upper - new_scen1;
        if (std::abs(new_coeff) < std::abs(coeff) - 1e-9 ||
            new_upper < row.upper - 1e-9) {
          coeff = new_coeff;
          row.upper = new_upper;
          ++stats.coefficients_tightened;
          any = true;
          act = row_activity(row, lower_, upper_);
        }
      } else {
        const double rest_min = residual_min(act, t);
        if (rest_min == -inf) continue;
        const double new_lower = std::max(row.lower, rest_min);
        const double new_scen1 = std::max(row.lower - coeff, rest_min);
        const double new_coeff = new_lower - new_scen1;
        if (std::abs(new_coeff) < std::abs(coeff) - 1e-9 ||
            new_lower > row.lower + 1e-9) {
          coeff = new_coeff;
          row.lower = new_lower;
          ++stats.coefficients_tightened;
          any = true;
          act = row_activity(row, lower_, upper_);
        }
      }
    }
    if (any) {
      // Drop zeroed coefficients so downstream consumers (CSC rebuild,
      // singleton detection) see the true support.
      row.terms.erase(std::remove_if(row.terms.begin(), row.terms.end(),
                                     [](const auto& term) {
                                       return std::abs(term.second) <= 1e-12;
                                     }),
                      row.terms.end());
    }
    return any;
  }

  const presolve_options options_;
  const std::vector<bool>& is_integer_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<work_row> rows_;
};

} // namespace

void presolved_problem::postsolve_primal(std::vector<double>& x) const {
  require(static_cast<int>(x.size()) == reduced.num_vars,
          "presolve: postsolve_primal size mismatch");
  // Columns are preserved: reduced-space x is already full-space.
}

std::vector<double> presolved_problem::postsolve_duals(
    const std::vector<double>& reduced_duals) const {
  require(static_cast<int>(reduced_duals.size()) == reduced.num_rows,
          "presolve: postsolve_duals size mismatch");
  std::vector<double> full(static_cast<std::size_t>(original_rows), 0.0);
  for (int i = 0; i < reduced.num_rows; ++i)
    full[static_cast<std::size_t>(row_origin[static_cast<std::size_t>(i)])] =
        reduced_duals[static_cast<std::size_t>(i)];
  return full;
}

presolved_problem presolve(const lp_problem& lp,
                           const std::vector<bool>& is_integer,
                           const presolve_options& options) {
  require(static_cast<int>(is_integer.size()) == lp.num_vars,
          "presolve: is_integer size mismatch");
  presolver engine(lp, is_integer, options);
  presolve_stats stats;
  if (!engine.run(stats)) {
    presolved_problem out;
    out.infeasible = true;
    out.stats = stats;
    out.original_rows = lp.num_rows;
    return out;
  }
  presolved_problem out = engine.extract(lp);
  out.stats = stats;
  return out;
}

} // namespace transtore::milp
