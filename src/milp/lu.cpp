#include "milp/lu.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace transtore::milp {
namespace {

/// One active-matrix entry inside a row.
struct row_entry {
  int col; // basis position
  double value;
};

} // namespace

bool basis_lu::factorize(int m, const std::vector<sparse_column>& columns) {
  require(static_cast<int>(columns.size()) == m, "basis_lu: bad column count");
  m_ = m;
  valid_ = false;

  pivot_row_.assign(m, -1);
  pivot_col_.assign(m, -1);
  l_start_.assign(1, 0);
  l_row_.clear();
  l_value_.clear();
  u_start_.assign(1, 0);
  u_col_.clear();
  u_value_.clear();
  u_pivot_.assign(m, 0.0);
  work_.assign(m, 0.0);
  if (m == 0) {
    ucol_start_.assign(1, 0);
    ucol_step_.clear();
    ucol_value_.clear();
    valid_ = true;
    return true;
  }

  // Active matrix: exact row-wise storage plus per-column row lists that may
  // carry stale rows (cancelled entries, pivoted rows) and are compacted
  // lazily. col_count / row_count are kept exact -- they drive Markowitz.
  std::vector<std::vector<row_entry>> rows(m);
  std::vector<std::vector<int>> col_rows(m);
  std::vector<int> col_count(m, 0);
  std::vector<int> row_count(m, 0);
  for (int p = 0; p < m; ++p) {
    for (const auto& [i, v] : columns[p]) {
      require(i >= 0 && i < m, "basis_lu: row index out of range");
      if (v == 0.0) continue;
      rows[i].push_back({p, v});
      col_rows[p].push_back(i);
      ++col_count[p];
      ++row_count[i];
    }
    if (col_count[p] == 0) return false; // structurally singular
  }

  // Count buckets with lazy deletion: a column is (re)pushed whenever its
  // count changes; entries whose recorded count disagrees are stale.
  std::vector<std::vector<int>> bucket(static_cast<std::size_t>(m) + 1);
  for (int p = 0; p < m; ++p) bucket[static_cast<std::size_t>(col_count[p])].push_back(p);
  auto rebucket = [&](int col) {
    bucket[static_cast<std::size_t>(col_count[col])].push_back(col);
  };

  std::vector<bool> row_done(m, false);
  std::vector<bool> col_done(m, false);

  // Dense scratch for the row merges.
  std::vector<double> dense(m, 0.0);
  std::vector<char> present(m, 0);
  std::vector<int> pattern;
  pattern.reserve(64);

  // Valid (row, value) entries of one candidate column, gathered during the
  // pivot search and reused by the elimination when that column is chosen.
  struct col_cache {
    int col = -1;
    std::vector<std::pair<int, double>> entries; // (row, value)
  };
  col_cache cached;
  std::vector<std::pair<int, double>> scratch_entries; // candidate gathers

  auto find_in_row = [&](int row, int col) -> const row_entry* {
    for (const row_entry& e : rows[row])
      if (e.col == col) return &e;
    return nullptr;
  };

  // Gather the valid entries of column `col`, compacting its row list. A
  // row can appear twice in the list -- a stale copy from a cancelled
  // entry plus a later re-fill -- so gathered rows are stamped: processing
  // a duplicate would eliminate the same row twice and corrupt both the
  // values and the Markowitz counts.
  std::vector<int> gather_mark(m, -1);
  int gather_stamp = -1;
  auto gather_column = [&](int col, std::vector<std::pair<int, double>>& out) {
    out.clear();
    ++gather_stamp;
    std::vector<int>& list = col_rows[col];
    std::size_t keep = 0;
    for (const int i : list) {
      if (row_done[i] || gather_mark[i] == gather_stamp) continue;
      const row_entry* e = find_in_row(i, col);
      if (e == nullptr) continue; // cancelled
      gather_mark[i] = gather_stamp;
      list[keep++] = i;
      out.emplace_back(i, e->value);
    }
    list.resize(keep);
  };

  for (int k = 0; k < m; ++k) {
    // ---------------------------------------------------- Markowitz search
    int best_row = -1;
    int best_col = -1;
    double best_value = 0.0;
    long best_cost = std::numeric_limits<long>::max();
    int examined = 0;

    for (int count = 0; count <= m && best_cost > 0; ++count) {
      if (count == 0) {
        // A live column can never sit in bucket 0: count 0 means every
        // entry cancelled, i.e. the basis became numerically singular.
        for (const int j : bucket[0])
          if (!col_done[j] && col_count[j] == 0) return false;
        continue;
      }
      std::vector<int>& b = bucket[static_cast<std::size_t>(count)];
      std::size_t idx = 0;
      while (idx < b.size()) {
        const int j = b[idx];
        if (col_done[j] || col_count[j] != count) {
          b[idx] = b.back(); // stale: drop (order is still deterministic)
          b.pop_back();
          continue;
        }
        ++idx;
        std::vector<std::pair<int, double>>& entries = scratch_entries;
        gather_column(j, entries);
        double colmax = 0.0;
        for (const auto& [i, v] : entries) colmax = std::max(colmax, std::abs(v));
        if (colmax < options_.pivot_tolerance)
          return false; // numerically dependent column
        const double admissible =
            std::max(options_.pivot_tolerance, options_.suhl_threshold * colmax);
        int cand_row = -1;
        double cand_value = 0.0;
        long cand_cost = std::numeric_limits<long>::max();
        for (const auto& [i, v] : entries) {
          if (std::abs(v) < admissible) continue;
          const long cost = static_cast<long>(row_count[i] - 1) *
                            static_cast<long>(count - 1);
          if (cost < cand_cost || (cost == cand_cost && i < cand_row)) {
            cand_cost = cost;
            cand_row = i;
            cand_value = v;
          }
        }
        if (cand_row < 0) continue; // every admissible entry was below Suhl
        ++examined;
        if (cand_cost < best_cost) {
          best_cost = cand_cost;
          best_row = cand_row;
          best_col = j;
          best_value = cand_value;
          cached.col = j;
          std::swap(cached.entries, scratch_entries);
        }
        if (best_cost == 0) break;
        if (count > 1 && examined >= options_.search_columns) break;
      }
      if (best_col >= 0 && (best_cost == 0 ||
                            (count > 1 && examined >= options_.search_columns)))
        break;
    }
    if (best_col < 0) return false; // no admissible pivot anywhere

    // -------------------------------------------------------- elimination
    const int pr = best_row;
    const int pc = best_col;
    const double pv = best_value;
    pivot_row_[k] = pr;
    pivot_col_[k] = pc;
    u_pivot_[k] = pv;
    row_done[pr] = true;
    col_done[pc] = true;

    // The pivot row's remaining entries become U row k and leave the
    // active matrix.
    for (const row_entry& e : rows[pr]) {
      if (e.col == pc || col_done[e.col]) continue;
      u_col_.push_back(e.col);
      u_value_.push_back(e.value);
      --col_count[e.col];
      rebucket(e.col);
    }
    u_start_.push_back(static_cast<int>(u_col_.size()));

    // Eliminate column pc from every other active row. The candidate cache
    // holds exactly the valid (row, value) entries of the pivot column.
    if (cached.col != pc) gather_column(pc, cached.entries);
    for (const auto& [i, a_ipc] : cached.entries) {
      if (i == pr || row_done[i]) continue;
      const double mult = a_ipc / pv;
      l_row_.push_back(i);
      l_value_.push_back(mult);

      // row_i -= mult * row_pr, dropping the pivot column.
      pattern.clear();
      for (const row_entry& e : rows[i]) {
        if (e.col == pc) continue; // eliminated exactly
        dense[e.col] = e.value;
        present[e.col] = 1;
        pattern.push_back(e.col);
      }
      for (const row_entry& e : rows[pr]) {
        if (e.col == pc) continue;
        if (!present[e.col]) {
          present[e.col] = 1;
          pattern.push_back(e.col);
          dense[e.col] = 0.0;
          // Fill-in: column e.col gains an entry in row i.
          col_rows[e.col].push_back(i);
          ++col_count[e.col];
          rebucket(e.col);
        }
        dense[e.col] -= mult * e.value;
      }
      std::vector<row_entry>& target = rows[i];
      target.clear();
      for (const int c : pattern) {
        const double v = dense[c];
        dense[c] = 0.0;
        present[c] = 0;
        if (v == 0.0) {
          // Exact cancellation: the entry leaves column c.
          --col_count[c];
          rebucket(c);
          continue;
        }
        target.push_back({c, v});
      }
      row_count[i] = static_cast<int>(target.size());
    }
    // The pivot column's entries (including the pivot) are gone.
    col_count[pc] = 0;
    col_rows[pc].clear();
    rows[pr].clear();
    l_start_.push_back(static_cast<int>(l_row_.size()));
    cached.col = -1;
  }

  // Column-wise U for btran: map each U entry's basis position to its pivot
  // step and bucket by that step.
  std::vector<int> step_of_position(m, -1);
  for (int k = 0; k < m; ++k) step_of_position[pivot_col_[k]] = k;
  ucol_start_.assign(static_cast<std::size_t>(m) + 1, 0);
  for (const int c : u_col_) ++ucol_start_[static_cast<std::size_t>(step_of_position[c]) + 1];
  for (int k = 0; k < m; ++k)
    ucol_start_[static_cast<std::size_t>(k) + 1] += ucol_start_[static_cast<std::size_t>(k)];
  ucol_step_.assign(u_col_.size(), 0);
  ucol_value_.assign(u_col_.size(), 0.0);
  std::vector<int> cursor(ucol_start_.begin(), ucol_start_.end() - 1);
  for (int k = 0; k < m; ++k) {
    for (int idx = u_start_[k]; idx < u_start_[k + 1]; ++idx) {
      const int j = step_of_position[u_col_[static_cast<std::size_t>(idx)]];
      ucol_step_[static_cast<std::size_t>(cursor[j])] = k;
      ucol_value_[static_cast<std::size_t>(cursor[j])] =
          u_value_[static_cast<std::size_t>(idx)];
      ++cursor[j];
    }
  }

  valid_ = true;
  return true;
}

void basis_lu::ftran(const std::vector<double>& rhs,
                     std::vector<double>& x) const {
  require(valid_, "basis_lu: ftran without a valid factorization");
  work_.assign(rhs.begin(), rhs.end());
  // Apply the elimination steps: v[row] -= mult * v[pivot_row_[k]].
  for (int k = 0; k < m_; ++k) {
    const double t = work_[pivot_row_[k]];
    if (t == 0.0) continue;
    for (int idx = l_start_[k]; idx < l_start_[k + 1]; ++idx)
      work_[l_row_[static_cast<std::size_t>(idx)]] -=
          l_value_[static_cast<std::size_t>(idx)] * t;
  }
  // Back substitution through U (positions pivoted later are solved first).
  x.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = m_ - 1; k >= 0; --k) {
    double s = work_[pivot_row_[k]];
    for (int idx = u_start_[k]; idx < u_start_[k + 1]; ++idx)
      s -= u_value_[static_cast<std::size_t>(idx)] *
           x[u_col_[static_cast<std::size_t>(idx)]];
    x[pivot_col_[k]] = s / u_pivot_[k];
  }
}

void basis_lu::btran(const std::vector<double>& z,
                     std::vector<double>& y) const {
  require(valid_, "basis_lu: btran without a valid factorization");
  // Forward solve U^T w = z; w is indexed by pivot step.
  for (int k = 0; k < m_; ++k) {
    double s = z[pivot_col_[k]];
    for (int idx = ucol_start_[k]; idx < ucol_start_[k + 1]; ++idx)
      s -= ucol_value_[static_cast<std::size_t>(idx)] *
           work_[ucol_step_[static_cast<std::size_t>(idx)]];
    work_[k] = s / u_pivot_[k];
  }
  // y = M^T w: scatter w to constraint rows, then apply the transposed
  // elimination steps newest-first (y[pivot_row] -= mult * y[row]).
  y.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) y[pivot_row_[k]] = work_[k];
  for (int k = m_ - 1; k >= 0; --k) {
    double s = y[pivot_row_[k]];
    for (int idx = l_start_[k]; idx < l_start_[k + 1]; ++idx)
      s -= l_value_[static_cast<std::size_t>(idx)] *
           y[l_row_[static_cast<std::size_t>(idx)]];
    y[pivot_row_[k]] = s;
  }
}

} // namespace transtore::milp
