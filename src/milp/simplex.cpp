#include "milp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace transtore::milp {
namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

} // namespace

simplex_solver::simplex_solver(const lp_problem& problem,
                               simplex_options options)
    : problem_(problem), options_(options) {
  n_ = problem.num_vars;
  m_ = problem.num_rows;
  require(static_cast<int>(problem.cost.size()) == n_ &&
              static_cast<int>(problem.lower.size()) == n_ &&
              static_cast<int>(problem.upper.size()) == n_,
          "simplex: inconsistent column arrays");
  require(static_cast<int>(problem.row_lower.size()) == m_ &&
              static_cast<int>(problem.row_upper.size()) == m_,
          "simplex: inconsistent row arrays");
  require(static_cast<int>(problem.col_start.size()) == n_ + 1,
          "simplex: bad col_start");

  lower_.resize(total_columns());
  upper_.resize(total_columns());
  for (int j = 0; j < n_; ++j) {
    lower_[j] = problem.lower[j];
    upper_[j] = problem.upper[j];
  }
  for (int i = 0; i < m_; ++i) {
    lower_[n_ + i] = problem.row_lower[i];
    upper_[n_ + i] = problem.row_upper[i];
  }

  basis_.assign(m_, -1);
  basic_position_.assign(total_columns(), -1);
  status_.assign(total_columns(), status::at_lower);
  x_.assign(total_columns(), 0.0);
  lu_ = basis_lu(options_.lu);
  dense_active_ = options_.engine == basis_engine::dense;
  // The O(m^2) dense inverse is what caps the dense engine at ~2500 rows;
  // under the sparse engine it is allocated lazily, only if the numerical
  // fallback ever engages.
  if (dense_active_) binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
  devex_weight_.assign(total_columns(), 1.0);
  dual_y_.assign(m_, 0.0);
  work_col_.assign(m_, 0.0);
  work_row_.assign(m_, 0.0);
  work_cost_.assign(m_, 0.0);
  work_rho_.assign(m_, 0.0);
  work_pos_.assign(m_, 0.0);
  work_rhs_.assign(m_, 0.0);
}

void simplex_solver::set_variable_bounds(int var, double lower, double upper) {
  require(var >= 0 && var < n_, "simplex: bound change on unknown variable");
  require(lower <= upper, "simplex: crossing bounds");
  lower_[var] = lower;
  upper_[var] = upper;
}

double simplex_solver::variable_lower(int var) const {
  require(var >= 0 && var < n_, "simplex: unknown variable");
  return lower_[var];
}

double simplex_solver::variable_upper(int var) const {
  require(var >= 0 && var < n_, "simplex: unknown variable");
  return upper_[var];
}

void simplex_solver::reset_to_slack_basis() {
  std::fill(basic_position_.begin(), basic_position_.end(), -1);
  for (int i = 0; i < m_; ++i) {
    basis_[i] = n_ + i;
    basic_position_[n_ + i] = i;
    status_[n_ + i] = status::basic;
  }
  for (int j = 0; j < n_; ++j) {
    if (lower_[j] == -inf && upper_[j] == inf) {
      status_[j] = status::free_zero;
      x_[j] = 0.0;
    } else if (lower_[j] == -inf) {
      status_[j] = status::at_upper;
      x_[j] = upper_[j];
    } else if (upper_[j] == inf || std::abs(lower_[j]) <= std::abs(upper_[j])) {
      status_[j] = status::at_lower;
      x_[j] = lower_[j];
    } else {
      status_[j] = status::at_upper;
      x_[j] = upper_[j];
    }
  }
  // Slack basis matrix is -I, so its inverse is -I as well; the LU
  // factorization of -I is trivial and cannot fail.
  if (options_.engine == basis_engine::sparse_lu) {
    std::vector<basis_lu::sparse_column> cols(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) cols[static_cast<std::size_t>(i)] = {{i, -1.0}};
    require(lu_.factorize(m_, cols), "simplex: slack basis factorization");
    dense_active_ = false;
  } else {
    std::fill(binv_.begin(), binv_.end(), 0.0);
    for (int i = 0; i < m_; ++i)
      binv_[static_cast<std::size_t>(i) * m_ + i] = -1.0;
    dense_active_ = true;
  }
  etas_.clear();
  eta_nonzeros_ = 0;
  reset_devex();
  candidates_.clear();
  pricing_cursor_ = 0;
  dual_y_valid_ = false;
  basis_valid_ = true;
}

void simplex_solver::clamp_nonbasic_to_bounds() {
  for (int j = 0; j < total_columns(); ++j) {
    if (status_[j] == status::basic) continue;
    if (lower_[j] == -inf && upper_[j] == inf) {
      status_[j] = status::free_zero;
      x_[j] = 0.0;
      continue;
    }
    if (status_[j] == status::free_zero) {
      // A previously free column acquired a bound (branching): park it.
      status_[j] = lower_[j] != -inf ? status::at_lower : status::at_upper;
    }
    if (status_[j] == status::at_lower && lower_[j] == -inf)
      status_[j] = status::at_upper;
    if (status_[j] == status::at_upper && upper_[j] == inf)
      status_[j] = status::at_lower;
    x_[j] = status_[j] == status::at_lower ? lower_[j] : upper_[j];
  }
}

void simplex_solver::compute_basic_values() {
  // Rows are homogeneous (A x - s = 0), so B x_B = -N x_N.
  std::vector<double> rhs(m_, 0.0);
  for (int j = 0; j < total_columns(); ++j) {
    if (status_[j] == status::basic) continue;
    const double v = x_[j];
    if (v == 0.0) continue;
    if (j < n_) {
      for (int k = problem_.col_start[j]; k < problem_.col_start[j + 1]; ++k)
        rhs[problem_.row_index[k]] -= problem_.value[k] * v;
    } else {
      rhs[j - n_] += v; // slack column is -e_row
    }
  }
  base_ftran(rhs, work_pos_);
  apply_etas_ftran(work_pos_);
  for (int p = 0; p < m_; ++p) x_[basis_[p]] = work_pos_[p];
}

bool simplex_solver::refactorize() {
  if (!build_base_inverse()) return false;
  etas_.clear();
  eta_nonzeros_ = 0;
  ++stats_.refactorizations;
  compute_basic_values();
  // Recompute the incrementally maintained duals from the fresh factors on
  // the next dual iteration (drift control).
  dual_y_valid_ = false;
  return true;
}

bool simplex_solver::build_base_inverse() {
  if (options_.engine == basis_engine::sparse_lu) {
    std::vector<basis_lu::sparse_column> cols(static_cast<std::size_t>(m_));
    for (int p = 0; p < m_; ++p) {
      const int col = basis_[p];
      basis_lu::sparse_column& c = cols[static_cast<std::size_t>(p)];
      if (col < n_) {
        c.reserve(static_cast<std::size_t>(problem_.col_start[col + 1] -
                                           problem_.col_start[col]));
        for (int k = problem_.col_start[col]; k < problem_.col_start[col + 1];
             ++k) {
          // Merge duplicate row entries (row indices ascend within a
          // column): basis_lu requires distinct rows per column.
          if (!c.empty() && c.back().first == problem_.row_index[k])
            c.back().second += problem_.value[k];
          else
            c.emplace_back(problem_.row_index[k], problem_.value[k]);
        }
      } else {
        c.emplace_back(col - n_, -1.0);
      }
    }
    lu_ = basis_lu(options_.lu); // strict thresholds, even after a retry
    if (lu_.factorize(m_, cols)) {
      dense_active_ = false;
      ++stats_.lu_factorizations;
      return true;
    }
    // First fallback: retry with the Suhl threshold relaxed and the pivot
    // floor lowered -- an ill-conditioned but nonsingular basis often
    // factors once sparsity stops vetoing the only usable pivots.
    lu_options relaxed = options_.lu;
    relaxed.suhl_threshold = 0.01;
    relaxed.pivot_tolerance = std::min(relaxed.pivot_tolerance, 1e-13);
    basis_lu retry(relaxed);
    if (retry.factorize(m_, cols)) {
      lu_ = std::move(retry);
      dense_active_ = false;
      ++stats_.lu_factorizations;
      return true;
    }
    // Second fallback: full partial pivoting on the explicit inverse may
    // still get through, and then backs the solves until the next
    // refactorization (which tries LU again). The O(m^3) rebuild is only
    // affordable at dense-viable sizes (the historical ~2500-row bound);
    // above that the caller's slack-basis repair is the cheaper correct
    // recovery -- and it stays responsive to deadlines and cancellation.
    if (m_ > 2500) return false;
  }
  if (dense_refactorize()) {
    if (options_.engine == basis_engine::sparse_lu) ++stats_.dense_fallbacks;
    dense_active_ = true;
    return true;
  }
  return false;
}

bool simplex_solver::dense_refactorize() {
  // Assemble the basis matrix and invert it by Gauss-Jordan elimination with
  // partial pivoting.
  if (binv_.empty()) binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
  std::vector<double> a(static_cast<std::size_t>(m_) * m_, 0.0);
  for (int p = 0; p < m_; ++p) {
    const int col = basis_[p];
    if (col < n_) {
      for (int k = problem_.col_start[col]; k < problem_.col_start[col + 1];
           ++k)
        a[static_cast<std::size_t>(problem_.row_index[k]) * m_ + p] +=
            problem_.value[k];
    } else {
      a[static_cast<std::size_t>(col - n_) * m_ + p] = -1.0;
    }
  }
  std::fill(binv_.begin(), binv_.end(), 0.0);
  for (int i = 0; i < m_; ++i)
    binv_[static_cast<std::size_t>(i) * m_ + i] = 1.0;

  for (int k = 0; k < m_; ++k) {
    int pivot_row = k;
    double best = std::abs(a[static_cast<std::size_t>(k) * m_ + k]);
    for (int r = k + 1; r < m_; ++r) {
      const double cand = std::abs(a[static_cast<std::size_t>(r) * m_ + k]);
      if (cand > best) {
        best = cand;
        pivot_row = r;
      }
    }
    if (best < 1e-12) return false; // singular: caller repairs the basis
    if (pivot_row != k) {
      for (int c = 0; c < m_; ++c) {
        std::swap(a[static_cast<std::size_t>(pivot_row) * m_ + c],
                  a[static_cast<std::size_t>(k) * m_ + c]);
        std::swap(binv_[static_cast<std::size_t>(pivot_row) * m_ + c],
                  binv_[static_cast<std::size_t>(k) * m_ + c]);
      }
    }
    const double inv_pivot = 1.0 / a[static_cast<std::size_t>(k) * m_ + k];
    for (int c = 0; c < m_; ++c) {
      a[static_cast<std::size_t>(k) * m_ + c] *= inv_pivot;
      binv_[static_cast<std::size_t>(k) * m_ + c] *= inv_pivot;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == k) continue;
      const double f = a[static_cast<std::size_t>(r) * m_ + k];
      if (f == 0.0) continue;
      for (int c = 0; c < m_; ++c) {
        a[static_cast<std::size_t>(r) * m_ + c] -=
            f * a[static_cast<std::size_t>(k) * m_ + c];
        binv_[static_cast<std::size_t>(r) * m_ + c] -=
            f * binv_[static_cast<std::size_t>(k) * m_ + c];
      }
    }
  }
  // binv_ now holds B^{-1} in "basis position" row order: row p gives the
  // coefficients expressing basis position p in terms of constraint rows.
  return true;
}

bool simplex_solver::load_basis(const std::vector<int>& basic_columns,
                                const std::vector<int>& at_upper_columns) {
  require(static_cast<int>(basic_columns.size()) == m_,
          "simplex: load_basis needs one column per row");
  std::fill(basic_position_.begin(), basic_position_.end(), -1);
  for (int p = 0; p < m_; ++p) {
    const int col = basic_columns[static_cast<std::size_t>(p)];
    require(col >= 0 && col < total_columns(),
            "simplex: load_basis column out of range");
    require(basic_position_[col] < 0, "simplex: load_basis repeats a column");
    basis_[p] = col;
    basic_position_[col] = p;
  }
  for (int j = 0; j < total_columns(); ++j)
    status_[j] = basic_position_[j] >= 0 ? status::basic : status::at_lower;
  for (const int col : at_upper_columns) {
    require(col >= 0 && col < total_columns(),
            "simplex: load_basis at-upper column out of range");
    if (status_[col] != status::basic && upper_[col] != inf)
      status_[col] = status::at_upper;
  }
  clamp_nonbasic_to_bounds();
  reset_devex();
  candidates_.clear();
  pricing_cursor_ = 0;
  basis_valid_ = true;
  if (refactorize()) return true;
  // Singular under every engine: repair to the slack basis so the solver
  // stays usable, and report the rejection.
  reset_to_slack_basis();
  compute_basic_values();
  return false;
}

// ----------------------------------------------------- basis inverse algebra

void simplex_solver::apply_etas_ftran(std::vector<double>& v) const {
  // B^-1 = E_k^-1 ... E_1^-1 B0^-1: the dense part was applied by the
  // caller, so run the etas in chronological order. Solving E z = v with E
  // equal to identity except column r (the spike w): z_r = v_r / w_r,
  // z_i = v_i - w_i z_r.
  for (const eta_vector& e : etas_) {
    const double t = v[e.pivot_pos] / e.pivot_value;
    if (t != 0.0) {
      for (const auto& [pos, val] : e.entries) v[pos] -= val * t;
    }
    v[e.pivot_pos] = t;
  }
}

void simplex_solver::apply_etas_btran(std::vector<double>& z) const {
  // Row-vector counterpart: z := z E^-1 changes only component r, with
  // z_r' = (z_r - sum_{i != r} z_i w_i) / w_r; etas run newest-first.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = z[it->pivot_pos];
    for (const auto& [pos, val] : it->entries) s -= z[pos] * val;
    z[it->pivot_pos] = s / it->pivot_value;
  }
}

void simplex_solver::base_ftran(const std::vector<double>& rhs,
                                std::vector<double>& v) const {
  if (dense_active_)
    dense_ftran(rhs, v);
  else
    lu_.ftran(rhs, v);
}

void simplex_solver::base_btran(const std::vector<double>& z,
                                std::vector<double>& y) const {
  if (dense_active_)
    dense_btran(z, y);
  else
    lu_.btran(z, y);
}

void simplex_solver::dense_ftran(const std::vector<double>& rhs,
                                 std::vector<double>& v) const {
  v.assign(m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    const double r = rhs[i];
    if (r == 0.0) continue;
    for (int p = 0; p < m_; ++p)
      v[p] += binv_[static_cast<std::size_t>(p) * m_ + i] * r;
  }
}

void simplex_solver::dense_btran(const std::vector<double>& z,
                                 std::vector<double>& y) const {
  y.assign(m_, 0.0);
  for (int p = 0; p < m_; ++p) {
    const double c = z[p];
    if (c == 0.0) continue;
    const double* row = &binv_[static_cast<std::size_t>(p) * m_];
    for (int i = 0; i < m_; ++i) y[i] += c * row[i];
  }
}

void simplex_solver::ftran(int column, std::vector<double>& w) const {
  if (!dense_active_) {
    // Scatter the sparse column into the all-zero row-space scratch, solve,
    // and restore the invariant.
    if (column < n_) {
      // += keeps the "CSC duplicates sum" convention every dot-product
      // path already uses (work_rhs_ is all-zero between calls).
      for (int k = problem_.col_start[column]; k < problem_.col_start[column + 1];
           ++k)
        work_rhs_[problem_.row_index[k]] += problem_.value[k];
      lu_.ftran(work_rhs_, w);
      for (int k = problem_.col_start[column]; k < problem_.col_start[column + 1];
           ++k)
        work_rhs_[problem_.row_index[k]] = 0.0;
    } else {
      work_rhs_[column - n_] = -1.0;
      lu_.ftran(work_rhs_, w);
      work_rhs_[column - n_] = 0.0;
    }
  } else if (column < n_) {
    for (int p = 0; p < m_; ++p) {
      const double* row = &binv_[static_cast<std::size_t>(p) * m_];
      double sum = 0.0;
      for (int k = problem_.col_start[column];
           k < problem_.col_start[column + 1]; ++k)
        sum += row[problem_.row_index[k]] * problem_.value[k];
      w[p] = sum;
    }
  } else {
    const int row_of_slack = column - n_;
    for (int p = 0; p < m_; ++p)
      w[p] = -binv_[static_cast<std::size_t>(p) * m_ + row_of_slack];
  }
  apply_etas_ftran(w);
}

void simplex_solver::btran_row(int position, std::vector<double>& rho) const {
  work_pos_.assign(m_, 0.0);
  work_pos_[position] = 1.0;
  apply_etas_btran(work_pos_);
  base_btran(work_pos_, rho);
}

void simplex_solver::tableau_row(int position, std::vector<double>& alpha) const {
  require(position >= 0 && position < m_, "simplex: tableau_row position");
  std::vector<double> rho(static_cast<std::size_t>(m_), 0.0);
  btran_row(position, rho);
  alpha.assign(static_cast<std::size_t>(total_columns()), 0.0);
  for (int j = 0; j < total_columns(); ++j) {
    if (basic_position_[j] >= 0) {
      // Exact by definition: e_p B^-1 B = e_p.
      alpha[static_cast<std::size_t>(j)] =
          basic_position_[j] == position ? 1.0 : 0.0;
    } else {
      alpha[static_cast<std::size_t>(j)] = column_dot(j, rho);
    }
  }
}

void simplex_solver::record_basis_update(int leaving_pos, double pivot_element,
                                         const std::vector<double>& w) {
  int nnz = 0;
  for (int p = 0; p < m_; ++p)
    if (w[p] != 0.0) ++nnz;

  if (dense_active_ && etas_.empty() && 2 * nnz > m_) {
    // Dense spike with no pending etas: sparsity-aware in-place update of
    // the explicit inverse (work ~ nnz(w) x nnz(pivot row)). The LU factors
    // are immutable, so under the sparse engine every spike goes to the eta
    // file (eta-on-LU) until the next refactorization.
    double* pivot_row = &binv_[static_cast<std::size_t>(leaving_pos) * m_];
    const double inv_pivot = 1.0 / pivot_element;
    static thread_local std::vector<int> row_nonzeros;
    row_nonzeros.clear();
    for (int i = 0; i < m_; ++i) {
      pivot_row[i] *= inv_pivot;
      if (pivot_row[i] != 0.0) row_nonzeros.push_back(i);
    }
    for (int p = 0; p < m_; ++p) {
      if (p == leaving_pos) continue;
      const double f = w[p];
      if (f == 0.0) continue;
      double* row = &binv_[static_cast<std::size_t>(p) * m_];
      for (const int i : row_nonzeros) row[i] -= f * pivot_row[i];
    }
    return;
  }

  // Product-form update: append the spike as an eta vector, O(fill-in).
  eta_vector e;
  e.pivot_pos = leaving_pos;
  e.pivot_value = pivot_element;
  e.entries.reserve(static_cast<std::size_t>(nnz > 0 ? nnz - 1 : 0));
  for (int p = 0; p < m_; ++p) {
    if (p == leaving_pos || w[p] == 0.0) continue;
    e.entries.emplace_back(p, w[p]);
  }
  eta_nonzeros_ += e.entries.size() + 1;
  etas_.push_back(std::move(e));
}

bool simplex_solver::should_refactor(int pivots_since_refactor) const {
  if (pivots_since_refactor >= options_.refactor_interval) return true;
  if (static_cast<int>(etas_.size()) >= options_.refactor_interval) return true;
  // Fill trigger: refactor once the eta file outgrows its base
  // representation -- m^2/8 against the dense inverse, a small multiple of
  // the LU factor nonzeros against the sparse factors (whose solves are
  // O(m + fill), so a bloated eta file would dominate them).
  const std::size_t nnz_cap =
      dense_active_
          ? std::max<std::size_t>(1024, static_cast<std::size_t>(m_) *
                                            static_cast<std::size_t>(m_) / 8)
          : std::max<std::size_t>(
                1024, 2 * (lu_.factor_nonzeros() + static_cast<std::size_t>(m_)));
  return eta_nonzeros_ > nnz_cap;
}

// ------------------------------------------------------------ reduced costs

void simplex_solver::compute_duals(const std::vector<double>& basic_cost,
                                   std::vector<double>& y) const {
  work_pos_.assign(basic_cost.begin(), basic_cost.end());
  apply_etas_btran(work_pos_);
  base_btran(work_pos_, y);
}

double simplex_solver::reduced_cost(int column,
                                    const std::vector<double>& y) const {
  return -column_dot(column, y); // caller adds the column's own cost
}

double simplex_solver::column_dot(int column,
                                  const std::vector<double>& y) const {
  if (column < n_) {
    double dot = 0.0;
    for (int k = problem_.col_start[column]; k < problem_.col_start[column + 1];
         ++k)
      dot += y[problem_.row_index[k]] * problem_.value[k];
    return dot;
  }
  return -y[column - n_]; // slack column is -e_row
}

double simplex_solver::column_cost_phase2(int column) const {
  return column < n_ ? problem_.cost[column] : 0.0;
}

double simplex_solver::infeasibility_sum() const {
  double total = 0.0;
  for (int p = 0; p < m_; ++p) {
    const int col = basis_[p];
    if (x_[col] < lower_[col]) total += lower_[col] - x_[col];
    if (x_[col] > upper_[col]) total += x_[col] - upper_[col];
  }
  return total;
}

bool simplex_solver::basic_feasible() const {
  const double tol = options_.feasibility_tolerance;
  for (int p = 0; p < m_; ++p) {
    const int col = basis_[p];
    if (x_[col] < lower_[col] - tol || x_[col] > upper_[col] + tol)
      return false;
  }
  return true;
}

bool simplex_solver::dual_feasible(const std::vector<double>& y) const {
  const double tol = options_.optimality_tolerance * 10.0;
  for (int j = 0; j < total_columns(); ++j) {
    const status s = status_[j];
    if (s == status::basic) continue;
    const double d = column_cost_phase2(j) + reduced_cost(j, y);
    if (s == status::at_lower && d < -tol) return false;
    if (s == status::at_upper && d > tol) return false;
    if (s == status::free_zero && std::abs(d) > tol) return false;
  }
  return true;
}

// ----------------------------------------------------------------- pricing

double simplex_solver::pricing_violation(int column, double reduced,
                                         int& direction) const {
  const double opt_tol = options_.optimality_tolerance;
  const status s = status_[column];
  if (s == status::at_lower && reduced < -opt_tol) {
    direction = 1;
    return -reduced;
  }
  if (s == status::at_upper && reduced > opt_tol) {
    direction = -1;
    return reduced;
  }
  if (s == status::free_zero && std::abs(reduced) > opt_tol) {
    direction = reduced < 0.0 ? 1 : -1;
    return std::abs(reduced);
  }
  return 0.0;
}

simplex_solver::entering_choice simplex_solver::price_full_scan(
    bool phase1, bool bland, const std::vector<double>& y) {
  entering_choice choice;
  double best_violation = options_.optimality_tolerance;
  for (int j = 0; j < total_columns(); ++j) {
    if (status_[j] == status::basic) continue;
    const double own_cost = phase1 ? 0.0 : column_cost_phase2(j);
    const double d = own_cost + reduced_cost(j, y);
    int dir = 0;
    const double violation = pricing_violation(j, d, dir);
    if (dir == 0) continue;
    if (bland) {
      choice.column = j;
      choice.direction = dir;
      return choice;
    }
    if (violation > best_violation) {
      best_violation = violation;
      choice.column = j;
      choice.direction = dir;
    }
  }
  return choice;
}

void simplex_solver::refill_candidates(bool phase1,
                                       const std::vector<double>& y) {
  candidates_.clear();
  const int total = total_columns();
  int list_size = options_.partial_pricing_size;
  if (list_size <= 0)
    list_size = std::clamp(total / 8, 16, 256);
  for (int t = 0; t < total; ++t) {
    const int j = pricing_cursor_ + t < total ? pricing_cursor_ + t
                                              : pricing_cursor_ + t - total;
    if (status_[j] == status::basic) continue;
    const double own_cost = phase1 ? 0.0 : column_cost_phase2(j);
    const double d = own_cost + reduced_cost(j, y);
    int dir = 0;
    if (pricing_violation(j, d, dir) <= 0.0) continue;
    candidates_.push_back(j);
    if (static_cast<int>(candidates_.size()) >= list_size) {
      pricing_cursor_ = j + 1 < total ? j + 1 : 0;
      return;
    }
  }
  // Full wrap completed: the list (possibly empty) is a certificate that no
  // column outside it is attractive.
}

simplex_solver::entering_choice simplex_solver::price_devex(
    bool phase1, const std::vector<double>& y) {
  entering_choice choice;
  for (int attempt = 0; attempt < 2; ++attempt) {
    double best_score = 0.0;
    std::size_t keep = 0;
    for (const int j : candidates_) {
      if (status_[j] == status::basic) continue;
      const double own_cost = phase1 ? 0.0 : column_cost_phase2(j);
      const double d = own_cost + reduced_cost(j, y);
      int dir = 0;
      if (pricing_violation(j, d, dir) <= 0.0) continue;
      candidates_[keep++] = j; // compact: keep attractive entries, in order
      const double score = d * d / devex_weight_[j];
      if (score > best_score ||
          (score == best_score && choice.column >= 0 && j < choice.column)) {
        best_score = score;
        choice.column = j;
        choice.direction = dir;
      }
    }
    candidates_.resize(keep);
    if (choice.column >= 0) return choice;
    refill_candidates(phase1, y);
    if (candidates_.empty()) return choice; // full scan found nothing: optimal
  }
  return choice;
}

void simplex_solver::update_devex_weights(int entering, int leaving_pos,
                                          double pivot_element, bool phase1) {
  (void)phase1;
  if (options_.pricing != pricing_rule::devex) return;
  btran_row(leaving_pos, work_rho_);
  const double weight_q = devex_weight_[entering];
  const double inv_pivot_sq = 1.0 / (pivot_element * pivot_element);
  double max_weight = 0.0;
  for (const int j : candidates_) {
    if (j == entering || status_[j] == status::basic) continue;
    const double alpha = column_dot(j, work_rho_);
    if (alpha == 0.0) continue;
    const double cand = alpha * alpha * inv_pivot_sq * weight_q;
    if (cand > devex_weight_[j]) devex_weight_[j] = cand;
    max_weight = std::max(max_weight, devex_weight_[j]);
  }
  // The leaving column re-enters the nonbasic pool with the transformed
  // reference weight.
  devex_weight_[basis_[leaving_pos]] = std::max(1.0, weight_q * inv_pivot_sq);
  if (max_weight > 1e7) reset_devex(); // start a new reference framework
}

void simplex_solver::reset_devex() {
  std::fill(devex_weight_.begin(), devex_weight_.end(), 1.0);
}

// ---------------------------------------------------------- primal simplex

simplex_solver::pivot_outcome simplex_solver::iterate(bool phase1,
                                                      bool bland) {
  const double feas_tol = options_.feasibility_tolerance;
  const double pivot_tol = options_.pivot_tolerance;

  // Phase-dependent basic costs.
  for (int p = 0; p < m_; ++p) {
    const int col = basis_[p];
    if (phase1) {
      if (x_[col] < lower_[col] - feas_tol)
        work_cost_[p] = -1.0;
      else if (x_[col] > upper_[col] + feas_tol)
        work_cost_[p] = 1.0;
      else
        work_cost_[p] = 0.0;
    } else {
      work_cost_[p] = column_cost_phase2(col);
    }
  }
  compute_duals(work_cost_, work_row_);

  // Entering column selection: devex over the partial-pricing candidate
  // list, unless Bland's anti-cycling rule or the Dantzig ablation forces a
  // full scan.
  const entering_choice choice =
      (bland || options_.pricing == pricing_rule::dantzig)
          ? price_full_scan(phase1, bland, work_row_)
          : price_devex(phase1, work_row_);
  const int entering = choice.column;
  const int direction = choice.direction;

  pivot_outcome outcome;
  if (entering < 0) {
    outcome.no_candidate = true;
    return outcome;
  }

  ftran(entering, work_col_);


  // Ratio test. The entering variable moves by `step` in `direction`;
  // basic variable at position p changes at rate -direction * w[p].
  double best_step = inf;
  int leaving_pos = -1; // -1 means the entering column's own bound binds
  bool leaving_to_upper = false;
  double best_pivot = 0.0;

  if (lower_[entering] != -inf && upper_[entering] != inf)
    best_step = upper_[entering] - lower_[entering];

  for (int p = 0; p < m_; ++p) {
    const double w = work_col_[p];
    if (std::abs(w) <= pivot_tol) continue;
    const int col = basis_[p];
    const double rate = -direction * w;
    const double value = x_[col];
    double limit = inf;
    bool to_upper = false;

    const bool below = value < lower_[col] - feas_tol;
    const bool above = value > upper_[col] + feas_tol;
    if (phase1 && below) {
      // Infeasible basic below its lower bound: breakpoint only when it
      // rises to that bound (it leaves there, feasible).
      if (rate > 0.0) {
        limit = (lower_[col] - value) / rate;
        to_upper = false;
      }
    } else if (phase1 && above) {
      if (rate < 0.0) {
        limit = (upper_[col] - value) / rate;
        to_upper = true;
      }
    } else {
      if (rate > 0.0 && upper_[col] != inf) {
        limit = (upper_[col] - value) / rate;
        to_upper = true;
      } else if (rate < 0.0 && lower_[col] != -inf) {
        limit = (lower_[col] - value) / rate;
        to_upper = false;
      }
    }
    if (limit == inf) continue;
    if (limit < 0.0) limit = 0.0; // numerical guard
    bool better = false;
    if (limit < best_step - 1e-12) {
      better = true;
    } else if (limit <= best_step + 1e-12 && leaving_pos >= 0) {
      // Tie among basic candidates: Bland picks the lowest column index
      // (anti-cycling); otherwise prefer the largest pivot for stability.
      better = bland ? col < basis_[leaving_pos]
                     : std::abs(w) > std::abs(best_pivot);
    }
    if (better) {
      best_step = limit;
      leaving_pos = p;
      leaving_to_upper = to_upper;
      best_pivot = w;
    }
  }

  if (best_step == inf) {
    if (phase1)
      throw internal_error(
          "simplex: unbounded phase-1 direction (should be impossible)");
    outcome.unbounded = true;
    return outcome;
  }


  if (leaving_pos >= 0 && !bland &&
      options_.pricing == pricing_rule::devex)
    update_devex_weights(entering, leaving_pos, best_pivot, phase1);

  apply_pivot(entering, direction, best_step, leaving_pos, best_pivot,
              work_col_, leaving_to_upper);
  outcome.moved = true;
  outcome.step = best_step;
  return outcome;
}

void simplex_solver::apply_pivot(int entering, int direction, double step,
                                 int leaving_pos, double pivot_element,
                                 const std::vector<double>& w,
                                 bool leaving_to_upper) {
  // Move values along the simplex direction.
  x_[entering] += direction * step;
  if (step != 0.0) {
    for (int p = 0; p < m_; ++p) {
      if (w[p] == 0.0) continue;
      x_[basis_[p]] -= direction * step * w[p];
    }
  }

  if (leaving_pos < 0) {
    // Bound flip: the entering variable reached its opposite bound.
    status_[entering] =
        direction > 0 ? status::at_upper : status::at_lower;
    x_[entering] =
        direction > 0 ? upper_[entering] : lower_[entering];
    return;
  }

  const int leaving_col = basis_[leaving_pos];
  status_[leaving_col] =
      leaving_to_upper ? status::at_upper : status::at_lower;
  x_[leaving_col] = leaving_to_upper ? upper_[leaving_col] : lower_[leaving_col];
  basic_position_[leaving_col] = -1;

  basis_[leaving_pos] = entering;
  basic_position_[entering] = leaving_pos;
  status_[entering] = status::basic;
  dual_y_valid_ = false; // primal pivots move the basis under the dual's y

  record_basis_update(leaving_pos, pivot_element, w);
}

// ------------------------------------------------------------ dual simplex

simplex_solver::dual_outcome simplex_solver::dual_iterate() {
  const double feas_tol = options_.feasibility_tolerance;
  const double opt_tol = options_.optimality_tolerance;
  const double pivot_tol = options_.pivot_tolerance;
  dual_outcome out;

  // Phase-2 duals, maintained incrementally across dual pivots (updated
  // from the pivot row below); a full btran recompute happens only when the
  // basis changed outside the dual loop or the factorization was refreshed.
  if (!dual_y_valid_) {
    for (int p = 0; p < m_; ++p) work_cost_[p] = column_cost_phase2(basis_[p]);
    compute_duals(work_cost_, dual_y_);
    dual_y_valid_ = true;
    ++stats_.dual_recomputes;
  }

  // Leaving-row selection: the basic variable with the largest bound
  // violation (tie-break: lowest position, deterministic).
  int leave_pos = -1;
  bool below = false;
  double best_violation = feas_tol;
  for (int p = 0; p < m_; ++p) {
    const int col = basis_[p];
    if (x_[col] < lower_[col] - feas_tol) {
      const double violation = lower_[col] - x_[col];
      if (violation > best_violation) {
        best_violation = violation;
        leave_pos = p;
        below = true;
      }
    } else if (x_[col] > upper_[col] + feas_tol) {
      const double violation = x_[col] - upper_[col];
      if (violation > best_violation) {
        best_violation = violation;
        leave_pos = p;
        below = false;
      }
    }
  }
  if (leave_pos < 0) {
    out.optimal = true;
    return out;
  }

  const int leave_col = basis_[leave_pos];
  // Signed change of x[leave_col] needed to land on its violated bound:
  // positive when below the lower bound, negative when above the upper.
  double delta = below ? lower_[leave_col] - x_[leave_col]
                       : upper_[leave_col] - x_[leave_col];

  // Pivot row of the tableau.
  btran_row(leave_pos, work_rho_);

  // Eligible entering candidates with their dual ratios. The entering
  // variable j moves by delta_j = -delta / alpha_j, so eligibility is the
  // sign pattern that moves x[leave_col] toward its bound while delta_j
  // respects j's own bound direction.
  struct dual_candidate {
    int col;
    double alpha;
    double d;   // signed reduced cost (for the incremental dual update)
    double mag; // dual-feasibility slack of the reduced cost, clamped >= 0
    double ratio;
  };
  static thread_local std::vector<dual_candidate> cands;
  cands.clear();
  for (int j = 0; j < total_columns(); ++j) {
    const status s = status_[j];
    if (s == status::basic) continue;
    // A fixed column (lower == upper) imposes no dual breakpoint: both
    // bound statuses are dual feasible for any reduced-cost sign, so it
    // can neither enter nor restrict the dual step. Admitting it causes
    // zero-step churn at branch-and-bound nodes where binaries are fixed.
    if (upper_[j] - lower_[j] <= feas_tol && s != status::free_zero) continue;
    const double alpha = column_dot(j, work_rho_);
    if (std::abs(alpha) <= pivot_tol) continue;
    bool eligible = false;
    if (s == status::free_zero) {
      eligible = true;
    } else if (delta > 0.0) { // leave_col must rise
      eligible = (s == status::at_lower && alpha < 0.0) ||
                 (s == status::at_upper && alpha > 0.0);
    } else { // leave_col must fall
      eligible = (s == status::at_lower && alpha > 0.0) ||
                 (s == status::at_upper && alpha < 0.0);
    }
    if (!eligible) continue;
    const double d = column_cost_phase2(j) + reduced_cost(j, dual_y_);
    double mag;
    if (s == status::at_lower)
      mag = std::max(0.0, d);
    else if (s == status::at_upper)
      mag = std::max(0.0, -d);
    else
      mag = std::abs(d);
    cands.push_back({j, alpha, d, mag, mag / std::abs(alpha)});
  }
  if (cands.empty()) {
    // Dual unbounded: the primal has no feasible point in this subproblem.
    out.infeasible = true;
    return out;
  }

  // Bound-flipping (long-step) ratio test: walk the dual breakpoints in
  // ratio order; boxed columns whose full range cannot absorb the remaining
  // infeasibility flip to their opposite bound and the walk continues.
  std::sort(cands.begin(), cands.end(),
            [](const dual_candidate& a, const dual_candidate& b) {
              if (a.ratio != b.ratio) return a.ratio < b.ratio;
              return a.col < b.col;
            });

  static thread_local std::vector<std::pair<int, double>> flips; // (col, move)
  flips.clear();
  double delta_rem = delta;
  int chosen = -1;
  for (std::size_t c = 0; c < cands.size(); ++c) {
    const dual_candidate& cand = cands[c];
    const double needed = -delta_rem / cand.alpha;
    const double range = upper_[cand.col] - lower_[cand.col];
    if (range == inf || std::abs(needed) <= range + feas_tol) {
      // Harris-style second pass: among near-tied breakpoints that can also
      // absorb the remaining infeasibility, prefer the largest pivot.
      chosen = static_cast<int>(c);
      for (std::size_t k = c + 1; k < cands.size(); ++k) {
        if (cands[k].ratio > cand.ratio + opt_tol) break;
        const double k_needed = -delta_rem / cands[k].alpha;
        const double k_range = upper_[cands[k].col] - lower_[cands[k].col];
        if (k_range != inf && std::abs(k_needed) > k_range + feas_tol)
          continue;
        if (std::abs(cands[k].alpha) > std::abs(cands[chosen].alpha))
          chosen = static_cast<int>(k);
      }
      break;
    }
    // Flip: the column traverses its whole (finite) range. Eligibility
    // fixed the direction, so the flip cannot overshoot the bound.
    const double move = status_[cand.col] == status::at_lower ? range : -range;
    flips.emplace_back(cand.col, move);
    delta_rem += cand.alpha * move;
  }

  if (chosen < 0 && std::abs(delta_rem) > feas_tol) {
    // Breakpoints exhausted with infeasibility left: dual unbounded.
    out.infeasible = true;
    return out;
  }

  // Apply the accumulated bound flips with one batched ftran.
  if (!flips.empty()) {
    std::vector<double> rhs(m_, 0.0);
    for (const auto& [col, move] : flips) {
      if (col < n_) {
        for (int k = problem_.col_start[col]; k < problem_.col_start[col + 1];
             ++k)
          rhs[problem_.row_index[k]] += problem_.value[k] * move;
      } else {
        rhs[col - n_] -= move; // slack column is -e_row
      }
      status_[col] = status_[col] == status::at_lower ? status::at_upper
                                                      : status::at_lower;
      x_[col] = status_[col] == status::at_lower ? lower_[col] : upper_[col];
    }
    base_ftran(rhs, work_pos_);
    apply_etas_ftran(work_pos_);
    for (int p = 0; p < m_; ++p) {
      if (work_pos_[p] != 0.0) x_[basis_[p]] -= work_pos_[p];
    }
    stats_.dual_bound_flips += static_cast<long>(flips.size());
  }

  if (chosen < 0) {
    // The flips alone absorbed the infeasibility (within tolerance).
    x_[leave_col] = below ? lower_[leave_col] : upper_[leave_col];
    out.moved = true;
    out.step = flips.empty() ? 0.0 : cands[flips.size() - 1].ratio;
    return out;
  }

  const dual_candidate entering = cands[static_cast<std::size_t>(chosen)];
  ftran(entering.col, work_col_);
  const double pivot = work_col_[leave_pos];
  if (std::abs(pivot) <= std::max(pivot_tol, 1e-7) ||
      std::abs(pivot - entering.alpha) >
          1e-6 * std::max(1.0, std::abs(entering.alpha))) {
    // The ftran'd pivot disagrees with the btran'd row: the factorization
    // has drifted. Abort; the caller refactorizes and retries.
    out.aborted = true;
    return out;
  }

  const double step = -delta_rem / pivot;
  x_[entering.col] += step;
  if (step != 0.0) {
    for (int p = 0; p < m_; ++p) {
      if (work_col_[p] == 0.0) continue;
      x_[basis_[p]] -= step * work_col_[p];
    }
  }
  x_[leave_col] = below ? lower_[leave_col] : upper_[leave_col];
  status_[leave_col] = below ? status::at_lower : status::at_upper;
  basic_position_[leave_col] = -1;
  basis_[leave_pos] = entering.col;
  basic_position_[entering.col] = leave_pos;
  status_[entering.col] = status::basic;
  devex_weight_[leave_col] = 1.0;

  record_basis_update(leave_pos, pivot, work_col_);

  // Incremental dual update from the pivot row (work_rho_ still holds
  // e_r B^-1 of the pre-pivot basis): y' = y + theta * rho with
  // theta = d_q / alpha_q zeroes the entering column's reduced cost and
  // makes y' exactly the dual vector of the updated basis.
  const double theta = entering.d / entering.alpha;
  if (theta != 0.0) {
    for (int i = 0; i < m_; ++i)
      if (work_rho_[i] != 0.0) dual_y_[i] += theta * work_rho_[i];
  }
  ++stats_.dual_updates;

  out.moved = true;
  // Progress is measured by the DUAL step (the entering column's ratio):
  // the dual objective strictly increases iff it is positive. Measuring the
  // primal violation instead masks dual-degenerate cycling, where large
  // violations ping-pong while the dual objective never moves.
  out.step = entering.ratio;
  return out;
}

// ------------------------------------------------------------------- solve

lp_result simplex_solver::solve(const deadline& time_budget, bool warm_start,
                                long iteration_limit) {
  lp_result result;
  const long max_iters =
      iteration_limit >= 0 ? iteration_limit : options_.max_iterations;

  const bool warmed = warm_start && basis_valid_;
  if (!warmed) {
    reset_to_slack_basis();
  } else {
    clamp_nonbasic_to_bounds();
  }
  compute_basic_values();

  long iterations = 0;
  long dual_iterations = 0;
  int pivots_since_refactor = 0;
  int degenerate_run = 0;
  bool bland = false;
  int phase1_retries = 0;
  int dual_aborts = 0;
  long dual_stall = 0;

  enum class mode { dual_method, phase1, phase2 };
  mode state = basic_feasible() ? mode::phase2 : mode::phase1;

  auto repair_basis = [&]() {
    // Singular basis: rebuild from the slack basis and restart the primal
    // from phase 1 (correct, if slow; singularity is rare).
    if (state == mode::dual_method) ++stats_.primal_fallbacks;
    reset_to_slack_basis();
    compute_basic_values();
    pivots_since_refactor = 0;
    state = basic_feasible() ? mode::phase2 : mode::phase1;
  };
  auto maybe_refactor = [&]() {
    if (should_refactor(pivots_since_refactor)) {
      if (refactorize())
        pivots_since_refactor = 0;
      else
        repair_basis();
    }
  };

  // A warm-started basis after branching keeps its reduced costs, so when
  // primal feasibility broke but dual feasibility survived, the dual
  // simplex re-solves in a handful of pivots.
  if (options_.allow_dual && warmed && state == mode::phase1) {
    for (int p = 0; p < m_; ++p)
      work_cost_[p] = column_cost_phase2(basis_[p]);
    compute_duals(work_cost_, work_row_);
    if (dual_feasible(work_row_)) {
      state = mode::dual_method;
      result.used_dual = true;
      ++stats_.dual_solves;
      // Seed the incrementally maintained duals with the vector just
      // computed for the feasibility check.
      dual_y_ = work_row_;
      dual_y_valid_ = true;
    }
  }

  auto leave_dual = [&](bool count_fallback) {
    if (count_fallback) ++stats_.primal_fallbacks;
    state = basic_feasible() ? mode::phase2 : mode::phase1;
  };

  while (true) {
    if (iterations >= max_iters) {
      result.status = lp_status::iteration_limit;
      break;
    }
    if ((iterations & 63) == 0 && time_budget.expired()) {
      result.status = lp_status::time_limit;
      break;
    }

    auto note_step = [&](double step) {
      if (step <= 1e-11) {
        if (++degenerate_run > options_.degenerate_switch) bland = true;
      } else {
        degenerate_run = 0;
        bland = false;
      }
    };

    if (state == mode::dual_method) {
      const dual_outcome out = dual_iterate();
      ++iterations;
      ++dual_iterations;
      ++stats_.dual_iterations;
      if (out.optimal) {
        // Primal feasibility regained; let the primal phase-2 loop certify
        // optimality (it terminates immediately when no candidate prices).
        state = mode::phase2;
        continue;
      }
      if (out.infeasible) {
        // Dual unboundedness proofs rest on alphas computed through the
        // eta file; accept them only from a fresh factorization so drift
        // cannot falsely prune a feasible branch-and-bound node.
        if (!etas_.empty()) {
          if (refactorize())
            pivots_since_refactor = 0;
          else
            repair_basis();
          continue;
        }
        result.status = lp_status::infeasible;
        break;
      }
      if (out.aborted) {
        if (refactorize()) {
          pivots_since_refactor = 0;
          if (++dual_aborts > 2) leave_dual(/*count_fallback=*/true);
        } else {
          repair_basis();
        }
        continue;
      }
      ++pivots_since_refactor;
      maybe_refactor();
      if (out.step <= 1e-11) {
        if (++dual_stall > options_.degenerate_switch)
          leave_dual(/*count_fallback=*/true); // primal Bland breaks the tie
      } else {
        dual_stall = 0;
      }
      continue;
    }

    if (state == mode::phase1) {
      const pivot_outcome out = iterate(true, bland);
      ++iterations;
      ++stats_.primal_iterations;
      if (out.no_candidate) {
        if (infeasibility_sum() >
            options_.feasibility_tolerance * (m_ + 1) * 16.0) {
          result.status = lp_status::infeasible;
          break;
        }
        state = mode::phase2; // residual infeasibility is numerical noise
        continue;
      }
      note_step(out.step);
      ++pivots_since_refactor;
      maybe_refactor();
      if (basic_feasible()) state = mode::phase2;
      continue;
    }

    const pivot_outcome out = iterate(false, bland);
    ++iterations;
    ++stats_.primal_iterations;
    if (out.no_candidate) {
      // Optimal -- but verify primal feasibility survived the arithmetic.
      if (!basic_feasible()) {
        if (++phase1_retries > 3) {
          result.status = lp_status::infeasible;
          break;
        }
        if (refactorize()) {
          pivots_since_refactor = 0;
          state = basic_feasible() ? mode::phase2 : mode::phase1;
        } else {
          repair_basis();
        }
        continue;
      }
      result.status = lp_status::optimal;
      break;
    }
    if (out.unbounded) {
      result.status = lp_status::unbounded;
      break;
    }
    note_step(out.step);
    ++pivots_since_refactor;
    maybe_refactor();
  }

  total_iterations_ += iterations;
  result.iterations = iterations;
  result.dual_iterations = dual_iterations;
  result.x.assign(x_.begin(), x_.begin() + n_);
  if (result.status == lp_status::optimal) {
    for (int p = 0; p < m_; ++p) work_cost_[p] = column_cost_phase2(basis_[p]);
    compute_duals(work_cost_, work_row_);
    result.duals = work_row_;
  }
  double objective = 0.0;
  for (int j = 0; j < n_; ++j) objective += problem_.cost[j] * x_[j];
  result.objective = objective;
  return result;
}

} // namespace transtore::milp
