#include "milp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace transtore::milp {
namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

} // namespace

simplex_solver::simplex_solver(const lp_problem& problem,
                               simplex_options options)
    : problem_(problem), options_(options) {
  n_ = problem.num_vars;
  m_ = problem.num_rows;
  require(static_cast<int>(problem.cost.size()) == n_ &&
              static_cast<int>(problem.lower.size()) == n_ &&
              static_cast<int>(problem.upper.size()) == n_,
          "simplex: inconsistent column arrays");
  require(static_cast<int>(problem.row_lower.size()) == m_ &&
              static_cast<int>(problem.row_upper.size()) == m_,
          "simplex: inconsistent row arrays");
  require(static_cast<int>(problem.col_start.size()) == n_ + 1,
          "simplex: bad col_start");

  lower_.resize(total_columns());
  upper_.resize(total_columns());
  for (int j = 0; j < n_; ++j) {
    lower_[j] = problem.lower[j];
    upper_[j] = problem.upper[j];
  }
  for (int i = 0; i < m_; ++i) {
    lower_[n_ + i] = problem.row_lower[i];
    upper_[n_ + i] = problem.row_upper[i];
  }

  basis_.assign(m_, -1);
  basic_position_.assign(total_columns(), -1);
  status_.assign(total_columns(), status::at_lower);
  x_.assign(total_columns(), 0.0);
  binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
  work_col_.assign(m_, 0.0);
  work_row_.assign(m_, 0.0);
  work_cost_.assign(m_, 0.0);
}

void simplex_solver::set_variable_bounds(int var, double lower, double upper) {
  require(var >= 0 && var < n_, "simplex: bound change on unknown variable");
  require(lower <= upper, "simplex: crossing bounds");
  lower_[var] = lower;
  upper_[var] = upper;
}

double simplex_solver::variable_lower(int var) const {
  require(var >= 0 && var < n_, "simplex: unknown variable");
  return lower_[var];
}

double simplex_solver::variable_upper(int var) const {
  require(var >= 0 && var < n_, "simplex: unknown variable");
  return upper_[var];
}

void simplex_solver::reset_to_slack_basis() {
  std::fill(basic_position_.begin(), basic_position_.end(), -1);
  for (int i = 0; i < m_; ++i) {
    basis_[i] = n_ + i;
    basic_position_[n_ + i] = i;
    status_[n_ + i] = status::basic;
  }
  for (int j = 0; j < n_; ++j) {
    if (lower_[j] == -inf && upper_[j] == inf) {
      status_[j] = status::free_zero;
      x_[j] = 0.0;
    } else if (lower_[j] == -inf) {
      status_[j] = status::at_upper;
      x_[j] = upper_[j];
    } else if (upper_[j] == inf || std::abs(lower_[j]) <= std::abs(upper_[j])) {
      status_[j] = status::at_lower;
      x_[j] = lower_[j];
    } else {
      status_[j] = status::at_upper;
      x_[j] = upper_[j];
    }
  }
  // Slack basis matrix is -I, so its inverse is -I as well.
  std::fill(binv_.begin(), binv_.end(), 0.0);
  for (int i = 0; i < m_; ++i) binv_[static_cast<std::size_t>(i) * m_ + i] = -1.0;
  basis_valid_ = true;
}

void simplex_solver::clamp_nonbasic_to_bounds() {
  for (int j = 0; j < total_columns(); ++j) {
    if (status_[j] == status::basic) continue;
    if (lower_[j] == -inf && upper_[j] == inf) {
      status_[j] = status::free_zero;
      x_[j] = 0.0;
      continue;
    }
    if (status_[j] == status::free_zero) {
      // A previously free column acquired a bound (branching): park it.
      status_[j] = lower_[j] != -inf ? status::at_lower : status::at_upper;
    }
    if (status_[j] == status::at_lower && lower_[j] == -inf)
      status_[j] = status::at_upper;
    if (status_[j] == status::at_upper && upper_[j] == inf)
      status_[j] = status::at_lower;
    x_[j] = status_[j] == status::at_lower ? lower_[j] : upper_[j];
  }
}

void simplex_solver::compute_basic_values() {
  // Rows are homogeneous (A x - s = 0), so B x_B = -N x_N.
  std::vector<double> rhs(m_, 0.0);
  for (int j = 0; j < total_columns(); ++j) {
    if (status_[j] == status::basic) continue;
    const double v = x_[j];
    if (v == 0.0) continue;
    if (j < n_) {
      for (int k = problem_.col_start[j]; k < problem_.col_start[j + 1]; ++k)
        rhs[problem_.row_index[k]] -= problem_.value[k] * v;
    } else {
      rhs[j - n_] += v; // slack column is -e_row
    }
  }
  for (int p = 0; p < m_; ++p) {
    const double* row = &binv_[static_cast<std::size_t>(p) * m_];
    double sum = 0.0;
    for (int i = 0; i < m_; ++i) sum += row[i] * rhs[i];
    x_[basis_[p]] = sum;
  }
}

void simplex_solver::refactorize() {
  // Assemble the basis matrix and invert it by Gauss-Jordan elimination with
  // partial pivoting.
  std::vector<double> a(static_cast<std::size_t>(m_) * m_, 0.0);
  for (int p = 0; p < m_; ++p) {
    const int col = basis_[p];
    if (col < n_) {
      for (int k = problem_.col_start[col]; k < problem_.col_start[col + 1];
           ++k)
        a[static_cast<std::size_t>(problem_.row_index[k]) * m_ + p] =
            problem_.value[k];
    } else {
      a[static_cast<std::size_t>(col - n_) * m_ + p] = -1.0;
    }
  }
  std::fill(binv_.begin(), binv_.end(), 0.0);
  for (int i = 0; i < m_; ++i) binv_[static_cast<std::size_t>(i) * m_ + i] = 1.0;

  for (int k = 0; k < m_; ++k) {
    int pivot_row = k;
    double best = std::abs(a[static_cast<std::size_t>(k) * m_ + k]);
    for (int r = k + 1; r < m_; ++r) {
      const double cand = std::abs(a[static_cast<std::size_t>(r) * m_ + k]);
      if (cand > best) {
        best = cand;
        pivot_row = r;
      }
    }
    if (best < 1e-12)
      throw internal_error("simplex: singular basis during refactorization");
    if (pivot_row != k) {
      for (int c = 0; c < m_; ++c) {
        std::swap(a[static_cast<std::size_t>(pivot_row) * m_ + c],
                  a[static_cast<std::size_t>(k) * m_ + c]);
        std::swap(binv_[static_cast<std::size_t>(pivot_row) * m_ + c],
                  binv_[static_cast<std::size_t>(k) * m_ + c]);
      }
    }
    const double inv_pivot = 1.0 / a[static_cast<std::size_t>(k) * m_ + k];
    for (int c = 0; c < m_; ++c) {
      a[static_cast<std::size_t>(k) * m_ + c] *= inv_pivot;
      binv_[static_cast<std::size_t>(k) * m_ + c] *= inv_pivot;
    }
    for (int r = 0; r < m_; ++r) {
      if (r == k) continue;
      const double f = a[static_cast<std::size_t>(r) * m_ + k];
      if (f == 0.0) continue;
      for (int c = 0; c < m_; ++c) {
        a[static_cast<std::size_t>(r) * m_ + c] -=
            f * a[static_cast<std::size_t>(k) * m_ + c];
        binv_[static_cast<std::size_t>(r) * m_ + c] -=
            f * binv_[static_cast<std::size_t>(k) * m_ + c];
      }
    }
  }
  // binv_ now holds B^{-1} in "basis position" row order: row p gives the
  // coefficients expressing basis position p in terms of constraint rows.
  compute_basic_values();
}

void simplex_solver::ftran(int column, std::vector<double>& w) const {
  if (column < n_) {
    for (int p = 0; p < m_; ++p) {
      const double* row = &binv_[static_cast<std::size_t>(p) * m_];
      double sum = 0.0;
      for (int k = problem_.col_start[column];
           k < problem_.col_start[column + 1]; ++k)
        sum += row[problem_.row_index[k]] * problem_.value[k];
      w[p] = sum;
    }
  } else {
    const int row_of_slack = column - n_;
    for (int p = 0; p < m_; ++p)
      w[p] = -binv_[static_cast<std::size_t>(p) * m_ + row_of_slack];
  }
}

void simplex_solver::compute_duals(const std::vector<double>& basic_cost,
                                   std::vector<double>& y) const {
  std::fill(y.begin(), y.end(), 0.0);
  for (int p = 0; p < m_; ++p) {
    const double c = basic_cost[p];
    if (c == 0.0) continue;
    const double* row = &binv_[static_cast<std::size_t>(p) * m_];
    for (int i = 0; i < m_; ++i) y[i] += c * row[i];
  }
}

double simplex_solver::reduced_cost(int column,
                                    const std::vector<double>& y) const {
  if (column < n_) {
    double dot = 0.0;
    for (int k = problem_.col_start[column]; k < problem_.col_start[column + 1];
         ++k)
      dot += y[problem_.row_index[k]] * problem_.value[k];
    return -dot; // caller adds the column's own cost
  }
  return y[column - n_]; // slack column is -e_row with zero cost
}

double simplex_solver::column_cost_phase2(int column) const {
  return column < n_ ? problem_.cost[column] : 0.0;
}

double simplex_solver::infeasibility_sum() const {
  double total = 0.0;
  for (int p = 0; p < m_; ++p) {
    const int col = basis_[p];
    if (x_[col] < lower_[col]) total += lower_[col] - x_[col];
    if (x_[col] > upper_[col]) total += x_[col] - upper_[col];
  }
  return total;
}

bool simplex_solver::basic_feasible() const {
  const double tol = options_.feasibility_tolerance;
  for (int p = 0; p < m_; ++p) {
    const int col = basis_[p];
    if (x_[col] < lower_[col] - tol || x_[col] > upper_[col] + tol)
      return false;
  }
  return true;
}

simplex_solver::pivot_outcome simplex_solver::iterate(bool phase1,
                                                      bool bland) {
  const double feas_tol = options_.feasibility_tolerance;
  const double opt_tol = options_.optimality_tolerance;
  const double pivot_tol = options_.pivot_tolerance;

  // Phase-dependent basic costs.
  for (int p = 0; p < m_; ++p) {
    const int col = basis_[p];
    if (phase1) {
      if (x_[col] < lower_[col] - feas_tol)
        work_cost_[p] = -1.0;
      else if (x_[col] > upper_[col] + feas_tol)
        work_cost_[p] = 1.0;
      else
        work_cost_[p] = 0.0;
    } else {
      work_cost_[p] = column_cost_phase2(col);
    }
  }
  compute_duals(work_cost_, work_row_);

  // Entering column selection.
  int entering = -1;
  int direction = 0;
  double best_violation = opt_tol;
  for (int j = 0; j < total_columns(); ++j) {
    const status s = status_[j];
    if (s == status::basic) continue;
    const double own_cost = phase1 ? 0.0 : column_cost_phase2(j);
    const double d = own_cost + reduced_cost(j, work_row_);
    int dir = 0;
    double violation = 0.0;
    if (s == status::at_lower && d < -opt_tol) {
      dir = 1;
      violation = -d;
    } else if (s == status::at_upper && d > opt_tol) {
      dir = -1;
      violation = d;
    } else if (s == status::free_zero && std::abs(d) > opt_tol) {
      dir = d < 0.0 ? 1 : -1;
      violation = std::abs(d);
    }
    if (dir == 0) continue;
    if (bland) {
      entering = j;
      direction = dir;
      break;
    }
    if (violation > best_violation) {
      best_violation = violation;
      entering = j;
      direction = dir;
    }
  }

  pivot_outcome outcome;
  if (entering < 0) {
    outcome.no_candidate = true;
    return outcome;
  }

  ftran(entering, work_col_);

  // Ratio test. The entering variable moves by `step` in `direction`;
  // basic variable at position p changes at rate -direction * w[p].
  double best_step = inf;
  int leaving_pos = -1; // -1 means the entering column's own bound binds
  bool leaving_to_upper = false;
  double best_pivot = 0.0;

  if (lower_[entering] != -inf && upper_[entering] != inf)
    best_step = upper_[entering] - lower_[entering];

  for (int p = 0; p < m_; ++p) {
    const double w = work_col_[p];
    if (std::abs(w) <= pivot_tol) continue;
    const int col = basis_[p];
    const double rate = -direction * w;
    const double value = x_[col];
    double limit = inf;
    bool to_upper = false;

    const bool below = value < lower_[col] - feas_tol;
    const bool above = value > upper_[col] + feas_tol;
    if (phase1 && below) {
      // Infeasible basic below its lower bound: breakpoint only when it
      // rises to that bound (it leaves there, feasible).
      if (rate > 0.0) {
        limit = (lower_[col] - value) / rate;
        to_upper = false;
      }
    } else if (phase1 && above) {
      if (rate < 0.0) {
        limit = (upper_[col] - value) / rate;
        to_upper = true;
      }
    } else {
      if (rate > 0.0 && upper_[col] != inf) {
        limit = (upper_[col] - value) / rate;
        to_upper = true;
      } else if (rate < 0.0 && lower_[col] != -inf) {
        limit = (lower_[col] - value) / rate;
        to_upper = false;
      }
    }
    if (limit == inf) continue;
    if (limit < 0.0) limit = 0.0; // numerical guard
    bool better = false;
    if (limit < best_step - 1e-12) {
      better = true;
    } else if (limit <= best_step + 1e-12 && leaving_pos >= 0) {
      // Tie among basic candidates: Bland picks the lowest column index
      // (anti-cycling); otherwise prefer the largest pivot for stability.
      better = bland ? col < basis_[leaving_pos]
                     : std::abs(w) > std::abs(best_pivot);
    }
    if (better) {
      best_step = limit;
      leaving_pos = p;
      leaving_to_upper = to_upper;
      best_pivot = w;
    }
  }

  if (best_step == inf) {
    if (phase1)
      throw internal_error(
          "simplex: unbounded phase-1 direction (should be impossible)");
    outcome.unbounded = true;
    return outcome;
  }

  apply_pivot(entering, direction, best_step, leaving_pos, best_pivot,
              work_col_, leaving_to_upper);
  outcome.moved = true;
  outcome.step = best_step;
  return outcome;
}

void simplex_solver::apply_pivot(int entering, int direction, double step,
                                 int leaving_pos, double pivot_element,
                                 const std::vector<double>& w,
                                 bool leaving_to_upper) {
  // Move values along the simplex direction.
  x_[entering] += direction * step;
  if (step != 0.0) {
    for (int p = 0; p < m_; ++p) {
      if (w[p] == 0.0) continue;
      x_[basis_[p]] -= direction * step * w[p];
    }
  }

  if (leaving_pos < 0) {
    // Bound flip: the entering variable reached its opposite bound.
    status_[entering] =
        direction > 0 ? status::at_upper : status::at_lower;
    x_[entering] =
        direction > 0 ? upper_[entering] : lower_[entering];
    return;
  }

  const int leaving_col = basis_[leaving_pos];
  status_[leaving_col] =
      leaving_to_upper ? status::at_upper : status::at_lower;
  x_[leaving_col] = leaving_to_upper ? upper_[leaving_col] : lower_[leaving_col];
  basic_position_[leaving_col] = -1;

  basis_[leaving_pos] = entering;
  basic_position_[entering] = leaving_pos;
  status_[entering] = status::basic;

  // Product-form update of the basis inverse.
  double* pivot_row = &binv_[static_cast<std::size_t>(leaving_pos) * m_];
  const double inv_pivot = 1.0 / pivot_element;
  for (int i = 0; i < m_; ++i) pivot_row[i] *= inv_pivot;
  for (int p = 0; p < m_; ++p) {
    if (p == leaving_pos) continue;
    const double f = w[p];
    if (f == 0.0) continue;
    double* row = &binv_[static_cast<std::size_t>(p) * m_];
    for (int i = 0; i < m_; ++i) row[i] -= f * pivot_row[i];
  }
}

lp_result simplex_solver::solve(const deadline& time_budget, bool warm_start) {
  lp_result result;

  if (!warm_start || !basis_valid_) {
    reset_to_slack_basis();
  } else {
    clamp_nonbasic_to_bounds();
  }
  compute_basic_values();

  long iterations = 0;
  int pivots_since_refactor = 0;
  int degenerate_run = 0;
  bool bland = false;
  int phase1_retries = 0;

  auto maybe_refactor = [&]() {
    if (pivots_since_refactor >= options_.refactor_interval) {
      refactorize();
      pivots_since_refactor = 0;
    }
  };

  bool phase1_done = basic_feasible();
  while (true) {
    if (iterations >= options_.max_iterations) {
      result.status = lp_status::iteration_limit;
      break;
    }
    if ((iterations & 63) == 0 && time_budget.expired()) {
      result.status = lp_status::time_limit;
      break;
    }

    auto note_step = [&](double step) {
      if (step <= 1e-11) {
        if (++degenerate_run > options_.degenerate_switch) bland = true;
      } else {
        degenerate_run = 0;
        bland = false;
      }
    };

    if (!phase1_done) {
      const pivot_outcome out = iterate(true, bland);
      ++iterations;
      if (out.no_candidate) {
        if (infeasibility_sum() >
            options_.feasibility_tolerance * (m_ + 1) * 16.0) {
          result.status = lp_status::infeasible;
          break;
        }
        phase1_done = true; // residual infeasibility is numerical noise
        continue;
      }
      note_step(out.step);
      ++pivots_since_refactor;
      maybe_refactor();
      if (basic_feasible()) phase1_done = true;
      continue;
    }

    const pivot_outcome out = iterate(false, bland);
    ++iterations;
    if (out.no_candidate) {
      // Optimal -- but verify primal feasibility survived the arithmetic.
      if (!basic_feasible()) {
        if (++phase1_retries > 3) {
          result.status = lp_status::infeasible;
          break;
        }
        refactorize();
        pivots_since_refactor = 0;
        phase1_done = basic_feasible();
        continue;
      }
      result.status = lp_status::optimal;
      break;
    }
    if (out.unbounded) {
      result.status = lp_status::unbounded;
      break;
    }
    note_step(out.step);
    ++pivots_since_refactor;
    maybe_refactor();
  }

  total_iterations_ += iterations;
  result.iterations = iterations;
  result.x.assign(x_.begin(), x_.begin() + n_);
  double objective = 0.0;
  for (int j = 0; j < n_; ++j) objective += problem_.cost[j] * x_[j];
  result.objective = objective;
  return result;
}

} // namespace transtore::milp
