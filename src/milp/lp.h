// Linear-programming data structures shared by the simplex engine and the
// branch-and-bound driver.
//
// Standard computational form used internally:
//
//   minimize    c'x
//   subject to  row_lower <= A x <= row_upper      (ranged rows)
//               lower     <=   x <= upper          (variable bounds)
//
// Rows are materialized as "logical" (slack) columns holding the row
// activity, so the simplex works on the homogeneous system A x - s = 0.
#pragma once

#include <limits>
#include <vector>

namespace transtore::milp {

/// Sparse column-major LP instance (structural columns only).
struct lp_problem {
  int num_vars = 0;
  int num_rows = 0;

  // Structural columns.
  std::vector<double> cost;  // size num_vars (minimization)
  std::vector<double> lower; // size num_vars
  std::vector<double> upper; // size num_vars

  // Ranged rows.
  std::vector<double> row_lower; // size num_rows
  std::vector<double> row_upper; // size num_rows

  // CSC of A: column j occupies [col_start[j], col_start[j+1]).
  std::vector<int> col_start;  // size num_vars + 1
  std::vector<int> row_index;  // size nnz
  std::vector<double> value;   // size nnz
};

enum class lp_status {
  optimal,
  infeasible,
  unbounded,
  iteration_limit,
  time_limit,
};

struct lp_result {
  lp_status status = lp_status::iteration_limit;
  double objective = std::numeric_limits<double>::infinity();
  std::vector<double> x; // structural variable values (size num_vars)
  /// Row duals y = c_B B^-1 (size num_rows, minimization sense), filled on
  /// optimal solves: together with x they form the optimality certificate
  /// the differential tests check (dual feasibility + strong duality).
  std::vector<double> duals;
  long iterations = 0;       // total simplex iterations of this solve
  long dual_iterations = 0;  // subset taken by the dual method
  bool used_dual = false;    // the solve entered the dual simplex
};

} // namespace transtore::milp
