#include "milp/cuts.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace transtore::milp {
namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

bool is_integral(double v, double tol = 1e-9) {
  return std::abs(v - std::round(v)) <= tol;
}

double fractional_part(double v) { return v - std::floor(v); }

/// Cosine of the angle between two sorted sparse vectors.
double parallelism(const std::vector<std::pair<int, double>>& a, double norm_a,
                   const std::vector<std::pair<int, double>>& b,
                   double norm_b) {
  double dot = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia].first < b[ib].first) {
      ++ia;
    } else if (a[ia].first > b[ib].first) {
      ++ib;
    } else {
      dot += a[ia].second * b[ib].second;
      ++ia;
      ++ib;
    }
  }
  if (norm_a <= 0.0 || norm_b <= 0.0) return 1.0;
  return std::abs(dot) / (norm_a * norm_b);
}

double cut_norm(const std::vector<std::pair<int, double>>& terms) {
  double s = 0.0;
  for (const auto& [var, coeff] : terms) s += coeff * coeff;
  return std::sqrt(s);
}

/// Deterministic total order on candidate terms (lexicographic).
int compare_terms(const std::vector<std::pair<int, double>>& a,
                  const std::vector<std::pair<int, double>>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].first != b[i].first) return a[i].first < b[i].first ? -1 : 1;
    if (a[i].second != b[i].second) return a[i].second < b[i].second ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

} // namespace

cut_generator::cut_generator(const lp_problem& base,
                             std::vector<bool> is_integer, cut_options options)
    : base_(base), is_integer_(std::move(is_integer)), options_(options) {
  require(static_cast<int>(is_integer_.size()) == base_.num_vars,
          "cuts: is_integer size mismatch");
  // Row-wise view of the base matrix for slack expansion and cover cuts.
  base_rows_.resize(static_cast<std::size_t>(base_.num_rows));
  for (int j = 0; j < base_.num_vars; ++j)
    for (int k = base_.col_start[static_cast<std::size_t>(j)];
         k < base_.col_start[static_cast<std::size_t>(j) + 1]; ++k)
      base_rows_[static_cast<std::size_t>(
                     base_.row_index[static_cast<std::size_t>(k)])]
          .emplace_back(j, base_.value[static_cast<std::size_t>(k)]);

  // A base row's slack is integer-valued when every term is an integer
  // variable with an integer coefficient (its bounds' integrality is
  // checked at the parked bound during separation).
  slack_integer_.assign(static_cast<std::size_t>(base_.num_rows), true);
  for (int i = 0; i < base_.num_rows; ++i)
    for (const auto& [var, coeff] : base_rows_[static_cast<std::size_t>(i)])
      if (!is_integer_[static_cast<std::size_t>(var)] || !is_integral(coeff))
        slack_integer_[static_cast<std::size_t>(i)] = false;

  extended_ = base_;
}

void cut_generator::rebuild_extended() {
  extended_ = base_;
  extended_.num_rows = base_.num_rows + static_cast<int>(pool_.size());
  for (const cut& c : pool_) {
    extended_.row_lower.push_back(c.lower);
    extended_.row_upper.push_back(inf);
  }
  if (pool_.empty()) return;
  // Merge the cut terms into the CSC (columns gain the cut-row entries).
  std::vector<std::vector<std::pair<int, double>>> extra(
      static_cast<std::size_t>(base_.num_vars));
  for (std::size_t k = 0; k < pool_.size(); ++k) {
    const int row = base_.num_rows + static_cast<int>(k);
    for (const auto& [var, coeff] : pool_[k].terms)
      extra[static_cast<std::size_t>(var)].emplace_back(row, coeff);
  }
  std::vector<int> col_start(static_cast<std::size_t>(base_.num_vars) + 1, 0);
  for (int j = 0; j < base_.num_vars; ++j) {
    const int base_nnz = base_.col_start[static_cast<std::size_t>(j) + 1] -
                         base_.col_start[static_cast<std::size_t>(j)];
    col_start[static_cast<std::size_t>(j) + 1] =
        col_start[static_cast<std::size_t>(j)] + base_nnz +
        static_cast<int>(extra[static_cast<std::size_t>(j)].size());
  }
  std::vector<int> row_index;
  std::vector<double> value;
  row_index.reserve(static_cast<std::size_t>(col_start.back()));
  value.reserve(static_cast<std::size_t>(col_start.back()));
  for (int j = 0; j < base_.num_vars; ++j) {
    for (int k = base_.col_start[static_cast<std::size_t>(j)];
         k < base_.col_start[static_cast<std::size_t>(j) + 1]; ++k) {
      row_index.push_back(base_.row_index[static_cast<std::size_t>(k)]);
      value.push_back(base_.value[static_cast<std::size_t>(k)]);
    }
    for (const auto& [row, coeff] : extra[static_cast<std::size_t>(j)]) {
      row_index.push_back(row);
      value.push_back(coeff);
    }
  }
  extended_.col_start = std::move(col_start);
  extended_.row_index = std::move(row_index);
  extended_.value = std::move(value);
}

void cut_generator::separate_gomory(const simplex_solver& solver,
                                    const deadline& time_budget,
                                    std::vector<candidate>& out) const {
  const int n = base_.num_vars;
  const int m = solver.rows();
  const std::vector<int>& basis = solver.basic_columns();

  // Source rows: basic integer structural columns at fractional values,
  // most fractional first (deterministic tie-break on the column index).
  std::vector<std::pair<double, int>> sources; // (closeness to 0.5, position)
  for (int p = 0; p < m; ++p) {
    const int col = basis[static_cast<std::size_t>(p)];
    if (col >= n || !is_integer_[static_cast<std::size_t>(col)]) continue;
    const double f0 = fractional_part(solver.column_value(col));
    if (f0 < options_.min_fractionality || f0 > 1.0 - options_.min_fractionality)
      continue;
    sources.emplace_back(std::abs(f0 - 0.5), p);
  }
  std::sort(sources.begin(), sources.end(), [&](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return basis[static_cast<std::size_t>(a.second)] <
           basis[static_cast<std::size_t>(b.second)];
  });
  if (static_cast<int>(sources.size()) > options_.max_gomory_source_rows)
    sources.resize(static_cast<std::size_t>(options_.max_gomory_source_rows));

  std::vector<double> alpha;
  std::vector<double> pi(static_cast<std::size_t>(n), 0.0);
  std::vector<int> touched;
  std::vector<char> touched_mark(static_cast<std::size_t>(n), 0);
  for (const auto& [closeness, position] : sources) {
    (void)closeness;
    if (time_budget.expired()) break;
    const int basic_col = basis[static_cast<std::size_t>(position)];
    const double beta = solver.column_value(basic_col);
    const double f0 = fractional_part(beta);

    solver.tableau_row(position, alpha);

    // GMI coefficients in the shifted space t_j >= 0 (nonbasic distance
    // from the parked bound), then mapped straight back to x-space:
    //   at lower  t = x - l : pi_j += gamma, rhs += gamma * l
    //   at upper  t = u - x : pi_j -= gamma, rhs -= gamma * u
    // with slack columns expanded through their defining rows.
    // The touch mark (not a pi != 0 test, which a coefficient passing
    // through exact zero would defeat) guarantees each variable lands in
    // the cut's term list at most once -- duplicate CSC entries poison the
    // simplex, whose scatter paths assume unique rows per column.
    auto add_structural = [&](int var, double coeff) {
      if (coeff == 0.0) return;
      if (!touched_mark[static_cast<std::size_t>(var)]) {
        touched_mark[static_cast<std::size_t>(var)] = 1;
        touched.push_back(var);
      }
      pi[static_cast<std::size_t>(var)] += coeff;
    };
    double rhs = f0;
    bool ok = true;
    const int total = n + m;
    for (int j = 0; j < total && ok; ++j) {
      if (solver.column_is_basic(j)) continue;
      const double a = alpha[static_cast<std::size_t>(j)];
      if (std::abs(a) <= 1e-11) continue;
      if (solver.column_is_free(j)) {
        ok = false; // no finite shift exists for a free nonbasic
        break;
      }
      const bool upper = solver.column_at_upper(j);
      const double bound =
          upper ? solver.column_upper(j) : solver.column_lower(j);
      if (bound == inf || bound == -inf) {
        ok = false;
        break;
      }
      const double a_t = upper ? -a : a; // coefficient of t_j in the row

      // Integer GMI coefficient only when the shifted variable provably
      // takes integer values; anything uncertain falls back to the valid
      // continuous (MIR) coefficient.
      bool t_integer = false;
      if (j < n) {
        t_integer = is_integer_[static_cast<std::size_t>(j)] &&
                    is_integral(bound);
      } else {
        const int row = j - n;
        t_integer = row < base_.num_rows &&
                    slack_integer_[static_cast<std::size_t>(row)] &&
                    is_integral(bound);
      }
      double gamma;
      if (t_integer) {
        const double fj = fractional_part(a_t);
        gamma = fj <= f0 + 1e-12 ? fj : f0 * (1.0 - fj) / (1.0 - f0);
      } else {
        gamma = a_t > 0.0 ? a_t : f0 * (-a_t) / (1.0 - f0);
      }
      if (gamma <= 1e-12) continue;

      const double px = upper ? -gamma : gamma;
      rhs += upper ? -gamma * bound : gamma * bound;
      if (j < n) {
        add_structural(j, px);
      } else {
        // Expand the slack through its defining row: s = a_row . x.
        const int row = j - n;
        if (row < base_.num_rows) {
          for (const auto& [var, coeff] : base_rows_[static_cast<std::size_t>(row)])
            add_structural(var, px * coeff);
        } else {
          const cut& c = pool_[static_cast<std::size_t>(row - base_.num_rows)];
          for (const auto& [var, coeff] : c.terms)
            add_structural(var, px * coeff);
        }
      }
    }

    if (ok && !touched.empty()) {
      candidate cand;
      cand.c.kind = "gomory";
      cand.c.lower = rhs;
      std::sort(touched.begin(), touched.end());
      for (const int var : touched) {
        const double coeff = pi[static_cast<std::size_t>(var)];
        if (coeff != 0.0) cand.c.terms.emplace_back(var, coeff);
      }
      out.push_back(std::move(cand));
    }
    for (const int var : touched) {
      pi[static_cast<std::size_t>(var)] = 0.0;
      touched_mark[static_cast<std::size_t>(var)] = 0;
    }
    touched.clear();
  }
}

void cut_generator::separate_covers(const std::vector<double>& x,
                                    std::vector<candidate>& out) const {
  struct item {
    int var;
    double weight;      // knapsack coefficient (> 0 after complementing)
    bool complemented;  // z = 1 - x instead of z = x
    double z;           // LP value of z
  };
  std::vector<item> items;

  for (int i = 0; i < base_.num_rows; ++i) {
    const auto& row = base_rows_[static_cast<std::size_t>(i)];
    if (row.size() < 2) continue;
    for (const bool use_upper :
         {true, false}) { // each finite side is its own knapsack relaxation
      const double side = use_upper
                              ? base_.row_upper[static_cast<std::size_t>(i)]
                              : base_.row_lower[static_cast<std::size_t>(i)];
      if (side == inf || side == -inf) continue;

      // Bring the side into <= form: sum c_j x_j <= b.
      const double sign = use_upper ? 1.0 : -1.0;
      double b = sign * side;
      items.clear();
      bool ok = true;
      int binaries = 0;
      for (const auto& [var, coeff] : row) {
        const double c = sign * coeff;
        const std::size_t v = static_cast<std::size_t>(var);
        const bool binary = is_integer_[v] && base_.lower[v] == 0.0 &&
                            base_.upper[v] == 1.0;
        if (binary && std::abs(c) > 1e-9) {
          ++binaries;
          if (c > 0.0) {
            items.push_back({var, c, false, x[v]});
          } else {
            b -= c; // complement: c x = c - c (1 - x)
            items.push_back({var, -c, true, 1.0 - x[v]});
          }
        } else {
          // Relax a non-binary term to its worst-case (minimum) activity.
          const double lo = base_.lower[v];
          const double hi = base_.upper[v];
          const double mn = c > 0.0 ? (lo == -inf ? -inf : c * lo)
                                    : (hi == inf ? -inf : c * hi);
          if (mn == -inf) {
            ok = false;
            break;
          }
          b -= mn;
        }
      }
      if (!ok || binaries < 2) continue;

      // Greedy minimum-cost cover: pick items by (1 - z*) per unit weight
      // until the capacity is exceeded.
      double total = 0.0;
      for (const item& it : items) total += it.weight;
      const double margin = std::max(1e-6, 1e-9 * std::abs(b));
      if (total <= b + margin) continue; // no cover exists
      std::sort(items.begin(), items.end(), [](const item& a, const item& b2) {
        const double ra = (1.0 - a.z) / a.weight;
        const double rb = (1.0 - b2.z) / b2.weight;
        if (ra != rb) return ra < rb;
        return a.var < b2.var;
      });
      std::vector<item> cover;
      double weight = 0.0;
      for (const item& it : items) {
        cover.push_back(it);
        weight += it.weight;
        if (weight > b + margin) break;
      }
      if (weight <= b + margin) continue;

      // Minimalize: drop heavy items while the cover property survives.
      std::sort(cover.begin(), cover.end(), [](const item& a, const item& b2) {
        if (a.weight != b2.weight) return a.weight > b2.weight;
        return a.var < b2.var;
      });
      for (std::size_t k = 0; k < cover.size();) {
        if (cover.size() > 2 && weight - cover[k].weight > b + margin) {
          weight -= cover[k].weight;
          cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(k));
        } else {
          ++k;
        }
      }

      // Cover inequality sum_C z_j <= |C| - 1, mapped back to x and stored
      // in >= form.
      double zsum = 0.0;
      for (const item& it : cover) zsum += it.z;
      if (zsum <= static_cast<double>(cover.size()) - 1.0 +
                      options_.min_violation)
        continue; // not violated at the separating point
      candidate cand;
      cand.c.kind = "cover";
      int complemented = 0;
      for (const item& it : cover) {
        cand.c.terms.emplace_back(it.var, it.complemented ? 1.0 : -1.0);
        if (it.complemented) ++complemented;
      }
      cand.c.lower = complemented - (static_cast<double>(cover.size()) - 1.0);
      std::sort(cand.c.terms.begin(), cand.c.terms.end());
      out.push_back(std::move(cand));
    }
  }
}

bool cut_generator::finalize_candidate(candidate& cand,
                                       const std::vector<double>& x) const {
  // Merge any duplicate variables defensively: a cut term list MUST be
  // duplicate-free before it becomes CSC rows (the simplex's scatter and
  // basis-assembly paths assume unique row indices per column).
  std::sort(cand.c.terms.begin(), cand.c.terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  {
    std::size_t out = 0;
    for (std::size_t i = 0; i < cand.c.terms.size();) {
      int var = cand.c.terms[i].first;
      double sum = 0.0;
      while (i < cand.c.terms.size() && cand.c.terms[i].first == var)
        sum += cand.c.terms[i++].second;
      cand.c.terms[out++] = {var, sum};
    }
    cand.c.terms.resize(out);
  }

  // Drop negligible coefficients, conservatively shifting the right-hand
  // side by the term's worst case over the (root) box.
  std::vector<std::pair<int, double>> kept;
  kept.reserve(cand.c.terms.size());
  double max_abs = 0.0;
  double min_abs = inf;
  for (const auto& [var, coeff] : cand.c.terms) {
    const std::size_t v = static_cast<std::size_t>(var);
    if (std::abs(coeff) <= 1e-11) {
      const double worst = coeff > 0.0 ? base_.upper[v] : base_.lower[v];
      if (worst == inf || worst == -inf) {
        if (std::abs(coeff) <= 1e-13) continue; // truly negligible
        return false; // cannot drop against an infinite bound
      }
      cand.c.lower -= coeff * worst;
      continue;
    }
    kept.emplace_back(var, coeff);
    max_abs = std::max(max_abs, std::abs(coeff));
    min_abs = std::min(min_abs, std::abs(coeff));
  }
  cand.c.terms = std::move(kept);
  if (cand.c.terms.empty()) return false;
  if (max_abs / min_abs > options_.max_dynamism) return false;
  if (static_cast<double>(cand.c.terms.size()) >
      options_.max_support_fraction * base_.num_vars)
    return false; // too dense: every node re-solve would pay for it

  double activity = 0.0;
  for (const auto& [var, coeff] : cand.c.terms)
    activity += coeff * x[static_cast<std::size_t>(var)];
  cand.violation = cand.c.lower - activity;
  cand.norm = cut_norm(cand.c.terms);
  if (cand.norm <= 0.0) return false;
  cand.efficacy = cand.violation / cand.norm;
  return cand.violation >= options_.min_violation &&
         cand.efficacy >= options_.min_efficacy;
}

bool cut_generator::round(const simplex_solver& solver,
                          const deadline& time_budget) {
  ++stats_.rounds;
  const int n = base_.num_vars;
  const int old_rows = base_.num_rows + static_cast<int>(pool_.size());
  require(solver.rows() == old_rows, "cuts: solver/extended row mismatch");

  std::vector<double> x(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) x[static_cast<std::size_t>(j)] = solver.column_value(j);

  // Separate against the current point and pool state.
  std::vector<candidate> candidates;
  separate_gomory(solver, time_budget, candidates);
  const std::size_t gomory = candidates.size();
  separate_covers(x, candidates);
  stats_.gomory_generated += static_cast<int>(gomory);
  stats_.cover_generated += static_cast<int>(candidates.size() - gomory);

  std::vector<candidate> viable;
  for (candidate& cand : candidates)
    if (finalize_candidate(cand, x)) viable.push_back(std::move(cand));

  // Deterministic efficacy order.
  std::sort(viable.begin(), viable.end(),
            [](const candidate& a, const candidate& b) {
              if (a.efficacy != b.efficacy) return a.efficacy > b.efficacy;
              return compare_terms(a.c.terms, b.c.terms) < 0;
            });

  // Greedy selection under the parallelism and budget caps (checked against
  // both this round's picks and the existing pool; norms precomputed once).
  std::vector<cut> selected;
  std::vector<double> selected_norm;
  std::vector<double> pool_norm(pool_.size());
  for (std::size_t k = 0; k < pool_.size(); ++k)
    pool_norm[k] = cut_norm(pool_[k].terms);
  const int capacity =
      std::min(options_.max_cuts_per_round,
               options_.max_active_cuts - static_cast<int>(pool_.size()));
  for (candidate& cand : viable) {
    if (static_cast<int>(selected.size()) >= capacity) break;
    bool near_parallel = false;
    for (std::size_t s = 0; s < selected.size() && !near_parallel; ++s) {
      if (parallelism(cand.c.terms, cand.norm, selected[s].terms,
                      selected_norm[s]) > options_.max_parallelism)
        near_parallel = true;
    }
    for (std::size_t k = 0; !near_parallel && k < pool_.size(); ++k) {
      if (parallelism(cand.c.terms, cand.norm, pool_[k].terms,
                      pool_norm[k]) > options_.max_parallelism)
        near_parallel = true;
    }
    if (near_parallel) continue;
    selected_norm.push_back(cand.norm);
    selected.push_back(std::move(cand.c));
  }

  if (selected.empty()) return false; // pool untouched; caller stops cutting

  // Age the pool at the pre-purge indexing: a cut whose slack row is basic
  // and strictly off its bound did no work this round.
  row_map_.assign(static_cast<std::size_t>(old_rows), -1);
  for (int i = 0; i < base_.num_rows; ++i) row_map_[static_cast<std::size_t>(i)] = i;
  std::vector<cut> survivors;
  int next_row = base_.num_rows;
  for (std::size_t k = 0; k < pool_.size(); ++k) {
    cut& c = pool_[k];
    const int slack_col = n + base_.num_rows + static_cast<int>(k);
    const bool idle = solver.column_is_basic(slack_col) &&
                      solver.column_value(slack_col) >
                          c.lower + options_.min_violation;
    c.age = idle ? c.age + 1 : 0;
    if (idle && c.age >= options_.max_age) {
      ++stats_.purged;
      continue; // purged: slack was basic, so the basis shrinks with the row
    }
    row_map_[static_cast<std::size_t>(base_.num_rows) + k] = next_row++;
    survivors.push_back(std::move(c));
  }
  pool_ = std::move(survivors);
  for (cut& c : selected) {
    pool_.push_back(std::move(c));
    ++stats_.added;
  }
  rebuild_extended();
  return true;
}

std::vector<int> cut_generator::remap_basis(const simplex_solver& solver,
                                            std::vector<int>& at_upper) const {
  const int n = base_.num_vars;
  std::vector<int> basis;
  basis.reserve(static_cast<std::size_t>(extended_.num_rows));
  for (const int col : solver.basic_columns()) {
    if (col < n) {
      basis.push_back(col);
    } else {
      const int mapped = row_map_[static_cast<std::size_t>(col - n)];
      if (mapped >= 0) basis.push_back(n + mapped);
      // A purged cut's slack simply leaves the basis with its row.
    }
  }
  // New cut rows enter with their slack basic (dual-feasible warm start).
  for (int row = static_cast<int>(basis.size()); row < extended_.num_rows;)
    basis.push_back(n + row++);

  at_upper.clear();
  const int old_total = n + solver.rows();
  for (int col = 0; col < old_total; ++col) {
    if (!solver.column_at_upper(col)) continue;
    if (col < n) {
      at_upper.push_back(col);
    } else {
      const int mapped = row_map_[static_cast<std::size_t>(col - n)];
      if (mapped >= 0) at_upper.push_back(n + mapped);
    }
  }
  return basis;
}

} // namespace transtore::milp
