// Sparse LU factorization of a simplex basis.
//
// Replaces the dense `B0^-1` representation for large LPs: the basis matrix
// B (columns indexed by basis position, rows by constraint row) is factored
// as M B = U by sparse Gaussian elimination with
//
//   * Markowitz pivoting -- each pivot minimizes the fill estimate
//     (row_count - 1) * (col_count - 1) over a bounded candidate search
//     driven by column-count buckets (singleton columns are free);
//   * Suhl-style threshold partial pivoting -- an entry is admissible only
//     when |a_ij| >= suhl_threshold * max|a_*j| over the active column, so
//     sparsity never buys a numerically poisonous pivot;
//
// and stored as the elimination multipliers (L, applied as a sequence of
// row operations) plus the permuted upper triangle U (row-wise for ftran's
// back substitution, column-wise for btran's forward substitution).
//
// ftran solves B x = b (right-hand side in constraint-row space, solution
// in basis-position space); btran solves B^T y = z (the transpose map used
// for duals and tableau rows). Both are O(m + factor nonzeros) instead of
// the dense engine's O(m^2).
//
// The factorization is immutable: simplex pivots are layered on top as
// product-form eta vectors by the caller (eta-on-LU), and fill/accuracy
// triggers request a fresh factorize(). All tie-breaking is by lowest
// index, so repeated factorizations of the same basis are bit-identical.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace transtore::milp {

/// Tunables for one factorization.
struct lu_options {
  /// Absolute floor on pivot magnitude; a column whose largest active entry
  /// is below this is numerically dependent and the basis singular.
  double pivot_tolerance = 1e-11;
  /// Suhl threshold: admissible pivots satisfy |a| >= threshold * colmax.
  double suhl_threshold = 0.1;
  /// Columns (beyond the singleton bucket) examined per Markowitz search.
  int search_columns = 8;
};

class basis_lu {
public:
  explicit basis_lu(lu_options options = {}) : options_(options) {}

  /// Sparse column: (constraint row, value) entries, rows distinct.
  using sparse_column = std::vector<std::pair<int, double>>;

  /// Factor the m x m basis whose position-p column is `columns[p]`.
  /// Returns false (and invalidates the factorization) when the basis is
  /// structurally or numerically singular.
  bool factorize(int m, const std::vector<sparse_column>& columns);

  /// Solve B x = rhs: rhs indexed by constraint row, x by basis position.
  void ftran(const std::vector<double>& rhs, std::vector<double>& x) const;

  /// Solve B^T y = z: z indexed by basis position, y by constraint row.
  void btran(const std::vector<double>& z, std::vector<double>& y) const;

  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] int dimension() const { return m_; }
  /// Nonzeros of L + U (diagonal included) of the last factorization.
  [[nodiscard]] std::size_t factor_nonzeros() const {
    return l_row_.size() + u_col_.size() + static_cast<std::size_t>(m_);
  }

private:
  lu_options options_;
  int m_ = 0;
  bool valid_ = false;

  // Pivot sequence: step k eliminated constraint row pivot_row_[k] and
  // basis position pivot_col_[k].
  std::vector<int> pivot_row_;
  std::vector<int> pivot_col_;

  // L: per elimination step, the multipliers (constraint row, value),
  // flattened; applying step k subtracts value * v[pivot_row_[k]] from
  // v[row].
  std::vector<int> l_start_; // size m+1
  std::vector<int> l_row_;
  std::vector<double> l_value_;

  // U rows in pivot order: entries on later-pivoted basis positions.
  std::vector<int> u_start_; // size m+1
  std::vector<int> u_col_;   // basis positions
  std::vector<double> u_value_;
  std::vector<double> u_pivot_; // size m: diagonal of step k

  // U columns for btran: entries (earlier pivot step, value).
  std::vector<int> ucol_start_; // size m+1
  std::vector<int> ucol_step_;
  std::vector<double> ucol_value_;

  mutable std::vector<double> work_; // size m scratch for the solves
};

} // namespace transtore::milp
