#include "baseline/dedicated_storage.h"

#include <cmath>

#include "common/stopwatch.h"

namespace transtore::baseline {
namespace {

/// Rewrite the workload so every store targets the unit and every fetch
/// departs from it: all tasks become plain device-to-device transports
/// involving the pseudo-device `unit_index`, and no channel caching exists.
arch::routing_workload dedicated_workload(const sched::schedule& s,
                                          int unit_index) {
  arch::routing_workload w = arch::derive_workload(s);
  for (auto& task : w.tasks) {
    switch (task.kind) {
      case arch::task_kind::store:
        task.kind = arch::task_kind::direct;
        task.to_device = unit_index;
        task.cache_id = -1;
        break;
      case arch::task_kind::fetch:
        task.kind = arch::task_kind::direct;
        task.from_device = unit_index;
        task.cache_id = -1;
        break;
      case arch::task_kind::direct:
        break;
    }
  }
  w.caches.clear();
  w.device_count = unit_index + 1;
  return w;
}

} // namespace

int storage_unit_valves(int cells) {
  require(cells >= 0, "storage_unit_valves: negative cell count");
  if (cells == 0) return 0;
  const int mux_stages =
      cells > 1 ? static_cast<int>(std::ceil(std::log2(cells))) : 1;
  return 2 * cells + 2 * mux_stages + 2;
}

baseline_result evaluate_baseline(const assay::sequencing_graph& graph,
                                  const sched::schedule& s,
                                  const baseline_options& options) {
  stopwatch watch;
  baseline_result result;

  // Re-time the same binding through the single-port storage unit.
  sched::timing_options timing = options.timing;
  timing.transport_time = s.transport_time;
  timing.storage_ports = 1;
  const sched::binding b = sched::extract_binding(s, s.device_count);
  result.retimed = sched::refine_timing(graph, b, s.device_count, timing);
  result.retimed.validate(graph);
  result.makespan = result.retimed.makespan();
  result.storage_cells = result.retimed.peak_concurrent_caches();
  result.unit_valves = storage_unit_valves(result.storage_cells);

  // Baseline architecture: the unit is one more node on the grid.
  const int unit_index = s.device_count;
  arch::routing_workload workload = dedicated_workload(result.retimed, unit_index);
  const arch::connection_grid grid(options.grid_width, options.grid_height);

  std::string last_error = "no attempt made";
  bool routed = false;
  for (int attempt = 0; attempt < options.attempts && !routed; ++attempt) {
    arch::placement_options p = options.placement;
    p.seed = options.placement.seed + static_cast<std::uint64_t>(attempt);
    arch::router_options r = options.router;
    r.seed = options.router.seed + static_cast<std::uint64_t>(attempt);
    try {
      const std::vector<int> nodes = arch::place_devices(grid, workload, p);
      const arch::chip c = arch::route_workload(grid, workload, nodes, r);
      c.validate(workload);
      result.chip_valves = c.valve_count();
      result.used_edges = c.used_edge_count();
      routed = true;
    } catch (const capacity_error& e) {
      last_error = e.what();
    }
  }
  if (!routed)
    throw capacity_error("evaluate_baseline: routing failed: " + last_error);

  result.total_valves = result.chip_valves + result.unit_valves;
  result.seconds = watch.elapsed_seconds();
  return result;
}

} // namespace transtore::baseline
