// Dedicated-storage-unit baseline (paper Fig. 1(c)/3(a)/3(c) and the
// comparison of Fig. 10).
//
// Prior synthesis flows park every intermediate fluid in a multiplexer-
// addressed storage unit. This module models that architecture so the
// proposed distributed channel storage can be compared against it:
//
//   * Re-timing: the same binding (assignment + order) is re-timed with
//     timing_options::storage_ports = 1 -- every non-handoff transfer
//     becomes a store+fetch through the unit's single access port, which
//     serializes concurrent accesses and prolongs the assay.
//   * Valve cost of the unit (per Fig. 1(c), Amin et al. [3]): with c
//     side-by-side cells, 2c cell-gate valves + 2*ceil(log2 c) multiplexer
//     valves + 2 port valves.
//   * Architecture: the unit occupies one grid node like a device; all
//     store/fetch traffic is routed between devices and the unit, and the
//     chip valve count adds the unit-internal valves.
#pragma once

#include "arch/synthesis.h"
#include "assay/sequencing_graph.h"
#include "sched/timing.h"

namespace transtore::baseline {

/// Valves inside a dedicated storage unit with `cells` cells.
[[nodiscard]] int storage_unit_valves(int cells);

struct baseline_options {
  sched::timing_options timing{}; // storage_ports is forced to 1
  int grid_width = 4;
  int grid_height = 4;
  arch::placement_options placement{};
  arch::router_options router{};
  int attempts = 16;
};

struct baseline_result {
  sched::schedule retimed;  // same binding, dedicated-storage timing
  int makespan = 0;
  int storage_cells = 0;    // peak concurrently stored samples
  int unit_valves = 0;      // valves inside the storage unit
  int chip_valves = 0;      // switch valves of the routed chip
  int total_valves = 0;     // chip + unit
  int used_edges = 0;
  double seconds = 0.0;
};

/// Evaluate the dedicated-storage baseline for the binding of schedule `s`
/// (the proposed flow's schedule): re-time with a single storage port and
/// synthesize the baseline architecture with the unit as an extra node.
/// Throws capacity_error when routing fails on the requested grid.
[[nodiscard]] baseline_result evaluate_baseline(
    const assay::sequencing_graph& graph, const sched::schedule& s,
    const baseline_options& options);

} // namespace transtore::baseline
