// Machine-readable result reporting (compatibility surface).
//
// The JSON writer now lives in common/json.h and the flow-result
// serializer in api/pipeline.h (api::to_json); this header re-exports both
// under the original core names.
#pragma once

#include <string>

#include "common/json.h"
#include "core/flow.h"

namespace transtore::core {

using json_writer = transtore::json_writer;

/// Serialize a complete flow result (plus the assay identity) to JSON.
/// include_timing = false omits wall-clock fields so reports from
/// deterministic runs are byte-comparable.
[[nodiscard]] std::string to_json(const assay::sequencing_graph& graph,
                                  const flow_result& result,
                                  bool include_timing = true);

} // namespace transtore::core
