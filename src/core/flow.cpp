#include "core/flow.h"

#include <sstream>

#include "common/stopwatch.h"
#include "common/strings.h"

namespace transtore::core {

flow_result run_flow(const assay::sequencing_graph& graph,
                     const flow_options& options) {
  stopwatch watch;
  graph.validate();

  // --- scheduling & binding.
  sched::scheduler_options so;
  so.device_count = options.device_count;
  so.timing = options.timing;
  so.alpha = options.alpha;
  so.beta = options.beta;
  so.storage_aware = options.storage_aware;
  so.engine = options.schedule_engine;
  so.ilp_time_limit_seconds = options.sched_ilp_time_limit;
  so.heuristic_restarts = options.heuristic_restarts;
  so.seed = options.seed;

  flow_result result;
  result.scheduling = sched::make_schedule(graph, so);

  // --- architectural synthesis.
  arch::arch_options ao;
  ao.grid_width = options.grid_width;
  ao.grid_height = options.grid_height;
  ao.engine = options.arch_engine;
  ao.attempts = options.arch_attempts;
  ao.placement.seed = options.seed;
  ao.router.seed = options.seed;
  ao.ilp.time_limit_seconds = options.arch_ilp_time_limit;
  result.architecture = arch::synthesize_architecture(result.scheduling.best, ao);

  // --- physical design.
  result.layout =
      phys::generate_layout(result.architecture.result, options.physical);

  // --- verification.
  if (options.verify)
    result.stats = sim::simulate(graph, result.scheduling.best,
                                 result.architecture.workload,
                                 result.architecture.result);

  // --- dedicated-storage baseline (Fig. 10 comparator).
  if (options.run_baseline) {
    baseline::baseline_options bo;
    bo.timing = options.timing;
    bo.grid_width = options.grid_width;
    bo.grid_height = options.grid_height;
    bo.placement.seed = options.seed;
    bo.router.seed = options.seed;
    result.baseline =
        baseline::evaluate_baseline(graph, result.scheduling.best, bo);
  }

  result.total_seconds = watch.elapsed_seconds();
  return result;
}

std::string flow_result::report(const assay::sequencing_graph& graph) const {
  std::ostringstream out;
  const sched::schedule& s = scheduling.best;
  out << "assay " << graph.name() << ": |O|=" << graph.operation_count()
      << ", devices=" << s.device_count << "\n";
  out << "  schedule: tE=" << s.makespan() << "s, stores=" << s.store_count()
      << ", peak storage=" << s.peak_concurrent_caches()
      << ", cache time=" << s.total_cache_time() << "s\n";
  out << "  architecture: edges=" << architecture.result.used_edge_count()
      << ", valves=" << architecture.result.valve_count()
      << ", edge ratio=" << format_double(architecture.result.edge_ratio(), 2)
      << ", valve ratio="
      << format_double(architecture.result.valve_ratio(), 2) << "\n";
  out << "  layout: dr=" << format_dims(layout.after_synthesis.width,
                                        layout.after_synthesis.height)
      << ", de=" << format_dims(layout.after_devices.width,
                                layout.after_devices.height)
      << ", dp=" << format_dims(layout.after_compression.width,
                                layout.after_compression.height)
      << " (" << layout.compression_iterations << " compression iterations, "
      << layout.bend_points << " bends)\n";
  if (stats)
    out << "  verified: " << stats->transport_legs << " legs, "
        << stats->cached_samples << " cached samples, device utilization "
        << format_double(100.0 * stats->device_utilization, 1) << "%\n";
  if (baseline)
    out << "  dedicated-storage baseline: tE=" << baseline->makespan
        << "s, cells=" << baseline->storage_cells
        << ", valves=" << baseline->total_valves << "\n";
  return out.str();
}

} // namespace transtore::core
