#include "core/flow.h"

namespace transtore::core {

flow_result run_flow(const assay::sequencing_graph& graph,
                     const flow_options& options) {
  const api::pipeline p(graph, options);
  auto outcome = p.run(api::run_context{});
  if (outcome.ok()) return std::move(outcome).take();

  // Restore the original throwing contract for the shim's callers. With a
  // default run_context there is no deadline and no cancel token, so the
  // best-effort statuses cannot occur here; map everything else back onto
  // the exception taxonomy of common/error.h.
  switch (outcome.code()) {
    case api::status::invalid_input: throw invalid_input_error(outcome.message());
    case api::status::infeasible: throw infeasible_error(outcome.message());
    case api::status::capacity: throw capacity_error(outcome.message());
    case api::status::time_limit:
    case api::status::cancelled: throw cancelled_error(outcome.message());
    case api::status::ok:
    case api::status::degraded: // produced only by api::recover, never here
    case api::status::internal:
    case api::status::queue_full: break; // queue_full never reaches the shim
  }
  throw internal_error(outcome.message());
}

} // namespace transtore::core
