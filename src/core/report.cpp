#include "core/report.h"

#include <cmath>

#include "common/strings.h"

namespace transtore::core {

void json_writer::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

json_writer& json_writer::begin_object() {
  separator();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

json_writer& json_writer::end_object() {
  check(!need_comma_.empty(), "json_writer: unbalanced end_object");
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

json_writer& json_writer::begin_array(const std::string& name) {
  if (!name.empty()) key(name);
  separator();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

json_writer& json_writer::end_array() {
  check(!need_comma_.empty(), "json_writer: unbalanced end_array");
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

json_writer& json_writer::key(const std::string& name) {
  separator();
  append_quoted(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

json_writer& json_writer::value(const std::string& v) {
  separator();
  append_quoted(v);
  return *this;
}

void json_writer::append_quoted(const std::string& v) {
  out_ += '"';
  for (char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

json_writer& json_writer::value(const char* v) {
  return value(std::string(v));
}

json_writer& json_writer::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.12g", v);
  out_ += buffer;
  return *this;
}

json_writer& json_writer::value(long v) {
  separator();
  out_ += std::to_string(v);
  return *this;
}

json_writer& json_writer::value(int v) { return value(static_cast<long>(v)); }

json_writer& json_writer::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  return *this;
}

std::string to_json(const assay::sequencing_graph& graph,
                    const flow_result& result) {
  const sched::schedule& s = result.scheduling.best;
  json_writer w;
  w.begin_object();
  w.field("assay", graph.name());
  w.field("operations", graph.operation_count());
  w.field("edges", graph.edge_count());

  w.key("schedule").begin_object();
  w.field("makespan", s.makespan());
  w.field("device_count", s.device_count);
  w.field("stores", s.store_count());
  w.field("peak_concurrent_caches", s.peak_concurrent_caches());
  w.field("total_cache_time", s.total_cache_time());
  w.field("used_ilp", result.scheduling.used_ilp);
  w.begin_array("operations");
  for (const auto& op : s.ops) {
    w.begin_object();
    w.field("name", graph.at(op.op).name);
    w.field("device", op.device);
    w.field("start", op.start);
    w.field("end", op.end);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("architecture").begin_object();
  w.field("grid_width", result.architecture.result.grid().width());
  w.field("grid_height", result.architecture.result.grid().height());
  w.field("used_edges", result.architecture.result.used_edge_count());
  w.field("valves", result.architecture.result.valve_count());
  w.field("edge_ratio", result.architecture.result.edge_ratio());
  w.field("valve_ratio", result.architecture.result.valve_ratio());
  w.field("paths", static_cast<long>(result.architecture.result.paths.size()));
  w.field("caches",
          static_cast<long>(result.architecture.result.caches.size()));
  w.end_object();

  w.key("layout").begin_object();
  w.field("dr_width", result.layout.after_synthesis.width);
  w.field("dr_height", result.layout.after_synthesis.height);
  w.field("de_width", result.layout.after_devices.width);
  w.field("de_height", result.layout.after_devices.height);
  w.field("dp_width", result.layout.after_compression.width);
  w.field("dp_height", result.layout.after_compression.height);
  w.field("compression_iterations", result.layout.compression_iterations);
  w.field("bend_points", result.layout.bend_points);
  w.end_object();

  if (result.stats) {
    w.key("verification").begin_object();
    w.field("transport_legs", result.stats->transport_legs);
    w.field("cached_samples", result.stats->cached_samples);
    w.field("max_active_segments", result.stats->max_active_segments);
    w.field("mean_active_segments", result.stats->mean_active_segments);
    w.field("device_utilization", result.stats->device_utilization);
    w.end_object();
  }
  if (result.baseline) {
    w.key("dedicated_storage_baseline").begin_object();
    w.field("makespan", result.baseline->makespan);
    w.field("storage_cells", result.baseline->storage_cells);
    w.field("unit_valves", result.baseline->unit_valves);
    w.field("total_valves", result.baseline->total_valves);
    w.end_object();
  }
  w.field("total_seconds", result.total_seconds);
  w.end_object();
  return w.str();
}

} // namespace transtore::core
