#include "core/report.h"

namespace transtore::core {

std::string to_json(const assay::sequencing_graph& graph,
                    const flow_result& result, bool include_timing) {
  return api::to_json(graph, result, include_timing);
}

} // namespace transtore::core
