// End-to-end synthesis flow (the paper's complete method):
//
//   sequencing graph
//     -> scheduling & binding with storage minimization   (Section 3.1)
//     -> architectural synthesis with channel storage     (Section 3.2)
//     -> iterative physical compression                   (Section 3.3)
//     -> simulator verification + optional dedicated-storage baseline
//
// COMPATIBILITY SHIM. The staged, cancellable, batch-capable surface lives
// in api/pipeline.h / api/executor.h; run_flow() is a thin blocking wrapper
// over api::pipeline::run() for callers that want the original
// throw-on-error contract. flow_options and flow_result are aliases of the
// api types, so existing code keeps compiling unchanged. See
// src/api/README.md for the migration table.
#pragma once

#include "api/pipeline.h"

namespace transtore::core {

using flow_options = api::pipeline_options;
using flow_result = api::flow_result;

/// Run the full flow. Throws on invalid input or when the grid cannot fit
/// the workload (capacity_error). New code should prefer api::pipeline,
/// which reports these outcomes as structured statuses instead.
[[nodiscard]] flow_result run_flow(const assay::sequencing_graph& graph,
                                   const flow_options& options = {});

} // namespace transtore::core
