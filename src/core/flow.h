// End-to-end synthesis flow (the paper's complete method):
//
//   sequencing graph
//     -> scheduling & binding with storage minimization   (Section 3.1)
//     -> architectural synthesis with channel storage     (Section 3.2)
//     -> iterative physical compression                   (Section 3.3)
//     -> simulator verification + optional dedicated-storage baseline
//
// This is the public entry point a downstream user calls; the examples and
// every bench harness are built on it.
#pragma once

#include <optional>
#include <string>

#include "arch/synthesis.h"
#include "assay/sequencing_graph.h"
#include "baseline/dedicated_storage.h"
#include "phys/layout.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace transtore::core {

struct flow_options {
  // Resources (paper: "maximum numbers of devices allowed in the chip").
  int device_count = 1;
  int grid_width = 4;
  int grid_height = 4;

  // Timing model.
  sched::timing_options timing{};

  // Scheduling (objective (6) weights and engine).
  double alpha = 1.0;
  double beta = 0.15;
  bool storage_aware = true; // false = "optimize execution time only"
  sched::schedule_engine schedule_engine = sched::schedule_engine::combined;
  double sched_ilp_time_limit = 10.0;
  int heuristic_restarts = 24;

  // Architecture.
  arch::synthesis_engine arch_engine = arch::synthesis_engine::heuristic;
  double arch_ilp_time_limit = 20.0;
  int arch_attempts = 8;

  // Physical design.
  phys::phys_options physical{};

  // Extras.
  bool run_baseline = false; // also evaluate the dedicated-storage baseline
  bool verify = true;        // run the independent simulator
  std::uint64_t seed = 1;
};

struct flow_result {
  sched::scheduling_result scheduling;
  arch::arch_result architecture;
  phys::layout_result layout;
  std::optional<sim::sim_stats> stats;
  std::optional<baseline::baseline_result> baseline;
  double total_seconds = 0.0;

  /// Multi-line summary of the headline metrics.
  [[nodiscard]] std::string report(const assay::sequencing_graph& graph) const;
};

/// Run the full flow. Throws on invalid input or when the grid cannot fit
/// the workload (capacity_error).
[[nodiscard]] flow_result run_flow(const assay::sequencing_graph& graph,
                                   const flow_options& options = {});

} // namespace transtore::core
