// transtore_cli: command-line front end for the whole library.
//
//   transtore_cli synth  <assay|file.sg> [options]   full synthesis flow
//   transtore_cli sched  <assay|file.sg> [options]   scheduling only
//   transtore_cli show   <assay|file.sg>             print the DAG (DOT)
//   transtore_cli bench-names                        list built-in assays
//
// Options:
//   --devices N     mixers on the chip (default 1)
//   --grid WxH      connection grid (default 4x4)
//   --beta B        storage weight in objective (6) (default 0.15)
//   --time-only     disable storage optimization (Fig. 9 baseline)
//   --baseline      also evaluate the dedicated-storage unit
//   --json FILE     write the machine-readable report
//   --svg FILE      write the compacted layout
//   --seed S        random seed (default 1)
//
// <assay> is a built-in name (PCR, IVD, CPA, RA30, RA70, RA100) or a path
// to a sequencing-graph file in the src/assay/io.h text format.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "assay/benchmarks.h"
#include "assay/io.h"
#include "core/flow.h"
#include "core/report.h"
#include "phys/layout.h"

namespace {

using namespace transtore;

assay::sequencing_graph load_assay(const std::string& spec) {
  for (const char* name : {"PCR", "IVD", "CPA", "RA30", "RA70", "RA100"})
    if (spec == name) return assay::make_benchmark(spec);
  return assay::load_sequencing_graph(spec);
}

int usage() {
  std::fprintf(stderr,
               "usage: transtore_cli <synth|sched|show|bench-names> "
               "[assay] [--devices N] [--grid WxH] [--beta B] [--time-only] "
               "[--baseline] [--json FILE] [--svg FILE] [--seed S]\n");
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "bench-names") {
    std::printf("PCR IVD CPA RA30 RA70 RA100\n");
    return 0;
  }
  if (argc < 3) return usage();

  core::flow_options options;
  std::string json_path;
  std::string svg_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--devices") {
      options.device_count = std::atoi(next());
    } else if (arg == "--grid") {
      const std::string dims = next();
      const auto x = dims.find('x');
      if (x == std::string::npos) return usage();
      options.grid_width = std::atoi(dims.substr(0, x).c_str());
      options.grid_height = std::atoi(dims.substr(x + 1).c_str());
    } else if (arg == "--beta") {
      options.beta = std::atof(next());
    } else if (arg == "--time-only") {
      options.storage_aware = false;
    } else if (arg == "--baseline") {
      options.run_baseline = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--svg") {
      svg_path = next();
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  try {
    const assay::sequencing_graph graph = load_assay(argv[2]);

    if (command == "show") {
      std::printf("%s", graph.to_dot().c_str());
      return 0;
    }
    if (command == "sched") {
      sched::scheduler_options so;
      so.device_count = options.device_count;
      so.beta = options.beta;
      so.storage_aware = options.storage_aware;
      so.seed = options.seed;
      const sched::scheduling_result r = sched::make_schedule(graph, so);
      std::printf("tE=%d stores=%d capacity=%d cache_time=%ld\n",
                  r.best.makespan(), r.best.store_count(),
                  r.best.peak_concurrent_caches(), r.best.total_cache_time());
      for (const auto& op : r.best.ops)
        std::printf("  %-8s d%d [%d, %d)\n", graph.at(op.op).name.c_str(),
                    op.device + 1, op.start, op.end);
      return 0;
    }
    if (command == "synth") {
      const core::flow_result r = core::run_flow(graph, options);
      std::printf("%s", r.report(graph).c_str());
      if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << core::to_json(graph, r) << "\n";
        std::printf("report -> %s\n", json_path.c_str());
      }
      if (!svg_path.empty()) {
        std::ofstream out(svg_path);
        out << phys::render_svg(r.architecture.result, r.layout);
        std::printf("layout -> %s\n", svg_path.c_str());
      }
      return 0;
    }
    return usage();
  } catch (const ts_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
