// transtore_cli: command-line front end for the whole library, built on the
// staged api::pipeline / api::executor surface.
//
//   transtore_cli synth  <assay|file.sg> [options]   full synthesis flow
//   transtore_cli synth  --all [options]             every built-in assay
//                                                    through the batch executor
//   transtore_cli sched  <assay|file.sg> [options]   scheduling only
//   transtore_cli serve  [options]                   long-lived service:
//                                                    line-delimited JSON
//                                                    requests on stdin,
//                                                    responses on stdout
//   transtore_cli show   <assay|file.sg>             print the DAG (DOT)
//   transtore_cli bench-names                        list built-in assays
//
// Options:
//   --devices N     mixers on the chip (default 1; per-assay table for --all)
//   --grid WxH      connection grid (default 4x4; per-assay table for --all)
//   --engine E      scheduling engine: heuristic|ilp|combined (default)|
//                   sa|grasp|decomp (metaheuristics; see src/sched/README.md)
//   --beta B        storage weight in objective (6) (default 0.15)
//   --time-only     disable storage optimization (Fig. 9 baseline)
//   --baseline      also evaluate the dedicated-storage unit
//   --json FILE|-   write the machine-readable report ("-" = stdout)
//   --svg FILE      write the compacted layout
//   --seed S        random seed (default 1)
//   --deadline S    wall-clock budget in seconds; a hit returns the
//                   best-effort result and exits 3 (distinct from errors)
//   --workers N     executor worker threads for --all / serve (default 2)
//   --threads N     MILP solver threads for the tree search (default 1;
//                   0 = all cores). Under --all / serve the executor caps
//                   each job so workers x threads stays within the
//                   machine's cores (see api/README.md)
//   --deterministic round-synchronized parallel search: bit-identical
//                   results at any --threads value
//   --portfolio     racing portfolio for the scheduling ILP: best_estimate
//                   + dfs + annealing race on a shared incumbent; first
//                   optimality proof cancels the rest
//   --queue N       serve: bounded pending-job queue; overflow requests are
//                   rejected with status "queue_full" (0 = unbounded)
//   --cache-capacity N  in-memory result-cache entries (default 64;
//                   serve, or synth together with --cache-dir -- synth
//                   only builds a cache when a disk tier is requested)
//   --cache-dir DIR on-disk result-cache tier (synth and serve); a warm
//                   (graph, options) pair is a lookup instead of a solve
//   --fault SPEC    synth: after synthesis, inject SPEC at ~50%% of the
//                   schedule and run the api::recover retry ladder. SPEC is
//                   "auto" (a survivable device+storage scenario is chosen)
//                   or comma-separated tokens device:N valve:N edge:N
//                   storage:N. With --json the recovery document is written
//                   instead of the flow document.
//
// Exit codes: 0 success (including degraded recoveries); 1 synthesis
// failure (capacity/infeasible/internal); 2 usage or input errors; 3
// deadline hit / cancelled (best-effort results, when available, are still
// printed).
//
// Serve protocol (one JSON object per line; see src/api/README.md):
//   {"id":1,"op":"synth","assay":"PCR","options":{...},"priority":0,
//    "deadline":30}                    -> {"id":1,"status":"ok",
//                                          "cache_hit":false,...,
//                                          "result":{...flow document...}}
//   {"id":2,"op":"recover","assay":"PCR","at":0.5,"fault":"auto"}
//                                      -> {"id":2,"status":"ok|degraded",
//                                          "rung":...,"recovery":{...}}
//   {"op":"stats"} | {"op":"ping"} | {"op":"shutdown"}
//
// <assay> is a built-in name (PCR, IVD, CPA, RA30, RA70, RA100) or a path
// to a sequencing-graph file in the src/assay/io.h text format.
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/executor.h"
#include "api/pipeline.h"
#include "api/recover.h"
#include "api/result_cache.h"
#include "api/serialize.h"
#include "api/serve.h"
#include "arch/fault.h"
#include "assay/benchmarks.h"
#include "assay/io.h"
#include "common/json.h"
#include "core/report.h"
#include "phys/layout.h"
#include "sim/fault_injector.h"

namespace {

using namespace transtore;

bool is_builtin(const std::string& spec) {
  for (const assay::benchmark_resources& r : assay::benchmark_resource_table())
    if (spec == r.name) return true;
  return false;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: transtore_cli <synth|sched|serve|show|bench-names> "
      "[assay|--all]\n"
      "       [--devices N] [--grid WxH]\n"
      "       [--engine heuristic|ilp|combined|sa|grasp|decomp]\n"
      "       [--beta B] [--time-only] [--baseline] [--json FILE|-]\n"
      "       [--svg FILE] [--seed S] [--deadline S] [--workers N]\n"
      "       [--threads N] [--deterministic] [--portfolio]\n"
      "       [--queue N] [--cache-capacity N] [--cache-bytes N]\n"
      "       [--cache-dir DIR] [--socket PATH] [--tcp PORT]\n"
      "       [--max-inflight N]\n"
      "       [--fault auto|device:N,valve:N,edge:N,storage:N]\n");
  return 2;
}

std::optional<assay::sequencing_graph> load_assay(const std::string& spec) {
  if (is_builtin(spec)) return assay::make_benchmark(spec);
  try {
    return assay::load_sequencing_graph(spec);
  } catch (const ts_error& e) {
    std::fprintf(stderr,
                 "error: cannot load assay '%s': %s\n"
                 "       (expected a built-in name -- PCR IVD CPA RA30 RA70 "
                 "RA100 -- or a readable .sg file)\n",
                 spec.c_str(), e.what());
    return std::nullopt;
  }
}

struct cli_args {
  std::string assay_spec;
  bool all = false;
  api::pipeline_options options = [] {
    api::pipeline_options o;
    // Storage-heavy assays (RA70) cannot route on the paper's grid with
    // every seed; retry up to two sizes up instead of failing. The grid
    // actually used is visible in the report/JSON. Identical for single
    // and --all runs so their metrics stay comparable.
    o.grid_growth = 2;
    return o;
  }();
  bool devices_set = false;
  bool grid_set = false;
  std::string json_path;
  std::string svg_path;
  double deadline_seconds = 0.0;
  int workers = 2;
  std::size_t queue_capacity = 0;
  std::size_t cache_capacity = 64;
  std::size_t cache_bytes = 0; // 0 = entry-count bound only
  std::string cache_dir;
  // serve transport: default is stdio; --socket/--tcp switch to the
  // multi-connection listener front end.
  std::string socket_path;
  int tcp_port = -1;
  std::size_t max_inflight = 0; // per-connection backpressure cap
  // --fault: inject after synthesis and run the recovery ladder.
  bool fault_requested = false;
  bool fault_auto = false;
  arch::fault_set faults;
};

/// Parse a --fault SPEC: "auto" or comma-separated kind:id tokens.
bool parse_fault_spec(const std::string& spec, cli_args& args) {
  args.fault_requested = true;
  if (spec == "auto") {
    args.fault_auto = true;
    return true;
  }
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    const std::size_t colon = token.find(':');
    char* end = nullptr;
    const long id = colon == std::string::npos
                        ? -1
                        : std::strtol(token.c_str() + colon + 1, &end, 10);
    if (colon == std::string::npos || end == token.c_str() + colon + 1 ||
        *end != '\0' || id < 0) {
      std::fprintf(stderr,
                   "error: --fault token '%s' is not kind:id (kinds: device "
                   "valve edge storage; id >= 0)\n",
                   token.c_str());
      return false;
    }
    const std::string kind = token.substr(0, colon);
    if (kind == "device") args.faults.devices.push_back(static_cast<int>(id));
    else if (kind == "valve") args.faults.valves.push_back(static_cast<int>(id));
    else if (kind == "edge") args.faults.edges.push_back(static_cast<int>(id));
    else if (kind == "storage")
      args.faults.storage.push_back(static_cast<int>(id));
    else {
      std::fprintf(stderr,
                   "error: --fault kind '%s' unknown (device valve edge "
                   "storage)\n",
                   kind.c_str());
      return false;
    }
  }
  if (args.faults.empty()) {
    std::fprintf(stderr, "error: --fault spec '%s' names no resources\n",
                 spec.c_str());
    return false;
  }
  return true;
}

/// Result cache per the CLI flags, or null when nothing asked for one
/// (synth paths only attach a cache when --cache-dir is given; serve always
/// runs with at least the in-memory tier).
std::shared_ptr<api::result_cache> make_cache(const cli_args& args,
                                              bool always) {
  if (args.cache_dir.empty() && !always) return nullptr;
  api::result_cache_options co;
  co.memory_entries = args.cache_capacity;
  co.disk_dir = args.cache_dir;
  co.memory_bytes = args.cache_bytes;
  return std::make_shared<api::result_cache>(co);
}

/// Per-assay device/grid defaults from the paper's resource table, unless
/// the command line pinned them. Shared by `synth --all` and serve so
/// their built-in-assay configurations (and hence cache keys) cannot
/// drift apart.
void apply_benchmark_resources(api::pipeline_options& options,
                               const std::string& assay,
                               const cli_args& args) {
  for (const assay::benchmark_resources& r : assay::benchmark_resource_table())
    if (assay == r.name) {
      if (!args.devices_set) options.device_count = r.devices;
      if (!args.grid_set) {
        options.grid_width = r.grid;
        options.grid_height = r.grid;
      }
    }
}

/// Parse flags from argv[from..). Returns false (after a diagnostic) on
/// unknown options or malformed values.
bool parse_flags(int argc, char** argv, int from, cli_args& args) {
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if (arg == "--devices") {
      if ((value = next()) == nullptr) return false;
      args.options.device_count = std::atoi(value);
      args.devices_set = true;
    } else if (arg == "--grid") {
      if ((value = next()) == nullptr) return false;
      const std::string dims = value;
      const auto x = dims.find('x');
      if (x == std::string::npos) {
        std::fprintf(stderr, "error: --grid expects WxH, got '%s'\n",
                     dims.c_str());
        return false;
      }
      args.options.grid_width = std::atoi(dims.substr(0, x).c_str());
      args.options.grid_height = std::atoi(dims.substr(x + 1).c_str());
      args.grid_set = true;
    } else if (arg == "--engine") {
      if ((value = next()) == nullptr) return false;
      const std::string engine = value;
      if (engine == "heuristic")
        args.options.schedule_engine = sched::schedule_engine::heuristic;
      else if (engine == "ilp")
        args.options.schedule_engine = sched::schedule_engine::ilp;
      else if (engine == "combined")
        args.options.schedule_engine = sched::schedule_engine::combined;
      else if (engine == "sa")
        args.options.schedule_engine = sched::schedule_engine::sa;
      else if (engine == "grasp")
        args.options.schedule_engine = sched::schedule_engine::grasp;
      else if (engine == "decomp")
        args.options.schedule_engine = sched::schedule_engine::decomp;
      else {
        std::fprintf(stderr,
                     "error: --engine expects heuristic|ilp|combined|sa|"
                     "grasp|decomp, got '%s'\n",
                     engine.c_str());
        return false;
      }
    } else if (arg == "--beta") {
      if ((value = next()) == nullptr) return false;
      args.options.beta = std::atof(value);
    } else if (arg == "--time-only") {
      args.options.storage_aware = false;
    } else if (arg == "--baseline") {
      args.options.run_baseline = true;
    } else if (arg == "--json") {
      if ((value = next()) == nullptr) return false;
      args.json_path = value;
    } else if (arg == "--svg") {
      if ((value = next()) == nullptr) return false;
      args.svg_path = value;
    } else if (arg == "--seed") {
      if ((value = next()) == nullptr) return false;
      args.options.seed = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--deadline") {
      if ((value = next()) == nullptr) return false;
      args.deadline_seconds = std::atof(value);
    } else if (arg == "--workers") {
      if ((value = next()) == nullptr) return false;
      args.workers = std::atoi(value);
      if (args.workers < 1) {
        std::fprintf(stderr, "error: --workers must be >= 1\n");
        return false;
      }
    } else if (arg == "--queue") {
      if ((value = next()) == nullptr) return false;
      char* end = nullptr;
      const long long queue = std::strtoll(value, &end, 10);
      if (end == value || *end != '\0' || queue < 0) {
        std::fprintf(stderr,
                     "error: --queue expects a non-negative integer "
                     "(0 = unbounded), got '%s'\n",
                     value);
        return false;
      }
      args.queue_capacity = static_cast<std::size_t>(queue);
    } else if (arg == "--cache-capacity") {
      if ((value = next()) == nullptr) return false;
      char* end = nullptr;
      const long long capacity = std::strtoll(value, &end, 10);
      if (end == value || *end != '\0' || capacity < 1) {
        std::fprintf(stderr,
                     "error: --cache-capacity expects a positive integer, "
                     "got '%s'\n",
                     value);
        return false;
      }
      args.cache_capacity = static_cast<std::size_t>(capacity);
    } else if (arg == "--cache-bytes") {
      if ((value = next()) == nullptr) return false;
      char* end = nullptr;
      const long long bytes = std::strtoll(value, &end, 10);
      if (end == value || *end != '\0' || bytes < 0) {
        std::fprintf(stderr,
                     "error: --cache-bytes expects a non-negative byte "
                     "budget (0 = unbounded), got '%s'\n",
                     value);
        return false;
      }
      args.cache_bytes = static_cast<std::size_t>(bytes);
    } else if (arg == "--cache-dir") {
      if ((value = next()) == nullptr) return false;
      args.cache_dir = value;
    } else if (arg == "--socket") {
      if ((value = next()) == nullptr) return false;
      args.socket_path = value;
    } else if (arg == "--tcp") {
      if ((value = next()) == nullptr) return false;
      char* end = nullptr;
      const long port = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || port < 0 || port > 65535) {
        std::fprintf(stderr,
                     "error: --tcp expects a port in [0, 65535] "
                     "(0 = ephemeral), got '%s'\n",
                     value);
        return false;
      }
      args.tcp_port = static_cast<int>(port);
    } else if (arg == "--max-inflight") {
      if ((value = next()) == nullptr) return false;
      char* end = nullptr;
      const long long cap = std::strtoll(value, &end, 10);
      if (end == value || *end != '\0' || cap < 0) {
        std::fprintf(stderr,
                     "error: --max-inflight expects a non-negative cap "
                     "(0 = unbounded), got '%s'\n",
                     value);
        return false;
      }
      args.max_inflight = static_cast<std::size_t>(cap);
    } else if (arg == "--threads") {
      if ((value = next()) == nullptr) return false;
      args.options.solver_threads = std::atoi(value);
      if (args.options.solver_threads < 0) {
        std::fprintf(stderr,
                     "error: --threads expects >= 0 (0 = all cores)\n");
        return false;
      }
    } else if (arg == "--deterministic") {
      args.options.solver_deterministic = true;
    } else if (arg == "--portfolio") {
      args.options.portfolio = true;
    } else if (arg == "--fault") {
      if ((value = next()) == nullptr) return false;
      if (!parse_fault_spec(value, args)) return false;
    } else if (arg == "--all") {
      args.all = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown option '%s' (see usage below)\n",
                   arg.c_str());
      usage();
      return false;
    }
  }
  return true;
}

/// Map a terminal api status to the CLI exit code contract.
int exit_code_for(api::status code) {
  switch (code) {
    case api::status::ok: return 0;
    case api::status::degraded: return 0; // recovery succeeded, just slower
    case api::status::time_limit:
    case api::status::cancelled: return 3;
    case api::status::invalid_input: return 2;
    default: return 1;
  }
}

void describe_outcome(const std::string& label, api::status code,
                      const std::string& message) {
  if (code == api::status::ok) return;
  if (code == api::status::degraded)
    std::fprintf(stderr, "%s: degraded -- %s\n", label.c_str(),
                 message.c_str());
  else if (code == api::status::time_limit)
    std::fprintf(stderr, "%s: deadline hit -- %s\n", label.c_str(),
                 message.c_str());
  else if (code == api::status::cancelled)
    std::fprintf(stderr, "%s: cancelled -- %s\n", label.c_str(),
                 message.c_str());
  else
    std::fprintf(stderr, "%s: %s error -- %s\n", label.c_str(),
                 api::to_string(code), message.c_str());
}

/// Tag a flow-result JSON document (a single object) with the structured
/// outcome, so best-effort rows (time_limit/cancelled) are distinguishable
/// from completed ones in machine-readable output too.
std::string with_outcome(std::string doc, api::status code) {
  doc.insert(doc.size() - 1,
             ",\"outcome\":\"" + std::string(api::to_string(code)) + "\"");
  return doc;
}

bool write_text(const std::string& path, const std::string& text,
                const char* what) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << text << "\n";
  std::printf("%s -> %s\n", what, path.c_str());
  return true;
}

int run_synth_all(const cli_args& args) {
  std::vector<api::job> jobs;
  for (const assay::benchmark_resources& c :
       assay::benchmark_resource_table()) {
    api::job j;
    j.name = c.name;
    j.graph = assay::make_benchmark(c.name);
    j.options = args.options;
    apply_benchmark_resources(j.options, c.name, args);
    jobs.push_back(std::move(j));
  }

  api::run_context ctx;
  if (args.deadline_seconds > 0.0) ctx.set_deadline(args.deadline_seconds);

  api::executor_options pool_options;
  pool_options.workers = args.workers;
  pool_options.cache = make_cache(args, /*always=*/false);
  api::executor pool(pool_options);
  std::fprintf(stderr, "[batch] %zu assays, %d workers%s\n", jobs.size(),
               pool.workers(),
               pool_options.cache ? ", result cache on" : "");
  const std::vector<api::job_outcome> outcomes = pool.run(
      jobs, ctx, [](const api::job_outcome& o) {
        std::fprintf(stderr, "[batch] %-6s %-10s %.2fs%s\n", o.name.c_str(),
                     api::to_string(o.code), o.seconds,
                     o.cache_hit ? " (cache hit)" : "");
      });

  // With --json - the machine-readable report owns stdout; the human
  // summaries move to stderr so the JSON stays parseable.
  const bool want_json = !args.json_path.empty();
  std::FILE* report_stream = args.json_path == "-" ? stderr : stdout;
  std::string json = "[\n";
  int exit_code = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const api::job_outcome& o = outcomes[i];
    describe_outcome(o.name, o.code, o.message);
    exit_code = std::max(exit_code, exit_code_for(o.code));
    if (o.flow)
      std::fprintf(report_stream, "%s", o.flow->report(jobs[i].graph).c_str());
    if (!want_json) continue;
    if (o.flow)
      json += "  " + with_outcome(api::to_json(jobs[i].graph, *o.flow), o.code);
    else
      json += "  {\"assay\":\"" + o.name + "\",\"outcome\":\"" +
              api::to_string(o.code) + "\"}";
    json += i + 1 < outcomes.size() ? ",\n" : "\n";
  }
  json += "]";
  if (want_json && !write_text(args.json_path, json, "report")) return 1;
  return exit_code;
}

/// --fault path: inject the requested (or auto-chosen) fault at ~50% of
/// the synthesized schedule and run the recovery ladder. Returns the exit
/// code; with --json the recovery document replaces the flow document.
int run_fault_recovery(const cli_args& args,
                       const assay::sequencing_graph& graph,
                       const api::flow_result& flow,
                       const api::run_context& ctx) {
  std::FILE* report_stream = args.json_path == "-" ? stderr : stdout;
  const sched::schedule& s = flow.scheduling.best;
  api::recovery_request req;
  req.graph = graph;
  req.options = args.options;
  req.original = flow;
  if (args.fault_auto) {
    const auto scenario = sim::choose_fault_scenario(
        graph, s, flow.architecture.result, flow.architecture.workload, 0.5);
    if (!scenario) {
      std::fprintf(stderr,
                   "%s: no survivable fault scenario (every injectable "
                   "fault would strand completed work)\n",
                   graph.name().c_str());
      return 1;
    }
    req.faults = scenario->faults;
    req.fault_time = scenario->fault_time;
  } else {
    req.faults = args.faults;
    req.fault_time =
        std::max(0, static_cast<int>(std::floor(s.makespan() * 0.5)));
  }

  auto rec = api::recover(req, ctx);
  describe_outcome(graph.name() + " recovery", rec.code(), rec.message());
  if (!rec.has_value()) return exit_code_for(rec.code());
  const api::recovery_result& r = rec.value();
  std::fprintf(report_stream,
               "  recovery: %s at t=%d via %s, tE=%d (was %d), "
               "%zu ops kept, %zu rescheduled\n",
               api::to_string(rec.code()), r.fault_time,
               api::to_string(r.rung), r.recovered_makespan,
               r.original_makespan, r.completed_ops.size(),
               r.rescheduled_ops.size());
  if (!args.json_path.empty() &&
      !write_text(args.json_path, api::to_json(graph, args.options, r),
                  "recovery report"))
    return 1;
  return exit_code_for(rec.code());
}

int run_synth_single(const cli_args& args,
                     const assay::sequencing_graph& graph) {
  api::run_context ctx;
  if (args.deadline_seconds > 0.0) ctx.set_deadline(args.deadline_seconds);

  api::pipeline p(graph, args.options);
  if (auto cache = make_cache(args, /*always=*/false)) p.set_cache(cache);
  auto outcome = p.run(ctx);
  describe_outcome(graph.name(), outcome.code(), outcome.message());
  if (!outcome.has_value()) return exit_code_for(outcome.code());

  const api::flow_result& r = outcome.value();
  std::fprintf(args.json_path == "-" ? stderr : stdout, "%s",
               r.report(graph).c_str());
  if (args.fault_requested) return run_fault_recovery(args, graph, r, ctx);
  if (!args.json_path.empty() &&
      !write_text(args.json_path,
                  with_outcome(api::to_json(graph, r), outcome.code()),
                  "report"))
    return 1;
  if (!args.svg_path.empty() &&
      !write_text(args.svg_path, phys::render_svg(r.architecture.result,
                                                  r.layout),
                  "layout"))
    return 1;
  return exit_code_for(outcome.code());
}

// ------------------------------------------------------------------- serve
//
// Long-lived service front end: one JSON object per request line on stdin,
// one JSON response line on stdout (stderr carries human logs). Request
// schema and semantics are documented in src/api/README.md.
//
// The read loop never blocks on a solve: synth requests are submitted to
// the executor's service queue immediately (so a streaming client fills
// all workers, priorities reorder the backlog, and a bounded --queue can
// actually reject with queue_full), while a responder thread emits one
// response per request in request order. stats and shutdown are sequence
// points: their responses flow through the same ordered queue, so a stats
// reply reflects every request before it and the shutdown ack is the last
// line written.

std::string error_response(const std::string& id_raw, const char* code,
                           const std::string& message) {
  json_writer w;
  w.begin_object();
  if (!id_raw.empty()) w.key("id").value_raw(id_raw);
  w.field("status", code);
  w.field("message", message);
  w.end_object();
  return w.str();
}

std::string stats_response(const std::string& id_raw,
                           const api::executor& pool,
                           const api::result_cache& cache,
                           const api::serve_front* front) {
  // Both snapshots are internally atomic: occupancy (entries/bytes,
  // pending/running) is captured under the same lock as the counters, so
  // the cross-invariants (lookups == hits + misses, submitted ==
  // completed + running + pending + unredeemed) hold in every response no
  // matter what runs concurrently.
  const api::cache_stats stats = cache.stats();
  const api::executor_stats exec = pool.stats();
  json_writer w;
  w.begin_object();
  if (!id_raw.empty()) w.key("id").value_raw(id_raw);
  w.field("status", "ok");
  w.field("op", "stats");
  w.key("cache").begin_object();
  w.field("lookups", static_cast<long>(stats.lookups));
  w.field("memory_hits", static_cast<long>(stats.memory_hits));
  w.field("disk_hits", static_cast<long>(stats.disk_hits));
  w.field("misses", static_cast<long>(stats.misses));
  w.field("coalesced_hits", static_cast<long>(stats.coalesced_hits));
  w.field("stores", static_cast<long>(stats.stores));
  w.field("evictions", static_cast<long>(stats.evictions));
  w.field("bytes_evicted", static_cast<long>(stats.bytes_evicted));
  w.field("disk_errors", static_cast<long>(stats.disk_errors));
  w.field("negative_hits", static_cast<long>(stats.negative_hits));
  w.field("negative_stores", static_cast<long>(stats.negative_stores));
  w.field("negative_evictions", static_cast<long>(stats.negative_evictions));
  w.field("negative_entries", static_cast<long>(stats.negative_entries));
  w.field("entries", static_cast<long>(stats.entries));
  w.field("bytes", static_cast<long>(stats.bytes));
  w.end_object();
  w.key("executor").begin_object();
  w.field("workers", pool.workers());
  w.field("pending", static_cast<long>(exec.pending));
  w.field("running", static_cast<long>(exec.running));
  w.field("submitted", static_cast<long>(exec.submitted));
  w.field("completed", static_cast<long>(exec.completed));
  w.field("rejected_queue_full",
          static_cast<long>(exec.rejected_queue_full));
  w.field("cache_hits", static_cast<long>(exec.cache_hits));
  w.end_object();
  if (front != nullptr) {
    const api::serve_stats s = front->stats();
    w.key("serve").begin_object();
    w.field("connections_accepted",
            static_cast<long>(s.connections_accepted));
    w.field("connections_open", static_cast<long>(s.connections_open));
    w.field("requests", static_cast<long>(s.requests));
    w.field("responses", static_cast<long>(s.responses));
    w.field("shed", static_cast<long>(s.shed));
    w.field("framing_errors", static_cast<long>(s.framing_errors));
    w.field("bytes_in", static_cast<long>(s.bytes_in));
    w.field("bytes_out", static_cast<long>(s.bytes_out));
    w.begin_array("connection_requests");
    for (const std::uint64_t r : s.open_connection_requests)
      w.value(static_cast<long>(r));
    w.end_array();
    w.key("latency").begin_object();
    for (const auto& [op, h] : s.latency) {
      w.key(op).begin_object();
      w.field("count", static_cast<long>(h.count));
      w.field("total_ms", h.total_ms);
      w.field("max_ms", h.max_ms);
      w.begin_array("buckets");
      for (const std::uint64_t b : h.buckets)
        w.value(static_cast<long>(b));
      w.end_array();
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  // Legacy top-level mirrors of the executor snapshot.
  w.field("workers", pool.workers());
  w.field("pending", static_cast<long>(exec.pending));
  w.end_object();
  return w.str();
}

std::string synth_response(const std::string& id_raw,
                           const api::job_outcome& outcome,
                           const assay::sequencing_graph& graph,
                           const api::pipeline_options& options) {
  json_writer w;
  w.begin_object();
  if (!id_raw.empty()) w.key("id").value_raw(id_raw);
  w.field("status", api::to_string(outcome.code));
  if (!outcome.message.empty()) w.field("message", outcome.message);
  w.field("assay", outcome.name);
  w.field("cache_hit", outcome.cache_hit);
  w.field("seconds", outcome.seconds);
  if (outcome.result_json)
    w.key("result").value_raw(*outcome.result_json);
  else if (outcome.flow)
    // Best-effort outcomes (time_limit/cancelled) are not cached, so no
    // stored document exists; serialize on the fly.
    w.key("result").value_raw(
        api::serialize_flow(graph, options, *outcome.flow));
  w.end_object();
  return w.str();
}

/// One enqueued response, emitted in request order by the responder.
struct serve_item {
  enum class action {
    respond, // `ready` is the complete response (errors, ping, shutdown ack)
    synth,   // wait on `ticket`, then build the response
    recover, // wait on `ticket`, then run fault recovery on the result
    stats,   // computed at dequeue time, after every prior request resolved
  };
  action act = action::respond;
  /// Metric label for the serve front end's per-op latency histograms
  /// (static strings only -- the item outlives admit_request's locals).
  const char* op = "error";
  bool shed = false; // rejected by the bounded executor queue
  std::string id_raw;
  std::string ready;
  api::executor::ticket ticket = 0;
  assay::sequencing_graph graph;   // synth: identity for best-effort docs
  api::pipeline_options options;
  // recover only: the requested fault ("auto" = pick a survivable one).
  bool fault_auto = true;
  arch::fault_set faults;
  double fault_at = 0.5;
};

/// Canonical negative-cache scenario tag for one (faults, fault_time).
std::string scenario_tag(const arch::fault_set& f, int fault_time) {
  auto ints = [](const char* label, const std::vector<int>& ids) {
    std::string out;
    if (ids.empty()) return out;
    out += std::string(" ") + label + "=";
    for (std::size_t i = 0; i < ids.size(); ++i)
      out += (i ? "," : "") + std::to_string(ids[i]);
    return out;
  };
  return "recover t=" + std::to_string(fault_time) +
         ints("devices", f.devices) + ints("valves", f.valves) +
         ints("edges", f.edges) + ints("storage", f.storage);
}

/// Build the response to a `recover` request once the base synthesis
/// resolved. Runs on the responder thread: the recovery ladder itself is
/// cheap next to a cold synthesis, and responses stay in request order.
std::string recover_response(const serve_item& item,
                             const api::job_outcome& outcome,
                             api::result_cache& cache) {
  if (!outcome.flow || outcome.code != api::status::ok)
    return error_response(item.id_raw, api::to_string(outcome.code),
                          outcome.message.empty()
                              ? "base synthesis did not complete"
                              : outcome.message);
  const api::flow_result& flow = *outcome.flow;
  const sched::schedule& s = flow.scheduling.best;

  api::recovery_request req;
  req.graph = item.graph;
  req.options = item.options;
  req.original = flow;
  if (item.fault_auto) {
    const auto scenario = sim::choose_fault_scenario(
        item.graph, s, flow.architecture.result, flow.architecture.workload,
        item.fault_at);
    if (!scenario)
      return error_response(item.id_raw, "infeasible",
                            "no survivable fault scenario for this design");
    req.faults = scenario->faults;
    req.fault_time = scenario->fault_time;
  } else {
    req.faults = item.faults;
    req.fault_time =
        std::max(0, static_cast<int>(std::floor(s.makespan() *
                                                item.fault_at)));
  }
  req.faults.normalize();

  // Recovery outcomes are deterministic per (graph, options, scenario):
  // structurally impossible recoveries are answered from the negative tier.
  const api::cache_key key = api::make_cache_key(
      item.graph, item.options, scenario_tag(req.faults, req.fault_time));
  if (const auto negative = cache.lookup_negative(key))
    return error_response(item.id_raw, api::to_string(negative->code),
                          negative->message);

  auto rec = api::recover(req);
  if (!rec.has_value()) {
    cache.store_negative(key, api::result_cache::negative_entry{
                                  rec.code(), rec.message()});
    return error_response(item.id_raw, api::to_string(rec.code()),
                          rec.message());
  }
  const api::recovery_result& r = rec.value();
  json_writer w;
  w.begin_object();
  if (!item.id_raw.empty()) w.key("id").value_raw(item.id_raw);
  w.field("status", api::to_string(rec.code()));
  if (!rec.message().empty()) w.field("message", rec.message());
  w.field("assay", item.graph.name());
  w.field("cache_hit", outcome.cache_hit);
  w.field("rung", api::to_string(r.rung));
  w.field("fault_time", r.fault_time);
  w.field("original_makespan", r.original_makespan);
  w.field("recovered_makespan", r.recovered_makespan);
  w.field("completed", static_cast<long>(r.completed_ops.size()));
  w.field("rescheduled", static_cast<long>(r.rescheduled_ops.size()));
  w.key("recovery").value_raw(api::to_json(item.graph, item.options, r));
  w.end_object();
  return w.str();
}

/// Parse + submit one request line; never blocks on a solve. Returns the
/// item to enqueue. Sets `quit` on a shutdown request.
serve_item admit_request(const std::string& line, const cli_args& args,
                         api::executor& pool, bool& quit) {
  serve_item item;
  try {
    const json_value req = json_value::parse(line);
    require(req.is_object(), "request must be a JSON object");
    if (const json_value* id = req.find("id")) {
      json_writer w;
      write_value(w, *id);
      item.id_raw = w.str();
    }
    const json_value* op = req.find("op");
    const std::string name = op ? op->as_string() : "synth";

    if (name == "stats") {
      item.act = serve_item::action::stats;
      item.op = "stats";
      return item;
    }
    if (name == "ping" || name == "shutdown") {
      quit = name == "shutdown";
      item.op = quit ? "shutdown" : "ping";
      json_writer w;
      w.begin_object();
      if (!item.id_raw.empty()) w.key("id").value_raw(item.id_raw);
      w.field("status", "ok");
      w.field("op", name);
      w.end_object();
      item.ready = w.str();
      return item;
    }
    if (name != "synth" && name != "recover") {
      item.ready = error_response(item.id_raw, "invalid_input",
                                  "unknown op \"" + name + "\"");
      return item;
    }
    const bool recovering = name == "recover";
    item.op = recovering ? "recover" : "synth";

    // Graph: a built-in name, or an inline assay in the io.h text format.
    const json_value* assay_name = req.find("assay");
    const json_value* graph_text = req.find("graph");
    if ((assay_name != nullptr) == (graph_text != nullptr)) {
      item.ready = error_response(
          item.id_raw, "invalid_input",
          name + " request needs exactly one of \"assay\" (built-in name) "
          "or \"graph\" (sequencing-graph text)");
      return item;
    }

    api::job j;
    api::pipeline_options base = args.options;
    if (assay_name != nullptr) {
      const std::string& assay = assay_name->as_string();
      if (!is_builtin(assay)) {
        item.ready = error_response(item.id_raw, "invalid_input",
                                    "unknown built-in assay \"" + assay +
                                        "\" (see bench-names)");
        return item;
      }
      j.graph = assay::make_benchmark(assay);
      // The paper's per-assay resource table, unless the request overrides.
      apply_benchmark_resources(base, assay, args);
    } else {
      j.graph = assay::parse_sequencing_graph(graph_text->as_string());
    }

    if (const json_value* options = req.find("options"))
      j.options = api::options_from_value(*options, base);
    else
      j.options = base;
    if (const json_value* priority = req.find("priority"))
      j.priority = priority->as_int();

    if (recovering) {
      // The injected fault: "auto" (default) or an explicit resource set.
      if (const json_value* at = req.find("at")) {
        item.fault_at = at->as_double();
        require(item.fault_at >= 0.0 && item.fault_at <= 1.0,
                "\"at\" must be a fraction in [0, 1]");
      }
      if (const json_value* fault = req.find("fault")) {
        if (fault->is_string()) {
          require(fault->as_string() == "auto",
                  "\"fault\" must be \"auto\" or a fault object");
        } else {
          // A partial object is fine: absent resource kinds are healthy.
          item.fault_auto = false;
          auto ints = [](const json_value* a) {
            std::vector<int> out;
            if (a != nullptr)
              for (const json_value& e : a->elements())
                out.push_back(e.as_int());
            return out;
          };
          item.faults.devices = ints(fault->find("devices"));
          item.faults.valves = ints(fault->find("valves"));
          item.faults.edges = ints(fault->find("edges"));
          item.faults.storage = ints(fault->find("storage"));
          require(!item.faults.empty(), "\"fault\" names no resources");
        }
      }
    }

    api::run_context ctx;
    if (const json_value* deadline = req.find("deadline"))
      ctx.set_deadline(deadline->as_double());
    else if (args.deadline_seconds > 0.0)
      ctx.set_deadline(args.deadline_seconds);

    item.graph = j.graph;
    item.options = j.options;
    auto ticket = pool.submit(std::move(j), ctx);
    if (!ticket.has_value()) {
      item.shed = ticket.code() == api::status::queue_full;
      item.ready = error_response(item.id_raw, api::to_string(ticket.code()),
                                  ticket.message());
      return item;
    }
    item.act = recovering ? serve_item::action::recover
                          : serve_item::action::synth;
    item.ticket = ticket.value();
    return item;
  } catch (const ts_error& e) {
    item.ready = error_response(item.id_raw, "invalid_input", e.what());
    return item;
  } catch (const std::exception& e) {
    item.ready = error_response(item.id_raw, "internal", e.what());
    return item;
  }
}

/// Best-effort extraction of the request's raw "id" member, for responses
/// built without full admission (load shedding happens before parsing the
/// request body).
std::string request_id_raw(const std::string& line) {
  try {
    const json_value req = json_value::parse(line);
    if (!req.is_object()) return "";
    if (const json_value* id = req.find("id")) {
      json_writer w;
      write_value(w, *id);
      return w.str();
    }
  } catch (...) {
  }
  return "";
}

/// Socket serve mode: an api::serve_front multiplexes many concurrent
/// unix/TCP connections onto the one executor and shared cache. Requests
/// are admitted exactly as in stdio mode (admit_request); deferred
/// responses resolve in request order on each connection's writer thread,
/// so stats/shutdown stay sequence points per connection. With
/// --max-inflight, a connection that outruns its responses is shed with a
/// structured queue_full error instead of queueing unbounded work.
int run_serve_socket(const cli_args& args) {
  std::shared_ptr<api::result_cache> cache = make_cache(args, /*always=*/true);
  api::executor_options pool_options;
  pool_options.workers = args.workers;
  pool_options.queue_capacity = args.queue_capacity;
  pool_options.cache = cache;
  api::executor pool(pool_options);

  api::serve_front* front_ptr = nullptr; // set before start(); see below

  api::serve_options so;
  so.unix_path = args.socket_path;
  so.tcp_port = args.tcp_port;
  so.max_inflight = args.max_inflight;
  so.framing_error = [](const char* code, const std::string& message) {
    return error_response("", code, message);
  };

  auto handler = [&args, &pool, &cache, &front_ptr](
                     const std::string& line,
                     const api::serve_request_info& info) -> api::serve_reply {
    api::serve_reply reply;
    if (info.overloaded) {
      reply.op = "shed";
      reply.shed = true;
      reply.line = error_response(
          request_id_raw(line), "queue_full",
          "connection " + std::to_string(info.connection) + " has " +
              std::to_string(info.inflight) +
              " responses in flight (cap " +
              std::to_string(args.max_inflight) +
              "); wait for a response before sending more");
      return reply;
    }
    bool quit = false;
    serve_item item = admit_request(line, args, pool, quit);
    reply.op = item.op;
    reply.shed = item.shed;
    switch (item.act) {
      case serve_item::action::respond:
        reply.line = std::move(item.ready);
        if (quit) {
          reply.shutdown_server = true;
          reply.close_connection = true;
        }
        break;
      case serve_item::action::stats: {
        const std::string id_raw = item.id_raw;
        reply.finish = [id_raw, &pool, &cache, &front_ptr] {
          return stats_response(id_raw, pool, *cache, front_ptr);
        };
        break;
      }
      case serve_item::action::synth:
      case serve_item::action::recover: {
        auto it = std::make_shared<serve_item>(std::move(item));
        reply.finish = [it, &pool, &cache] {
          const api::job_outcome outcome = pool.wait(it->ticket);
          if (it->act == serve_item::action::recover) {
            std::fprintf(stderr, "[serve] %-6s recover (base %s, %s)\n",
                         outcome.name.c_str(), api::to_string(outcome.code),
                         outcome.cache_hit ? "hit" : "miss");
            return recover_response(*it, outcome, *cache);
          }
          std::fprintf(stderr, "[serve] %-6s %-10s %s %.2fs\n",
                       outcome.name.c_str(), api::to_string(outcome.code),
                       outcome.cache_hit ? "hit " : "miss", outcome.seconds);
          return synth_response(it->id_raw, outcome, it->graph, it->options);
        };
        break;
      }
    }
    return reply;
  };

  api::serve_front front(so, handler);
  front_ptr = &front; // requests cannot arrive before start()
  const std::string err = front.start();
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[serve] listening: %s%s%s%d workers, queue %s, "
               "max-inflight %s\n",
               args.socket_path.empty() ? "" : args.socket_path.c_str(),
               args.socket_path.empty() ? "" : ", ",
               front.tcp_port() >= 0
                   ? ("tcp 127.0.0.1:" + std::to_string(front.tcp_port()) +
                      ", ")
                         .c_str()
                   : "",
               pool.workers(),
               args.queue_capacity > 0
                   ? std::to_string(args.queue_capacity).c_str()
                   : "unbounded",
               args.max_inflight > 0
                   ? std::to_string(args.max_inflight).c_str()
                   : "unbounded");
  front.wait(); // until a connection sends {"op":"shutdown"}
  front.stop();
  pool.shutdown();
  return 0;
}

int run_serve(const cli_args& args) {
  if (!args.socket_path.empty() || args.tcp_port >= 0)
    return run_serve_socket(args);
  std::shared_ptr<api::result_cache> cache = make_cache(args, /*always=*/true);
  api::executor_options pool_options;
  pool_options.workers = args.workers;
  pool_options.queue_capacity = args.queue_capacity;
  pool_options.cache = cache;
  api::executor pool(pool_options);

  std::fprintf(stderr,
               "[serve] ready: %d workers, queue %s, cache %zu entries%s%s\n",
               pool.workers(),
               args.queue_capacity > 0
                   ? std::to_string(args.queue_capacity).c_str()
                   : "unbounded",
               args.cache_capacity, args.cache_dir.empty() ? "" : ", disk ",
               args.cache_dir.c_str());

  std::mutex queue_lock;
  std::condition_variable queue_ready;
  std::deque<serve_item> queue;
  bool closed = false;

  std::thread responder([&] {
    for (;;) {
      serve_item item;
      {
        std::unique_lock<std::mutex> guard(queue_lock);
        queue_ready.wait(guard,
                         [&] { return closed || !queue.empty(); });
        if (queue.empty()) return; // closed and drained
        item = std::move(queue.front());
        queue.pop_front();
      }
      std::string response;
      switch (item.act) {
        case serve_item::action::respond: response = item.ready; break;
        case serve_item::action::stats:
          response = stats_response(item.id_raw, pool, *cache,
                                    /*front=*/nullptr);
          break;
        case serve_item::action::synth: {
          const api::job_outcome outcome = pool.wait(item.ticket);
          std::fprintf(stderr, "[serve] %-6s %-10s %s %.2fs\n",
                       outcome.name.c_str(), api::to_string(outcome.code),
                       outcome.cache_hit ? "hit " : "miss", outcome.seconds);
          response = synth_response(item.id_raw, outcome, item.graph,
                                    item.options);
          break;
        }
        case serve_item::action::recover: {
          const api::job_outcome outcome = pool.wait(item.ticket);
          response = recover_response(item, outcome, *cache);
          std::fprintf(stderr, "[serve] %-6s recover (base %s, %s)\n",
                       outcome.name.c_str(), api::to_string(outcome.code),
                       outcome.cache_hit ? "hit" : "miss");
          break;
        }
      }
      std::fwrite(response.data(), 1, response.size(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
    }
  });

  // Hardened read loop: a hard per-line size cap and explicit handling of
  // input that ends mid-line. Malformed lines of any kind produce one
  // structured error response and the loop carries on -- a misbehaving
  // client can never kill the service or make it exit non-zero.
  constexpr std::size_t max_request_line = std::size_t{1} << 20; // 1 MiB
  auto enqueue = [&](serve_item item) {
    {
      std::lock_guard<std::mutex> guard(queue_lock);
      queue.push_back(std::move(item));
    }
    queue_ready.notify_one();
  };
  std::string line;
  bool quit = false;
  while (!quit) {
    line.clear();
    bool oversized = false;
    bool newline_seen = false;
    int c;
    while ((c = std::cin.get()) != EOF) {
      if (c == '\n') {
        newline_seen = true;
        break;
      }
      if (line.size() < max_request_line) line.push_back(static_cast<char>(c));
      else oversized = true; // keep consuming up to the newline
    }
    if (line.empty() && !newline_seen) break; // clean EOF at a line boundary
    if (oversized) {
      serve_item item;
      item.ready = error_response(
          "", "invalid_input", "request line exceeds the 1 MiB limit");
      enqueue(std::move(item));
      if (!newline_seen) break;
      continue;
    }
    if (!newline_seen) {
      // EOF struck mid-line: the request is truncated by definition (the
      // protocol is newline-delimited), so answer it as such and stop.
      serve_item item;
      item.ready = error_response(
          "", "invalid_input", "input ended mid-line (truncated request)");
      enqueue(std::move(item));
      break;
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    enqueue(admit_request(line, args, pool, quit));
  }
  {
    std::lock_guard<std::mutex> guard(queue_lock);
    closed = true;
  }
  queue_ready.notify_all();
  responder.join(); // drains every accepted request, shutdown ack last
  pool.shutdown();
  return 0;
}

int run_sched(const cli_args& args, const assay::sequencing_graph& graph) {
  api::run_context ctx;
  if (args.deadline_seconds > 0.0) ctx.set_deadline(args.deadline_seconds);

  const api::pipeline p(graph, args.options);
  auto outcome = p.schedule(ctx);
  describe_outcome(graph.name(), outcome.code(), outcome.message());
  if (!outcome.has_value()) return exit_code_for(outcome.code());

  std::FILE* report_stream = args.json_path == "-" ? stderr : stdout;
  const sched::schedule& s = outcome.value().best();
  std::fprintf(report_stream, "tE=%d stores=%d capacity=%d cache_time=%ld\n",
               s.makespan(), s.store_count(), s.peak_concurrent_caches(),
               s.total_cache_time());
  for (const auto& op : s.ops)
    std::fprintf(report_stream, "  %-8s d%d [%d, %d)\n",
                 graph.at(op.op).name.c_str(), op.device + 1, op.start,
                 op.end);
  if (!args.json_path.empty() &&
      !write_text(args.json_path, outcome.value().to_json(), "report"))
    return 1;
  return exit_code_for(outcome.code());
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "bench-names") {
    const auto& table = assay::benchmark_resource_table();
    for (std::size_t i = 0; i < table.size(); ++i)
      std::printf("%s%s", i ? " " : "", table[i].name);
    std::printf("\n");
    return 0;
  }
  if (command != "synth" && command != "sched" && command != "show" &&
      command != "serve")
    return usage();
  if (command == "serve") {
    cli_args args;
    if (!parse_flags(argc, argv, 2, args)) return 2;
    if (args.all || !args.assay_spec.empty()) return usage();
    return run_serve(args);
  }
  if (argc < 3) return usage();

  cli_args args;
  int flag_start = 2;
  if (std::strncmp(argv[2], "--", 2) != 0) {
    args.assay_spec = argv[2];
    flag_start = 3;
  }
  if (!parse_flags(argc, argv, flag_start, args)) return 2;

  if (args.all) {
    if (command != "synth") {
      std::fprintf(stderr, "error: --all is only valid with synth\n");
      return 2;
    }
    return run_synth_all(args);
  }
  if (args.assay_spec.empty()) return usage();

  const auto graph = load_assay(args.assay_spec);
  if (!graph) return 2;

  if (command == "show") {
    std::printf("%s", graph->to_dot().c_str());
    return 0;
  }
  if (command == "sched") return run_sched(args, *graph);
  return run_synth_single(args, *graph);
}
