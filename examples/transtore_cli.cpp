// transtore_cli: command-line front end for the whole library, built on the
// staged api::pipeline / api::executor surface.
//
//   transtore_cli synth  <assay|file.sg> [options]   full synthesis flow
//   transtore_cli synth  --all [options]             every built-in assay
//                                                    through the batch executor
//   transtore_cli sched  <assay|file.sg> [options]   scheduling only
//   transtore_cli show   <assay|file.sg>             print the DAG (DOT)
//   transtore_cli bench-names                        list built-in assays
//
// Options:
//   --devices N     mixers on the chip (default 1; per-assay table for --all)
//   --grid WxH      connection grid (default 4x4; per-assay table for --all)
//   --engine E      scheduling engine: heuristic|ilp|combined (default)
//   --beta B        storage weight in objective (6) (default 0.15)
//   --time-only     disable storage optimization (Fig. 9 baseline)
//   --baseline      also evaluate the dedicated-storage unit
//   --json FILE|-   write the machine-readable report ("-" = stdout)
//   --svg FILE      write the compacted layout
//   --seed S        random seed (default 1)
//   --deadline S    wall-clock budget in seconds; a hit returns the
//                   best-effort result and exits 3 (distinct from errors)
//   --workers N     executor worker threads for --all (default 2)
//
// Exit codes: 0 success; 1 synthesis failure (capacity/infeasible/internal);
// 2 usage or input errors; 3 deadline hit / cancelled (best-effort results,
// when available, are still printed).
//
// <assay> is a built-in name (PCR, IVD, CPA, RA30, RA70, RA100) or a path
// to a sequencing-graph file in the src/assay/io.h text format.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "api/executor.h"
#include "api/pipeline.h"
#include "assay/benchmarks.h"
#include "assay/io.h"
#include "core/report.h"
#include "phys/layout.h"

namespace {

using namespace transtore;

bool is_builtin(const std::string& spec) {
  for (const assay::benchmark_resources& r : assay::benchmark_resource_table())
    if (spec == r.name) return true;
  return false;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: transtore_cli <synth|sched|show|bench-names> [assay|--all]\n"
      "       [--devices N] [--grid WxH] [--engine heuristic|ilp|combined]\n"
      "       [--beta B] [--time-only] [--baseline] [--json FILE|-]\n"
      "       [--svg FILE] [--seed S] [--deadline S] [--workers N]\n");
  return 2;
}

std::optional<assay::sequencing_graph> load_assay(const std::string& spec) {
  if (is_builtin(spec)) return assay::make_benchmark(spec);
  try {
    return assay::load_sequencing_graph(spec);
  } catch (const ts_error& e) {
    std::fprintf(stderr,
                 "error: cannot load assay '%s': %s\n"
                 "       (expected a built-in name -- PCR IVD CPA RA30 RA70 "
                 "RA100 -- or a readable .sg file)\n",
                 spec.c_str(), e.what());
    return std::nullopt;
  }
}

struct cli_args {
  std::string assay_spec;
  bool all = false;
  api::pipeline_options options = [] {
    api::pipeline_options o;
    // Storage-heavy assays (RA70) cannot route on the paper's grid with
    // every seed; retry up to two sizes up instead of failing. The grid
    // actually used is visible in the report/JSON. Identical for single
    // and --all runs so their metrics stay comparable.
    o.grid_growth = 2;
    return o;
  }();
  bool devices_set = false;
  bool grid_set = false;
  std::string json_path;
  std::string svg_path;
  double deadline_seconds = 0.0;
  int workers = 2;
};

/// Parse flags from argv[from..). Returns false (after a diagnostic) on
/// unknown options or malformed values.
bool parse_flags(int argc, char** argv, int from, cli_args& args) {
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if (arg == "--devices") {
      if ((value = next()) == nullptr) return false;
      args.options.device_count = std::atoi(value);
      args.devices_set = true;
    } else if (arg == "--grid") {
      if ((value = next()) == nullptr) return false;
      const std::string dims = value;
      const auto x = dims.find('x');
      if (x == std::string::npos) {
        std::fprintf(stderr, "error: --grid expects WxH, got '%s'\n",
                     dims.c_str());
        return false;
      }
      args.options.grid_width = std::atoi(dims.substr(0, x).c_str());
      args.options.grid_height = std::atoi(dims.substr(x + 1).c_str());
      args.grid_set = true;
    } else if (arg == "--engine") {
      if ((value = next()) == nullptr) return false;
      const std::string engine = value;
      if (engine == "heuristic")
        args.options.schedule_engine = sched::schedule_engine::heuristic;
      else if (engine == "ilp")
        args.options.schedule_engine = sched::schedule_engine::ilp;
      else if (engine == "combined")
        args.options.schedule_engine = sched::schedule_engine::combined;
      else {
        std::fprintf(stderr,
                     "error: --engine expects heuristic|ilp|combined, got "
                     "'%s'\n",
                     engine.c_str());
        return false;
      }
    } else if (arg == "--beta") {
      if ((value = next()) == nullptr) return false;
      args.options.beta = std::atof(value);
    } else if (arg == "--time-only") {
      args.options.storage_aware = false;
    } else if (arg == "--baseline") {
      args.options.run_baseline = true;
    } else if (arg == "--json") {
      if ((value = next()) == nullptr) return false;
      args.json_path = value;
    } else if (arg == "--svg") {
      if ((value = next()) == nullptr) return false;
      args.svg_path = value;
    } else if (arg == "--seed") {
      if ((value = next()) == nullptr) return false;
      args.options.seed = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--deadline") {
      if ((value = next()) == nullptr) return false;
      args.deadline_seconds = std::atof(value);
    } else if (arg == "--workers") {
      if ((value = next()) == nullptr) return false;
      args.workers = std::atoi(value);
      if (args.workers < 1) {
        std::fprintf(stderr, "error: --workers must be >= 1\n");
        return false;
      }
    } else if (arg == "--all") {
      args.all = true;
    } else {
      std::fprintf(stderr,
                   "error: unknown option '%s' (see usage below)\n",
                   arg.c_str());
      usage();
      return false;
    }
  }
  return true;
}

/// Map a terminal api status to the CLI exit code contract.
int exit_code_for(api::status code) {
  switch (code) {
    case api::status::ok: return 0;
    case api::status::time_limit:
    case api::status::cancelled: return 3;
    case api::status::invalid_input: return 2;
    default: return 1;
  }
}

void describe_outcome(const std::string& label, api::status code,
                      const std::string& message) {
  if (code == api::status::ok) return;
  if (code == api::status::time_limit)
    std::fprintf(stderr, "%s: deadline hit -- %s\n", label.c_str(),
                 message.c_str());
  else if (code == api::status::cancelled)
    std::fprintf(stderr, "%s: cancelled -- %s\n", label.c_str(),
                 message.c_str());
  else
    std::fprintf(stderr, "%s: %s error -- %s\n", label.c_str(),
                 api::to_string(code), message.c_str());
}

/// Tag a flow-result JSON document (a single object) with the structured
/// outcome, so best-effort rows (time_limit/cancelled) are distinguishable
/// from completed ones in machine-readable output too.
std::string with_outcome(std::string doc, api::status code) {
  doc.insert(doc.size() - 1,
             ",\"outcome\":\"" + std::string(api::to_string(code)) + "\"");
  return doc;
}

bool write_text(const std::string& path, const std::string& text,
                const char* what) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << text << "\n";
  std::printf("%s -> %s\n", what, path.c_str());
  return true;
}

int run_synth_all(const cli_args& args) {
  std::vector<api::job> jobs;
  for (const assay::benchmark_resources& c :
       assay::benchmark_resource_table()) {
    api::job j;
    j.name = c.name;
    j.graph = assay::make_benchmark(c.name);
    j.options = args.options;
    if (!args.devices_set) j.options.device_count = c.devices;
    if (!args.grid_set) {
      j.options.grid_width = c.grid;
      j.options.grid_height = c.grid;
    }
    jobs.push_back(std::move(j));
  }

  api::run_context ctx;
  if (args.deadline_seconds > 0.0) ctx.set_deadline(args.deadline_seconds);

  api::executor pool(api::executor_options{args.workers});
  std::fprintf(stderr, "[batch] %zu assays, %d workers\n", jobs.size(),
               pool.workers());
  const std::vector<api::job_outcome> outcomes = pool.run(
      jobs, ctx, [](const api::job_outcome& o) {
        std::fprintf(stderr, "[batch] %-6s %-10s %.2fs\n", o.name.c_str(),
                     api::to_string(o.code), o.seconds);
      });

  // With --json - the machine-readable report owns stdout; the human
  // summaries move to stderr so the JSON stays parseable.
  const bool want_json = !args.json_path.empty();
  std::FILE* report_stream = args.json_path == "-" ? stderr : stdout;
  std::string json = "[\n";
  int exit_code = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const api::job_outcome& o = outcomes[i];
    describe_outcome(o.name, o.code, o.message);
    exit_code = std::max(exit_code, exit_code_for(o.code));
    if (o.flow)
      std::fprintf(report_stream, "%s", o.flow->report(jobs[i].graph).c_str());
    if (!want_json) continue;
    if (o.flow)
      json += "  " + with_outcome(api::to_json(jobs[i].graph, *o.flow), o.code);
    else
      json += "  {\"assay\":\"" + o.name + "\",\"outcome\":\"" +
              api::to_string(o.code) + "\"}";
    json += i + 1 < outcomes.size() ? ",\n" : "\n";
  }
  json += "]";
  if (want_json && !write_text(args.json_path, json, "report")) return 1;
  return exit_code;
}

int run_synth_single(const cli_args& args,
                     const assay::sequencing_graph& graph) {
  api::run_context ctx;
  if (args.deadline_seconds > 0.0) ctx.set_deadline(args.deadline_seconds);

  const api::pipeline p(graph, args.options);
  auto outcome = p.run(ctx);
  describe_outcome(graph.name(), outcome.code(), outcome.message());
  if (!outcome.has_value()) return exit_code_for(outcome.code());

  const api::flow_result& r = outcome.value();
  std::fprintf(args.json_path == "-" ? stderr : stdout, "%s",
               r.report(graph).c_str());
  if (!args.json_path.empty() &&
      !write_text(args.json_path,
                  with_outcome(api::to_json(graph, r), outcome.code()),
                  "report"))
    return 1;
  if (!args.svg_path.empty() &&
      !write_text(args.svg_path, phys::render_svg(r.architecture.result,
                                                  r.layout),
                  "layout"))
    return 1;
  return exit_code_for(outcome.code());
}

int run_sched(const cli_args& args, const assay::sequencing_graph& graph) {
  api::run_context ctx;
  if (args.deadline_seconds > 0.0) ctx.set_deadline(args.deadline_seconds);

  const api::pipeline p(graph, args.options);
  auto outcome = p.schedule(ctx);
  describe_outcome(graph.name(), outcome.code(), outcome.message());
  if (!outcome.has_value()) return exit_code_for(outcome.code());

  std::FILE* report_stream = args.json_path == "-" ? stderr : stdout;
  const sched::schedule& s = outcome.value().best();
  std::fprintf(report_stream, "tE=%d stores=%d capacity=%d cache_time=%ld\n",
               s.makespan(), s.store_count(), s.peak_concurrent_caches(),
               s.total_cache_time());
  for (const auto& op : s.ops)
    std::fprintf(report_stream, "  %-8s d%d [%d, %d)\n",
                 graph.at(op.op).name.c_str(), op.device + 1, op.start,
                 op.end);
  if (!args.json_path.empty() &&
      !write_text(args.json_path, outcome.value().to_json(), "report"))
    return 1;
  return exit_code_for(outcome.code());
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "bench-names") {
    const auto& table = assay::benchmark_resource_table();
    for (std::size_t i = 0; i < table.size(); ++i)
      std::printf("%s%s", i ? " " : "", table[i].name);
    std::printf("\n");
    return 0;
  }
  if (command != "synth" && command != "sched" && command != "show")
    return usage();
  if (argc < 3) return usage();

  cli_args args;
  int flag_start = 2;
  if (std::strncmp(argv[2], "--", 2) != 0) {
    args.assay_spec = argv[2];
    flag_start = 3;
  }
  if (!parse_flags(argc, argv, flag_start, args)) return 2;

  if (args.all) {
    if (command != "synth") {
      std::fprintf(stderr, "error: --all is only valid with synth\n");
      return 2;
    }
    return run_synth_all(args);
  }
  if (args.assay_spec.empty()) return usage();

  const auto graph = load_assay(args.assay_spec);
  if (!graph) return 2;

  if (command == "show") {
    std::printf("%s", graph->to_dot().c_str());
    return 0;
  }
  if (command == "sched") return run_sched(args, *graph);
  return run_synth_single(args, *graph);
}
