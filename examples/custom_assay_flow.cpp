// Synthesize a chip for YOUR assay: reads the plain-text sequencing-graph
// format (see src/assay/io.h) from a file or stdin, runs the full flow,
// and writes the compacted layout as SVG.
//
//   $ ./examples/custom_assay_flow my_assay.sg 2 out.svg
//     (args: [graph file] [device count] [svg output]; all optional)
//
// Without arguments it demonstrates the format on an in-vitro diagnostics
// style assay defined inline below.
#include <cstdio>
#include <fstream>

#include "api/pipeline.h"
#include "assay/io.h"
#include "phys/layout.h"

namespace {

constexpr const char* demo_assay = R"(# Two patient samples, each mixed with
# two reagents and then combined for a differential measurement.
assay demo-diagnostic
op mixA1 30
op mixA2 30
op combineA 30
op mixB1 30
op mixB2 30
op combineB 30
op differential 60
dep mixA1 combineA
dep mixA2 combineA
dep mixB1 combineB
dep mixB2 combineB
dep combineA differential
dep combineB differential
)";

} // namespace

int main(int argc, char** argv) {
  using namespace transtore;

  assay::sequencing_graph graph =
      argc > 1 ? assay::load_sequencing_graph(argv[1])
               : assay::parse_sequencing_graph(demo_assay);
  const int devices = argc > 2 ? std::atoi(argv[2]) : 2;
  const std::string svg_path = argc > 3 ? argv[3] : "custom_assay_layout.svg";

  std::printf("loaded assay '%s': %d operations, %d dependencies\n",
              graph.name().c_str(), graph.operation_count(),
              graph.edge_count());

  api::pipeline_options options;
  options.device_count = devices;
  options.run_baseline = true;
  auto outcome = api::pipeline(graph, options).run();
  if (!outcome) {
    std::fprintf(stderr, "synthesis failed (%s): %s\n",
                 api::to_string(outcome.code()), outcome.message().c_str());
    return 1;
  }
  const api::flow_result result = std::move(outcome).take();
  std::printf("\n%s\n", result.report(graph).c_str());

  const std::string svg =
      phys::render_svg(result.architecture.result, result.layout);
  std::ofstream out(svg_path);
  out << svg;
  std::printf("layout written to %s (%zu bytes)\n", svg_path.c_str(),
              svg.size());

  if (result.baseline) {
    const double speedup =
        static_cast<double>(result.baseline->makespan) /
        result.scheduling.best.makespan();
    std::printf(
        "\ndistributed channel storage vs dedicated unit: %.0f%% faster,\n"
        "%d vs %d valves\n",
        100.0 * (speedup - 1.0), result.architecture.result.valve_count(),
        result.baseline->total_valves);
  }
  return 0;
}
