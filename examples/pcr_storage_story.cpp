// The paper's motivating story (Section 2), executable: how the schedule
// of PCR on a single mixer decides how many fluids must be cached, how
// much storage the chip needs, and how long the assay takes -- and how the
// storage-aware scheduler finds the good order automatically.
#include <cstdio>

#include "assay/benchmarks.h"
#include "sched/list_scheduler.h"
#include "sched/timing.h"

int main() {
  using namespace transtore;
  using namespace transtore::sched;

  const auto pcr = assay::make_pcr();
  std::printf("PCR mixing stage: %d operations, %d dependencies, one mixer\n\n",
              pcr.operation_count(), pcr.edge_count());

  auto show = [&](const char* label, const schedule& s) {
    std::printf("%-28s tE=%3ds  stores=%d  fetches=%d  capacity=%d  "
                "cached time=%lds\n",
                label, s.makespan(), s.store_count(), s.store_count(),
                s.peak_concurrent_caches(), s.total_cache_time());
    std::printf("  timeline:");
    for (const auto& op : s.ops)
      std::printf(" %s[%d-%d]", pcr.at(op.op).name.c_str(), op.start, op.end);
    std::printf("\n\n");
  };

  // The two hand schedules from Fig. 2.
  auto run_order = [&](const std::vector<int>& order) {
    binding b;
    b.device_of.assign(7, 0);
    b.device_order = {order};
    return refine_timing(pcr, b, 1, timing_options{});
  };
  show("breadth-first (Fig. 2(b)):", run_order({0, 1, 2, 3, 5, 4, 6}));
  show("storage-aware (Fig. 2(c)):", run_order({0, 1, 4, 2, 3, 5, 6}));

  // What the schedulers find on their own.
  list_scheduler_options time_only;
  time_only.device_count = 1;
  time_only.storage_aware = false;
  time_only.restarts = 1;
  show("list scheduler, time only:", schedule_with_list(pcr, time_only));

  list_scheduler_options storage_aware;
  storage_aware.device_count = 1;
  show("list scheduler, storage-aware:",
       schedule_with_list(pcr, storage_aware));

  std::printf(
      "Every store/fetch pair costs 2 x 10s of transport and one channel\n"
      "segment blocked for the hold -- minimizing stores shortens the assay\n"
      "AND shrinks the chip. That is the paper's core observation.\n");
  return 0;
}
