// Quickstart: synthesize a biochip for the PCR mixing assay in ~20 lines.
//
//   $ ./examples/quickstart
//
// Builds the sequencing graph, runs the full flow (storage-aware
// scheduling -> distributed-channel-storage architecture -> compacted
// layout), prints the report and an execution snapshot.
#include <cstdio>

#include "assay/benchmarks.h"
#include "core/flow.h"
#include "sim/simulator.h"

int main() {
  using namespace transtore;

  // 1. The assay: PCR's mixing stage (8 samples, 7 mixing operations).
  const assay::sequencing_graph graph = assay::make_pcr();
  std::printf("%s", graph.to_dot().c_str());

  // 2. Synthesis: one mixer on a 4x4 connection grid (the paper's setup).
  core::flow_options options;
  options.device_count = 1;
  options.grid_width = 4;
  options.grid_height = 4;
  const core::flow_result result = core::run_flow(graph, options);

  // 3. Results.
  std::printf("\n%s\n", result.report(graph).c_str());

  // 4. Watch the chip mid-run: a fluid sample cached in a channel segment.
  for (const auto& transfer : result.scheduling.best.transfers)
    if (transfer.kind == sched::transfer_kind::cached &&
        !transfer.cache_hold.empty()) {
      std::printf("%s\n",
                  sim::snapshot(graph, result.scheduling.best,
                                result.architecture.workload,
                                result.architecture.result,
                                transfer.cache_hold.begin)
                      .c_str());
      break;
    }
  return 0;
}
